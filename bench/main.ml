(* Benchmark harness: reproduces every figure of the paper's evaluation
   (§V) and micro-benchmarks the routing algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig5       # one experiment
     dune exec bench/main.exe headline   # §V-B improvement ratios
     dune exec bench/main.exe traffic    # online traffic engine, per policy
     dune exec bench/main.exe faults     # acceptance under failure, per MTBF
     dune exec bench/main.exe hier       # flat vs hierarchical routing at scale
     dune exec bench/main.exe micro      # Bechamel timings only
     dune exec bench/main.exe snapshot   # perf snapshot -> BENCH_muerp.json

   MUERP_REPLICATIONS=<n> overrides the 20-network averaging for quick
   runs. *)

module Figures = Qnet_experiments.Figures
module Report = Qnet_experiments.Report
module Config = Qnet_experiments.Config

let replications =
  match Sys.getenv_opt "MUERP_REPLICATIONS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ -> 20)
  | None -> 20

let cfg = Config.create ~replications ()

let print_series s =
  print_endline (Report.series_to_string s);
  print_newline ()

let all_figure_ids =
  [ "fig5"; "fig6a"; "fig6b"; "fig7a"; "fig7b"; "fig8a"; "fig8b" ]

let run_figure id =
  let s =
    match id with
    | "fig5" -> Figures.fig5 ~cfg ()
    | "fig6a" -> Figures.fig6a ~cfg ()
    | "fig6b" -> Figures.fig6b ~cfg ()
    | "fig7a" -> Figures.fig7a ~cfg ()
    | "fig7b" -> Figures.fig7b ~cfg ()
    | "fig8a" -> Figures.fig8a ~cfg ()
    | "fig8b" -> Figures.fig8b ~cfg ()
    | other ->
        Printf.eprintf "unknown figure: %s\nvalid figures: %s\n" other
          (String.concat ", " all_figure_ids);
        exit 1
  in
  print_series s;
  s

let run_headline series =
  let series =
    if series = [] then List.map run_figure all_figure_ids else series
  in
  print_endline
    "Headline improvements (cf. paper §V-B: up to 5347%/3180%/3155% vs \
     N-FUSION, 5068%/3014%/2990% vs E-Q-CAST):";
  print_endline
    (Qnet_util.Table.to_string
       (Report.headlines_table (Figures.headlines series)));
  print_newline ()

(* Extension experiment beyond the paper: all five methods on the two
   reference WAN topologies, averaged over random user placements. *)
let run_reference_nets () =
  let module R = Qnet_experiments.Runner in
  let params = Qnet_core.Params.default in
  let t =
    Qnet_util.Table.create
      ("network"
      :: List.map (fun m -> R.method_name m) R.all_methods)
  in
  let t =
    List.fold_left
      (fun t (name, net) ->
        let rates_for m =
          let samples =
            List.init replications (fun i ->
                let seed = 1 + i in
                let rng = Qnet_util.Prng.create seed in
                let g =
                  Qnet_topology.Reference_nets.build rng net ~n_users:5
                    ~qubits_per_switch:4 ~user_qubits:1_000_000
                in
                let rng_alg = Qnet_util.Prng.create (seed * 7919) in
                R.run_method g params ~rng:rng_alg ~alg2_boost:true m)
          in
          Qnet_util.Stats.mean (Array.of_list samples)
        in
        Qnet_util.Table.add_float_row t name
          (List.map rates_for R.all_methods))
      t Qnet_topology.Reference_nets.all
  in
  print_endline
    "Reference WAN topologies (extension; 5 users placed at random):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

let run_ablations () =
  print_endline "Ablation studies (design-choice sensitivity):";
  print_newline ();
  List.iter
    (fun (title, table) ->
      Printf.printf "%s\n%s\n\n" title (Qnet_util.Table.to_string table))
    (Qnet_experiments.Ablation.all ~cfg ())

(* Online traffic scenario: a fixed dynamic workload (Poisson arrivals,
   groups of 2-4 users, bounded patience) served over the §V-A default
   network by each routing policy.  Deterministic per seed, so the
   throughput numbers land in BENCH_muerp.json as a perf trajectory. *)

let traffic_policies = [ "prim"; "alg3"; "eqcast"; "cached-prim"; "flow" ]

let traffic_scenario ~seed policy_name =
  let rng = Qnet_util.Prng.create seed in
  let g = Qnet_topology.Waxman.generate rng Qnet_topology.Spec.default in
  let params = Qnet_core.Params.default in
  let wspec =
    Qnet_online.Workload.spec ~requests:120
      ~arrivals:(Qnet_online.Workload.Poisson 1.) ()
  in
  let reqs =
    Qnet_online.Workload.generate (Qnet_util.Prng.create (seed + 8_191)) g
      wspec
  in
  let policy =
    match Qnet_online.Policy.of_name policy_name with
    | Some p -> p
    | None -> failwith ("unknown traffic policy: " ^ policy_name)
  in
  let config = Qnet_online.Engine.config policy in
  fst (Qnet_online.Engine.run ~config g params ~requests:reqs)

let run_traffic () =
  let module E = Qnet_online.Engine in
  let t =
    Qnet_util.Table.create
      [
        "policy"; "served"; "expired"; "acceptance"; "throughput";
        "mean wait"; "p95 wait"; "mean rate"; "utilization";
      ]
  in
  let t =
    List.fold_left
      (fun t name ->
        (* Average the per-seed SLA metrics over the replication seeds
           (each seed is a fresh network and workload). *)
        let reports =
          List.init replications (fun i -> traffic_scenario ~seed:(1 + i) name)
        in
        let mean f =
          Qnet_util.Stats.mean
            (Array.of_list (List.map f reports))
        in
        Qnet_util.Table.add_row t
          [
            name;
            Printf.sprintf "%.1f" (mean (fun r -> float_of_int r.E.served));
            Printf.sprintf "%.1f" (mean (fun r -> float_of_int r.E.expired));
            Qnet_util.Table.float_cell (mean (fun r -> r.E.acceptance_ratio));
            Qnet_util.Table.float_cell (mean (fun r -> r.E.throughput));
            Qnet_util.Table.float_cell (mean (fun r -> r.E.mean_wait));
            Qnet_util.Table.float_cell (mean (fun r -> r.E.p95_wait));
            Qnet_util.Table.float_cell (mean (fun r -> r.E.mean_rate));
            Qnet_util.Table.float_cell (mean (fun r -> r.E.mean_utilization));
          ])
      t traffic_policies
  in
  print_endline
    "Online traffic (120 requests, Poisson 1/t, default network, per \
     policy):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

(* Chaos benchmark: the prim policy's traffic scenario at a few
   failure rates — acceptance under failure plus recovery latency from
   the online.faults.recovery_seconds histogram.  Fixed seeds keep the
   section deterministic, so it lands in BENCH_muerp.json as the
   fault-tolerance trajectory. *)

let fault_mtbf_levels = [ 40.; 15.; 6. ]

let chaos_scenario ~seed mtbf =
  let rng = Qnet_util.Prng.create seed in
  let g = Qnet_topology.Waxman.generate rng Qnet_topology.Spec.default in
  let params = Qnet_core.Params.default in
  let wspec =
    Qnet_online.Workload.spec ~requests:120
      ~arrivals:(Qnet_online.Workload.Poisson 1.) ()
  in
  let reqs =
    Qnet_online.Workload.generate (Qnet_util.Prng.create (seed + 8_191)) g
      wspec
  in
  let policy = Option.get (Qnet_online.Policy.of_name "prim") in
  let config =
    Qnet_online.Engine.config ~recovery:Qnet_online.Engine.Repair policy
  in
  let faults =
    Option.map
      (fun mtbf ->
        Qnet_faults.Model.make ~mtbf ~mttr:5. ~seed:(seed + 40_961) ())
      mtbf
  in
  fst (Qnet_online.Engine.run ~config ?faults g params ~requests:reqs)

let run_faults () =
  let module E = Qnet_online.Engine in
  let t =
    Qnet_util.Table.create
      [
        "mtbf"; "served"; "acceptance"; "faults"; "interrupted"; "recovered";
        "aborted"; "observed mttr";
      ]
  in
  let t =
    List.fold_left
      (fun t mtbf ->
        let r = chaos_scenario ~seed:42 mtbf in
        Qnet_util.Table.add_row t
          [
            (match mtbf with None -> "inf" | Some m -> Printf.sprintf "%g" m);
            string_of_int r.E.served;
            Qnet_util.Table.float_cell r.E.acceptance_ratio;
            string_of_int r.E.faults_injected;
            string_of_int r.E.leases_interrupted;
            string_of_int r.E.leases_recovered;
            string_of_int r.E.leases_aborted;
            Qnet_util.Table.float_cell r.E.mean_time_to_repair;
          ])
      t
      (None :: List.map Option.some fault_mtbf_levels)
  in
  print_endline
    "Acceptance under failure (prim policy, repair recovery, mttr 5):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

(* Overload sweep: the same fixed-seed workload at rising offered
   loads, served under admission limits and a tiered degradation
   policy.  Shed rate, degradation-tier histogram and queue-wait tail
   go into the snapshot as the overload trajectory. *)

let overload_offered_loads = [ 0.5; 1.5; 3.; 6. ]

let overload_scenario ~seed offered_load =
  let rng = Qnet_util.Prng.create seed in
  let g = Qnet_topology.Waxman.generate rng Qnet_topology.Spec.default in
  let params = Qnet_core.Params.default in
  let wspec =
    Qnet_online.Workload.spec ~requests:160
      ~arrivals:(Qnet_online.Workload.Poisson offered_load) ()
  in
  let reqs =
    Qnet_online.Workload.generate (Qnet_util.Prng.create (seed + 8_191)) g
      wspec
  in
  (* Fresh tier stats per scenario: the tiered combinator's breakers
     and histogram are stateful. *)
  let policy, tier_stats =
    Qnet_online.Policy.tiered ~fuel:400
      [
        Option.get (Qnet_online.Policy.of_name "alg3");
        Option.get (Qnet_online.Policy.of_name "prim");
      ]
  in
  let overload =
    Qnet_overload.Admission.make ~max_queue:8 ~max_inflight:10 ~rate:2. ()
  in
  let config = Qnet_online.Engine.config ~overload ~tier_stats policy in
  fst (Qnet_online.Engine.run ~config g params ~requests:reqs)

let run_overload () =
  let module E = Qnet_online.Engine in
  let t =
    Qnet_util.Table.create
      [
        "offered"; "served"; "shed"; "shed rate"; "degraded"; "exhaustions";
        "p99 wait"; "peak queue";
      ]
  in
  let t =
    List.fold_left
      (fun t load ->
        let r = overload_scenario ~seed:42 load in
        let shed_rate =
          if r.E.arrived = 0 then 0.
          else float_of_int r.E.shed /. float_of_int r.E.arrived
        in
        Qnet_util.Table.add_row t
          [
            Printf.sprintf "%g" load;
            string_of_int r.E.served;
            string_of_int r.E.shed;
            Qnet_util.Table.float_cell shed_rate;
            string_of_int r.E.degraded;
            string_of_int r.E.budget_exhaustions;
            Qnet_util.Table.float_cell r.E.p99_wait;
            string_of_int r.E.peak_queue_depth;
          ])
      t overload_offered_loads
  in
  print_endline
    "Overload control (160 requests, tiers alg3>prim, max-queue 8, \
     max-inflight 10, rate 2):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

(* Hierarchical routing benchmark: flat whole-graph Dijkstra vs the
   qnet_hier corridor router, on the continent-of-Waxmans networks the
   subsystem exists for.  Fixed seeds make the rates, ratios and
   feasible counts deterministic, so they land in BENCH_muerp.json as
   the hier trajectory; the wall times are machine-dependent context.
   The hier speedup compares flat query wall against oracle setup plus
   query wall, so the hierarchy pays for its own construction. *)

let hier_switch_sizes =
  (* The 100k-switch row costs minutes; only run it at full depth. *)
  if replications >= 5 then [ 1_000; 10_000; 100_000 ]
  else [ 1_000; 10_000 ]

type hier_result = {
  h_switches : int;
  h_regions : int;
  h_pairs : int;
  flat_feasible : int;
  hier_feasible : int;
  wall_flat_s : float;
  wall_hier_s : float;  (* queries only; setup is separate *)
  setup_s : float;  (* partition + oracle construction *)
  mean_rate_ratio : float;  (* hier rate / flat rate, pairs both found *)
  min_rate_ratio : float;
}

let hier_scenario n_switches =
  let regions = Qnet_hier.Partition.auto_regions n_switches in
  let spec =
    Qnet_topology.Spec.create ~n_users:12 ~n_switches ~qubits_per_switch:6 ()
  in
  let g, labels =
    Qnet_topology.Continent.generate_labeled
      ~params:{ Qnet_topology.Continent.default_params with regions }
      (Qnet_util.Prng.create 42) spec
  in
  let params = Qnet_core.Params.default in
  let users = Array.of_list (Qnet_graph.Graph.users g) in
  let rng = Qnet_util.Prng.create 4242 in
  let pairs =
    List.init 40 (fun _ ->
        let i = Qnet_util.Prng.int rng (Array.length users) in
        let rec pick () =
          let j = Qnet_util.Prng.int rng (Array.length users) in
          if j = i then pick () else j
        in
        (users.(i), users.(pick ())))
  in
  let time f =
    let t0 = Qnet_telemetry.Clock.now_s () in
    let r = f () in
    (Qnet_telemetry.Clock.elapsed_since t0, r)
  in
  (* Fresh capacity per side: both route the same 40 point-to-point
     queries without consuming, so the searches are independent.  The
     batch is large enough to amortise the hier side's one-time lazy
     segment-cache fill, matching how the oracle is used in serving. *)
  let wall_flat_s, flat =
    time (fun () ->
        let capacity = Qnet_core.Capacity.of_graph g in
        List.map
          (fun (src, dst) ->
            Qnet_core.Routing.best_channel g params ~capacity ~src ~dst)
          pairs)
  in
  let setup_s, oracle =
    time (fun () ->
        let part = Qnet_hier.Partition.of_assignment g labels in
        Qnet_hier.Oracle.create g params part)
  in
  let wall_hier_s, hier =
    time (fun () ->
        let capacity = Qnet_core.Capacity.of_graph g in
        List.map
          (fun (src, dst) ->
            Qnet_hier.Oracle.best_channel oracle ~capacity ~src ~dst)
          pairs)
  in
  let neg_log (c : Qnet_core.Channel.t) =
    Qnet_util.Logprob.to_neg_log c.Qnet_core.Channel.rate
  in
  let ratios =
    List.filter_map
      (fun (f, h) ->
        match (f, h) with
        (* rate_hier / rate_flat in probability space, ≤ 1 by
           optimality of the flat search. *)
        | Some f, Some h -> Some (exp (neg_log f -. neg_log h))
        | _ -> None)
      (List.combine flat hier)
  in
  let count side = List.length (List.filter Option.is_some side) in
  {
    h_switches = n_switches;
    h_regions = regions;
    h_pairs = List.length pairs;
    flat_feasible = count flat;
    hier_feasible = count hier;
    wall_flat_s;
    wall_hier_s;
    setup_s;
    mean_rate_ratio =
      (match ratios with
      | [] -> 1.
      | rs -> Qnet_util.Stats.mean (Array.of_list rs));
    min_rate_ratio = List.fold_left min 1. ratios;
  }

let hier_results () =
  List.map
    (fun n ->
      Printf.printf "hier bench — %d switches\n%!" n;
      hier_scenario n)
    hier_switch_sizes

let run_hier () =
  let t =
    Qnet_util.Table.create
      [
        "switches"; "regions"; "flat ok"; "hier ok"; "flat (s)"; "hier (s)";
        "setup (s)"; "speedup"; "mean ratio"; "min ratio";
      ]
  in
  let t =
    List.fold_left
      (fun t r ->
        Qnet_util.Table.add_row t
          [
            string_of_int r.h_switches;
            string_of_int r.h_regions;
            Printf.sprintf "%d/%d" r.flat_feasible r.h_pairs;
            Printf.sprintf "%d/%d" r.hier_feasible r.h_pairs;
            Printf.sprintf "%.3f" r.wall_flat_s;
            Printf.sprintf "%.3f" r.wall_hier_s;
            Printf.sprintf "%.3f" r.setup_s;
            Qnet_util.Table.float_cell
              (r.wall_flat_s /. (r.setup_s +. r.wall_hier_s));
            Qnet_util.Table.float_cell r.mean_rate_ratio;
            Qnet_util.Table.float_cell r.min_rate_ratio;
          ])
      t (hier_results ())
  in
  print_endline
    "Hierarchical routing (continent topology, 12 users, 40 best-channel \
     queries; ratio = hier rate / flat rate):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

(* Bechamel micro-benchmarks: per-algorithm wall-clock on the default
   network. *)
let micro () =
  let open Bechamel in
  let rng = Qnet_util.Prng.create 42 in
  let spec = Qnet_topology.Spec.default in
  let g = Qnet_topology.Waxman.generate rng spec in
  let params = Qnet_core.Params.default in
  let inst = Qnet_core.Muerp.instance ~params g in
  let solve_test name algorithm =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Qnet_core.Muerp.solve algorithm inst)))
  in
  let tests =
    [
      solve_test "alg2-optimal" Qnet_core.Muerp.Optimal;
      solve_test "alg3-conflict-free" Qnet_core.Muerp.Conflict_free;
      solve_test "alg4-prim" Qnet_core.Muerp.Prim_based;
      Test.make ~name:"e-q-cast"
        (Staged.stage (fun () -> ignore (Qnet_baselines.Eqcast.solve g params)));
      Test.make ~name:"n-fusion"
        (Staged.stage (fun () ->
             ignore (Qnet_baselines.Nfusion.solve g params)));
      Test.make ~name:"alg1-single-channel"
        (Staged.stage (fun () ->
             let capacity = Qnet_core.Capacity.of_graph g in
             match Qnet_graph.Graph.users g with
             | src :: dst :: _ ->
                 ignore
                   (Qnet_core.Routing.best_channel g params ~capacity ~src
                      ~dst)
             | _ -> ()));
    ]
  in
  print_endline "Micro-benchmarks (monotonic clock):";
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~quota:(Time.second 0.5) ())
          [ Toolkit.Instance.monotonic_clock ]
          test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-28s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        ols)
    tests;
  print_newline ()

(* Empirical runtime scaling vs network size: a sanity check of the
   paper's O(|U|²(|E| + |V| log |V|)) complexity analysis. *)
let scaling () =
  let t =
    Qnet_util.Table.create
      [ "switches"; "alg2 (ms)"; "alg3 (ms)"; "alg4 (ms)" ]
  in
  let t =
    List.fold_left
      (fun t n_switches ->
        let spec = Qnet_topology.Spec.create ~n_switches () in
        let g = Qnet_topology.Waxman.generate (Qnet_util.Prng.create 1) spec in
        let inst = Qnet_core.Muerp.instance g in
        let time alg =
          let reps = 5 in
          let t0 = Qnet_telemetry.Clock.now_s () in
          for _ = 1 to reps do
            ignore (Qnet_core.Muerp.solve alg inst)
          done;
          Qnet_telemetry.Clock.elapsed_since t0 /. float_of_int reps *. 1000.
        in
        Qnet_util.Table.add_row t
          [
            string_of_int n_switches;
            Printf.sprintf "%.2f" (time Qnet_core.Muerp.Optimal);
            Printf.sprintf "%.2f" (time Qnet_core.Muerp.Conflict_free);
            Printf.sprintf "%.2f" (time Qnet_core.Muerp.Prim_based);
          ])
      t
      [ 25; 50; 100; 200; 400 ]
  in
  print_endline "Runtime scaling with network size (10 users, degree 6):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

(* Perf snapshot: run every method over the default configuration with
   telemetry on, then write a machine-readable BENCH_muerp.json —
   method-level mean rate / mean elapsed / latency quantiles plus every
   registry counter.  This file seeds the perf trajectory that later
   optimisation PRs report against. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""
let jfloat f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let jobj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> jstr k ^ ": " ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat ", " items ^ "]"

let jhistogram (s : Qnet_telemetry.Metrics.Histogram.summary) =
  let open Qnet_telemetry.Metrics.Histogram in
  jobj
    [
      ("count", string_of_int s.count);
      ("sum_s", jfloat s.sum);
      ("min_s", jfloat s.min);
      ("max_s", jfloat s.max);
      ("mean_s", jfloat s.mean);
      ("p50_s", jfloat s.p50);
      ("p90_s", jfloat s.p90);
      ("p95_s", jfloat s.p95);
      ("p99_s", jfloat s.p99);
    ]

(* Chaos section of the snapshot: one fixed-seed scenario per failure
   rate, recovery latency read off the telemetry histogram as a
   before/after delta. *)
let faults_section () =
  let module E = Qnet_online.Engine in
  let module Tm = Qnet_telemetry.Metrics in
  let h_recovery = Tm.histogram "online.faults.recovery_seconds" in
  List.map
    (fun mtbf ->
      let before = Tm.Histogram.summarize h_recovery in
      let r = chaos_scenario ~seed:42 mtbf in
      let after = Tm.Histogram.summarize h_recovery in
      let recoveries = after.Tm.Histogram.count - before.Tm.Histogram.count in
      let mean_recovery_s =
        if recoveries = 0 then 0.
        else
          (after.Tm.Histogram.sum -. before.Tm.Histogram.sum)
          /. float_of_int recoveries
      in
      jobj
        [
          ("mtbf", match mtbf with None -> "null" | Some m -> jfloat m);
          ("mttr", match mtbf with None -> "null" | Some _ -> jfloat 5.);
          ("served", string_of_int r.E.served);
          ("acceptance_ratio", jfloat r.E.acceptance_ratio);
          ("faults_injected", string_of_int r.E.faults_injected);
          ("leases_interrupted", string_of_int r.E.leases_interrupted);
          ("leases_recovered", string_of_int r.E.leases_recovered);
          ("leases_aborted", string_of_int r.E.leases_aborted);
          ("mean_time_to_repair_s", jfloat r.E.mean_time_to_repair);
          ("mean_lost_service_s", jfloat r.E.mean_lost_service);
          ("recoveries_timed", string_of_int recoveries);
          ("mean_recovery_wall_s", jfloat mean_recovery_s);
        ])
    (None :: List.map Option.some fault_mtbf_levels)

let overload_section () =
  let module E = Qnet_online.Engine in
  List.map
    (fun load ->
      let r = overload_scenario ~seed:42 load in
      let shed_rate =
        if r.E.arrived = 0 then 0.
        else float_of_int r.E.shed /. float_of_int r.E.arrived
      in
      jobj
        [
          ("offered_load", jfloat load);
          ("arrived", string_of_int r.E.arrived);
          ("served", string_of_int r.E.served);
          ("shed", string_of_int r.E.shed);
          ("shed_rate", jfloat shed_rate);
          ("degraded", string_of_int r.E.degraded);
          ("budget_exhaustions", string_of_int r.E.budget_exhaustions);
          ("breaker_opens", string_of_int r.E.breaker_opens);
          ( "tier_served",
            jobj
              (List.map
                 (fun (name, n) -> (name, string_of_int n))
                 r.E.tier_served) );
          ("acceptance_ratio", jfloat r.E.acceptance_ratio);
          ("p99_queue_wait_s", jfloat r.E.p99_wait);
          ("peak_queue_depth", string_of_int r.E.peak_queue_depth);
        ])
    overload_offered_loads

(* Flow-bound section: the LP optimality-gap trajectory.  One
   fixed-seed instance per topology (the default Waxman plus each
   reference WAN), every method's achieved rate against the flow LP
   ceiling.  Everything here is seed-pinned and wall-time-free, so the
   guard can demand bitwise-identical gaps run to run; a gap below
   zero would be a bound-soundness bug, and the guard rejects it. *)

type flow_row = {
  f_topology : string;
  f_structure_neg_log : float;  (* structure-only bound (all methods) *)
  f_bound_neg_log : float;  (* capacity-aware bound (tighter) *)
  f_bound_rate : float;  (* exp(-bound): the provable rate ceiling *)
  f_pivots : int;
  f_gaps : (string * float) list;
  f_rounding_neg_log : float;
  f_rounding_verified : bool;
}

let flow_networks () =
  ( "waxman-default",
    Qnet_topology.Waxman.generate (Qnet_util.Prng.create 42)
      Qnet_topology.Spec.default )
  :: List.map
       (fun (name, net) ->
         ( name,
           Qnet_topology.Reference_nets.build (Qnet_util.Prng.create 1) net
             ~n_users:5 ~qubits_per_switch:4 ~user_qubits:1_000_000 ))
       Qnet_topology.Reference_nets.all

let flow_row (name, g) =
  let module Lp = Qnet_flow.Lp in
  let module C = Qnet_core.Muerp in
  let params = Qnet_core.Params.default in
  let users = Qnet_graph.Graph.users g in
  let neg_log_of = function Lp.Bound b -> b.Lp.neg_log | _ -> infinity in
  let structure = neg_log_of (Lp.relax ~capacity_rows:false g params ~users) in
  let cap_result = Lp.relax g params ~users in
  let cap = neg_log_of cap_result in
  let pivots, bound_rate =
    match cap_result with
    | Lp.Bound b -> (b.Lp.pivots, b.Lp.rate)
    | _ -> (0, 0.)
  in
  let inst = C.instance ~params g in
  let gap_of bound achieved =
    C.optimality_gap ~bound_neg_log:bound ~achieved_neg_log:achieved
  in
  let method_gap alg =
    let o = C.solve ~rng:(Qnet_util.Prng.create 7) alg inst in
    (* Capacity-oblivious outcomes (Algorithm 2 past the sufficient
       condition) compare against the structure-only bound; everything
       else against the tighter capacity-aware bound. *)
    let bound = if C.outcome_capacity_ok inst o then cap else structure in
    gap_of bound o.C.neg_log_rate
  in
  let eqcast_neg_log =
    match Qnet_baselines.Eqcast.solve g params with
    | Some t -> Qnet_core.Ent_tree.rate_neg_log t
    | None -> infinity
  in
  let rounding_neg_log, rounding_verified =
    match cap_result with
    | Lp.Bound bound -> (
        let capacity = Qnet_core.Capacity.of_graph g in
        match
          Qnet_flow.Rounding.round ~seed:42 g params ~capacity ~users ~bound
        with
        | Some t ->
            ( Qnet_core.Ent_tree.rate_neg_log t,
              Qnet_core.Verify.is_valid g params ~users t )
        | None -> (infinity, true))
    | _ -> (infinity, true)
  in
  {
    f_topology = name;
    f_structure_neg_log = structure;
    f_bound_neg_log = cap;
    f_bound_rate = bound_rate;
    f_pivots = pivots;
    f_gaps =
      [
        ("gap_alg2", method_gap C.Optimal);
        ("gap_alg3", method_gap C.Conflict_free);
        ("gap_alg4", method_gap C.Prim_based);
        ("gap_eqcast", gap_of cap eqcast_neg_log);
        ("gap_flow", gap_of cap rounding_neg_log);
      ];
    f_rounding_neg_log = rounding_neg_log;
    f_rounding_verified = rounding_verified;
  }

let flow_rows () = List.map flow_row (flow_networks ())

let run_flow () =
  let rows = flow_rows () in
  let t =
    Qnet_util.Table.create
      ([ "topology"; "lp bound"; "rate ceiling"; "pivots" ]
      @ List.map fst (List.hd rows).f_gaps
      @ [ "verified" ])
  in
  let t =
    List.fold_left
      (fun t r ->
        Qnet_util.Table.add_row t
          ([
             r.f_topology;
             Printf.sprintf "%.4f" r.f_bound_neg_log;
             Printf.sprintf "%.6g" r.f_bound_rate;
             string_of_int r.f_pivots;
           ]
          @ List.map (fun (_, gap) -> Printf.sprintf "%.4f" gap) r.f_gaps
          @ [ string_of_bool r.f_rounding_verified ]))
      t rows
  in
  print_endline
    "Flow LP bound vs achieved rates (gap = 1 - achieved/ceiling):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

let flow_section () =
  List.map
    (fun r ->
      jobj
        ([
           ("topology", jstr r.f_topology);
           ("structure_neg_log", jfloat r.f_structure_neg_log);
           ("bound_neg_log", jfloat r.f_bound_neg_log);
           ("bound_rate", jfloat r.f_bound_rate);
           ("pivots", string_of_int r.f_pivots);
         ]
        @ List.map (fun (k, gap) -> (k, jfloat gap)) r.f_gaps
        @ [
            ("rounding_neg_log", jfloat r.f_rounding_neg_log);
            ("rounding_verified", string_of_bool r.f_rounding_verified);
          ]))
    (flow_rows ())

(* Parallel-runtime benchmark: the same fixed-seed Monte-Carlo and
   replication workloads at several --jobs levels.  Wall time and
   speedup go into the snapshot as the perf trajectory; the equality
   flags assert the determinism contract (estimates, aggregates and
   merged telemetry counters identical at every level). *)

let parallel_jobs_levels = [ 1; 2; 4 ]

let counter_values () =
  let module Tm = Qnet_telemetry.Metrics in
  List.filter_map
    (fun (name, v) ->
      match v with Tm.Counter_v n -> Some (name, n) | _ -> None)
    (Tm.snapshot ())

(* Per-run counter increments, robust to metrics first registered
   mid-run. *)
let counter_delta ~before ~after =
  List.map
    (fun (name, n) ->
      (name, n - Option.value ~default:0 (List.assoc_opt name before)))
    after

let timed f =
  let t0 = Qnet_telemetry.Clock.now_s () in
  let result = f () in
  (Qnet_telemetry.Clock.elapsed_since t0, result)

(* Runs [work] at each jobs level (pool creation excluded from the
   timing) and returns [(jobs, wall_s, result, counter_delta)]. *)
let bench_jobs_levels work =
  List.map
    (fun jobs ->
      let before = counter_values () in
      let wall, result =
        if jobs = 1 then timed (fun () -> work None)
        else
          Qnet_util.Pool.with_pool ~jobs (fun pool ->
              timed (fun () -> work (Some pool)))
      in
      (jobs, wall, result, counter_delta ~before ~after:(counter_values ())))
    parallel_jobs_levels

let jruns runs =
  let _, serial_wall, _, _ = List.hd runs in
  jarr
    (List.map
       (fun (jobs, wall, _, _) ->
         jobj
           [
             ("jobs", string_of_int jobs);
             ("wall_s", jfloat wall);
             ("speedup", jfloat (serial_wall /. wall));
           ])
       runs)

let all_equal project runs =
  let _, _, first, _ = List.hd runs in
  List.for_all (fun (_, _, r, _) -> project r = project first) runs

let counters_equal runs =
  let _, _, _, first = List.hd runs in
  List.for_all (fun (_, _, _, d) -> d = first) runs

let parallel_section () =
  let module R = Qnet_experiments.Runner in
  (* Monte-Carlo workload: one routed tree on the default network,
     trial count scaled with MUERP_REPLICATIONS so smoke runs stay
     quick. *)
  let rng = Qnet_util.Prng.create 42 in
  let g = Qnet_topology.Waxman.generate rng Qnet_topology.Spec.default in
  let params = Qnet_core.Params.default in
  let tree =
    match
      (Qnet_core.Muerp.solve Qnet_core.Muerp.Conflict_free
         (Qnet_core.Muerp.instance ~params g))
        .Qnet_core.Muerp.tree
    with
    | Some t -> t
    | None -> failwith "parallel bench: default instance infeasible"
  in
  let trials = replications * 20_000 in
  Printf.printf "parallel bench — Monte-Carlo, %d trials\n%!" trials;
  let mc_runs =
    bench_jobs_levels (fun pool ->
        let rng = Qnet_util.Prng.create 4242 in
        Qnet_sim.Monte_carlo.estimate_rate ?pool rng g params tree ~trials)
  in
  Printf.printf "parallel bench — sweep, %d replications\n%!" replications;
  let sweep_runs =
    bench_jobs_levels (fun pool -> R.mean_rates (R.run_config ?pool cfg))
  in
  jobj
    [
      ( "jobs_levels",
        jarr (List.map string_of_int parallel_jobs_levels) );
      ( "monte_carlo",
        jobj
          [
            ("trials", string_of_int trials);
            ( "estimate_equal",
              string_of_bool
                (all_equal
                   (fun (e : Qnet_sim.Monte_carlo.estimate) ->
                     (e.successes, e.p_hat))
                   mc_runs) );
            ("counters_equal", string_of_bool (counters_equal mc_runs));
            ("runs", jruns mc_runs);
          ] );
      ( "sweep",
        jobj
          [
            ("replications", string_of_int replications);
            ("mean_rates_equal", string_of_bool (all_equal Fun.id sweep_runs));
            ("counters_equal", string_of_bool (counters_equal sweep_runs));
            ("runs", jruns sweep_runs);
          ] );
    ]

(* Sharded serving benchmark: a batched-arrival workload (synchronised
   demand spikes, the adversarial case for admission) served by the
   concurrent engine at each --jobs level and two demand batch sizes.
   served/s is the perf trajectory; report_equal asserts the
   byte-identity contract against the jobs=1 run of the same batch
   size.  Telemetry counters are NOT compared here: speculative solves
   add online.route spans by design (see DESIGN.md), so the equality
   contract covers the report only.  The request count is fixed — NOT
   scaled by MUERP_REPLICATIONS — so the served counts stay comparable
   between the committed snapshot and smoke runs (bench_guard pins
   them per config). *)

let serving_batch_sizes = [ 4; 8 ]
let serving_requests = 240

let serving_scenario ?pool batch =
  let module W = Qnet_online.Workload in
  let rng = Qnet_util.Prng.create 42 in
  let g = Qnet_topology.Waxman.generate rng Qnet_topology.Spec.default in
  let params = Qnet_core.Params.default in
  let wspec =
    W.spec ~requests:serving_requests
      ~arrivals:(W.Batched { period = 1.5; size = batch })
      ()
  in
  let reqs = W.generate (Qnet_util.Prng.create 8_233) g wspec in
  let policy = Option.get (Qnet_online.Policy.of_name "prim") in
  let config = Qnet_online.Engine.config policy in
  fst (Qnet_online.Engine.run ~config ?pool g params ~requests:reqs)

let serving_section () =
  let module E = Qnet_online.Engine in
  Printf.printf "serving bench — %d requests per run\n%!" serving_requests;
  let rows =
    List.concat_map
      (fun batch ->
        let runs = bench_jobs_levels (fun pool -> serving_scenario ?pool batch) in
        let _, serial_wall, baseline, _ = List.hd runs in
        List.map
          (fun (jobs, wall, (r : E.report), _) ->
            jobj
              [
                ("config", jstr (Printf.sprintf "batch%d-j%d" batch jobs));
                ("batch", string_of_int batch);
                ("jobs", string_of_int jobs);
                ("served", string_of_int r.E.served);
                ("wall_s", jfloat wall);
                ("served_per_s", jfloat (float_of_int r.E.served /. wall));
                ("speedup", jfloat (serial_wall /. wall));
                ("report_equal", string_of_bool (r = baseline));
              ])
          runs)
      serving_batch_sizes
  in
  jobj
    [
      ("jobs_levels", jarr (List.map string_of_int parallel_jobs_levels));
      ("batch_sizes", jarr (List.map string_of_int serving_batch_sizes));
      ("requests", string_of_int serving_requests);
      ("runs", jarr rows);
    ]

(* Resilience: checkpoint-cadence overhead on a fixed faulty scenario,
   restored-report equality at every cut instant (the crash-recovery
   drill), and live-reconfiguration recovery counts.  Counts and
   equality flags are fixed-seed deterministic; only the wall times and
   the derived overhead vary run to run. *)
let resilience_section () =
  let module E = Qnet_online.Engine in
  let module W = Qnet_online.Workload in
  let rng = Qnet_util.Prng.create 42 in
  let g = Qnet_topology.Waxman.generate rng Qnet_topology.Spec.default in
  let params = Qnet_core.Params.default in
  let wspec = W.spec ~requests:200 ~arrivals:(W.Poisson 1.) () in
  let reqs = W.generate (Qnet_util.Prng.create (42 + 8_191)) g wspec in
  let faults =
    Qnet_faults.Model.make ~mtbf:25. ~mttr:5. ~targets:Qnet_faults.Model.Both
      ~seed:(42 + 40_961) ()
  in
  let config = E.config Qnet_online.Policy.prim in
  let every = 10. in
  let wall_plain, (plain_report, _) =
    timed (fun () -> E.run ~config ~faults g params ~requests:reqs)
  in
  let cuts = ref 0 in
  let snapshot_bytes = ref 0 in
  let wall_ckpt, (ckpt_report, _) =
    timed (fun () ->
        E.run ~config ~faults
          ~checkpoint:
            ( every,
              fun _ snap ->
                incr cuts;
                snapshot_bytes :=
                  String.length
                    (Qnet_util.Sexp.to_string (E.snapshot_to_sexp snap)) )
          g params ~requests:reqs)
  in
  let overhead_pct =
    if wall_plain <= 0. then 0.
    else (wall_ckpt -. wall_plain) /. wall_plain *. 100.
  in
  let drill =
    Qnet_resilience.Drill.crash_restore ~config ~faults ~every g params
      ~requests:reqs
  in
  let switch =
    match Qnet_graph.Graph.switches g with
    | s :: _ -> s
    | [] -> failwith "resilience bench: network has no switches"
  in
  let reconfig =
    [
      { Qnet_online.Reconfig.time = 20.;
        change = Qnet_online.Reconfig.Switch_leave switch };
      { Qnet_online.Reconfig.time = 35.;
        change = Qnet_online.Reconfig.Provision { switch; qubits = 2 } };
      { Qnet_online.Reconfig.time = 60.;
        change = Qnet_online.Reconfig.Switch_join switch };
    ]
  in
  let reconfig_report, _ =
    E.run ~config ~faults ~reconfig g params ~requests:reqs
  in
  (* Full-rewrite vs incremental+journal checkpointing, with real file
     writes, at two cadences.  Bytes written per run are the
     deterministic overhead measure the guard enforces (wall times ride
     along informationally); each incremental run is then recovered
     from its own files and replayed under the journal verifier. *)
  let fsize p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  let cadence_row dt =
    let module Chain = Qnet_resilience.Chain in
    let module Journal = Qnet_resilience.Journal in
    let dir = Filename.temp_dir "muerp-bench-resil" "" in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun n ->
            try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Sys.rmdir dir with Sys_error _ -> ())
      (fun () ->
        let full_path = Filename.concat dir "full.ckpt" in
        let full_bytes = ref 0 and full_cuts = ref 0 in
        let wall_full, _ =
          timed (fun () ->
              E.run ~config ~faults
                ~checkpoint:
                  ( dt,
                    fun _ snap ->
                      (match
                         Qnet_resilience.Checkpoint.save ~path:full_path
                           ~config:"bench" snap
                       with
                      | Ok _ -> ()
                      | Error m -> failwith m);
                      incr full_cuts;
                      full_bytes := !full_bytes + fsize full_path )
                g params ~requests:reqs)
        in
        let root = Filename.concat dir "chain.ckpt" in
        let jp = Chain.journal_path root in
        let writer =
          Chain.create ~path:root ~config:"bench" ~every:6 ~journal:jp ()
        in
        let incr_bytes = ref 0 and incr_cuts = ref 0 in
        let journal_tally () =
          if Sys.file_exists jp then incr_bytes := !incr_bytes + fsize jp
        in
        let wall_incr, _ =
          timed (fun () ->
              E.run ~config ~faults
                ~on_transition:(Chain.on_transition writer)
                ~checkpoint:
                  ( dt,
                    fun _ snap ->
                      (* The cut restarts the journal, so bill the
                         outgoing journal's bytes first. *)
                      journal_tally ();
                      match Chain.cut writer snap with
                      | Ok info ->
                          incr incr_cuts;
                          incr_bytes := !incr_bytes + info.Chain.c_bytes
                      | Error m -> failwith m )
                g params ~requests:reqs)
        in
        Chain.close writer;
        journal_tally ();
        let restored_equal, replay_equal, warnings =
          match Chain.recover ~path:root ~config:"bench" ~journal:jp () with
          | Error m -> failwith ("bench recovery failed: " ^ m)
          | Ok r ->
              let v = Journal.verifier r.Chain.r_journal in
              let report, _ =
                E.run ~config ~faults
                  ~on_transition:(Journal.observe v)
                  ~restore_from:r.Chain.r_snapshot g params ~requests:reqs
              in
              ( report = plain_report,
                Result.is_ok (Journal.finish v),
                List.length r.Chain.r_warnings )
        in
        let pct w =
          if wall_plain <= 0. then 0.
          else (w -. wall_plain) /. wall_plain *. 100.
        in
        jobj
          [
            ("cadence_s", jfloat dt);
            ("rebase_every", string_of_int 6);
            ("full_cuts", string_of_int !full_cuts);
            ("full_bytes", string_of_int !full_bytes);
            ("full_wall_s", jfloat wall_full);
            ("full_overhead_pct", jfloat (pct wall_full));
            ("incr_cuts", string_of_int !incr_cuts);
            ("incr_bytes", string_of_int !incr_bytes);
            ("incr_wall_s", jfloat wall_incr);
            ("incr_overhead_pct", jfloat (pct wall_incr));
            ( "bytes_ratio",
              jfloat
                (if !incr_bytes = 0 then 0.
                 else float_of_int !full_bytes /. float_of_int !incr_bytes) );
            ("incr_restored_report_equal", string_of_bool restored_equal);
            ("journal_replay_equal", string_of_bool replay_equal);
            ("recovery_warnings", string_of_int warnings);
          ])
  in
  let incremental = List.map cadence_row [ 10.; 30. ] in
  jobj
    [
      ("requests", string_of_int wspec.W.requests);
      ("checkpoint_every", jfloat every);
      ("checkpoints", string_of_int !cuts);
      ("snapshot_bytes", string_of_int !snapshot_bytes);
      ("wall_plain_s", jfloat wall_plain);
      ("wall_checkpointed_s", jfloat wall_ckpt);
      ("checkpoint_overhead_pct", jfloat overhead_pct);
      ( "checkpointed_report_equal",
        string_of_bool (ckpt_report = plain_report) );
      ( "drill_checkpoints",
        string_of_int drill.Qnet_resilience.Drill.checkpoints );
      ( "drill_mismatches",
        string_of_int
          (List.length drill.Qnet_resilience.Drill.mismatches) );
      ( "restored_reports_equal",
        string_of_bool (Qnet_resilience.Drill.passed drill) );
      ("reconfig_events", string_of_int (List.length reconfig));
      ( "reconfig_applied",
        string_of_int reconfig_report.E.reconfig_applied );
      ( "reconfig_recovered",
        string_of_int reconfig_report.E.reconfig_recovered );
      ("reconfig_served", string_of_int reconfig_report.E.served);
      ( "reconfig_acceptance_ratio",
        jfloat reconfig_report.E.acceptance_ratio );
      ("incremental", jarr incremental);
    ]

let snapshot path =
  let module R = Qnet_experiments.Runner in
  let module Tm = Qnet_telemetry.Metrics in
  (* Open the output before the (minutes-long) harness so an
     unwritable path fails immediately. *)
  let oc =
    try open_out path
    with Sys_error msg ->
      Printf.eprintf "cannot write snapshot: %s\n" msg;
      exit 1
  in
  Tm.set_enabled true;
  Tm.reset ();
  Printf.printf "perf snapshot — %d replications per method\n%!" replications;
  let aggregates = R.run_config cfg in
  (* Online traffic throughput: one fixed-seed scenario per policy, so
     the JSON trajectory is deterministic run to run. *)
  let traffic =
    List.map
      (fun name ->
        let module E = Qnet_online.Engine in
        let r = traffic_scenario ~seed:42 name in
        jobj
          [
            ("policy", jstr name);
            ("served", string_of_int r.E.served);
            ("rejected", string_of_int r.E.rejected);
            ("expired", string_of_int r.E.expired);
            ("acceptance_ratio", jfloat r.E.acceptance_ratio);
            ("throughput", jfloat r.E.throughput);
            ("mean_wait", jfloat r.E.mean_wait);
            ("p95_wait", jfloat r.E.p95_wait);
            ("mean_rate", jfloat r.E.mean_rate);
            ("makespan", jfloat r.E.makespan);
            ("peak_qubits_in_use", string_of_int r.E.peak_qubits_in_use);
            ("retries", string_of_int r.E.retries);
            ("mean_utilization", jfloat r.E.mean_utilization);
          ])
      traffic_policies
  in
  let faults = faults_section () in
  let overload = overload_section () in
  let hier =
    List.map
      (fun r ->
        jobj
          [
            ("switches", string_of_int r.h_switches);
            ("regions", string_of_int r.h_regions);
            ("pairs", string_of_int r.h_pairs);
            ("flat_feasible", string_of_int r.flat_feasible);
            ("hier_feasible", string_of_int r.hier_feasible);
            ("wall_flat_s", jfloat r.wall_flat_s);
            ("wall_hier_s", jfloat r.wall_hier_s);
            ("setup_s", jfloat r.setup_s);
            ( "speedup",
              jfloat (r.wall_flat_s /. (r.setup_s +. r.wall_hier_s)) );
            ("mean_rate_ratio", jfloat r.mean_rate_ratio);
            ("min_rate_ratio", jfloat r.min_rate_ratio);
          ])
      (hier_results ())
  in
  let flow = flow_section () in
  let parallel = parallel_section () in
  let serving = serving_section () in
  let resilience = resilience_section () in
  let registry = List.filter (fun (_, v) -> Tm.touched v) (Tm.snapshot ()) in
  let methods =
    List.map
      (fun (a : R.aggregate) ->
        let name = R.method_name a.method_ in
        let hist =
          Tm.Histogram.summarize
            (Tm.histogram
               ("runner." ^ String.lowercase_ascii name ^ ".seconds"))
        in
        jobj
          [
            ("name", jstr name);
            ("mean_rate", jfloat a.mean_rate);
            ( "mean_feasible_rate",
              match a.mean_feasible_rate with
              | None -> "null"
              | Some r -> jfloat r );
            ("feasible", string_of_int a.feasible);
            ("replications", string_of_int a.replications);
            ("mean_elapsed_s", jfloat a.mean_elapsed_s);
            ("wall_time", jhistogram hist);
          ])
      aggregates
  in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) (name, v) ->
        match v with
        | Tm.Counter_v n -> ((name, string_of_int n) :: cs, gs, hs)
        | Tm.Gauge_v x -> (cs, (name, jfloat x) :: gs, hs)
        | Tm.Histogram_v s -> (cs, gs, (name, jhistogram s) :: hs))
      ([], [], []) (List.rev registry)
  in
  let doc =
    jobj
      [
        ("schema", jstr "muerp-bench-snapshot/10");
        ("replications", string_of_int replications);
        ("methods", jarr methods);
        ("traffic", jarr traffic);
        ("faults", jarr faults);
        ("overload", jarr overload);
        ("hier", jarr hier);
        ("flow", jarr flow);
        ("parallel", parallel);
        ("serving", serving);
        ("resilience", resilience);
        ("counters", jobj counters);
        ("gauges", jobj gauges);
        ("histograms", jobj histograms);
      ]
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc doc;
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" path

let write_csvs dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun id ->
      let s =
        match id with
        | "fig5" -> Figures.fig5 ~cfg ()
        | "fig6a" -> Figures.fig6a ~cfg ()
        | "fig6b" -> Figures.fig6b ~cfg ()
        | "fig7a" -> Figures.fig7a ~cfg ()
        | "fig7b" -> Figures.fig7b ~cfg ()
        | "fig8a" -> Figures.fig8a ~cfg ()
        | _ -> Figures.fig8b ~cfg ()
      in
      let path = Filename.concat dir (id ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Report.series_to_csv s);
          output_char oc '\n');
      Printf.printf "wrote %s\n%!" path)
    all_figure_ids

let () =
  (* The traffic scenarios resolve the flow policy by name; register it
     before any dispatch (selective linking drops unreferenced module
     initialisers). *)
  Qnet_flow.Serve.register ();
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "csv"; dir ] -> write_csvs dir
  | [ "snapshot" ] -> snapshot "BENCH_muerp.json"
  | [ "snapshot"; path ] -> snapshot path
  | [] ->
      Printf.printf
        "MUERP benchmark suite — %d replications per point (set \
         MUERP_REPLICATIONS to override)\n\n%!"
        replications;
      let series = List.map run_figure all_figure_ids in
      run_headline series;
      run_reference_nets ();
      run_ablations ();
      run_traffic ();
      run_faults ();
      run_overload ();
      run_hier ();
      run_flow ();
      scaling ();
      micro ()
  | [ "headline" ] -> run_headline []
  | [ "reference" ] -> run_reference_nets ()
  | [ "ablation" ] -> run_ablations ()
  | [ "traffic" ] -> run_traffic ()
  | [ "faults" ] -> run_faults ()
  | [ "overload" ] -> run_overload ()
  | [ "hier" ] -> run_hier ()
  | [ "flow" ] -> run_flow ()
  | [ "scaling" ] -> scaling ()
  | [ "micro" ] -> micro ()
  | ids -> List.iter (fun id -> ignore (run_figure id)) ids
