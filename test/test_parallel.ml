(* Determinism of the parallel runtime end to end: Monte-Carlo
   estimates, experiment aggregates and merged telemetry counters must
   be identical at every --jobs level on a fixed seed. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Pool = Qnet_util.Pool
module Spec = Qnet_topology.Spec
module Config = Qnet_experiments.Config
module Runner = Qnet_experiments.Runner
module Figures = Qnet_experiments.Figures
module Monte_carlo = Qnet_sim.Monte_carlo
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let check_bool = Alcotest.(check bool)

let fixture seed =
  let rng = Prng.create seed in
  let spec = Spec.create ~n_users:4 ~n_switches:12 () in
  let g = Qnet_topology.Generate.run Qnet_topology.Generate.waxman rng spec in
  let params = Params.default in
  (g, params, (Muerp.solve Conflict_free (Muerp.instance ~params g)).tree)

(* Same rng seed, same trial count — the estimate must not depend on
   the pool size (None = the pool-free serial path). *)
let estimate jobs ~seed ~trials =
  let g, params, tree = fixture seed in
  match tree with
  | None -> None
  | Some tree ->
      let rng = Prng.create (seed + 1_000_003) in
      let run pool = Monte_carlo.estimate_rate ?pool rng g params tree ~trials in
      Some
        (match jobs with
        | 1 -> run None
        | jobs -> Pool.with_pool ~jobs (fun p -> run (Some p)))

let prop_estimate_independent_of_jobs =
  QCheck.Test.make ~name:"Monte-Carlo estimate independent of jobs" ~count:10
    QCheck.(pair (int_range 1 1000) (int_range 1 20_000))
    (fun (seed, trials) ->
      let base = estimate 1 ~seed ~trials in
      List.for_all (fun jobs -> estimate jobs ~seed ~trials = base) [ 2; 4 ])

let tiny_cfg =
  Config.create
    ~spec:(Spec.create ~n_users:4 ~n_switches:12 ())
    ~replications:4 ()

let test_run_config_independent_of_jobs () =
  let serial = Runner.run_config tiny_cfg in
  List.iter
    (fun jobs ->
      let parallel =
        Pool.with_pool ~jobs (fun pool -> Runner.run_config ~pool tiny_cfg)
      in
      List.iter2
        (fun (a : Runner.aggregate) (b : Runner.aggregate) ->
          check_bool
            (Printf.sprintf "%s mean_rate at jobs=%d"
               (Runner.method_name a.Runner.method_)
               jobs)
            true
            (a.Runner.mean_rate = b.Runner.mean_rate);
          check_bool "feasible count" true
            (a.Runner.feasible = b.Runner.feasible))
        serial parallel)
    [ 2; 4 ]

let test_fig7b_independent_of_jobs () =
  let cfg =
    Config.create
      ~spec:(Spec.create ~n_users:4 ~n_switches:10 ())
      ~replications:2 ()
  in
  let strip (s : Figures.series) = (s.Figures.x_values, s.Figures.rows) in
  let serial = strip (Figures.fig7b ~cfg ~steps:3 ()) in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool ->
        strip (Figures.fig7b ~pool ~cfg ~steps:3 ()))
  in
  check_bool "fig7b identical at jobs=4" true (serial = parallel)

(* Counters are merged exactly (integer addition is commutative), so
   the folded registry must match the serial one bit for bit. *)
let counters () =
  List.filter_map
    (fun (name, v) ->
      match v with Tm.Counter_v n -> Some (name, n) | _ -> None)
    (Tm.snapshot ())

let test_counters_independent_of_jobs () =
  Tm.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Tm.reset ();
      Tm.set_enabled false)
    (fun () ->
      Tm.reset ();
      ignore (Runner.run_config tiny_cfg);
      let serial = counters () in
      Tm.reset ();
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore (Runner.run_config ~pool tiny_cfg));
      let parallel = counters () in
      check_bool "some counters collected" true (serial <> []);
      check_bool "merged counters identical" true (serial = parallel))

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_estimate_independent_of_jobs;
          Alcotest.test_case "run_config independent of jobs" `Quick
            test_run_config_independent_of_jobs;
          Alcotest.test_case "fig7b independent of jobs" `Quick
            test_fig7b_independent_of_jobs;
          Alcotest.test_case "counters independent of jobs" `Quick
            test_counters_independent_of_jobs;
        ] );
    ]
