(* Integration tests for the muerp CLI: run the real binary and check
   its output.  The binary is declared as a dune dependency and lives at
   a fixed relative path inside the build sandbox. *)

(* Resolve the binary relative to this test executable (robust to both
   `dune runtest`, which runs in the sandboxed test directory, and
   `dune exec test/test_cli.exe`, which runs in the project root). *)
let binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name
       (Filename.concat "bin" "muerp_cli.exe"))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run args =
  let out = Filename.temp_file "muerp_cli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote binary) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let content =
    let ic = open_in out in
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, content)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  scan 0

let test_binary_present () =
  check_bool "binary exists in sandbox" true (Sys.file_exists binary)

let test_help () =
  let code, out = run "--help=plain" in
  check_int "exit 0" 0 code;
  List.iter
    (fun sub -> check_bool (sub ^ " listed") true (contains out sub))
    [ "solve"; "topology"; "experiment"; "simulate"; "sweep"; "dot";
      "fidelity"; "groups"; "reference"; "schedule" ]

let test_solve () =
  let code, out = run "solve --users 4 --switches 12 --seed 2" in
  check_int "exit 0" 0 code;
  check_bool "runs all three algorithms" true
    (contains out "alg2-optimal" && contains out "alg3-conflict-free"
   && contains out "alg4-prim");
  check_bool "baselines included" true
    (contains out "e-q-cast" && contains out "n-fusion");
  check_bool "reports rates" true (contains out "rate")

let test_topology_save_and_solve_load () =
  let file = Filename.temp_file "cli_net" ".sexp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let code, out =
        run (Printf.sprintf "topology --users 3 --switches 8 --save %s" file)
      in
      check_int "topology exit 0" 0 code;
      check_bool "announces save" true (contains out "saved to");
      check_bool "file written" true (Sys.file_exists file);
      let code, out = run (Printf.sprintf "solve --load %s" file) in
      check_int "solve --load exit 0" 0 code;
      check_bool "solves the loaded net" true (contains out "alg3-conflict-free"))

let test_dot () =
  let code, out = run "dot --users 3 --switches 6 --highlight" in
  check_int "exit 0" 0 code;
  check_bool "valid DOT header" true (contains out "graph qnet {");
  check_bool "closes" true (contains out "}")

let test_experiment_fig5 () =
  let code, out = run "experiment fig5 --replications 2" in
  check_int "exit 0" 0 code;
  check_bool "prints fig5 table" true (contains out "fig5");
  check_bool "all methods present" true
    (contains out "Alg-2" && contains out "N-Fusion")

let test_simulate () =
  let code, out = run "simulate --users 4 --switches 12 --trials 20000" in
  check_int "exit 0" 0 code;
  check_bool "compares analytic and empirical" true
    (contains out "analytic rate" && contains out "empirical rate")

let test_fidelity () =
  let code, out = run "fidelity --users 4 --switches 15 --threshold 0.9" in
  check_int "exit 0" 0 code;
  check_bool "reports budgets" true (contains out "fidelity budget");
  check_bool "runs both solvers" true
    (contains out "kruskal" && contains out "prim")

let test_groups () =
  let code, out = run "groups --groups 2 --group-size 2 --switches 20" in
  check_int "exit 0" 0 code;
  check_bool "per-group report" true (contains out "group 0");
  check_bool "summary" true (contains out "all served")

let test_reference () =
  let code, out = run "reference nsfnet --users 4" in
  check_int "exit 0" 0 code;
  check_bool "names the topology" true (contains out "nsfnet");
  let code, _ = run "reference atlantis" in
  check_bool "unknown reference fails" true (code <> 0)

let test_schedule () =
  let code, out = run "schedule -n 5 --switches 20" in
  check_int "exit 0" 0 code;
  check_bool "summary line" true (contains out "requests:");
  check_bool "per-request lines" true (contains out "#0")

let test_sweep () =
  let code, out = run "sweep qubits 2,4 --replications 2" in
  check_int "exit 0" 0 code;
  check_bool "one row per value" true (contains out "| 2" && contains out "| 4")

let test_solve_metrics () =
  let code, out = run "solve --users 4 --switches 12 --seed 2 --metrics" in
  check_int "exit 0" 0 code;
  check_bool "telemetry table follows the solve report" true
    (contains out "telemetry:");
  check_bool "graph-layer work counters" true
    (contains out "graph.dijkstra.heap_pushes"
    && contains out "graph.dijkstra.edge_relaxations");
  check_bool "solver wall-time histograms" true
    (contains out "solve.alg3-conflict-free.seconds");
  let code, out =
    run "solve --users 4 --switches 12 --seed 2 --metrics=csv"
  in
  check_int "csv exit 0" 0 code;
  check_bool "csv header" true (contains out "metric,kind,value");
  let code, _ = run "solve --users 4 --switches 12 --metrics=bogus" in
  check_bool "unknown metrics format fails" true (code <> 0)

let test_bad_arguments () =
  let code, _ = run "experiment figNaN" in
  check_bool "unknown figure fails" true (code <> 0);
  let code, _ = run "sweep nonsense 1,2" in
  check_bool "unknown sweep parameter fails" true (code <> 0);
  let code, _ = run "solve --topology mystery" in
  check_bool "unknown topology fails" true (code <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "commands",
        [
          Alcotest.test_case "binary present" `Quick test_binary_present;
          Alcotest.test_case "help" `Quick test_help;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "save/load" `Quick test_topology_save_and_solve_load;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "experiment" `Slow test_experiment_fig5;
          Alcotest.test_case "simulate" `Slow test_simulate;
          Alcotest.test_case "fidelity" `Quick test_fidelity;
          Alcotest.test_case "groups" `Quick test_groups;
          Alcotest.test_case "reference" `Quick test_reference;
          Alcotest.test_case "schedule" `Quick test_schedule;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "solve --metrics" `Quick test_solve_metrics;
          Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
        ] );
    ]
