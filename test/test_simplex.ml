(* Unit and property tests for the dense-tableau primal simplex in
   Qnet_util.Simplex. *)

module Simplex = Qnet_util.Simplex
module Prng = Qnet_util.Prng

let check_bool = Alcotest.(check bool)
let feq ?(tol = 1e-7) what a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g ~ %.12g" what a b)
    true
    (Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.abs b))

let le coeffs rhs = { Simplex.coeffs; sense = Simplex.Le; rhs }
let ge coeffs rhs = { Simplex.coeffs; sense = Simplex.Ge; rhs }
let eq coeffs rhs = { Simplex.coeffs; sense = Simplex.Eq; rhs }

let solve_max n objective constraints =
  Simplex.maximize { Simplex.n_vars = n; objective; constraints }

(* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18: the textbook LP with
   optimum 36 at (2, 6). *)
let test_textbook () =
  match
    solve_max 2 [| 3.; 5. |]
      [ le [ (0, 1.) ] 4.; le [ (1, 2.) ] 12.; le [ (0, 3.); (1, 2.) ] 18. ]
  with
  | Simplex.Optimal { objective_value; x; _ } ->
      feq "objective" objective_value 36.;
      feq "x" x.(0) 2.;
      feq "y" x.(1) 6.
  | _ -> Alcotest.fail "expected optimal"

let test_minimize () =
  (* min x + y st x + 2y >= 4, 3x + y >= 6 -> optimum 2.8 at (1.6, 1.2). *)
  match
    Simplex.minimize
      {
        Simplex.n_vars = 2;
        objective = [| 1.; 1. |];
        constraints = [ ge [ (0, 1.); (1, 2.) ] 4.; ge [ (0, 3.); (1, 1.) ] 6. ];
      }
  with
  | Simplex.Optimal { objective_value; x; _ } ->
      feq "objective" objective_value 2.8;
      feq "x" x.(0) 1.6;
      feq "y" x.(1) 1.2
  | _ -> Alcotest.fail "expected optimal"

let test_equality_and_negative_rhs () =
  (* Equality and a negative-rhs row (normalised internally):
     max x + y st x + y = 3, -x <= -1  (i.e. x >= 1). *)
  match
    solve_max 2 [| 1.; 1. |] [ eq [ (0, 1.); (1, 1.) ] 3.; le [ (0, -1.) ] (-1.) ]
  with
  | Simplex.Optimal { objective_value; x; _ } ->
      feq "objective" objective_value 3.;
      check_bool "x >= 1" true (x.(0) >= 1. -. 1e-9)
  | _ -> Alcotest.fail "expected optimal"

let test_unbounded () =
  (match solve_max 2 [| 1.; 0. |] [ le [ (1, 1.) ] 5. ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded");
  (* No constraints at all with a positive objective is unbounded too. *)
  match solve_max 1 [| 2. |] [] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded (no constraints)"

let test_infeasible () =
  match solve_max 1 [| 1. |] [ le [ (0, 1.) ] 1.; ge [ (0, 1.) ] 2. ] with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_degenerate () =
  (* A degenerate vertex (three constraints through one point in 2D);
     Bland's rule must terminate and find the optimum 2 at (1, 1). *)
  match
    solve_max 2 [| 1.; 1. |]
      [
        le [ (0, 1.) ] 1.;
        le [ (1, 1.) ] 1.;
        le [ (0, 1.); (1, 1.) ] 2.;
        le [ (0, 1.); (1, -1.) ] 0.;
      ]
  with
  | Simplex.Optimal { objective_value; _ } -> feq "objective" objective_value 2.
  | _ -> Alcotest.fail "expected optimal"

let test_redundant_equalities () =
  (* Duplicated equality rows leave a basic artificial at value 0 after
     phase 1; phase 2 must still run to optimality. *)
  match
    solve_max 2 [| 2.; 1. |]
      [
        eq [ (0, 1.); (1, 1.) ] 2.;
        eq [ (0, 1.); (1, 1.) ] 2.;
        le [ (0, 1.) ] 1.5;
      ]
  with
  | Simplex.Optimal { objective_value; _ } ->
      feq "objective" objective_value 3.5
  | _ -> Alcotest.fail "expected optimal"

let test_validation () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "Simplex: variable index out of range") (fun () ->
      ignore (solve_max 1 [| 1. |] [ le [ (3, 1.) ] 1. ]));
  Alcotest.check_raises "nan rhs" (Invalid_argument "Simplex: non-finite rhs")
    (fun () -> ignore (solve_max 1 [| 1. |] [ le [ (0, 1.) ] Float.nan ]))

let test_deterministic () =
  let solve () =
    solve_max 3 [| 1.; 2.; 3. |]
      [
        le [ (0, 1.); (1, 1.); (2, 1.) ] 10.;
        le [ (1, 1.); (2, 2.) ] 8.;
        ge [ (0, 1.) ] 1.;
      ]
  in
  match (solve (), solve ()) with
  | ( Simplex.Optimal { objective_value = a; x = xa; pivots = pa },
      Simplex.Optimal { objective_value = b; x = xb; pivots = pb } ) ->
      check_bool "objective bitwise equal" true
        (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b));
      check_bool "solutions equal" true (xa = xb);
      Alcotest.(check int) "pivot counts equal" pa pb
  | _ -> Alcotest.fail "expected optimal twice"

(* Property: on random feasible-by-construction LPs, the simplex
   optimum weakly dominates every feasible point we can sample — here
   the known interior point the instance was built around. *)
let prop_dominates_known_point =
  QCheck.Test.make ~name:"optimum dominates the planted feasible point"
    ~count:200
    QCheck.(make Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 4 in
      let m = 1 + Prng.int rng 5 in
      (* Plant x0 in [0,1]^n, then build rows a.x <= a.x0 + slack so x0
         is feasible by construction. *)
      let x0 = Array.init n (fun _ -> Prng.float rng 1.) in
      let objective = Array.init n (fun _ -> Prng.float rng 2. -. 0.5) in
      let constraints =
        List.init m (fun _ ->
            let coeffs =
              List.init n (fun j -> (j, Prng.float rng 2. -. 0.5))
            in
            let dot =
              List.fold_left (fun acc (j, c) -> acc +. (c *. x0.(j))) 0. coeffs
            in
            le coeffs (dot +. Prng.float rng 1.))
        (* Box the region so the LP is never unbounded. *)
        @ List.init n (fun j -> le [ (j, 1.) ] (Float.max 2. (x0.(j) +. 1.)))
      in
      match solve_max n objective constraints with
      | Simplex.Optimal { objective_value; x; _ } ->
          let planted =
            Array.to_list (Array.mapi (fun j v -> objective.(j) *. v) x0)
            |> List.fold_left ( +. ) 0.
          in
          (* The optimum dominates the planted point, and the returned
             vertex actually satisfies every constraint. *)
          let feasible =
            List.for_all
              (fun (c : Simplex.constr) ->
                let dot =
                  List.fold_left
                    (fun acc (j, v) -> acc +. (v *. x.(j)))
                    0. c.Simplex.coeffs
                in
                dot <= c.Simplex.rhs +. 1e-6)
              constraints
            && Array.for_all (fun v -> v >= -1e-9) x
          in
          objective_value >= planted -. 1e-6 && feasible
      | Simplex.Infeasible -> false (* x0 is feasible by construction *)
      | Simplex.Unbounded -> false (* boxed above *))

let () =
  Alcotest.run "simplex"
    [
      ( "unit",
        [
          Alcotest.test_case "textbook maximum" `Quick test_textbook;
          Alcotest.test_case "two-phase minimize" `Quick test_minimize;
          Alcotest.test_case "equality + negative rhs" `Quick
            test_equality_and_negative_rhs;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "degenerate (Bland terminates)" `Quick
            test_degenerate;
          Alcotest.test_case "redundant equalities" `Quick
            test_redundant_equalities;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_dominates_known_point ] );
    ]
