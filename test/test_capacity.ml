(* Unit tests for Qnet_core.Capacity. *)

module Graph = Qnet_graph.Graph
module Capacity = Qnet_core.Capacity

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* u0 - s2 - s3 - u1, a simple relay chain. *)
let fixture () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:3. ~y:0. in
  let s2 = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x:1. ~y:0. in
  let s3 = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:2. ~y:0. in
  ignore (Graph.Builder.add_edge b u0 s2 1.);
  ignore (Graph.Builder.add_edge b s2 s3 1.);
  ignore (Graph.Builder.add_edge b s3 u1 1.);
  (Graph.Builder.freeze b, u0, u1, s2, s3)

let test_initial_state () =
  let g, u0, _, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  check_int "switch residual" 4 (Capacity.remaining c s2);
  check_int "small switch residual" 2 (Capacity.remaining c s3);
  check_int "user unlimited" max_int (Capacity.remaining c u0);
  check_bool "switch can relay" true (Capacity.can_relay c s2);
  check_bool "user can always relay" true (Capacity.can_relay c u0);
  check_int "nothing used" 0 (Capacity.used c s2);
  Alcotest.(check (list int)) "no overcommit" [] (Capacity.overcommitted c)

let test_consume_release () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  let path = [ u0; s2; s3; u1 ] in
  Capacity.consume_channel c path;
  check_int "s2 deducted" 2 (Capacity.remaining c s2);
  check_int "s3 exhausted" 0 (Capacity.remaining c s3);
  check_bool "s3 cannot relay" false (Capacity.can_relay c s3);
  check_int "s3 usage" 2 (Capacity.used c s3);
  Capacity.release_channel c path;
  check_int "s2 refunded" 4 (Capacity.remaining c s2);
  check_int "s3 refunded" 2 (Capacity.remaining c s3)

let test_consume_requires_capacity () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  Capacity.consume_channel c [ u0; s2; s3; u1 ];
  Alcotest.check_raises "second channel over s3"
    (Invalid_argument "Capacity.consume_channel: insufficient qubits")
    (fun () -> Capacity.consume_channel c [ u0; s2; s3; u1 ]);
  (* The failed attempt must not have deducted anything. *)
  check_int "s2 untouched by failure" 2 (Capacity.remaining c s2)

let test_direct_channel_consumes_nothing () =
  let g, u0, u1, _, _ = fixture () in
  let c = Capacity.of_graph g in
  (* A hypothetical direct channel [u0; u1] has no interior. *)
  Capacity.consume_channel c [ u0; u1 ];
  Alcotest.(check (list int)) "nothing overcommitted" [] (Capacity.overcommitted c)

let test_copy_isolation () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  let c' = Capacity.copy c in
  Capacity.consume_channel c [ u0; s2; s3; u1 ];
  check_int "original deducted" 2 (Capacity.remaining c s2);
  check_int "copy untouched" 4 (Capacity.remaining c' s2)

(* Copy-on-write overlays: the serving engine's capacity snapshots.
   Reads fall through to the base, writes stay private, and only dense
   (base) writes advance the version counter used as the
   snapshot-validity certificate. *)

let test_overlay_reads_through () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  Capacity.consume_channel c [ u0; s2; s3; u1 ];
  let o = Capacity.overlay c in
  check_int "overlay sees base s2" 2 (Capacity.remaining o s2);
  check_int "overlay sees base s3" 0 (Capacity.remaining o s3);
  check_bool "overlay relay matches base" false (Capacity.can_relay o s3)

let test_overlay_writes_isolated () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  let o = Capacity.overlay c in
  Capacity.consume_channel o [ u0; s2; s3; u1 ];
  check_int "overlay deducted" 2 (Capacity.remaining o s2);
  check_int "base untouched" 4 (Capacity.remaining c s2);
  check_int "base s3 untouched" 2 (Capacity.remaining c s3)

let test_overlay_version_certificate () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  let v0 = Capacity.version c in
  let o = Capacity.overlay c in
  Capacity.consume_channel o [ u0; s2; s3; u1 ];
  check_int "overlay writes leave base version" v0 (Capacity.version c);
  Capacity.consume_channel c [ u0; s2; s3; u1 ];
  check_bool "dense write bumps version" true (Capacity.version c > v0);
  Capacity.release_channel c [ u0; s2; s3; u1 ];
  check_bool "release bumps version too" true
    (Capacity.version c > v0 + 1)

let test_overlay_copy_materialises () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  let o = Capacity.overlay c in
  Capacity.consume_channel o [ u0; s2; s3; u1 ];
  let d = Capacity.copy o in
  check_int "copy sees overlay value" 2 (Capacity.remaining d s2);
  check_int "copy sees overlay s3" 0 (Capacity.remaining d s3);
  Capacity.release_channel o [ u0; s2; s3; u1 ];
  check_int "copy detached from overlay" 2 (Capacity.remaining d s2)

let test_overlay_of_overlay_forks () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  let o1 = Capacity.overlay c in
  Capacity.consume_channel o1 [ u0; s2; s3; u1 ];
  let o2 = Capacity.overlay o1 in
  check_int "fork inherits parent delta" 2 (Capacity.remaining o2 s2);
  Capacity.release_channel o2 [ u0; s2; s3; u1 ];
  check_int "parent unaffected by fork writes" 2 (Capacity.remaining o1 s2);
  check_int "fork refunded" 4 (Capacity.remaining o2 s2);
  check_int "base untouched throughout" 4 (Capacity.remaining c s2)

let test_overlay_used_and_overcommitted () =
  let g, u0, u1, s2, s3 = fixture () in
  let c = Capacity.of_graph g in
  let o = Capacity.overlay c in
  Capacity.consume_channel o [ u0; s2; s3; u1 ];
  check_int "used through overlay" 2 (Capacity.used o s2);
  check_int "base used unchanged" 0 (Capacity.used c s2);
  Alcotest.(check (list int))
    "fully consumed is not overcommitted" [] (Capacity.overcommitted o)

let () =
  Alcotest.run "capacity"
    [
      ( "state",
        [
          Alcotest.test_case "initial" `Quick test_initial_state;
          Alcotest.test_case "consume/release" `Quick test_consume_release;
          Alcotest.test_case "insufficient" `Quick test_consume_requires_capacity;
          Alcotest.test_case "direct channel" `Quick
            test_direct_channel_consumes_nothing;
          Alcotest.test_case "copy" `Quick test_copy_isolation;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "reads fall through" `Quick
            test_overlay_reads_through;
          Alcotest.test_case "writes isolated" `Quick
            test_overlay_writes_isolated;
          Alcotest.test_case "version certificate" `Quick
            test_overlay_version_certificate;
          Alcotest.test_case "copy materialises" `Quick
            test_overlay_copy_materialises;
          Alcotest.test_case "overlay of overlay" `Quick
            test_overlay_of_overlay_forks;
          Alcotest.test_case "used and overcommitted" `Quick
            test_overlay_used_and_overcommitted;
        ] );
    ]
