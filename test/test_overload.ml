(* Unit and property tests for qnet_overload and its integration into
   the online engine: fuel budgets, the token-bucket limiter, circuit
   breakers, deterministic load shedding, bounded-Pareto workloads,
   tiered degradation, and the soak property that overloaded runs stay
   deterministic and never oversubscribe capacity. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Budget = Qnet_overload.Budget
module Limiter = Qnet_overload.Limiter
module Breaker = Qnet_overload.Breaker
module Admission = Qnet_overload.Admission
module Workload = Qnet_online.Workload
module Policy = Qnet_online.Policy
module Engine = Qnet_online.Engine
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let network ?(users = 8) ?(switches = 25) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:switches
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)

let test_budget () =
  let b = Budget.create ~fuel:3 in
  check_int "fuel" 3 (Budget.fuel b);
  check_int "remaining" 3 (Budget.remaining b);
  Budget.tick b;
  Budget.spend b 2;
  check_int "spent" 3 (Budget.spent b);
  check_bool "exhausted" true (Budget.exhausted b);
  Alcotest.check_raises "tick past empty" (Budget.Exhausted { fuel = 3 })
    (fun () -> Budget.tick b);
  (* Over-spend empties the budget before raising. *)
  let b = Budget.create ~fuel:5 in
  (try Budget.spend b 9 with Budget.Exhausted _ -> ());
  check_int "over-spend leaves empty" 0 (Budget.remaining b);
  Alcotest.check_raises "fuel must be positive"
    (Invalid_argument "Budget.create: fuel must be positive") (fun () ->
      ignore (Budget.create ~fuel:0));
  check_bool "spend 0 on fresh budget is free" true
    (let b = Budget.create ~fuel:1 in
     Budget.spend b 0;
     Budget.remaining b = 1)

(* ------------------------------------------------------------------ *)
(* Limiter                                                             *)

let test_limiter () =
  let l = Limiter.create ~rate:2. ~burst:3. in
  check_bool "starts full" true (Limiter.tokens l = 3.);
  (* Drain the burst at one instant. *)
  check_bool "take 1" true (Limiter.try_take l ~now:0.);
  check_bool "take 2" true (Limiter.try_take l ~now:0.);
  check_bool "take 3" true (Limiter.try_take l ~now:0.);
  check_bool "bucket empty" false (Limiter.try_take l ~now:0.);
  (* Refill at [rate] tokens per second, capped at [burst]. *)
  check_bool "refilled after 0.5s" true (Limiter.try_take l ~now:0.5);
  check_bool "only one token accrued" false (Limiter.try_take l ~now:0.5);
  (* A long idle period caps at burst, not rate * dt. *)
  let l2 = Limiter.create ~rate:1. ~burst:2. in
  check_bool "t1" true (Limiter.try_take l2 ~now:0.);
  check_bool "t2" true (Limiter.try_take l2 ~now:0.);
  check_bool "b1" true (Limiter.try_take l2 ~now:100.);
  check_bool "b2" true (Limiter.try_take l2 ~now:100.);
  check_bool "burst cap holds" false (Limiter.try_take l2 ~now:100.);
  (* Stale timestamps are clamped, never refund. *)
  let l3 = Limiter.create ~rate:1. ~burst:1. in
  check_bool "s1" true (Limiter.try_take l3 ~now:5.);
  check_bool "stale now" false (Limiter.try_take l3 ~now:1.);
  Alcotest.check_raises "rate must be positive"
    (Invalid_argument "Limiter.create: rate must be positive") (fun () ->
      ignore (Limiter.create ~rate:0. ~burst:1.));
  Alcotest.check_raises "burst >= 1"
    (Invalid_argument "Limiter.create: burst must be at least 1") (fun () ->
      ignore (Limiter.create ~rate:1. ~burst:0.5))

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)

let test_breaker () =
  let b = Breaker.create ~failure_threshold:2 ~cooldown:3 () in
  check_bool "closed allows" true (Breaker.allow b);
  Breaker.failure b;
  check_bool "below threshold still closed" true (Breaker.state b = Closed);
  Breaker.success b;
  Breaker.failure b;
  check_bool "success reset the streak" true (Breaker.state b = Closed);
  Breaker.failure b;
  check_bool "threshold trips open" true (Breaker.state b = Open);
  check_int "one open" 1 (Breaker.opens b);
  (* Cooldown counts refused probes; the probe that exhausts it is the
     half-open trial and is admitted. *)
  check_bool "open refuses (1)" false (Breaker.allow b);
  check_bool "open refuses (2)" false (Breaker.allow b);
  check_bool "cooldown spent: trial admitted" true (Breaker.allow b);
  check_bool "half-open" true (Breaker.state b = Half_open);
  Breaker.failure b;
  check_bool "trial failure re-opens" true (Breaker.state b = Open);
  check_int "re-open counted" 2 (Breaker.opens b);
  check_bool "refused again" false (Breaker.allow b);
  check_bool "refused again (2)" false (Breaker.allow b);
  check_bool "second trial" true (Breaker.allow b);
  Breaker.success b;
  check_bool "trial success closes" true (Breaker.state b = Closed);
  check_bool "closed allows again" true (Breaker.allow b);
  Alcotest.check_raises "threshold must be positive"
    (Invalid_argument "Breaker.create: failure_threshold must be positive")
    (fun () -> ignore (Breaker.create ~failure_threshold:0 ()));
  Alcotest.check_raises "cooldown must be positive"
    (Invalid_argument "Breaker.create: cooldown must be positive") (fun () ->
      ignore (Breaker.create ~cooldown:0 ()))

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let test_admission () =
  check_bool "none disabled" false (Admission.enabled Admission.none);
  check_bool "none has no limiter" true (Admission.limiter Admission.none = None);
  let a = Admission.make ~max_queue:4 ~rate:2. () in
  check_bool "enabled" true (Admission.enabled a);
  check_bool "burst defaults to rate" true (a.Admission.burst = 2.);
  let low = Admission.make ~rate:0.5 () in
  check_bool "burst floor is 1" true (low.Admission.burst = 1.);
  check_bool "limiter present" true (Admission.limiter a <> None);
  Alcotest.check_raises "max_queue non-negative"
    (Invalid_argument "Admission.make: max_queue must be >= 0") (fun () ->
      ignore (Admission.make ~max_queue:(-1) ()));
  Alcotest.check_raises "max_inflight positive"
    (Invalid_argument "Admission.make: max_inflight must be > 0")
    (fun () -> ignore (Admission.make ~max_inflight:(-1) ()));
  Alcotest.check_raises "rate positive"
    (Invalid_argument "Admission.make: rate must be positive") (fun () ->
      ignore (Admission.make ~rate:0. ()))

let test_shed_order () =
  let v ?(id = 0) ?(group = 2) ?(slack = 1.) () =
    { Admission.id; group; slack }
  in
  let cmp = Admission.shed_order in
  check_bool "larger group sheds first" true
    (cmp (v ~group:5 ()) (v ~group:2 ()) < 0);
  check_bool "looser deadline sheds first" true
    (cmp (v ~slack:9. ()) (v ~slack:1. ()) < 0);
  check_bool "group dominates slack" true
    (cmp (v ~group:5 ~slack:0. ()) (v ~group:2 ~slack:99. ()) < 0);
  check_bool "id breaks ties" true (cmp (v ~id:1 ()) (v ~id:2 ()) < 0);
  check_int "equal victims" 0 (cmp (v ()) (v ()));
  (* pick_victim is the shed_order minimum. *)
  let vs =
    [ v ~id:3 ~group:2 ~slack:5. (); v ~id:1 ~group:4 ~slack:0. ();
      v ~id:2 ~group:4 ~slack:2. () ]
  in
  (match Admission.pick_victim vs with
  | Some { Admission.id; _ } -> check_int "largest group, loosest slack" 2 id
  | None -> Alcotest.fail "non-empty list has a victim");
  check_bool "empty list" true (Admission.pick_victim [] = None);
  (* Total order: antisymmetric and transitive over a small sample. *)
  let sample =
    List.concat_map
      (fun id ->
        List.concat_map
          (fun group ->
            List.map (fun slack -> v ~id ~group ~slack ()) [ 0.; 1.; 2. ])
          [ 2; 3; 4 ])
      [ 0; 1; 2 ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_bool "antisymmetric" true (compare (cmp a b) (-(cmp b a)) = 0);
          List.iter
            (fun c ->
              if cmp a b <= 0 && cmp b c <= 0 then
                check_bool "transitive" true (cmp a c <= 0))
            sample)
        sample)
    sample

(* ------------------------------------------------------------------ *)
(* Bounded Pareto sampling                                             *)

let test_bounded_pareto () =
  let sample seed n =
    let rng = Prng.create seed in
    List.init n (fun _ -> Prng.bounded_pareto rng ~alpha:1.3 ~lo:0.5 ~hi:20.)
  in
  check_bool "deterministic per seed" true (sample 11 200 = sample 11 200);
  check_bool "seed changes the draw" true (sample 11 200 <> sample 12 200);
  List.iter
    (fun x ->
      check_bool "within [lo, hi]" true (x >= 0.5 && x <= 20.))
    (sample 7 500);
  (* Heavy tail: the top decile actually uses the upper range. *)
  check_bool "tail reaches past 4*lo" true
    (List.exists (fun x -> x > 2.) (sample 7 500));
  let rng = Prng.create 1 in
  check_bool "degenerate lo=hi" true
    (Prng.bounded_pareto rng ~alpha:2. ~lo:3. ~hi:3. = 3.);
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  raises "Prng.bounded_pareto: alpha must be positive" (fun () ->
      ignore (Prng.bounded_pareto rng ~alpha:0. ~lo:1. ~hi:2.));
  raises "Prng.bounded_pareto: lo must be positive" (fun () ->
      ignore (Prng.bounded_pareto rng ~alpha:1. ~lo:0. ~hi:2.));
  raises "Prng.bounded_pareto: hi must be >= lo" (fun () ->
      ignore (Prng.bounded_pareto rng ~alpha:1. ~lo:2. ~hi:1.))

let test_pareto_workload () =
  let g = network 9 in
  let spec =
    Workload.spec ~requests:80
      ~arrivals:(Workload.Pareto { alpha = 1.5; lo = 0.1; hi = 4. })
      ~group_size:(Workload.Pareto_group { alpha = 1.2; lo = 2; hi = 5 })
      ()
  in
  let reqs = Workload.generate (Prng.create 21) g spec in
  check_int "count" 80 (List.length reqs);
  let first = List.hd reqs in
  check_bool "first arrival at 0" true (first.Workload.arrival = 0.);
  let rec gaps = function
    | (a : Workload.request) :: (b : Workload.request) :: rest ->
        let dt = b.Workload.arrival -. a.Workload.arrival in
        check_bool "gap within bounds" true (dt >= 0.1 && dt <= 4.);
        gaps (b :: rest)
    | _ -> ()
  in
  gaps reqs;
  List.iter
    (fun (r : Workload.request) ->
      let k = List.length r.Workload.users in
      check_bool "group size within bounds" true (k >= 2 && k <= 5))
    reqs;
  check_bool "deterministic" true
    (Workload.generate (Prng.create 21) g spec = reqs);
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  raises "Workload.spec: Pareto alpha must be positive" (fun () ->
      ignore
        (Workload.spec
           ~arrivals:(Workload.Pareto { alpha = 0.; lo = 1.; hi = 2. })
           ()));
  raises "Workload.spec: inverted Pareto gap range" (fun () ->
      ignore
        (Workload.spec
           ~arrivals:(Workload.Pareto { alpha = 1.; lo = 2.; hi = 1. })
           ()));
  raises "Workload.spec: group size < 2" (fun () ->
      ignore
        (Workload.spec
           ~group_size:(Workload.Pareto_group { alpha = 1.; lo = 1; hi = 4 })
           ()))

(* ------------------------------------------------------------------ *)
(* Tiered degradation                                                  *)

let test_tiered_validation () =
  Alcotest.check_raises "empty tiers"
    (Invalid_argument "Policy.tiered: no tiers") (fun () ->
      ignore (Policy.tiered []));
  Alcotest.check_raises "non-positive fuel"
    (Invalid_argument "Policy.tiered: fuel must be positive") (fun () ->
      ignore (Policy.tiered ~fuel:0 [ Policy.prim ]))

let test_tiered_degrades () =
  (* Fuel far below what alg3 needs on this network: every serve must
     fall through to the unmetered prim floor. *)
  let g = network ~switches:40 11 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1; List.nth u 2 ] in
  let alg3 = Option.get (Policy.of_name "alg3") in
  let policy, stats = Policy.tiered ~fuel:2 [ alg3; Policy.prim ] in
  let capacity = Capacity.of_graph g in
  (match Policy.route policy g params ~capacity ~users with
  | Some tree ->
      check_bool "degraded tree is valid" true
        (Verify.is_valid g params ~users tree)
  | None -> Alcotest.fail "prim floor must route");
  check_int "exhaustion recorded on tier 0" 1 stats.Policy.exhaustions.(0);
  check_int "serve recorded on tier 1" 1 stats.Policy.serves.(1);
  check_int "last tier index" 1 stats.Policy.last;
  (* With generous fuel the primary tier serves. *)
  let policy, stats = Policy.tiered ~fuel:100_000 [ alg3; Policy.prim ] in
  let capacity = Capacity.of_graph g in
  check_bool "primary serves under generous fuel" true
    (Policy.route policy g params ~capacity ~users <> None);
  check_int "tier 0 serve" 1 stats.Policy.serves.(0);
  check_int "no exhaustion" 0 stats.Policy.exhaustions.(0)

let test_tiered_breaker_skips () =
  (* Persistently starved primary: after [threshold] consecutive
     exhaustions the breaker opens and later attempts skip tier 0
     without burning fuel. *)
  let g = network ~switches:40 12 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1 ] in
  let alg3 = Option.get (Policy.of_name "alg3") in
  let policy, stats =
    Policy.tiered ~fuel:2 ~breaker_threshold:2 ~breaker_cooldown:50
      [ alg3; Policy.prim ]
  in
  for _ = 1 to 6 do
    let capacity = Capacity.of_graph g in
    ignore (Policy.route policy g params ~capacity ~users)
  done;
  check_int "two exhaustions tripped the breaker" 2
    stats.Policy.exhaustions.(0);
  check_int "remaining attempts skipped tier 0" 4 stats.Policy.breaker_skips.(0);
  check_bool "breaker open" true
    (Breaker.state stats.Policy.breakers.(0) = Open);
  check_int "floor served every attempt" 6 stats.Policy.serves.(1)

(* ------------------------------------------------------------------ *)
(* Budgeted solvers leave shared capacity untouched                     *)

let test_budget_rolls_back_capacity () =
  let g = network ~switches:40 13 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1; List.nth u 2 ] in
  let capacity = Capacity.of_graph g in
  let snapshot () =
    List.map (fun s -> Capacity.remaining capacity s) (Graph.switches g)
  in
  let before = snapshot () in
  (match
     Multi_group.prim_for_users g params ~capacity ~users
       ~budget:(Budget.create ~fuel:2)
   with
  | exception Budget.Exhausted _ -> ()
  | Some _ -> Alcotest.fail "fuel 2 cannot route a triple"
  | None -> ());
  check_bool "exhausted run released everything" true (before = snapshot ())

(* ------------------------------------------------------------------ *)
(* Engine under overload: soak property                                 *)

let assert_never_oversubscribed g outcomes =
  let events =
    List.concat_map
      (fun (o : Engine.outcome) ->
        match o.Engine.resolution with
        | Engine.Served { start; finish; tree; _ } ->
            let usage = Ent_tree.qubit_usage tree in
            [ (finish, 0, List.map (fun (v, q) -> (v, -q)) usage);
              (start, 1, usage) ]
        | _ -> [])
      outcomes
    |> List.sort compare
  in
  let used = Array.make (Graph.vertex_count g) 0 in
  List.iter
    (fun (_, _, deltas) ->
      List.iter
        (fun (v, dq) ->
          used.(v) <- used.(v) + dq;
          if used.(v) > Graph.qubits g v then
            Alcotest.failf "switch %d oversubscribed: %d > %d" v used.(v)
              (Graph.qubits g v))
        deltas)
    events

let overload_settings =
  [
    Admission.none;
    Admission.make ~max_queue:3 ();
    Admission.make ~max_inflight:2 ();
    Admission.make ~rate:1. ();
    Admission.make ~max_queue:3 ~max_inflight:4 ~rate:2. ~burst:3. ();
  ]

let test_overload_soak_qcheck () =
  let prop seed =
    let g = network ~users:6 ~switches:15 ~qubits:2 ((seed mod 50) + 1) in
    let spec =
      Workload.spec ~requests:30
        ~arrivals:(Workload.Pareto { alpha = 1.4; lo = 0.05; hi = 2. })
        ~group_size:(Workload.Uniform (2, 3))
        ~duration:(1., 5.) ~patience:(0., 8.) ()
    in
    let reqs = Workload.generate (Prng.create seed) g spec in
    let overload = List.nth overload_settings (seed mod 5) in
    let run pool =
      (* Fresh tiered policy per run: its breakers and stats are
         stateful. *)
      let policy, tier_stats = Policy.tiered ~fuel:300 [ Policy.prim ] in
      let config =
        Engine.config ~overload ~tier_stats
          ~budget:(if seed mod 2 = 0 then 500 else 4096)
          policy
      in
      Engine.run ~config ?pool g params ~requests:reqs
    in
    let report, outcomes = run None in
    assert_never_oversubscribed g outcomes;
    (* A shed request must never also be served; resolutions partition
       the workload. *)
    let count f = List.length (List.filter f outcomes) in
    let shed =
      count (fun o ->
          match o.Engine.resolution with Engine.Shed _ -> true | _ -> false)
    in
    check_int "report agrees with outcomes" report.Engine.shed shed;
    check_int "conservation" report.Engine.arrived
      (report.Engine.served + report.Engine.rejected + report.Engine.expired
     + shed);
    (* Queue depth respects the admission bound. *)
    (match overload.Admission.max_queue with
    | Some m ->
        check_bool "queue depth bounded" true
          (report.Engine.peak_queue_depth <= m)
    | None -> ());
    (* Byte-identical determinism: a second run, and a pooled run,
       must produce the same report and outcomes. *)
    let report', outcomes' = run None in
    check_bool "identical across runs" true
      (report = report' && outcomes = outcomes');
    Qnet_util.Pool.with_pool ~jobs:2 (fun pool ->
        let report2, outcomes2 = run (Some pool) in
        check_bool "identical across --jobs" true
          (report = report2 && outcomes = outcomes2));
    true
  in
  let test =
    QCheck.Test.make ~count:40
      ~name:"overload soak: bounded, shed-safe, deterministic"
      QCheck.(int_range 1 10_000)
      prop
  in
  QCheck.Test.check_exn test

let test_inflight_limit () =
  (* Two disjoint pairs on a rich network: with max_inflight 1 the
     second pair must wait for the first lease even though capacity is
     plentiful. *)
  let g = network ~users:8 ~switches:30 ~qubits:8 14 in
  let u = Graph.users g in
  let req id users arrival =
    { Workload.id; users; arrival; duration = 4.;
      deadline = arrival +. 20. }
  in
  let reqs =
    [ req 0 [ List.nth u 0; List.nth u 1 ] 0.;
      req 1 [ List.nth u 2; List.nth u 3 ] 0.5 ]
  in
  let overload = Admission.make ~max_inflight:1 () in
  let config = Engine.config ~overload Policy.prim in
  let report, outcomes = Engine.run ~config g params ~requests:reqs in
  check_int "both served" 2 report.Engine.served;
  match (List.nth outcomes 1).Engine.resolution with
  | Engine.Served { start; _ } ->
      check_bool "second waited for the first lease" true (start >= 4.)
  | _ -> Alcotest.fail "expected request 1 served after waiting"

let test_rate_limit_sheds () =
  let g = network ~users:8 ~switches:30 ~qubits:8 15 in
  let u = Graph.users g in
  let req id arrival =
    { Workload.id; users = [ List.nth u 0; List.nth u 1 ]; arrival;
      duration = 1.; deadline = arrival +. 10. }
  in
  (* Ten arrivals in one instant against a 1/s, burst-1 bucket: only
     the first is admitted. *)
  let reqs = List.init 10 (fun i -> req i 0.) in
  let overload = Admission.make ~rate:1. ~burst:1. () in
  let config = Engine.config ~overload Policy.prim in
  let report, outcomes = Engine.run ~config g params ~requests:reqs in
  check_int "one admitted" 1 report.Engine.served;
  check_int "rest shed" 9 report.Engine.shed;
  List.iteri
    (fun i (o : Engine.outcome) ->
      if i > 0 then
        match o.Engine.resolution with
        | Engine.Shed { reason = Engine.Rate_limit; at } ->
            check_bool "shed at arrival" true (at = 0.)
        | _ -> Alcotest.fail "expected a rate-limit shed")
    outcomes

let test_queue_pressure_sheds_cheapest () =
  (* Star hub with one pair-channel slot: a long-lease holder plus a
     full queue; the newcomer with the biggest group and loosest
     deadline is the victim. *)
  let b = Graph.Builder.create () in
  let user i =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0
      ~x:(float_of_int (100 * i))
      ~y:0.
  in
  let us = List.init 8 user in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:350. ~y:500.
  in
  List.iter (fun u -> ignore (Graph.Builder.add_edge b u hub 800.)) us;
  let g = Graph.Builder.freeze b in
  let u = us in
  let pair a b = [ List.nth u a; List.nth u b ] in
  let req id users arrival patience =
    { Workload.id; users; arrival; duration = 50.;
      deadline = arrival +. patience }
  in
  let reqs =
    [
      req 0 (pair 0 1) 0. 100.;
      (* Queue fills with tight-deadline pairs... *)
      req 1 (pair 2 3) 1. 5.;
      req 2 (pair 4 5) 2. 5.;
      (* ...then a loose triple arrives: cheapest to refuse. *)
      {
        Workload.id = 3;
        users = [ List.nth u 6; List.nth u 7; List.nth u 0 ];
        arrival = 3.;
        duration = 50.;
        deadline = 90.;
      };
    ]
  in
  let overload = Admission.make ~max_queue:2 () in
  let config = Engine.config ~overload Policy.prim in
  let report, outcomes = Engine.run ~config g params ~requests:reqs in
  check_int "one shed" 1 report.Engine.shed;
  match (List.nth outcomes 3).Engine.resolution with
  | Engine.Shed { reason = Engine.Queue_pressure; _ } -> ()
  | _ -> Alcotest.fail "expected the loose triple shed under queue pressure"

let () =
  Alcotest.run "overload"
    [
      ( "budget",
        [
          Alcotest.test_case "semantics" `Quick test_budget;
          Alcotest.test_case "capacity rollback" `Quick
            test_budget_rolls_back_capacity;
        ] );
      ("limiter", [ Alcotest.test_case "token bucket" `Quick test_limiter ]);
      ("breaker", [ Alcotest.test_case "state machine" `Quick test_breaker ]);
      ( "admission",
        [
          Alcotest.test_case "limits" `Quick test_admission;
          Alcotest.test_case "shed order" `Quick test_shed_order;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "bounded sampling" `Quick test_bounded_pareto;
          Alcotest.test_case "workload shapes" `Quick test_pareto_workload;
        ] );
      ( "tiered",
        [
          Alcotest.test_case "validation" `Quick test_tiered_validation;
          Alcotest.test_case "degrades to the floor" `Quick
            test_tiered_degrades;
          Alcotest.test_case "breaker skips a failing tier" `Quick
            test_tiered_breaker_skips;
        ] );
      ( "engine",
        [
          Alcotest.test_case "inflight limit" `Quick test_inflight_limit;
          Alcotest.test_case "rate limit sheds" `Quick test_rate_limit_sheds;
          Alcotest.test_case "queue pressure sheds cheapest" `Quick
            test_queue_pressure_sheds_cheapest;
          Alcotest.test_case "soak" `Slow test_overload_soak_qcheck;
        ] );
    ]
