(* Unit tests for Qnet_graph.Binary_heap. *)

module Heap = Qnet_graph.Binary_heap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let drain h =
  let rec go acc =
    match Heap.pop_min h with
    | None -> List.rev acc
    | Some (k, v) -> go ((k, v) :: acc)
  in
  go []

let test_empty () =
  let h : int Heap.t = Heap.create () in
  check_bool "is_empty" true (Heap.is_empty h);
  check_int "length" 0 (Heap.length h);
  check_bool "pop none" true (Heap.pop_min h = None);
  check_bool "peek none" true (Heap.peek_min h = None)

let test_single () =
  let h = Heap.create () in
  Heap.push h 3.5 "x";
  check_int "length one" 1 (Heap.length h);
  check_bool "peek" true (Heap.peek_min h = Some (3.5, "x"));
  check_bool "pop" true (Heap.pop_min h = Some (3.5, "x"));
  check_bool "empty after" true (Heap.is_empty h)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.; 1.; 4.; 2.; 3. ];
  Alcotest.(check (list (pair (float 0.) int)))
    "ascending pops"
    [ (1., 1); (2., 2); (3., 3); (4., 4); (5., 5) ]
    (drain h)

let test_duplicates () =
  let h = Heap.create () in
  Heap.push h 1. "a";
  Heap.push h 1. "b";
  Heap.push h 0.5 "c";
  let keys = List.map fst (drain h) in
  Alcotest.(check (list (float 0.))) "keys sorted" [ 0.5; 1.; 1. ] keys

let test_growth () =
  let h = Heap.create ~capacity:2 () in
  for i = 1000 downto 1 do
    Heap.push h (float_of_int i) i
  done;
  check_int "all stored" 1000 (Heap.length h);
  let popped = drain h in
  check_int "all popped" 1000 (List.length popped);
  let keys = List.map fst popped in
  check_bool "sorted output" true
    (keys = List.sort Float.compare keys)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h 3. 3;
  Heap.push h 1. 1;
  check_bool "pop 1" true (Heap.pop_min h = Some (1., 1));
  Heap.push h 0.5 0;
  Heap.push h 2. 2;
  check_bool "pop 0" true (Heap.pop_min h = Some (0.5, 0));
  check_bool "pop 2" true (Heap.pop_min h = Some (2., 2));
  check_bool "pop 3" true (Heap.pop_min h = Some (3., 3))

let test_clear () =
  let h = Heap.create () in
  Heap.push h 1. ();
  Heap.push h 2. ();
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h);
  Heap.push h 5. ();
  check_bool "usable after clear" true (Heap.pop_min h = Some (5., ()))

let test_negative_and_inf_keys () =
  let h = Heap.create () in
  Heap.push h infinity "inf";
  Heap.push h (-2.) "neg";
  Heap.push h 0. "zero";
  Alcotest.(check (list string))
    "order with special floats" [ "neg"; "zero"; "inf" ]
    (List.map snd (drain h))

(* Reset-and-refill is the reuse idiom of the SSSP scratch heap: many
   rounds over one heap must behave like fresh heaps every round. *)
let test_reset_reuse () =
  let h = Heap.create ~capacity:2 () in
  for round = 1 to 5 do
    Heap.reset h;
    check_bool "empty after reset" true (Heap.is_empty h);
    (* Descending pushes force sift-ups; size exceeds the initial
       capacity so growth happens on a reused heap too. *)
    for i = 64 downto 1 do
      Heap.push h (float_of_int (i * round)) i
    done;
    let popped = List.map snd (drain h) in
    check_bool
      (Printf.sprintf "round %d ascending" round)
      true
      (popped = List.init 64 (fun i -> i + 1))
  done

(* Property: heap sort agrees with List.sort on random inputs. *)
let prop_heapsort =
  QCheck.Test.make ~name:"heap sort matches list sort" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k k) keys;
      let popped = List.map fst (drain h) in
      popped = List.sort Float.compare keys)

let () =
  Alcotest.run "binary_heap"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "reset reuse" `Quick test_reset_reuse;
          Alcotest.test_case "special keys" `Quick test_negative_and_inf_keys;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_heapsort ] );
    ]
