(* Tests for checkpoint/restore, live reconfiguration and the
   crash-recovery drill: the snapshot codec, the durable checkpoint
   file layer (integrity footer, friendly errors), reconfig validation
   and engine semantics (leave/join/provision with capacity-safe lease
   recovery), workload modulators, and the central robustness property
   that a run restored at any checkpoint instant finishes with a
   byte-identical report at every parallelism level. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Pool = Qnet_util.Pool
module Sexp = Qnet_util.Sexp
module Model = Qnet_faults.Model
module Workload = Qnet_online.Workload
module Policy = Qnet_online.Policy
module Engine = Qnet_online.Engine
module Reconfig = Qnet_online.Reconfig
module Checkpoint = Qnet_resilience.Checkpoint
module Delta = Qnet_resilience.Delta
module Journal = Qnet_resilience.Journal
module Chain = Qnet_resilience.Chain
module Drill = Qnet_resilience.Drill
module Wire = Qnet_telemetry.Wire
module Metrics = Qnet_telemetry.Metrics
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let network ?(users = 8) ?(switches = 25) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:switches
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

(* Two users reachable through either of two parallel 2-qubit switches:
   draining the one in use leaves a live detour. *)
let parallel_network () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:0.
  in
  let sa =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:100.
  in
  let sb =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:(-300.)
  in
  List.iter
    (fun s ->
      ignore (Graph.Builder.add_edge b u0 s 1100.);
      ignore (Graph.Builder.add_edge b s u1 1100.))
    [ sa; sb ];
  (Graph.Builder.freeze b, (u0, u1), (sa, sb))

let request ?(duration = 4.) ?(patience = 0.) id users arrival =
  { Workload.id; users; arrival; deadline = arrival +. patience; duration }

let interior_switch tree =
  match tree.Ent_tree.channels with
  | [ c ] -> (
      match Channel.interior_switches c with
      | [ s ] -> s
      | _ -> Alcotest.fail "expected a single interior switch")
  | _ -> Alcotest.fail "expected a single channel"

let generated seed g =
  let wspec =
    Workload.spec ~requests:40 ~arrivals:(Workload.Poisson 0.6) ()
  in
  Workload.generate (Prng.create seed) g wspec

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                      *)

let snapshot_of seed =
  let g = network seed in
  let reqs = generated (seed + 1) g in
  let captured = ref None in
  let _ =
    Engine.run
      ~checkpoint:
        ( 10.,
          fun _ snap -> if !captured = None then captured := Some snap )
      g params ~requests:reqs
  in
  match !captured with
  | Some snap -> (g, reqs, snap)
  | None -> Alcotest.fail "run cut no checkpoint"

let test_snapshot_roundtrip () =
  let _, _, snap = snapshot_of 3 in
  let doc = Engine.snapshot_to_sexp snap in
  match Engine.snapshot_of_sexp doc with
  | Error m -> Alcotest.fail ("snapshot does not re-parse: " ^ m)
  | Ok snap' ->
      check_bool "re-serialisation is identical" true
        (String.equal (Sexp.to_string doc)
           (Sexp.to_string (Engine.snapshot_to_sexp snap')))

let test_snapshot_rejects_garbage () =
  (match Engine.snapshot_of_sexp (Sexp.atom "nonsense") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed an atom as a snapshot");
  match
    Engine.snapshot_of_sexp
      (Sexp.list [ Sexp.atom "muerp-engine-snapshot/999" ])
  with
  | Error m ->
      check_bool "names the version" true
        (Astring.String.is_infix ~affix:"muerp-engine-snapshot" m)
  | Ok _ -> Alcotest.fail "parsed an unknown snapshot version"

let test_restore_flag_mismatch_refused () =
  let g = network 5 in
  let reqs = generated 6 g in
  let faults =
    Model.make ~mtbf:30. ~mttr:5. ~targets:Model.Switches ~seed:9 ()
  in
  let captured = ref None in
  let _ =
    Engine.run ~faults
      ~checkpoint:(8., fun _ s -> if !captured = None then captured := Some s)
      g params ~requests:reqs
  in
  let snap = Option.get !captured in
  (* The snapshot tracks element health; a restore into a run without
     any fault machinery cannot honour it. *)
  Alcotest.check_raises "health snapshot needs a faulty run"
    (Invalid_argument
       "Engine.run: restore: snapshot tracks element health but this run \
        has no faults or reconfiguration configured (flags differ)")
    (fun () -> ignore (Engine.run ~restore_from:snap g params ~requests:reqs))

let test_checkpoint_stateful_policy_gate () =
  let g = network 7 in
  let reqs = generated 8 g in
  (* The memo table now travels in the snapshot via state hooks, so
     cached wrappers are checkpoint-safe... *)
  check_bool "cached policies are checkpoint-safe" true
    (Policy.cached Policy.prim).Policy.checkpoint_safe;
  (* ...but wrapping a policy that itself keeps restorable state would
     need composed hooks, which nothing provides — that combination
     must still be refused up front. *)
  let nested = Policy.cached (Policy.cached Policy.prim) in
  check_bool "nested cached is not checkpoint-safe" false
    nested.Policy.checkpoint_safe;
  Alcotest.check_raises "checkpoint with nested cached policy refused"
    (Invalid_argument
       "Engine.run: policy cached-cached-prim keeps hidden mutable state \
        and cannot be checkpointed or restored")
    (fun () ->
      ignore
        (Engine.run
           ~config:(Engine.config nested)
           ~checkpoint:(5., fun _ _ -> ())
           g params ~requests:reqs))

(* A checkpoint cut while the memo table is warm must carry the exact
   cache contents: optimistic reuse means warmth shapes later corridor
   choices, so a cold-cache restore would diverge.  The drill compares
   every restored continuation byte-for-byte against the uninterrupted
   run. *)
let test_cached_policy_restore_equivalence () =
  let g = network 41 in
  let reqs = generated 42 g in
  let config = Engine.config (Policy.cached Policy.prim) in
  let d = Drill.crash_restore ~config ~every:9. g params ~requests:reqs in
  if not (Drill.passed d) then Alcotest.fail (Format.asprintf "%a" Drill.pp d);
  check_bool "cut at least one checkpoint" true (d.Drill.checkpoints > 0)

(* Same property for the hierarchical policy: the skeleton cache
   (costs, paths, stamps, query counter) is exported into the snapshot
   and re-imported on restore. *)
let test_hier_policy_restore_equivalence () =
  let g = network ~switches:30 43 in
  let reqs = generated 44 g in
  let part = Qnet_hier.Partition.kmeans ~regions:4 ~seed:43 g in
  let oracle = Qnet_hier.Oracle.create g params part in
  let policy = Qnet_hier.Serve.policy oracle in
  check_bool "hier policy is checkpoint-safe" true policy.Policy.checkpoint_safe;
  let config = Engine.config policy in
  let d = Drill.crash_restore ~config ~every:9. g params ~requests:reqs in
  if not (Drill.passed d) then Alcotest.fail (Format.asprintf "%a" Drill.pp d);
  check_bool "cut at least one checkpoint" true (d.Drill.checkpoints > 0)

(* ------------------------------------------------------------------ *)
(* Checkpoint file layer                                               *)

let with_tmp f =
  let path = Filename.temp_file "muerp_test" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  data

let expect_error what affix = function
  | Ok _ -> Alcotest.fail (what ^ ": expected an error")
  | Error m ->
      check_bool
        (Printf.sprintf "%s: %S mentions %S" what m affix)
        true
        (Astring.String.is_infix ~affix m)

let test_checkpoint_file_roundtrip () =
  let _, _, snap = snapshot_of 11 in
  with_tmp (fun path ->
      let digest =
        match Checkpoint.save ~path ~config:"flags" snap with
        | Ok digest -> digest
        | Error m -> Alcotest.fail m
      in
      (* The returned digest is the file's footer identity. *)
      (match Checkpoint.read_with_footer ~path with
      | Ok (_, d) -> check_bool "save returns the footer digest" true (d = digest)
      | Error m -> Alcotest.fail m);
      match Checkpoint.load ~path ~config:"flags" with
      | Error m -> Alcotest.fail m
      | Ok snap' ->
          check_bool "round-trips bit-identically" true
            (String.equal
               (Sexp.to_string (Engine.snapshot_to_sexp snap))
               (Sexp.to_string (Engine.snapshot_to_sexp snap'))))

let test_checkpoint_file_errors () =
  let _, _, snap = snapshot_of 13 in
  with_tmp (fun path ->
      (match Checkpoint.save ~path ~config:"flags" snap with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      let good = read_file path in
      (* Config fingerprint mismatch names both fingerprints. *)
      expect_error "fingerprint" "different flags"
        (Checkpoint.load ~path ~config:"other-flags");
      (* One flipped byte in the body fails the checksum. *)
      let corrupt = Bytes.of_string good in
      Bytes.set corrupt (String.length good / 2)
        (if Bytes.get corrupt (String.length good / 2) = 'x' then 'y'
         else 'x');
      write_file path (Bytes.to_string corrupt);
      expect_error "corrupt" "checksum"
        (Checkpoint.load ~path ~config:"flags");
      (* A truncated copy is caught before parsing. *)
      write_file path (String.sub good 0 (String.length good / 2));
      expect_error "truncated" "truncated"
        (Checkpoint.load ~path ~config:"flags");
      (* A torn copy — bytes missing from the middle, footer intact —
         fails the length check. *)
      let n = String.length good in
      write_file path (String.sub good 0 100 ^ String.sub good 110 (n - 110));
      expect_error "torn" "torn or truncated"
        (Checkpoint.load ~path ~config:"flags");
      (* Future format versions are refused by name. *)
      write_file path
        (let swapped =
           Astring.String.cuts ~sep:"muerp-checkpoint/1" good
           |> String.concat "muerp-checkpoint/9"
         in
         swapped);
      (* The checksum covers the header, so rebuild the footer. *)
      let body =
        match Astring.String.cut ~rev:true ~sep:"integrity" (read_file path)
        with
        | Some (body, _) -> body
        | None -> Alcotest.fail "no footer"
      in
      write_file path
        (Printf.sprintf "%sintegrity %s %d\n" body
           (Digest.to_hex (Digest.string body))
           (String.length body));
      expect_error "version" "unsupported version"
        (Checkpoint.load ~path ~config:"flags");
      (* Arbitrary files are named as such. *)
      write_file path "definitely not a checkpoint\n";
      expect_error "junk" "not a muerp checkpoint"
        (Checkpoint.load ~path ~config:"flags");
      expect_error "empty" "empty"
        (write_file path "";
         Checkpoint.load ~path ~config:"flags"));
  expect_error "missing" "cannot read"
    (Checkpoint.load ~path:"/nonexistent/muerp.ckpt" ~config:"flags")

(* ------------------------------------------------------------------ *)
(* Reconfiguration                                                     *)

let test_reconfig_validate () =
  let g, (u0, _), (sa, _) = parallel_network () in
  let at time change = { Reconfig.time; change } in
  (match Reconfig.validate g [ at 1. (Reconfig.Switch_leave 99) ] with
  | Error m -> check_bool "names the event" true (Astring.String.is_infix ~affix:"event 1" m)
  | Ok () -> Alcotest.fail "accepted an out-of-range switch");
  (match Reconfig.validate g [ at 1. (Reconfig.Switch_leave u0) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted a user as a switch target");
  (match
     Reconfig.validate g
       [ at 1. (Reconfig.Provision { switch = sa; qubits = -1 }) ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted negative qubits");
  (match Reconfig.validate g [ at (-1.) (Reconfig.Switch_leave sa) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted a negative time");
  match
    Reconfig.validate g
      [ at 0. (Reconfig.Switch_leave sa); at 3. (Reconfig.Switch_join sa) ]
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_reconfig_sexp_roundtrip () =
  let events =
    [
      { Reconfig.time = 1.5; change = Reconfig.Switch_leave 4 };
      { Reconfig.time = 2.; change = Reconfig.Link_remove 7 };
      { Reconfig.time = 3.; change = Reconfig.Link_add 7 };
      { Reconfig.time = 4.; change = Reconfig.Switch_join 4 };
      {
        Reconfig.time = 5.;
        change = Reconfig.Provision { switch = 9; qubits = 12 };
      };
    ]
  in
  (match Reconfig.of_sexp (Reconfig.to_sexp events) with
  | Ok events' -> check_bool "round-trips" true (events = events')
  | Error m -> Alcotest.fail m);
  match Reconfig.of_sexp (Sexp.list [ Sexp.atom "muerp-reconfig/9" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown reconfig version"

let test_reconfig_drain_recovers_lease () =
  let g, (u0, u1), (sa, sb) = parallel_network () in
  let reqs = [ request ~duration:6. 0 [ u0; u1 ] 0. ] in
  let _, outcomes = Engine.run g params ~requests:reqs in
  let used =
    match outcomes with
    | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
        interior_switch tree
    | _ -> Alcotest.fail "baseline run must serve"
  in
  (* Drain the in-use switch mid-lease; the engine must repair onto the
     detour, attribute the recovery to reconfiguration, and keep the
     request served. *)
  let reconfig = [ { Reconfig.time = 2.; change = Reconfig.Switch_leave used } ] in
  let report, outcomes = Engine.run ~reconfig g params ~requests:reqs in
  check_int "served through the drain" 1 report.Engine.served;
  check_int "one reconfig applied" 1 report.Engine.reconfig_applied;
  check_int "one lease recovered by reconfig" 1
    report.Engine.reconfig_recovered;
  check_int "not counted as a fault interruption" 0
    report.Engine.faults_injected;
  match outcomes with
  | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
      check_int "moved to the detour"
        (if used = sa then sb else sa)
        (interior_switch tree)
  | _ -> Alcotest.fail "expected a served outcome"

let test_reconfig_join_restores_service () =
  let g, (u0, u1), (sa, sb) = parallel_network () in
  (* Both switches drained before arrival: the request must wait; the
     join at t=4 re-admits a path and the rescan serves it. *)
  let reqs = [ request ~duration:3. ~patience:10. 0 [ u0; u1 ] 1. ] in
  let reconfig =
    [
      { Reconfig.time = 0.; change = Reconfig.Switch_leave sa };
      { Reconfig.time = 0.; change = Reconfig.Switch_leave sb };
      { Reconfig.time = 4.; change = Reconfig.Switch_join sa };
    ]
  in
  let report, outcomes = Engine.run ~reconfig g params ~requests:reqs in
  check_int "served after the join" 1 report.Engine.served;
  check_int "three reconfigs applied" 3 report.Engine.reconfig_applied;
  match outcomes with
  | [ { Engine.resolution = Engine.Served { start; tree; _ }; _ } ] ->
      check_bool "served no earlier than the join" true (start >= 4.);
      check_int "through the rejoined switch" sa (interior_switch tree)
  | _ -> Alcotest.fail "expected a served outcome"

let test_reconfig_provision_shrink_recovers () =
  let g, (u0, u1), (sa, sb) = parallel_network () in
  let reqs = [ request ~duration:6. 0 [ u0; u1 ] 0. ] in
  let _, outcomes = Engine.run g params ~requests:reqs in
  let used =
    match outcomes with
    | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
        interior_switch tree
    | _ -> Alcotest.fail "baseline run must serve"
  in
  (* Shrink the in-use switch to a single qubit mid-lease: the lease no
     longer fits and must be recovered onto the other switch; quota
     accounting has to stay consistent to the end of the run (the
     engine asserts full refunds internally). *)
  let reconfig =
    [
      {
        Reconfig.time = 2.;
        change = Reconfig.Provision { switch = used; qubits = 1 };
      };
    ]
  in
  let report, outcomes = Engine.run ~reconfig g params ~requests:reqs in
  check_int "served through the shrink" 1 report.Engine.served;
  check_int "recovered by reconfig" 1 report.Engine.reconfig_recovered;
  (match outcomes with
  | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
      check_int "moved off the shrunk switch"
        (if used = sa then sb else sa)
        (interior_switch tree)
  | _ -> Alcotest.fail "expected a served outcome");
  (* Growing capacity mid-run is accepted and needs no recovery. *)
  let reconfig =
    [
      {
        Reconfig.time = 2.;
        change = Reconfig.Provision { switch = used; qubits = 8 };
      };
    ]
  in
  let report, _ = Engine.run ~reconfig g params ~requests:reqs in
  check_int "grow applied" 1 report.Engine.reconfig_applied;
  check_int "grow recovers nothing" 0 report.Engine.reconfig_recovered

(* ------------------------------------------------------------------ *)
(* Workload modulators                                                 *)

let test_modulator_intensity () =
  let check_f = Alcotest.(check (float 1e-12)) in
  check_f "flat" 1. (Workload.intensity Workload.Flat 17.);
  let d = Workload.Diurnal { period = 40.; amplitude = 0.5 } in
  check_f "diurnal at 0" 1. (Workload.intensity d 0.);
  check_f "diurnal peak" 1.5 (Workload.intensity d 10.);
  check_f "diurnal trough" 0.5 (Workload.intensity d 30.);
  let f = Workload.Flash { at = 10.; width = 5.; boost = 4. } in
  check_f "before the flash" 1. (Workload.intensity f 9.9);
  check_f "inside the flash" 4. (Workload.intensity f 10.);
  check_f "after the flash" 1. (Workload.intensity f 15.)

let test_modulator_spec_validation () =
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () ->
      Workload.spec
        ~modulation:(Workload.Diurnal { period = 0.; amplitude = 0.5 })
        ());
  bad (fun () ->
      Workload.spec
        ~modulation:(Workload.Diurnal { period = 10.; amplitude = 1. })
        ());
  bad (fun () ->
      Workload.spec
        ~modulation:(Workload.Flash { at = 0.; width = 0.; boost = 2. })
        ());
  bad (fun () ->
      Workload.spec
        ~modulation:(Workload.Flash { at = 0.; width = 5.; boost = 0. })
        ())

let test_flat_modulation_is_identity () =
  let g = network 17 in
  let plain =
    Workload.generate (Prng.create 5) g (Workload.spec ~requests:30 ())
  in
  let flat =
    Workload.generate (Prng.create 5) g
      (Workload.spec ~requests:30 ~modulation:Workload.Flat ())
  in
  check_bool "flat modulation changes nothing" true (plain = flat)

let test_flash_compresses_arrivals () =
  let g = network 19 in
  let gen m =
    Workload.generate (Prng.create 7) g
      (Workload.spec ~requests:60 ~arrivals:(Workload.Poisson 0.5) ?modulation:m ())
  in
  let plain = gen None in
  let boosted = gen (Some (Workload.Flash { at = 0.; width = 1e9; boost = 4. })) in
  (* A flash covering the whole horizon is a uniform 4x speed-up of the
     same arrival stream: every gap shrinks, order and draws unchanged. *)
  List.iter2
    (fun (p : Workload.request) (b : Workload.request) ->
      check_bool "same users" true (p.users = b.users);
      check_bool "arrivals compressed" true (b.arrival <= p.arrival +. 1e-9))
    plain boosted;
  let span reqs =
    match (reqs, List.rev reqs) with
    | first :: _, last :: _ -> last.Workload.arrival -. first.Workload.arrival
    | _ -> 0.
  in
  check_bool "span shrank about 4x" true
    (span boosted < span plain /. 3.);
  (* Modulated arrivals remain sorted and finite. *)
  let rec sorted = function
    | a :: (b :: _ as tl) ->
        a.Workload.arrival <= b.Workload.arrival && sorted tl
    | _ -> true
  in
  check_bool "still sorted" true (sorted boosted)

(* ------------------------------------------------------------------ *)
(* Crash-recovery drills                                               *)

let drill_must_pass ?faults ?reconfig ?pool ?slot ~every g reqs =
  let overload = Qnet_overload.Admission.make ~max_queue:16 ~rate:1.5 () in
  let config = Engine.config ~overload Policy.prim in
  let d =
    Drill.crash_restore ~config ?faults ?reconfig ?pool ?slot ~every g params
      ~requests:reqs
  in
  if not (Drill.passed d) then
    Alcotest.fail (Format.asprintf "%a" Drill.pp d);
  check_bool "cut at least one checkpoint" true (d.Drill.checkpoints > 0)

let test_drill_plain () =
  let g = network 23 in
  drill_must_pass ~every:9. g (generated 24 g)

let test_drill_under_faults_and_reconfig () =
  let g = network 29 in
  let faults =
    Model.make ~mtbf:40. ~mttr:6. ~targets:Model.Both ~seed:31 ()
  in
  let switch =
    match Graph.switches g with
    | s :: _ -> s
    | [] -> Alcotest.fail "no switches"
  in
  let reconfig =
    [
      { Reconfig.time = 5.; change = Reconfig.Switch_leave switch };
      { Reconfig.time = 20.; change = Reconfig.Switch_join switch };
      {
        Reconfig.time = 12.;
        change = Reconfig.Provision { switch; qubits = 1 };
      };
    ]
  in
  drill_must_pass ~faults ~reconfig ~every:8. g (generated 30 g)

let prop_restore_any_instant =
  QCheck.Test.make ~count:6 ~name:"restore at any instant, any jobs/slot"
    QCheck.(
      triple (QCheck.int_range 0 10_000) (QCheck.oneofl [ 1; 2; 4 ])
        (QCheck.oneofl [ 0.; 2.5 ]))
    (fun (seed, jobs, slot) ->
      let g = network (seed mod 97) in
      let reqs = generated (seed + 1) g in
      let faults =
        Model.make ~mtbf:50. ~mttr:7. ~targets:Model.Both ~seed:(seed + 2) ()
      in
      let run pool =
        let overload = Qnet_overload.Admission.make ~max_queue:12 ~rate:1. () in
        let config = Engine.config ~overload Policy.prim in
        let d =
          Drill.crash_restore ~config ~faults ?pool ~slot ~every:13. g params
            ~requests:reqs
        in
        Drill.passed d
      in
      if jobs = 1 then run None
      else Pool.with_pool ~jobs (fun pool -> run (Some pool)))

(* ------------------------------------------------------------------ *)
(* Binary wire codec                                                   *)

let arbitrary_dumped =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Metrics.D_counter n) (int_range 0 1_000_000_000);
        map (fun x -> Metrics.D_gauge x) (float_range (-1e12) 1e12);
        map2
          (fun (n, sum) counts ->
            Metrics.D_histogram
              {
                Metrics.d_n = n;
                d_sum = sum;
                d_vmin = (if n = 0 then infinity else -3.5);
                d_vmax = (if n = 0 then neg_infinity else sum);
                d_counts = Array.of_list counts;
              })
          (pair (int_range 0 1000) (float_range 0. 1e6))
          (list_size (int_range 0 64) (int_range 0 1000));
      ])

let prop_wire_metrics_roundtrip =
  QCheck.Test.make ~count:100 ~name:"wire metrics-diff round-trip"
    (QCheck.make
       QCheck.Gen.(
         pair
           (small_list (string_size (int_range 0 12)))
           (small_list (pair (string_size (int_range 0 12)) arbitrary_dumped))))
    (fun (removed, upserts) ->
      let payload = Wire.encode_metrics_diff ~removed ~upserts in
      match Wire.of_hex (Wire.to_hex payload) with
      | Error m -> QCheck.Test.fail_report ("hex round-trip: " ^ m)
      | Ok payload' -> (
          if not (String.equal payload payload') then
            QCheck.Test.fail_report "hex armour is not the identity";
          match Wire.decode_metrics_diff payload' with
          | Error m -> QCheck.Test.fail_report ("decode: " ^ m)
          | Ok (removed', upserts') ->
              removed = removed' && upserts = upserts'))

let test_wire_primitives () =
  let enc = Wire.encoder () in
  Wire.put_int enc min_int;
  Wire.put_int enc max_int;
  Wire.put_int enc 0;
  Wire.put_int enc (-1);
  Wire.put_uint enc 0;
  Wire.put_uint enc max_int;
  List.iter (Wire.put_float enc)
    [ 0.; -0.; infinity; neg_infinity; nan; 1e-308; Float.pi ];
  Wire.put_string enc "";
  Wire.put_string enc "hex\x00armoured\xff";
  let dec = Wire.decoder (Wire.contents enc) in
  check_bool "min_int" true (Wire.get_int dec = min_int);
  check_bool "max_int" true (Wire.get_int dec = max_int);
  check_bool "zero" true (Wire.get_int dec = 0);
  check_bool "minus one" true (Wire.get_int dec = -1);
  check_bool "uint zero" true (Wire.get_uint dec = 0);
  check_bool "uint max" true (Wire.get_uint dec = max_int);
  List.iter
    (fun x ->
      (* bit-identical, so NaN and -0. both count *)
      check_bool "float bits" true
        (Int64.equal (Int64.bits_of_float x)
           (Int64.bits_of_float (Wire.get_float dec))))
    [ 0.; -0.; infinity; neg_infinity; nan; 1e-308; Float.pi ];
  check_bool "empty string" true (Wire.get_string dec = "");
  check_bool "binary string" true (Wire.get_string dec = "hex\x00armoured\xff");
  check_bool "fully consumed" true (Wire.remaining dec = 0);
  (* Truncated input surfaces as a friendly result, not an exception. *)
  match Wire.decode_metrics_diff "\x05" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded a truncated payload"

(* ------------------------------------------------------------------ *)
(* Delta codec                                                         *)

(* Capture every snapshot a real (faulty, overloaded) run cuts, then
   check the delta laws pairwise: apply (diff base next) reconstructs
   next structurally, and the sexp rendering round-trips. *)
let consecutive_snapshots seed =
  let g = network seed in
  let reqs = generated (seed + 1) g in
  let faults =
    Model.make ~mtbf:40. ~mttr:6. ~targets:Model.Both ~seed:(seed + 2) ()
  in
  let overload = Qnet_overload.Admission.make ~max_queue:12 ~rate:1. () in
  let config = Engine.config ~overload Policy.prim in
  let snaps = ref [] in
  let _ =
    Engine.run ~config ~faults
      ~checkpoint:(6., fun _ snap -> snaps := snap :: !snaps)
      g params ~requests:reqs
  in
  List.rev !snaps

let snapshot_equal a b =
  String.equal
    (Sexp.to_string (Engine.snapshot_to_sexp a))
    (Sexp.to_string (Engine.snapshot_to_sexp b))

let test_delta_reconstructs () =
  let snaps = consecutive_snapshots 47 in
  check_bool "captured at least three snapshots" true (List.length snaps >= 3);
  let rec pairs = function
    | a :: (b :: _ as tl) -> (a, b) :: pairs tl
    | _ -> []
  in
  List.iteri
    (fun i (base, next) ->
      let d = Delta.diff ~base next in
      (match Delta.apply ~base d with
      | Error m -> Alcotest.fail (Printf.sprintf "delta %d: apply: %s" i m)
      | Ok next' ->
          check_bool
            (Printf.sprintf "delta %d reconstructs structurally" i)
            true (compare next next' = 0);
          check_bool
            (Printf.sprintf "delta %d reconstructs byte-identically" i)
            true (snapshot_equal next next'));
      (* sexp round-trip, then apply again from the parsed form *)
      match Delta.of_sexp (Delta.to_sexp d) with
      | Error m -> Alcotest.fail (Printf.sprintf "delta %d: re-parse: %s" i m)
      | Ok d' -> (
          match Delta.apply ~base d' with
          | Error m ->
              Alcotest.fail (Printf.sprintf "delta %d: parsed apply: %s" i m)
          | Ok next' ->
              check_bool
                (Printf.sprintf "parsed delta %d reconstructs" i)
                true (compare next next' = 0)))
    (pairs snaps)

let test_delta_rejects_wrong_base () =
  match consecutive_snapshots 53 with
  | s0 :: s1 :: _ ->
      (* A removal the base does not have means the delta belongs to a
         different predecessor — apply must say so, not guess. *)
      let d = Delta.diff ~base:s0 s1 in
      let phantom =
        { d with Delta.d_events_removed = (9999., 9999) :: d.Delta.d_events_removed }
      in
      (match Delta.apply ~base:s0 phantom with
      | Error m ->
          check_bool "phantom removal is named" true
            (Astring.String.is_infix ~affix:"the base does not have" m)
      | Ok _ -> Alcotest.fail "applied a delta with a phantom removal");
      (* Malformed documents are named, not thrown. *)
      (match Delta.of_sexp (Sexp.atom "junk") with
      | Error m ->
          check_bool "names the malformed document" true
            (Astring.String.is_infix ~affix:"malformed delta" m)
      | Ok _ -> Alcotest.fail "parsed junk as a delta");
      (match
         Delta.of_sexp (Sexp.list [ Sexp.atom "muerp-snapshot-delta/999" ])
       with
      | Error m ->
          check_bool "names the version" true
            (Astring.String.is_infix ~affix:"unsupported delta version" m)
      | Ok _ -> Alcotest.fail "parsed an unknown delta version")
  | _ -> Alcotest.fail "expected at least three snapshots"

(* ------------------------------------------------------------------ *)
(* Incremental chains: crash drills, journal replay, corruption        *)

let with_tmp_dir f =
  let dir = Filename.temp_dir "muerp_chain" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let chain_drill_must_pass ?inject ?pool ?slot ~cadence seed =
  let g = network seed in
  let reqs = generated (seed + 1) g in
  let faults =
    Model.make ~mtbf:45. ~mttr:6. ~targets:Model.Both ~seed:(seed + 2) ()
  in
  let overload = Qnet_overload.Admission.make ~max_queue:14 ~rate:1.2 () in
  let config = Engine.config ~overload Policy.prim in
  with_tmp_dir (fun dir ->
      let d =
        Drill.chain_restore ~config ~faults ?inject ?pool ?slot ~every:8.
          ~cadence ~dir g params ~requests:reqs
      in
      if not (Drill.chain_passed d) then
        Alcotest.fail (Format.asprintf "%a" Drill.pp_chain d);
      check_bool "exercised several crash points" true (d.Drill.chain_captures >= 3);
      d)

let test_chain_drill_clean () =
  let d = chain_drill_must_pass ~cadence:3 59 in
  check_bool "no capture degraded on a clean chain" true
    (d.Drill.chain_degraded = 0)

let test_chain_drill_torn_write () =
  (* Truncating the newest file of every capture simulates the
     mid-write crash; every crash point must still complete
     byte-identically (from an earlier state) or fail friendly. *)
  List.iter
    (fun n -> ignore (chain_drill_must_pass ~inject:(Drill.Torn_write n) ~cadence:3 61))
    [ 1; 7; 64; 10_000 ]

let test_chain_drill_bit_flip () =
  List.iter
    (fun bit ->
      ignore (chain_drill_must_pass ~inject:(Drill.Bit_flip bit) ~cadence:3 67))
    [ 3; 1009; 65537 ]

let prop_chain_restore_any_instant =
  QCheck.Test.make ~count:4 ~name:"chain restore at any cut, any jobs/slot"
    QCheck.(
      triple (int_range 0 10_000) (oneofl [ 1; 2; 4 ]) (oneofl [ 0.; 2.5 ]))
    (fun (seed, jobs, slot) ->
      let run pool =
        ignore
          (chain_drill_must_pass ?pool ~slot ~cadence:((seed mod 4) + 2)
             (seed mod 89));
        true
      in
      if jobs = 1 then run None
      else Pool.with_pool ~jobs (fun pool -> run (Some pool)))

(* The corruption matrix: build a real chain, then truncate each file
   at every byte boundary and flip random bits, checking that recovery
   always either lands on one of the states the writer actually cut
   (structural equality) or fails with a message naming the file —
   never an exception. *)
let test_chain_corruption_matrix () =
  with_tmp_dir (fun dir ->
      let g = network ~users:4 ~switches:10 71 in
      let wspec =
        Workload.spec ~requests:16 ~arrivals:(Workload.Poisson 0.6) ()
      in
      let reqs = Workload.generate (Prng.create 72) g wspec in
      let root = Filename.concat dir "m.ckpt" in
      let jpath = Chain.journal_path root in
      (* Cadence above the cut count: the chain never rebases, so the
         delta files are guaranteed to still exist at run end. *)
      let writer =
        Chain.create ~path:root ~config:"matrix" ~every:100 ~journal:jpath ()
      in
      let states = ref [] in
      let sink _ snap =
        match Chain.cut writer snap with
        | Ok _ -> states := snap :: !states
        | Error m -> Alcotest.fail m
      in
      let _ =
        Engine.run ~on_transition:(Chain.on_transition writer)
          ~checkpoint:(5., sink) g params ~requests:reqs
      in
      Chain.close writer;
      check_bool "cut a real chain" true (List.length !states >= 2);
      check_bool "chain has deltas" true (Sys.file_exists (Chain.delta_path root 1));
      let files =
        List.filter Sys.file_exists
          (root :: jpath :: List.map (Chain.delta_path root) [ 1; 2; 3; 4 ])
      in
      let originals = List.map (fun p -> (p, read_file p)) files in
      let restore_all () =
        List.iter (fun (p, data) -> write_file p data) originals
      in
      let attempts = ref 0 and degraded = ref 0 in
      let recover_must_be_sane ~mutated () =
        incr attempts;
        match Chain.recover ~path:root ~config:"matrix" ~journal:jpath () with
        | exception e ->
            Alcotest.fail
              (Printf.sprintf "recovery raised %s after corrupting %s"
                 (Printexc.to_string e) mutated)
        | Error m ->
            incr degraded;
            check_bool
              (Printf.sprintf "error names a file (%s)" m)
              true
              (Astring.String.is_infix ~affix:dir m)
        | Ok r ->
            if r.Chain.r_warnings <> [] then incr degraded;
            check_bool
              (Printf.sprintf "recovered state after corrupting %s is one \
                               the writer cut" mutated)
              true
              (List.exists
                 (fun s -> compare s r.Chain.r_snapshot = 0)
                 !states)
      in
      List.iter
        (fun (path, data) ->
          let n = String.length data in
          (* Truncate at every byte boundary. *)
          for keep = 0 to n - 1 do
            restore_all ();
            write_file path (String.sub data 0 keep);
            recover_must_be_sane ~mutated:(Filename.basename path) ()
          done;
          (* Deterministic pseudo-random bit flips across the file. *)
          let rng = Prng.create (Hashtbl.hash path) in
          for _ = 1 to 40 do
            restore_all ();
            let bit = Prng.int rng (8 * n) in
            let b = Bytes.of_string data in
            let i = bit / 8 and j = bit mod 8 in
            Bytes.set b i
              (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl j)));
            write_file path (Bytes.to_string b);
            recover_must_be_sane ~mutated:(Filename.basename path) ()
          done)
        originals;
      restore_all ();
      check_bool "matrix exercised many mutations" true (!attempts > 100);
      check_bool "most mutations degraded detectably" true (!degraded > 0))

(* Torn journal tails are a warning plus fewer records, never a loss of
   the prefix. *)
let test_journal_torn_tail () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "t.journal" in
      let w =
        match Journal.create ~path ~config:"c" ~head:"h" ~index:2 with
        | Ok w -> w
        | Error m -> Alcotest.fail m
      in
      let records =
        List.init 50 (fun i ->
            if i mod 3 = 0 then
              Engine.T_admit { at = float_of_int i; lid = i; request = i * 7 }
            else if i mod 3 = 1 then
              Engine.T_release { at = float_of_int i; lid = i - 1 }
            else
              Engine.T_fault
                { at = float_of_int i; link = i mod 2 = 0; element = i; up = false })
      in
      List.iter (Journal.append w) records;
      ignore (Journal.close w);
      (match Journal.read ~path with
      | Error m -> Alcotest.fail m
      | Ok c ->
          check_bool "all records back" true (c.Journal.j_records = records);
          check_bool "chain head kept" true
            (c.Journal.j_head = "h" && c.Journal.j_index = 2);
          check_bool "clean tail" true (c.Journal.j_torn = None));
      let data = read_file path in
      (* Cut the file mid-record: the prefix must survive, the tail is
         reported torn. *)
      write_file path (String.sub data 0 (String.length data - 3));
      (match Journal.read ~path with
      | Error m -> Alcotest.fail ("torn tail must not be fatal: " ^ m)
      | Ok c ->
          check_bool "prefix survives" true
            (List.length c.Journal.j_records = List.length records - 1);
          check_bool "torn tail reported" true (c.Journal.j_torn <> None));
      (* The verifier accepts a replay that outlives a torn journal but
         rejects divergence. *)
      let v = Journal.verifier (List.filteri (fun i _ -> i < 10) records) in
      List.iter (Journal.observe v) records;
      (match Journal.finish v with
      | Ok n -> check_int "verified the journalled prefix" 10 n
      | Error m -> Alcotest.fail m);
      let v = Journal.verifier records in
      Journal.observe v (Engine.T_release { at = 99.; lid = 4242 });
      match Journal.finish v with
      | Error m ->
          check_bool "divergence is reported" true
            (Astring.String.is_infix ~affix:"diverged" m)
      | Ok _ -> Alcotest.fail "verifier accepted a diverging replay")

(* ------------------------------------------------------------------ *)
(* Streaming writes at scale                                           *)

(* A snapshot carrying 100k-switch quota/residual sections round-trips
   through the streamed writer without materialising in memory as one
   string, and bit-identically. *)
let test_checkpoint_streams_large_snapshot () =
  let _, _, snap = snapshot_of 73 in
  let big = List.init 100_000 (fun i -> (i, (i * 7 mod 13) + 1)) in
  let snap = { snap with Engine.s_quota = big; s_residual = big } in
  with_tmp (fun path ->
      (match Checkpoint.save ~path ~config:"large" snap with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      match Checkpoint.load ~path ~config:"large" with
      | Error m -> Alcotest.fail m
      | Ok snap' ->
          check_bool "100k-switch snapshot round-trips structurally" true
            (compare snap snap' = 0))

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "resilience"
    [
      ( "snapshot",
        [
          Alcotest.test_case "codec round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_snapshot_rejects_garbage;
          Alcotest.test_case "flag mismatch refused" `Quick
            test_restore_flag_mismatch_refused;
          Alcotest.test_case "stateful policy gate" `Quick
            test_checkpoint_stateful_policy_gate;
          Alcotest.test_case "cached policy restore equivalence" `Quick
            test_cached_policy_restore_equivalence;
          Alcotest.test_case "hier policy restore equivalence" `Quick
            test_hier_policy_restore_equivalence;
        ] );
      ( "checkpoint-file",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_file_roundtrip;
          Alcotest.test_case "friendly errors" `Quick
            test_checkpoint_file_errors;
          Alcotest.test_case "streams 100k-switch snapshots" `Quick
            test_checkpoint_streams_large_snapshot;
        ] );
      ( "wire",
        [
          Alcotest.test_case "primitives" `Quick test_wire_primitives;
          qc prop_wire_metrics_roundtrip;
        ] );
      ( "delta",
        [
          Alcotest.test_case "diff/apply reconstructs" `Quick
            test_delta_reconstructs;
          Alcotest.test_case "rejects wrong base and junk" `Quick
            test_delta_rejects_wrong_base;
        ] );
      ( "chain",
        [
          Alcotest.test_case "clean crash drill" `Quick test_chain_drill_clean;
          Alcotest.test_case "torn-write injection" `Quick
            test_chain_drill_torn_write;
          Alcotest.test_case "bit-flip injection" `Quick
            test_chain_drill_bit_flip;
          Alcotest.test_case "corruption matrix" `Quick
            test_chain_corruption_matrix;
          Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
          qc prop_chain_restore_any_instant;
        ] );
      ( "reconfig",
        [
          Alcotest.test_case "validate" `Quick test_reconfig_validate;
          Alcotest.test_case "sexp round-trip" `Quick
            test_reconfig_sexp_roundtrip;
          Alcotest.test_case "drain recovers lease" `Quick
            test_reconfig_drain_recovers_lease;
          Alcotest.test_case "join restores service" `Quick
            test_reconfig_join_restores_service;
          Alcotest.test_case "provision shrink recovers" `Quick
            test_reconfig_provision_shrink_recovers;
        ] );
      ( "modulators",
        [
          Alcotest.test_case "intensity" `Quick test_modulator_intensity;
          Alcotest.test_case "spec validation" `Quick
            test_modulator_spec_validation;
          Alcotest.test_case "flat is identity" `Quick
            test_flat_modulation_is_identity;
          Alcotest.test_case "flash compresses arrivals" `Quick
            test_flash_compresses_arrivals;
        ] );
      ( "drill",
        [
          Alcotest.test_case "plain" `Quick test_drill_plain;
          Alcotest.test_case "faults + reconfig" `Quick
            test_drill_under_faults_and_reconfig;
          qc prop_restore_any_instant;
        ] );
    ]
