(* Telemetry subsystem: counter/gauge semantics, histogram buckets and
   quantiles, span nesting, exporter round-trips, plus qcheck
   properties that histogram merge is commutative/associative and that
   quantiles stay inside the observed range. *)

module Tm = Qnet_telemetry.Metrics
module Clock = Qnet_telemetry.Clock
module Span = Qnet_telemetry.Span
module Export = Qnet_telemetry.Export
module Histogram = Tm.Histogram
module Sexp = Qnet_util.Sexp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* The registry and enable flag are process-wide; every test starts
   from a clean, enabled state. *)
let fresh () =
  Tm.set_enabled true;
  Tm.reset ()

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotone () =
  let a = Clock.now_s () in
  let b = Clock.now_s () in
  check_bool "non-decreasing" true (b >= a);
  let (), dt = Clock.time (fun () -> ignore (Sys.opaque_identity 42)) in
  check_bool "elapsed non-negative" true (dt >= 0.);
  check_bool "elapsed_since non-negative" true (Clock.elapsed_since a >= 0.)

(* ------------------------------------------------------------------ *)
(* Counters and gauges *)

let test_counter () =
  fresh ();
  let c = Tm.counter "test.counter" in
  check_int "starts at zero" 0 (Tm.Counter.value c);
  Tm.Counter.incr c;
  Tm.Counter.add c 4;
  check_int "incr + add" 5 (Tm.Counter.value c);
  check_bool "same handle on re-registration" true (c == Tm.counter "test.counter");
  Tm.set_enabled false;
  Tm.Counter.incr c;
  check_int "disabled increments are dropped" 5 (Tm.Counter.value c);
  Tm.set_enabled true;
  Tm.reset ();
  check_int "reset zeroes but keeps the handle" 0 (Tm.Counter.value c)

let test_gauge () =
  fresh ();
  let g = Tm.gauge "test.gauge" in
  Tm.Gauge.set g 2.5;
  check_float "set" 2.5 (Tm.Gauge.value g);
  Tm.Gauge.add g 0.5;
  check_float "add" 3.0 (Tm.Gauge.value g);
  Tm.Gauge.set_max g 1.0;
  check_float "set_max keeps larger" 3.0 (Tm.Gauge.value g);
  Tm.Gauge.set_max g 7.0;
  check_float "set_max takes larger" 7.0 (Tm.Gauge.value g)

let test_kind_mismatch () =
  fresh ();
  ignore (Tm.counter "test.kinded");
  Alcotest.check_raises "counter name reused as histogram"
    (Invalid_argument "Metrics: \"test.kinded\" already registered as a counter")
    (fun () -> ignore (Tm.histogram "test.kinded"))

(* ------------------------------------------------------------------ *)
(* Histogram buckets and quantiles *)

let hist_of values =
  fresh ();
  let h = Histogram.make () in
  List.iter (Histogram.observe h) values;
  h

let test_histogram_buckets () =
  (* Boundaries are powers of two with the upper bound inclusive:
     1.0 lands in the bucket whose upper bound is exactly 1.0, and
     1.5 in the next one up (upper bound 2.0). *)
  check_int "1.0 and 2.0 one bucket apart" 1
    (Histogram.bucket_of 2.0 - Histogram.bucket_of 1.0);
  check_float "upper bound of 1.0's bucket" 1.0
    (Histogram.upper_bound (Histogram.bucket_of 1.0));
  check_float "upper bound of 1.5's bucket" 2.0
    (Histogram.upper_bound (Histogram.bucket_of 1.5));
  check_float "upper bound of 0.75's bucket" 1.0
    (Histogram.upper_bound (Histogram.bucket_of 0.75));
  check_int "non-positive clamps to first bucket" 0 (Histogram.bucket_of 0.);
  check_int "huge clamps to last bucket"
    (Histogram.bucket_count - 1)
    (Histogram.bucket_of 1e12);
  let h = hist_of [ 1.0; 1.0; 1.5; 3.0 ] in
  check_int "count" 4 (Histogram.count h);
  check_float "sum" 6.5 (Histogram.sum h);
  check_float "min" 1.0 (Histogram.min_value h);
  check_float "max" 3.0 (Histogram.max_value h);
  match Histogram.nonzero_buckets h with
  | [ (b1, c1); (b2, c2); (b3, c3) ] ->
      check_float "first populated bucket" 1.0 b1;
      check_int "two observations at 1.0" 2 c1;
      check_float "second populated bucket" 2.0 b2;
      check_int "one observation at 1.5" 1 c2;
      check_float "third populated bucket" 4.0 b3;
      check_int "one observation at 3.0" 1 c3
  | other ->
      Alcotest.failf "expected 3 populated buckets, got %d" (List.length other)

let test_histogram_quantiles () =
  let h = hist_of [ 0.001; 0.002; 0.004; 0.008; 0.016; 0.032 ] in
  check_float "q=0 is min" 0.001 (Histogram.quantile h 0.);
  check_float "q=1 is max" 0.032 (Histogram.quantile h 1.);
  let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ] in
  let est = List.map (Histogram.quantile h) qs in
  List.iter
    (fun e ->
      check_bool "bounded below" true (e >= 0.001);
      check_bool "bounded above" true (e <= 0.032))
    est;
  check_bool "monotone in q" true (List.sort compare est = est);
  check_bool "empty histogram quantile is nan" true
    (Float.is_nan (Histogram.quantile (Histogram.make ()) 0.5));
  let s = Histogram.summarize h in
  check_int "summary count" 6 s.Histogram.count;
  check_float "summary mean" (0.063 /. 6.) s.Histogram.mean;
  check_bool "p50 <= p95" true (s.Histogram.p50 <= s.Histogram.p95)

let test_histogram_disabled () =
  fresh ();
  let h = Histogram.make () in
  Tm.set_enabled false;
  Histogram.observe h 1.0;
  check_int "disabled observations are dropped" 0 (Histogram.count h);
  Tm.set_enabled true

let test_histogram_merge () =
  let a = hist_of [ 0.5; 1.0 ] in
  let b = hist_of [ 2.0; 4.0; 8.0 ] in
  let m = Histogram.merge a b in
  check_int "merged count" 5 (Histogram.count m);
  check_float "merged sum" 15.5 (Histogram.sum m);
  check_float "merged min" 0.5 (Histogram.min_value m);
  check_float "merged max" 8.0 (Histogram.max_value m);
  let empty = Histogram.make () in
  let me = Histogram.merge m empty in
  check_int "merge with empty keeps count" 5 (Histogram.count me);
  check_float "merge with empty keeps min" 0.5 (Histogram.min_value me)

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  fresh ();
  check_int "no open span" 0 (Span.depth ());
  check_string "empty path" "" (Span.path ());
  let result =
    Span.with_span "outer" (fun () ->
        check_int "outer depth" 1 (Span.depth ());
        check_string "outer path" "outer" (Span.path ());
        Span.with_span "inner" (fun () ->
            check_int "inner depth" 2 (Span.depth ());
            check_string "nested path" "outer/inner" (Span.path ());
            17))
  in
  check_int "value returned through spans" 17 result;
  check_int "stack unwound" 0 (Span.depth ());
  check_int "outer recorded" 1
    (Tm.Counter.value (Tm.counter "trace.outer.calls"));
  check_int "inner recorded" 1
    (Tm.Counter.value (Tm.counter "trace.inner.calls"));
  check_int "outer duration recorded" 1
    (Histogram.count (Tm.histogram "trace.outer.seconds"))

let test_span_exception_safety () =
  fresh ();
  (try
     Span.with_span "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  check_int "stack unwound after raise" 0 (Span.depth ());
  check_int "failed span still recorded" 1
    (Tm.Counter.value (Tm.counter "trace.boom.calls"))

let test_span_disabled () =
  fresh ();
  Tm.set_enabled false;
  let x = Span.with_span "off" (fun () -> Span.depth ()) in
  check_int "disabled span does not push" 0 x;
  Tm.set_enabled true;
  check_int "disabled span not recorded" 0
    (Tm.Counter.value (Tm.counter "trace.off.calls"))

(* ------------------------------------------------------------------ *)
(* Exporters *)

let populate () =
  fresh ();
  Tm.Counter.add (Tm.counter "t.count") 7;
  Tm.Gauge.set (Tm.gauge "t.gauge") 2.5;
  let h = Tm.histogram "t.hist" in
  List.iter (Histogram.observe h) [ 0.5; 1.0; 2.0 ]

let test_export_sexp_round_trip () =
  populate ();
  let rendered = Sexp.to_string (Export.to_sexp ()) in
  let parsed =
    match Sexp.of_string rendered with
    | Ok t -> t
    | Error msg -> Alcotest.failf "rendered sexp does not parse: %s" msg
  in
  let field_of entry name =
    match Sexp.field entry name with
    | Ok v -> v
    | Error msg -> Alcotest.failf "missing %s: %s" name msg
  in
  let entry = field_of parsed "t.count" in
  check_int "counter survives the round-trip" 7
    (Result.get_ok (Sexp.to_int (field_of entry "value")));
  let entry = field_of parsed "t.gauge" in
  check_float "gauge survives the round-trip" 2.5
    (Result.get_ok (Sexp.to_float (field_of entry "value")));
  let entry = field_of parsed "t.hist" in
  check_int "histogram count survives" 3
    (Result.get_ok (Sexp.to_int (field_of entry "count")));
  check_float "histogram sum survives" 3.5
    (Result.get_ok (Sexp.to_float (field_of entry "sum")));
  check_float "histogram min survives" 0.5
    (Result.get_ok (Sexp.to_float (field_of entry "min")));
  check_float "histogram max survives" 2.0
    (Result.get_ok (Sexp.to_float (field_of entry "max")))

let test_export_csv () =
  populate ();
  let csv = Export.to_csv () in
  let lines = String.split_on_char '\n' csv in
  check_string "header" "metric,kind,value,gauge,sum,min,max,mean,p50,p90,p95"
    (List.hd lines);
  check_bool "counter row" true
    (List.exists (fun l -> l = "t.count,counter,7,,,,,,,,") lines);
  let hist_row =
    List.find_opt
      (fun l -> String.length l > 6 && String.sub l 0 7 = "t.hist,")
      lines
  in
  (match hist_row with
  | None -> Alcotest.fail "histogram row missing from csv"
  | Some row ->
      (* metric,kind,value,gauge,sum,min,max,... *)
      (match String.split_on_char ',' row with
      | _ :: kind :: count :: _ :: sum :: mn :: mx :: _ ->
          check_string "kind" "histogram" kind;
          check_string "count" "3" count;
          check_float "sum parses back" 3.5 (float_of_string sum);
          check_float "min parses back" 0.5 (float_of_string mn);
          check_float "max parses back" 2.0 (float_of_string mx)
      | _ -> Alcotest.fail "histogram row has wrong arity"))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
  in
  scan 0

let test_export_table () =
  populate ();
  let rendered = Qnet_util.Table.to_string (Export.to_table ()) in
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true (contains rendered needle))
    [ "metric"; "t.count"; "t.gauge"; "t.hist"; "counter"; "gauge";
      "histogram" ];
  check_bool "idle metrics hidden by default" false
    (contains
       (Qnet_util.Table.to_string
          (ignore (Tm.counter "t.never.touched");
           Export.to_table ()))
       "t.never.touched")

let test_export_hides_idle_metrics () =
  fresh ();
  ignore (Tm.counter "t.idle");
  Tm.Counter.incr (Tm.counter "t.busy");
  let snap = Tm.snapshot () in
  check_bool "idle metric snapshotted" true
    (List.mem_assoc "t.idle" snap);
  check_bool "idle metric filtered from reports" false
    (List.exists (fun (n, _) -> n = "t.idle")
       (List.filter (fun (_, v) -> Tm.touched v) snap))

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let durations_arb =
  QCheck.list_of_size (QCheck.Gen.int_range 0 40)
    (QCheck.float_range 1e-9 1000.)

let same_histogram a b =
  Histogram.count a = Histogram.count b
  && Histogram.nonzero_buckets a = Histogram.nonzero_buckets b
  && Histogram.min_value a = Histogram.min_value b
  && Histogram.max_value a = Histogram.max_value b
  && Float.abs (Histogram.sum a -. Histogram.sum b)
     <= 1e-9 *. (1. +. Float.abs (Histogram.sum a))

let prop_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"histogram merge is commutative"
    (QCheck.pair durations_arb durations_arb)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      same_histogram (Histogram.merge a b) (Histogram.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"histogram merge is associative"
    (QCheck.triple durations_arb durations_arb durations_arb)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      same_histogram
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let prop_quantiles_bounded =
  QCheck.Test.make ~count:200 ~name:"quantiles stay within observed range"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 40)
          (QCheck.float_range 1e-9 1000.))
       (QCheck.float_range 0. 1.))
    (fun (xs, q) ->
      let h = hist_of xs in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let est = Histogram.quantile h q in
      est >= lo && est <= hi)

let prop_merge_quantiles_bounded =
  QCheck.Test.make ~count:200
    ~name:"merged quantiles stay within the union of ranges"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 40)
          (QCheck.float_range 1e-9 1000.))
       (QCheck.list_of_size (QCheck.Gen.int_range 1 40)
          (QCheck.float_range 1e-9 1000.)))
    (fun (xs, ys) ->
      let m = Histogram.merge (hist_of xs) (hist_of ys) in
      let all = xs @ ys in
      let lo = List.fold_left Float.min infinity all in
      let hi = List.fold_left Float.max neg_infinity all in
      List.for_all
        (fun q ->
          let est = Histogram.quantile m q in
          est >= lo && est <= hi)
        [ 0.; 0.25; 0.5; 0.75; 0.95; 1. ])

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "telemetry"
    [
        ( "clock",
          [ Alcotest.test_case "monotone" `Quick test_clock_monotone ] );
        ( "metrics",
          [
            Alcotest.test_case "counter" `Quick test_counter;
            Alcotest.test_case "gauge" `Quick test_gauge;
            Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          ] );
        ( "histogram",
          [
            Alcotest.test_case "buckets" `Quick test_histogram_buckets;
            Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
            Alcotest.test_case "disabled" `Quick test_histogram_disabled;
            Alcotest.test_case "merge" `Quick test_histogram_merge;
          ] );
        ( "span",
          [
            Alcotest.test_case "nesting" `Quick test_span_nesting;
            Alcotest.test_case "exception safety" `Quick
              test_span_exception_safety;
            Alcotest.test_case "disabled" `Quick test_span_disabled;
          ] );
        ( "export",
          [
            Alcotest.test_case "sexp round-trip" `Quick
              test_export_sexp_round_trip;
            Alcotest.test_case "csv" `Quick test_export_csv;
            Alcotest.test_case "table" `Quick test_export_table;
            Alcotest.test_case "hides idle metrics" `Quick
              test_export_hides_idle_metrics;
          ] );
        ( "properties",
        qcheck
          [
            prop_merge_commutative;
            prop_merge_associative;
            prop_quantiles_bounded;
            prop_merge_quantiles_bounded;
          ] );
    ]
