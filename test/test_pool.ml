(* Unit tests for Qnet_util.Pool: the domain pool's scheduling must
   never leak into results — serial and parallel runs agree exactly —
   and misuse (nesting, use after shutdown) fails loudly. *)

module Pool = Qnet_util.Pool
module Prng = Qnet_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_create_bounds () =
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0));
  check_bool "recommended >= 1" true (Pool.recommended_jobs () >= 1);
  let p = Pool.create ~jobs:3 in
  check_int "jobs" 3 (Pool.jobs p);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let test_map_matches_serial () =
  let f i = (i * i) + 7 in
  let expected = Array.init 1000 f in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let got = Pool.parallel_map p 1000 f in
          check_bool
            (Printf.sprintf "map identical at jobs=%d" jobs)
            true
            (got = expected);
          (* Odd chunk sizes change scheduling only. *)
          let got = Pool.parallel_map p ~chunk:7 1000 f in
          check_bool
            (Printf.sprintf "map identical at jobs=%d chunk=7" jobs)
            true
            (got = expected)))
    [ 1; 2; 3; 4 ]

let test_empty_and_tiny () =
  Pool.with_pool ~jobs:4 (fun p ->
      check_int "empty map" 0 (Array.length (Pool.parallel_map p 0 Fun.id));
      Pool.parallel_for p 0 (fun _ -> Alcotest.fail "task ran for n = 0");
      (* Fewer tasks than workers. *)
      check_bool "n < jobs" true
        (Pool.parallel_map p 2 string_of_int = [| "0"; "1" |]))

let test_for_covers_every_index () =
  Pool.with_pool ~jobs:4 (fun p ->
      let hits = Array.make 257 0 in
      (* Each slot is written by exactly one task, so no race. *)
      Pool.parallel_for p ~chunk:3 257 (fun i -> hits.(i) <- hits.(i) + 1);
      check_bool "each index exactly once" true
        (Array.for_all (fun c -> c = 1) hits))

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          (match Pool.parallel_for p 100 (fun i -> if i = 41 then raise (Boom i)) with
          | () -> Alcotest.fail "expected Boom"
          | exception Boom 41 -> ());
          (* The pool survives a failed region. *)
          check_bool "usable after failure" true
            (Pool.parallel_map p 5 Fun.id = [| 0; 1; 2; 3; 4 |])))
    [ 1; 4 ]

let test_nested_rejected () =
  Pool.with_pool ~jobs:2 (fun p ->
      let saw_reject = ref false in
      Pool.parallel_for p 4 (fun _ ->
          match Pool.parallel_for p 2 ignore with
          | () -> ()
          | exception Invalid_argument _ -> saw_reject := true);
      check_bool "nested region rejected" true !saw_reject)

let test_use_after_shutdown () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  match Pool.parallel_for p 3 ignore with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_in_parallel_region () =
  check_bool "outside any region" false (Pool.in_parallel_region ());
  Pool.with_pool ~jobs:2 (fun p ->
      let inside = Array.make 8 false in
      Pool.parallel_for p 8 (fun i -> inside.(i) <- Pool.in_parallel_region ());
      check_bool "flagged inside region" true (Array.for_all Fun.id inside));
  (* The serial fast path flags the region too, so a jobs=1 pool still
     rejects nesting the same way. *)
  Pool.with_pool ~jobs:1 (fun p ->
      let inside = ref false in
      Pool.parallel_for p 1 (fun _ -> inside := Pool.in_parallel_region ());
      check_bool "flagged on serial fast path" true !inside);
  check_bool "cleared after region" false (Pool.in_parallel_region ())

let test_map_thunks () =
  let expected = Array.init 33 (fun i -> (i * 3) + 1) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let thunks = Array.init 33 (fun i () -> (i * 3) + 1) in
          check_bool
            (Printf.sprintf "thunk results in order at jobs=%d" jobs)
            true
            (Pool.map_thunks p thunks = expected);
          check_int "empty thunks" 0 (Array.length (Pool.map_thunks p [||]))))
    [ 1; 3 ]

let test_split_seeds_deterministic () =
  let seeds1 = Pool.split_seeds (Prng.create 42) 8 in
  let seeds2 = Pool.split_seeds (Prng.create 42) 8 in
  check_int "count" 8 (Array.length seeds1);
  Array.iteri
    (fun i rng1 ->
      let a = Prng.next_int64 rng1 and b = Prng.next_int64 seeds2.(i) in
      check_bool (Printf.sprintf "seed %d reproducible" i) true (a = b))
    seeds1;
  (* Distinct tasks get distinct streams. *)
  let seeds = Pool.split_seeds (Prng.create 42) 8 in
  let draws = Array.map Prng.next_int64 seeds in
  let distinct =
    Array.to_list draws |> List.sort_uniq compare |> List.length
  in
  check_int "streams distinct" 8 distinct

let test_randomized_work_independent_of_jobs () =
  (* A Monte-Carlo-shaped loop: per-task rngs drawn up front, so sums
     agree bitwise at every pool size. *)
  let run jobs =
    let rngs = Pool.split_seeds (Prng.create 7) 64 in
    Pool.with_pool ~jobs (fun p ->
        Pool.parallel_map p 64 (fun i -> Prng.float rngs.(i) 1.))
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "floats identical at jobs=%d" jobs)
        true
        (run jobs = base))
    [ 2; 4 ]

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "create bounds" `Quick test_create_bounds;
          Alcotest.test_case "map matches serial" `Quick
            test_map_matches_serial;
          Alcotest.test_case "empty and tiny" `Quick test_empty_and_tiny;
          Alcotest.test_case "for covers every index" `Quick
            test_for_covers_every_index;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested rejected" `Quick test_nested_rejected;
          Alcotest.test_case "use after shutdown" `Quick
            test_use_after_shutdown;
          Alcotest.test_case "in_parallel_region" `Quick
            test_in_parallel_region;
          Alcotest.test_case "map_thunks" `Quick test_map_thunks;
          Alcotest.test_case "split_seeds deterministic" `Quick
            test_split_seeds_deterministic;
          Alcotest.test_case "randomized work independent of jobs" `Quick
            test_randomized_work_independent_of_jobs;
        ] );
    ]
