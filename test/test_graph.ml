(* Unit tests for Qnet_graph.Graph. *)

module Graph = Qnet_graph.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small fixture: two users bridged by two switches.
     u0 -- s2 -- s3 -- u1   plus a chord u0 -- s3. *)
let fixture () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:10 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:10 ~x:30. ~y:0.
  in
  let s2 =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x:10. ~y:0.
  in
  let s3 =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:20. ~y:0.
  in
  let e0 = Graph.Builder.add_edge b u0 s2 10. in
  let e1 = Graph.Builder.add_edge b s2 s3 10. in
  let e2 = Graph.Builder.add_edge b s3 u1 10. in
  let e3 = Graph.Builder.add_edge b u0 s3 22. in
  (Graph.Builder.freeze b, (u0, u1, s2, s3), (e0, e1, e2, e3))

let test_counts () =
  let g, _, _ = fixture () in
  check_int "vertices" 4 (Graph.vertex_count g);
  check_int "edges" 4 (Graph.edge_count g);
  check_int "users" 2 (Graph.user_count g);
  check_int "switches" 2 (Graph.switch_count g)

let test_kinds_and_qubits () =
  let g, (u0, u1, s2, s3), _ = fixture () in
  check_bool "u0 user" true (Graph.is_user g u0);
  check_bool "s2 switch" true (Graph.is_switch g s2);
  check_bool "u1 not switch" false (Graph.is_switch g u1);
  check_int "switch qubits" 4 (Graph.qubits g s2);
  check_int "small switch qubits" 2 (Graph.qubits g s3);
  Alcotest.(check (list int)) "user list" [ u0; u1 ] (Graph.users g);
  Alcotest.(check (list int)) "switch list" [ s2; s3 ] (Graph.switches g)

let test_adjacency () =
  let g, (u0, u1, s2, s3), (e0, _, _, e3) = fixture () in
  check_int "u0 degree" 2 (Graph.degree g u0);
  check_int "u1 degree" 1 (Graph.degree g u1);
  check_int "s3 degree" 3 (Graph.degree g s3);
  Alcotest.(check (list (pair int int)))
    "u0 neighbors sorted" [ (s2, e0); (s3, e3) ]
    (Graph.neighbors g u0);
  check_bool "has edge" true (Graph.has_edge g u0 s2);
  check_bool "undirected" true (Graph.has_edge g s2 u0);
  check_bool "absent edge" false (Graph.has_edge g u0 u1);
  check_bool "find_edge present" true (Graph.find_edge g s2 s3 <> None);
  check_bool "find_edge absent" true (Graph.find_edge g u1 u0 = None)

let test_edge_accessors () =
  let g, (u0, _, s2, s3), (e0, e1, _, _) = fixture () in
  let e = Graph.edge g e0 in
  check_bool "endpoints normalised" true (e.Graph.a < e.Graph.b);
  Alcotest.(check (float 1e-9)) "length" 10. e.Graph.length;
  check_int "other end" s2 (Graph.edge_other_end g e0 u0);
  check_int "other end reversed" u0 (Graph.edge_other_end g e0 s2);
  Alcotest.check_raises "not an endpoint"
    (Invalid_argument "Graph.edge_other_end: vertex not an endpoint")
    (fun () -> ignore (Graph.edge_other_end g e1 u0));
  ignore s3

let test_builder_errors () =
  let b = Graph.Builder.create () in
  let v0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:1 ~x:0. ~y:0. in
  let v1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:1 ~x:1. ~y:0. in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.Builder.add_edge: self-loop") (fun () ->
      ignore (Graph.Builder.add_edge b v0 v0 1.));
  Alcotest.check_raises "bad vertex"
    (Invalid_argument "Graph.Builder.add_edge: vertex out of range") (fun () ->
      ignore (Graph.Builder.add_edge b v0 99 1.));
  Alcotest.check_raises "non-positive length"
    (Invalid_argument
       "Graph.Builder.add_edge: length must be positive and finite")
    (fun () -> ignore (Graph.Builder.add_edge b v0 v1 0.));
  ignore (Graph.Builder.add_edge b v0 v1 1.);
  Alcotest.check_raises "parallel edge"
    (Invalid_argument "Graph.Builder.add_edge: parallel edge") (fun () ->
      ignore (Graph.Builder.add_edge b v1 v0 2.));
  Alcotest.check_raises "negative qubits"
    (Invalid_argument "Graph.Builder.add_vertex: negative qubits") (fun () ->
      ignore
        (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:(-1) ~x:0. ~y:0.))

let test_builder_freeze_once () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:1 ~x:0. ~y:0.);
  ignore (Graph.Builder.freeze b);
  Alcotest.check_raises "reuse after freeze"
    (Invalid_argument "Graph.Builder: builder already frozen") (fun () ->
      ignore (Graph.Builder.freeze b))

let test_remove_edges () =
  let g, (u0, u1, s2, s3), (e0, _, _, _) = fixture () in
  let g' = Graph.remove_edges g [ e0 ] in
  check_int "one fewer edge" 3 (Graph.edge_count g');
  check_int "vertices unchanged" 4 (Graph.vertex_count g');
  check_bool "removed edge gone" false (Graph.has_edge g' u0 s2);
  check_bool "chord survives" true (Graph.has_edge g' u0 s3);
  (* Edge ids are dense after removal. *)
  for i = 0 to Graph.edge_count g' - 1 do
    check_int "dense ids" i (Graph.edge g' i).Graph.eid
  done;
  ignore u1

let test_remove_edges_invalid () =
  let g, _, _ = fixture () in
  Alcotest.check_raises "unknown edge id"
    (Invalid_argument "Graph.edge: out of range") (fun () ->
      ignore (Graph.remove_edges g [ 99 ]))

let test_with_qubits () =
  let g, (_, _, s2, s3), _ = fixture () in
  let g' =
    Graph.with_qubits g (fun v ->
        match v.Graph.kind with
        | Graph.User -> v.Graph.qubits
        | Graph.Switch -> 8)
  in
  check_int "switch boosted" 8 (Graph.qubits g' s2);
  check_int "other switch boosted" 8 (Graph.qubits g' s3);
  check_int "edges preserved" (Graph.edge_count g) (Graph.edge_count g');
  check_int "original untouched" 4 (Graph.qubits g s2)

let test_average_degree () =
  let g, _, _ = fixture () in
  Alcotest.(check (float 1e-9)) "2E/V" 2. (Graph.average_degree g)

let test_euclidean () =
  let g, (u0, u1, _, _), _ = fixture () in
  Alcotest.(check (float 1e-9))
    "distance" 30.
    (Graph.euclidean (Graph.vertex g u0) (Graph.vertex g u1))

let test_iterators () =
  let g, _, _ = fixture () in
  let count = ref 0 in
  Graph.iter_edges g (fun _ -> incr count);
  check_int "iter_edges visits all" 4 !count;
  let total =
    Graph.fold_edges g ~init:0. ~f:(fun acc e -> acc +. e.Graph.length)
  in
  Alcotest.(check (float 1e-9)) "fold over lengths" 52. total;
  let vcount = ref 0 in
  Graph.iter_vertices g (fun _ -> incr vcount);
  check_int "iter_vertices" 4 !vcount

let test_out_of_range_accessors () =
  let g, _, _ = fixture () in
  Alcotest.check_raises "vertex range"
    (Invalid_argument "Graph.vertex: out of range") (fun () ->
      ignore (Graph.vertex g 4));
  Alcotest.check_raises "edge range"
    (Invalid_argument "Graph.edge: out of range") (fun () ->
      ignore (Graph.edge g (-1)));
  Alcotest.check_raises "neighbors range"
    (Invalid_argument "Graph.neighbors: out of range") (fun () ->
      ignore (Graph.neighbors g 7))

(* The CSR arrays are a mirror of the adjacency lists; any divergence
   (order included) would silently change Dijkstra/BFS results. *)
let csr_agrees g =
  let off = Graph.csr_offsets g and pairs = Graph.csr_pairs g in
  Array.length off = Graph.vertex_count g + 1
  && 2 * off.(Graph.vertex_count g) = Array.length pairs
  && List.for_all
       (fun v ->
         let from_csr =
           List.init
             (off.(v + 1) - off.(v))
             (fun j ->
               let k = off.(v) + j in
               (pairs.(2 * k), pairs.((2 * k) + 1)))
         in
         let from_iter = ref [] in
         Graph.iter_adjacent g v (fun w eid ->
             from_iter := (w, eid) :: !from_iter);
         from_csr = Graph.neighbors g v
         && List.rev !from_iter = from_csr
         && Graph.degree g v = List.length from_csr)
       (List.init (Graph.vertex_count g) Fun.id)

let prop_csr_matches_adjacency =
  QCheck.Test.make ~name:"CSR mirrors adjacency lists" ~count:100
    QCheck.(pair (int_range 1 10_000) (int_range 2 30))
    (fun (seed, n) ->
      let rng = Qnet_util.Prng.create seed in
      let b = Graph.Builder.create () in
      for i = 0 to n - 1 do
        ignore
          (Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2
             ~x:(float_of_int i) ~y:0.)
      done;
      (* Random simple edges, density ~half of all pairs. *)
      for _ = 1 to n * 2 do
        let u = Qnet_util.Prng.int rng n and v = Qnet_util.Prng.int rng n in
        if u <> v && not (Graph.Builder.has_edge b u v) then
          ignore (Graph.Builder.add_edge b u v 1.)
      done;
      csr_agrees (Graph.Builder.freeze b))

let test_csr_after_derivation () =
  let g, _, _ = fixture () in
  check_bool "frozen graph" true (csr_agrees g);
  let g' = Graph.remove_edges g [ 0 ] in
  check_bool "after remove_edges" true (csr_agrees g');
  let g'' = Graph.with_qubits g (fun v -> v.Graph.qubits + 1) in
  check_bool "after with_qubits" true (csr_agrees g'')

let () =
  Alcotest.run "graph"
    [
      ( "structure",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "kinds and qubits" `Quick test_kinds_and_qubits;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "edge accessors" `Quick test_edge_accessors;
          Alcotest.test_case "average degree" `Quick test_average_degree;
          Alcotest.test_case "euclidean" `Quick test_euclidean;
          Alcotest.test_case "iterators" `Quick test_iterators;
        ] );
      ( "builder",
        [
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "freeze once" `Quick test_builder_freeze_once;
        ] );
      ( "derivation",
        [
          Alcotest.test_case "remove edges" `Quick test_remove_edges;
          Alcotest.test_case "remove invalid" `Quick test_remove_edges_invalid;
          Alcotest.test_case "with qubits" `Quick test_with_qubits;
        ] );
      ( "errors",
        [ Alcotest.test_case "out of range" `Quick test_out_of_range_accessors ]
      );
      ( "csr",
        [
          QCheck_alcotest.to_alcotest prop_csr_matches_adjacency;
          Alcotest.test_case "csr after derivation" `Quick
            test_csr_after_derivation;
        ] );
    ]
