(* Unit tests for Qnet_graph.Paths. *)

module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let length_weight (e : Graph.edge) = e.Graph.length

(* Diamond:      1
              /     \
            0        3 --- 4
              \     /
                2            with 0-1-3 short and 0-2-3 long. *)
let diamond () =
  let b = Graph.Builder.create () in
  let add () = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:2 ~x:0. ~y:0. in
  let v0 = add () and v1 = add () and v2 = add () and v3 = add () in
  let v4 = add () in
  ignore (Graph.Builder.add_edge b v0 v1 1.);
  ignore (Graph.Builder.add_edge b v1 v3 1.);
  ignore (Graph.Builder.add_edge b v0 v2 5.);
  ignore (Graph.Builder.add_edge b v2 v3 5.);
  ignore (Graph.Builder.add_edge b v3 v4 2.);
  (Graph.Builder.freeze b, (v0, v1, v2, v3, v4))

let test_dijkstra_distances () =
  let g, (v0, v1, v2, v3, v4) = diamond () in
  let r = Paths.dijkstra g ~source:v0 ~weight:length_weight () in
  Alcotest.(check (float 1e-9)) "source" 0. r.Paths.dist.(v0);
  Alcotest.(check (float 1e-9)) "v1" 1. r.Paths.dist.(v1);
  Alcotest.(check (float 1e-9)) "v2 direct" 5. r.Paths.dist.(v2);
  Alcotest.(check (float 1e-9)) "v3 via v1" 2. r.Paths.dist.(v3);
  Alcotest.(check (float 1e-9)) "v4" 4. r.Paths.dist.(v4)

let test_extract_path () =
  let g, (v0, v1, _, v3, v4) = diamond () in
  let r = Paths.dijkstra g ~source:v0 ~weight:length_weight () in
  Alcotest.(check (option (list int)))
    "path to v4"
    (Some [ v0; v1; v3; v4 ])
    (Paths.extract_path r ~source:v0 ~target:v4)

let test_admit_filter () =
  let g, (v0, v1, v2, v3, _) = diamond () in
  (* Block the short middle vertex: the long branch must be taken. *)
  let admit v = v <> v1 in
  let r = Paths.dijkstra g ~source:v0 ~weight:length_weight ~admit () in
  Alcotest.(check (float 1e-9)) "detour distance" 10. r.Paths.dist.(v3);
  check_bool "blocked vertex unreachable" true (r.Paths.dist.(v1) = infinity);
  Alcotest.(check (option (list int)))
    "detour path"
    (Some [ v0; v2; v3 ])
    (Paths.extract_path r ~source:v0 ~target:v3)

let test_expand_filter () =
  let g, (v0, v1, v2, v3, v4) = diamond () in
  (* v1 and v2 may be entered but not relay: v3 becomes unreachable. *)
  let expand v = v <> v1 && v <> v2 in
  let r = Paths.dijkstra g ~source:v0 ~weight:length_weight ~expand () in
  Alcotest.(check (float 1e-9)) "enterable terminal" 1. r.Paths.dist.(v1);
  check_bool "beyond non-expandable unreachable" true
    (r.Paths.dist.(v3) = infinity);
  check_bool "v4 unreachable too" true (r.Paths.dist.(v4) = infinity)

let test_unreachable () =
  let b = Graph.Builder.create () in
  let v0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let v1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  let g = Graph.Builder.freeze b in
  let r = Paths.dijkstra g ~source:v0 ~weight:length_weight () in
  check_bool "isolated unreachable" true (r.Paths.dist.(v1) = infinity);
  Alcotest.(check (option (list int)))
    "no path" None
    (Paths.extract_path r ~source:v0 ~target:v1)

let test_negative_weight_rejected () =
  let g, (v0, _, _, _, _) = diamond () in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Paths.dijkstra: negative edge weight") (fun () ->
      ignore (Paths.dijkstra g ~source:v0 ~weight:(fun _ -> -1.) ()))

let test_shortest_path_wrapper () =
  let g, (v0, v1, _, v3, _) = diamond () in
  match Paths.shortest_path g ~source:v0 ~target:v3 ~weight:length_weight () with
  | None -> Alcotest.fail "expected a path"
  | Some (path, w) ->
      Alcotest.(check (list int)) "path" [ v0; v1; v3 ] path;
      Alcotest.(check (float 1e-9)) "weight" 2. w

let test_bfs () =
  let g, (v0, v1, v2, v3, v4) = diamond () in
  let hops = Paths.bfs_hops g ~source:v0 in
  check_int "hop 0" 0 hops.(v0);
  check_int "hop 1" 1 hops.(v1);
  check_int "hop v2" 1 hops.(v2);
  check_int "hop v3" 2 hops.(v3);
  check_int "hop v4" 3 hops.(v4);
  let order = Paths.bfs_order g ~source:v0 in
  check_int "order covers all" 5 (List.length order);
  check_int "starts at source" v0 (List.hd order)

let test_components () =
  let b = Graph.Builder.create () in
  let add k = Graph.Builder.add_vertex b ~kind:k ~qubits:0 ~x:0. ~y:0. in
  let a0 = add Graph.User and a1 = add Graph.User in
  let b0 = add Graph.Switch and b1 = add Graph.User in
  ignore (Graph.Builder.add_edge b a0 a1 1.);
  ignore (Graph.Builder.add_edge b b0 b1 1.);
  let g = Graph.Builder.freeze b in
  Alcotest.(check (list (list int)))
    "two components"
    [ [ a0; a1 ]; [ b0; b1 ] ]
    (Paths.connected_components g);
  check_bool "not connected" false (Paths.is_connected g);
  check_bool "users split" false (Paths.users_connected g)

let test_users_connected_ignores_switch_islands () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:9. ~y:9.);
  ignore (Graph.Builder.add_edge b u0 u1 1.);
  let g = Graph.Builder.freeze b in
  check_bool "graph not connected" false (Paths.is_connected g);
  check_bool "users still connected" true (Paths.users_connected g)

let test_path_validation () =
  let g, (v0, v1, v2, v3, _) = diamond () in
  check_bool "valid path" true (Paths.path_is_valid g [ v0; v1; v3 ]);
  check_bool "missing edge" false (Paths.path_is_valid g [ v0; v3 ]);
  check_bool "repeat vertex" false
    (Paths.path_is_valid g [ v0; v1; v3; v1 ]);
  check_bool "empty invalid" false (Paths.path_is_valid g []);
  check_bool "singleton valid" true (Paths.path_is_valid g [ v2 ])

let test_path_measures () =
  let g, (v0, v1, _, v3, v4) = diamond () in
  Alcotest.(check (float 1e-9))
    "length" 4.
    (Paths.path_length g [ v0; v1; v3; v4 ]);
  check_int "edge count" 3 (List.length (Paths.path_edges g [ v0; v1; v3; v4 ]));
  Alcotest.check_raises "non-adjacent"
    (Invalid_argument "Paths: consecutive vertices not adjacent") (fun () ->
      ignore (Paths.path_length g [ v0; v4 ]))

(* ?target is an early exit, not a different algorithm: the settled
   prefix — in particular the target itself — must agree with the full
   run for every choice of target. *)
let test_target_early_exit () =
  let g, (v0, _, _, _, _) = diamond () in
  let full = Paths.dijkstra g ~source:v0 ~weight:length_weight () in
  for t = 0 to Graph.vertex_count g - 1 do
    let r = Paths.dijkstra g ~source:v0 ~weight:length_weight ~target:t () in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "dist to %d" t)
      full.Paths.dist.(t) r.Paths.dist.(t);
    Alcotest.(check (option (list int)))
      (Printf.sprintf "path to %d" t)
      (Paths.extract_path full ~source:v0 ~target:t)
      (Paths.extract_path r ~source:v0 ~target:t)
  done

let test_target_with_filters () =
  let g, (v0, v1, _, v3, _) = diamond () in
  let admit v = v <> v1 in
  let full = Paths.dijkstra g ~source:v0 ~weight:length_weight ~admit () in
  let r =
    Paths.dijkstra g ~source:v0 ~weight:length_weight ~admit ~target:v3 ()
  in
  Alcotest.(check (float 1e-12))
    "detour distance with target" full.Paths.dist.(v3) r.Paths.dist.(v3);
  Alcotest.check_raises "bad target"
    (Invalid_argument "Paths.dijkstra: bad target") (fun () ->
      ignore (Paths.dijkstra g ~source:v0 ~weight:length_weight ~target:99 ()))

let () =
  Alcotest.run "paths"
    [
      ( "dijkstra",
        [
          Alcotest.test_case "distances" `Quick test_dijkstra_distances;
          Alcotest.test_case "extract path" `Quick test_extract_path;
          Alcotest.test_case "admit filter" `Quick test_admit_filter;
          Alcotest.test_case "expand filter" `Quick test_expand_filter;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "negative weight" `Quick
            test_negative_weight_rejected;
          Alcotest.test_case "wrapper" `Quick test_shortest_path_wrapper;
          Alcotest.test_case "target early exit" `Quick test_target_early_exit;
          Alcotest.test_case "target with filters" `Quick
            test_target_with_filters;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "user connectivity" `Quick
            test_users_connected_ignores_switch_islands;
        ] );
      ( "paths",
        [
          Alcotest.test_case "validation" `Quick test_path_validation;
          Alcotest.test_case "measures" `Quick test_path_measures;
        ] );
    ]
