(* Unit and property tests for qnet_online — the dynamic traffic engine:
   event-queue ordering, workload determinism, admission / queue /
   expiry semantics, policy adapters and cache, and the central safety
   property that concurrent leases never oversubscribe a switch. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Event_queue = Qnet_online.Event_queue
module Fsched = Qnet_faults.Schedule
module Workload = Qnet_online.Workload
module Policy = Qnet_online.Policy
module Engine = Qnet_online.Engine
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let network ?(users = 8) ?(switches = 25) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:switches
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

(* Four users joined through one 2-qubit hub: exactly one pair-channel
   fits at a time.  The canonical contention instance. *)
let hub_network () =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  (Graph.Builder.freeze b, (a0, a1), (b0, b1))

let request ?(duration = 4.) ?(patience = 0.) id users arrival =
  {
    Workload.id;
    users;
    arrival;
    duration;
    deadline = arrival +. patience;
  }

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q 3. "c";
  Event_queue.push q 1. "a";
  Event_queue.push q 2. "b";
  Alcotest.(check (option (pair (float 0.) string)))
    "peek is earliest" (Some (1., "a"))
    (Option.map (fun t -> (t, "a")) (Event_queue.peek_time q));
  let drain () =
    let rec go acc =
      match Event_queue.pop q with
      | None -> List.rev acc
      | Some (_, v) -> go (v :: acc)
    in
    go []
  in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (drain ());
  (* FIFO among equal timestamps — the determinism guarantee. *)
  List.iteri (fun i v -> Event_queue.push q (float_of_int (i mod 2)) v)
    [ "e0"; "o0"; "e1"; "o1"; "e2"; "o2" ];
  Alcotest.(check (list string))
    "fifo within a timestamp"
    [ "e0"; "e1"; "e2"; "o0"; "o1"; "o2" ]
    (drain ());
  check_bool "empty" true (Event_queue.is_empty q);
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Event_queue.push: NaN timestamp") (fun () ->
      Event_queue.push q Float.nan "x")

let test_event_queue_batches () =
  let q = Event_queue.create () in
  List.iter
    (fun (t, v) -> Event_queue.push q t v)
    [ (0., "a"); (0., "b"); (2., "c"); (2.5, "d"); (5., "e") ];
  let vals batch = List.map (fun (_, _, v) -> v) batch in
  (* pop_batch drains exactly the earliest instant, FIFO within it. *)
  let batch = Event_queue.pop_batch q in
  Alcotest.(check (list string)) "first instant" [ "a"; "b" ] (vals batch);
  List.iter (fun (t, _, _) -> check_bool "stamped at 0" true (t = 0.)) batch;
  (* drain_until takes the slot window inclusively. *)
  let batch = Event_queue.drain_until q ~upto:2.5 in
  Alcotest.(check (list string)) "slot window" [ "c"; "d" ] (vals batch);
  (* Push order survives in the seq keys — the commit total order. *)
  let seqs = List.map (fun (_, s, _) -> s) batch in
  check_bool "seq strictly ascending" true
    (List.sort_uniq compare seqs = seqs);
  Alcotest.(check (list string))
    "tail" [ "e" ]
    (vals (Event_queue.pop_batch q));
  Alcotest.(check (list string)) "empty pop_batch" [] (vals (Event_queue.pop_batch q));
  Alcotest.(check (list string))
    "empty drain" []
    (vals (Event_queue.drain_until q ~upto:100.));
  Alcotest.check_raises "nan bound rejected"
    (Invalid_argument "Event_queue.drain_until: NaN bound") (fun () ->
      ignore (Event_queue.drain_until q ~upto:Float.nan))

let test_batch_drain_matches_pop_qcheck () =
  (* Draining batch-wise — whole instants or random slot windows — must
     visit events in exactly the (time, push order) sequence that
     repeated pop does. *)
  let prop seed =
    let rng = Prng.create seed in
    let n = 1 + Prng.int rng 60 in
    let stamps =
      List.init n (fun i -> (float_of_int (Prng.int rng 8) /. 2., i))
    in
    let fill () =
      let q = Event_queue.create () in
      List.iter (fun (t, i) -> Event_queue.push q t i) stamps;
      q
    in
    let by_pop =
      let q = fill () in
      let rec go acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, v) -> go ((t, v) :: acc)
      in
      go []
    in
    let by_batch =
      let q = fill () in
      let rec go acc =
        match Event_queue.pop_batch q with
        | [] -> List.concat (List.rev acc)
        | b -> go (List.map (fun (t, _, v) -> (t, v)) b :: acc)
      in
      go []
    in
    let by_slot =
      let q = fill () in
      let slot = float_of_int (Prng.int rng 3) in
      let rec go acc =
        match Event_queue.peek_time q with
        | None -> List.concat (List.rev acc)
        | Some t0 ->
            let b = Event_queue.drain_until q ~upto:(t0 +. slot) in
            go (List.map (fun (t, _, v) -> (t, v)) b :: acc)
      in
      go []
    in
    by_pop = by_batch && by_pop = by_slot
  in
  let test =
    QCheck.Test.make ~count:200 ~name:"batch drain equals pop order"
      QCheck.(int_range 1 10_000)
      prop
  in
  QCheck.Test.check_exn test

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let test_workload_deterministic () =
  let g = network 1 in
  let spec = Workload.spec ~requests:40 () in
  let gen seed = Workload.generate (Prng.create seed) g spec in
  check_bool "same seed, same workload" true (gen 5 = gen 5);
  check_bool "different seed, different workload" true (gen 5 <> gen 6)

let test_workload_shapes () =
  let g = network 2 in
  let spec =
    Workload.spec ~requests:60
      ~arrivals:(Workload.Batched { period = 4.; size = 5 })
      ~group_size:(Workload.Fixed 3) ~duration:(2., 2.) ~patience:(1., 3.) ()
  in
  let reqs = Workload.generate (Prng.create 3) g spec in
  check_int "count" 60 (List.length reqs);
  List.iter
    (fun (r : Workload.request) ->
      check_int "fixed group" 3 (List.length r.Workload.users);
      check_bool "batched arrival on grid" true
        (Float.rem r.Workload.arrival 4. = 0.);
      check_bool "duration pinned" true (r.Workload.duration = 2.);
      check_bool "deadline after arrival" true
        (r.Workload.deadline >= r.Workload.arrival +. 1.))
    reqs;
  (* 5 per batch instant *)
  let at_zero =
    List.length
      (List.filter (fun (r : Workload.request) -> r.Workload.arrival = 0.) reqs)
  in
  check_int "batch size" 5 at_zero

let test_workload_validation () =
  let g = network 3 in
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  ignore g;
  raises "Workload.spec: Poisson rate must be positive" (fun () ->
      ignore (Workload.spec ~arrivals:(Workload.Poisson 0.) ()));
  raises "Workload.spec: group size < 2" (fun () ->
      ignore (Workload.spec ~group_size:(Workload.Fixed 1) ()));
  raises "Workload.spec: duration must be positive" (fun () ->
      ignore (Workload.spec ~duration:(0., 1.) ()));
  raises "Workload.spec: bad patience range" (fun () ->
      ignore (Workload.spec ~patience:(3., 1.) ()));
  Alcotest.check_raises "population bound"
    (Invalid_argument "Workload.generate: group size exceeds user population")
    (fun () ->
      ignore
        (Workload.generate (Prng.create 1) g
           (Workload.spec ~group_size:(Workload.Uniform (2, 100)) ())))

(* ------------------------------------------------------------------ *)
(* Engine semantics                                                    *)

let test_single_request_served () =
  let g = network 4 in
  let u = Graph.users g in
  let reqs = [ request 0 [ List.nth u 0; List.nth u 1 ] 0. ] in
  let report, outcomes = Engine.run g params ~requests:reqs in
  check_int "served" 1 report.Engine.served;
  match outcomes with
  | [ { Engine.resolution = Engine.Served { start; tree; rate; _ }; _ } ] ->
      check_bool "served on arrival" true (start = 0.);
      check_bool "positive rate" true (rate > 0.);
      check_bool "tree valid" true
        (Verify.is_valid g params
           ~users:[ List.nth u 0; List.nth u 1 ]
           tree)
  | _ -> Alcotest.fail "expected one served outcome"

let test_contention_and_queueing () =
  let g, (a0, a1), (b0, b1) = hub_network () in
  let reqs patience =
    [
      request ~duration:4. ~patience 0 [ a0; a1 ] 0.;
      request ~duration:4. ~patience 1 [ b0; b1 ] 0.;
    ]
  in
  (* Reject admission: the loser is turned away at arrival. *)
  let config = Engine.config ~admission:Engine.Reject Policy.prim in
  let report, outcomes = Engine.run ~config g params ~requests:(reqs 0.) in
  check_int "reject: one served" 1 report.Engine.served;
  check_int "reject: one rejected" 1 report.Engine.rejected;
  (match (List.nth outcomes 1).Engine.resolution with
  | Engine.Rejected { queue_full; _ } ->
      check_bool "rejected for routing, not queue bound" false queue_full
  | _ -> Alcotest.fail "expected request 1 rejected");
  (* Queueing with enough patience: the loser waits out the lease. *)
  let config = Engine.config ~retry_base:0.5 Policy.prim in
  let report, outcomes = Engine.run ~config g params ~requests:(reqs 10.) in
  check_int "queue: both served" 2 report.Engine.served;
  check_bool "waiting happened" true (report.Engine.mean_wait > 0.);
  (match (List.nth outcomes 1).Engine.resolution with
  | Engine.Served { start; attempts; _ } ->
      check_bool "served only after the lease expired" true (start >= 4.);
      check_bool "took retries" true (attempts > 1)
  | _ -> Alcotest.fail "expected request 1 served");
  check_bool "retries counted" true (report.Engine.retries > 0);
  (* Patience shorter than the lease: the loser expires. *)
  let report, outcomes = Engine.run ~config g params ~requests:(reqs 2.) in
  check_int "short patience: one served" 1 report.Engine.served;
  check_int "short patience: one expired" 1 report.Engine.expired;
  match (List.nth outcomes 1).Engine.resolution with
  | Engine.Expired { at; _ } ->
      check_bool "expired at its deadline" true (at = 2.)
  | _ -> Alcotest.fail "expected request 1 expired"

let test_queue_bound () =
  let g, (a0, a1), (b0, b1) = hub_network () in
  (* Three contenders behind one lease; a queue bound of 1 admits only
     the first into the queue, the next is turned away queue-full. *)
  let reqs =
    [
      request ~duration:10. ~patience:20. 0 [ a0; a1 ] 0.;
      request ~duration:2. ~patience:20. 1 [ b0; b1 ] 0.;
      request ~duration:2. ~patience:20. 2 [ a0; b1 ] 0.5;
    ]
  in
  let config = Engine.config ~admission:(Engine.Queue 1) Policy.prim in
  let report, outcomes = Engine.run ~config g params ~requests:reqs in
  check_int "one queue-full rejection" 1 report.Engine.rejected;
  (match (List.nth outcomes 2).Engine.resolution with
  | Engine.Rejected { queue_full; _ } ->
      check_bool "rejected because the queue was full" true queue_full
  | _ -> Alcotest.fail "expected request 2 rejected");
  check_int "queue depth peaked at the bound" 1 report.Engine.peak_queue_depth

let test_conservation_and_determinism () =
  let g = network ~qubits:2 5 in
  let spec =
    Workload.spec ~requests:50 ~arrivals:(Workload.Poisson 2.)
      ~patience:(0., 6.) ()
  in
  let run () =
    let reqs = Workload.generate (Prng.create 11) g spec in
    (* Fresh policy per run: a cached policy's memo table must not leak
       between runs. *)
    let config = Engine.config (Policy.cached Policy.prim) in
    Engine.run ~config g params ~requests:reqs
  in
  let report, outcomes = run () in
  check_int "every request resolved" 50 (List.length outcomes);
  check_int "conservation" 50
    (report.Engine.served + report.Engine.rejected + report.Engine.expired);
  let report', outcomes' = run () in
  check_bool "identical reports across runs" true (report = report');
  check_bool "identical outcome count" true
    (List.length outcomes = List.length outcomes');
  let budget =
    List.fold_left (fun acc s -> acc + Graph.qubits g s) 0 (Graph.switches g)
  in
  check_bool "peak within total budget" true
    (report.Engine.peak_qubits_in_use <= budget);
  check_bool "utilization in [0,1]" true
    (report.Engine.mean_utilization >= 0.
    && report.Engine.mean_utilization <= 1.)

let test_engine_validation () =
  let g = network 6 in
  let u = Graph.users g in
  let u0 = List.nth u 0 and u1 = List.nth u 1 in
  let bad label reqs msg =
    Alcotest.check_raises label (Invalid_argument msg) (fun () ->
        ignore (Engine.run g params ~requests:reqs))
  in
  bad "duplicate id"
    [ request 1 [ u0; u1 ] 0.; request 1 [ u0; u1 ] 1. ]
    "Engine.run: duplicate request id";
  bad "negative arrival" [ request 1 [ u0; u1 ] (-1.) ]
    "Engine.run: bad arrival time";
  bad "short group" [ request 1 [ u0 ] 0. ]
    "Engine.run: request needs >= 2 users";
  bad "duplicate users" [ request 1 [ u0; u0 ] 0. ]
    "Engine.run: duplicate users in request";
  bad "zero duration"
    [ request ~duration:0. 1 [ u0; u1 ] 0. ]
    "Engine.run: duration must be positive";
  bad "deadline before arrival"
    [ { Workload.id = 1; users = [ u0; u1 ]; arrival = 2.; duration = 1.;
        deadline = 1. } ]
    "Engine.run: deadline before arrival";
  let s = List.hd (Graph.switches g) in
  bad "non-user member" [ request 1 [ u0; s ] 0. ]
    "Engine.run: request member is not a user";
  Alcotest.check_raises "bad config"
    (Invalid_argument "Engine.config: retry_max < retry_base") (fun () ->
      ignore (Engine.config ~retry_base:2. ~retry_max:1. Policy.prim))

(* Regression: a queued request whose patience runs out exactly at a
   retry instant must be recorded [Expired], not retried into service
   past its deadline (and never [Rejected]).  The winner's lease ends
   at t = 2 — the very instant the loser's clamped final retry fires —
   so capacity IS available then; serving it anyway would breach the
   deadline contract. *)
let test_retry_at_deadline_expires () =
  let g, (a0, a1), (b0, b1) = hub_network () in
  let reqs =
    [
      request ~duration:2. ~patience:10. 0 [ a0; a1 ] 0.;
      request ~duration:2. ~patience:2. 1 [ b0; b1 ] 0.;
    ]
  in
  let config = Engine.config ~retry_base:0.5 Policy.prim in
  let report, outcomes = Engine.run ~config g params ~requests:reqs in
  check_int "winner served" 1 report.Engine.served;
  check_int "loser expired" 1 report.Engine.expired;
  check_int "nothing rejected" 0 report.Engine.rejected;
  check_int "nothing shed" 0 report.Engine.shed;
  match (List.nth outcomes 1).Engine.resolution with
  | Engine.Expired { at; _ } ->
      check_bool "expired exactly at its deadline" true (at = 2.)
  | _ -> Alcotest.fail "expected request 1 to expire at its deadline"

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)

let test_policy_names () =
  check_bool "prim" true (Policy.of_name "prim" <> None);
  check_bool "alg3" true (Policy.of_name "alg3" <> None);
  check_bool "cached-eqcast" true (Policy.of_name "cached-eqcast" <> None);
  check_bool "unknown" true (Policy.of_name "dijkstra" = None);
  check_bool "bare cached-" true (Policy.of_name "cached-" = None);
  check_int "8 selectable policies" 8 (List.length (Policy.all ()))

let test_try_consume () =
  let g, (a0, a1), _ = hub_network () in
  let capacity = Capacity.of_graph g in
  let tree =
    match Multi_group.prim_for_users g params ~capacity ~users:[ a0; a1 ] with
    | Some t -> t
    | None -> Alcotest.fail "hub pair must route"
  in
  (* prim_for_users consumed the hub's 2 qubits; a second copy of the
     same tree must be refused and leave the state untouched. *)
  let hub = List.hd (Graph.switches g) in
  check_int "hub full" 0 (Capacity.remaining capacity hub);
  check_bool "second copy refused" false (Policy.try_consume capacity tree);
  check_int "refusal left state untouched" 0 (Capacity.remaining capacity hub);
  Capacity.release_channel capacity
    (List.hd tree.Ent_tree.channels).Channel.path;
  check_bool "fits after release" true (Policy.try_consume capacity tree);
  check_int "consumed again" 0 (Capacity.remaining capacity hub)

let test_adapter_respects_residual () =
  let g, (a0, a1), (b0, b1) = hub_network () in
  let alg3 = Option.get (Policy.of_name "alg3") in
  let capacity = Capacity.of_graph g in
  check_bool "first pair routes" true
    (Qnet_online.Policy.route alg3 g params ~capacity ~users:[ a0; a1 ] <> None);
  check_bool "hub depleted: second pair refused" true
    (Qnet_online.Policy.route alg3 g params ~capacity ~users:[ b0; b1 ] = None)

let test_cached_policy () =
  let g = network 7 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1 ] in
  let p = Policy.cached Policy.prim in
  let capacity = Capacity.of_graph g in
  let t1 = Qnet_online.Policy.route p g params ~capacity ~users in
  let t2 = Qnet_online.Policy.route p g params ~capacity ~users in
  (match (t1, t2) with
  | Some t1, Some t2 ->
      check_bool "cache replays the same tree" true
        (List.for_all2 Channel.equal t1.Ent_tree.channels
           t2.Ent_tree.channels)
  | _ -> Alcotest.fail "both lookups must route");
  ignore (Qnet_online.Policy.route p g params ~capacity ~users)

(* ------------------------------------------------------------------ *)
(* Safety property: concurrent leases never oversubscribe a switch.    *)

(* Replay every served outcome's lease interval and check that at all
   times the summed per-switch demand of the live trees fits the
   switch's budget — releases happen before grants at equal instants,
   exactly like the engine's event order. *)
let assert_never_oversubscribed g outcomes =
  let events =
    List.concat_map
      (fun (o : Engine.outcome) ->
        match o.Engine.resolution with
        | Engine.Served { start; finish; tree; _ } ->
            let usage = Ent_tree.qubit_usage tree in
            [ (finish, 0, List.map (fun (v, q) -> (v, -q)) usage);
              (start, 1, usage) ]
        | _ -> [])
      outcomes
    |> List.sort compare
  in
  let used = Array.make (Graph.vertex_count g) 0 in
  List.iter
    (fun (_, _, deltas) ->
      List.iter
        (fun (v, dq) ->
          used.(v) <- used.(v) + dq;
          if used.(v) < 0 then Alcotest.fail "negative usage in replay";
          if used.(v) > Graph.qubits g v then
            Alcotest.failf "switch %d oversubscribed: %d > %d" v used.(v)
              (Graph.qubits g v))
        deltas)
    events

let test_never_oversubscribed_qcheck () =
  let prop seed =
    let g = network ~users:6 ~switches:15 ~qubits:2 ((seed mod 50) + 1) in
    let spec =
      Workload.spec ~requests:30
        ~arrivals:(Workload.Poisson 2.)
        ~group_size:(Workload.Uniform (2, 3))
        ~duration:(1., 5.) ~patience:(0., 8.) ()
    in
    let reqs = Workload.generate (Prng.create seed) g spec in
    let policy =
      match seed mod 3 with
      | 0 -> Policy.prim
      | 1 -> Policy.cached Policy.prim
      | _ -> Option.get (Policy.of_name "alg3")
    in
    let config = Engine.config policy in
    let report, outcomes = Engine.run ~config g params ~requests:reqs in
    assert_never_oversubscribed g outcomes;
    (* Every served tree must also be individually valid for its
       request's users on the real network. *)
    List.iter
      (fun (o : Engine.outcome) ->
        match o.Engine.resolution with
        | Engine.Served { tree; _ } ->
            if
              not
                (Verify.is_valid g params ~users:o.Engine.request.Workload.users
                   tree)
            then Alcotest.fail "served tree invalid"
        | _ -> ())
      outcomes;
    report.Engine.served + report.Engine.rejected + report.Engine.expired
    = report.Engine.arrived
  in
  let test =
    QCheck.Test.make ~count:25 ~name:"no oversubscription under load"
      QCheck.(int_range 1 10_000)
      prop
  in
  QCheck.Test.check_exn test

(* ------------------------------------------------------------------ *)
(* Chaos replay property: under ANY fault/repair schedule — including
   spurious repairs and duplicate failures — no switch is ever
   oversubscribed and every interrupted lease is refunded exactly
   once.  Incidents let us reconstruct each request's full tree
   timeline: a lease holds its admitted tree until the first incident,
   then each incident's [after] tree until the next, ending at the
   lease expiry (served) or at the single aborting incident
   (interrupted). *)

let assert_fault_replay_safe g outcomes incidents =
  let by_req = Hashtbl.create 16 in
  List.iter
    (fun (i : Engine.incident) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_req i.Engine.request_id)
      in
      Hashtbl.replace by_req i.Engine.request_id (prev @ [ i ]))
    incidents;
  let segments = ref [] in
  let rec walk ~finish ~final_tree t0 = function
    | [] ->
        Option.iter
          (fun f -> segments := (t0, f, Option.get final_tree) :: !segments)
          finish
    | (i : Engine.incident) :: rest -> (
        segments := (t0, i.Engine.at, i.Engine.before) :: !segments;
        match i.Engine.after with
        | Some _ -> walk ~finish ~final_tree i.Engine.at rest
        | None ->
            (* The abort must be the request's last incident. *)
            if rest <> [] then
              Alcotest.fail "incidents after an aborting incident")
  in
  List.iter
    (fun (o : Engine.outcome) ->
      let incs =
        Option.value ~default:[]
          (Hashtbl.find_opt by_req o.Engine.request.Workload.id)
      in
      match o.Engine.resolution with
      | Engine.Served { start; finish; tree; _ } ->
          List.iter
            (fun (i : Engine.incident) ->
              if i.Engine.after = None then
                Alcotest.fail "served request has an aborting incident")
            incs;
          walk ~finish:(Some finish) ~final_tree:(Some tree) start incs
      | Engine.Interrupted { start; at; _ } -> (
          match List.rev incs with
          | [] -> Alcotest.fail "interrupted without an incident"
          | last :: _ ->
              if last.Engine.after <> None then
                Alcotest.fail "interrupted but the last incident recovered";
              if last.Engine.at <> at then
                Alcotest.fail "abort time mismatch";
              if
                List.length
                  (List.filter
                     (fun (i : Engine.incident) -> i.Engine.after = None)
                     incs)
                <> 1
              then Alcotest.fail "lease aborted (refunded) more than once";
              walk ~finish:None ~final_tree:None start incs)
      | Engine.Rejected _ | Engine.Shed _ | Engine.Expired _ ->
          if incs <> [] then
            Alcotest.fail "request without a lease saw an incident")
    outcomes;
  (* Sweep the reconstructed segments: releases before grants at equal
     instants, per-switch demand within budget at all times, and every
     qubit given back by the end. *)
  let events =
    List.concat_map
      (fun (t0, t1, tree) ->
        let usage = Ent_tree.qubit_usage tree in
        [ (t1, 0, List.map (fun (v, q) -> (v, -q)) usage); (t0, 1, usage) ])
      !segments
    |> List.sort compare
  in
  let used = Array.make (Graph.vertex_count g) 0 in
  List.iter
    (fun (_, _, deltas) ->
      List.iter
        (fun (v, dq) ->
          used.(v) <- used.(v) + dq;
          if used.(v) < 0 then Alcotest.fail "negative usage in replay";
          if used.(v) > Graph.qubits g v then
            Alcotest.failf "switch %d oversubscribed: %d > %d" v used.(v)
              (Graph.qubits g v))
        deltas)
    events;
  Array.iteri
    (fun v u -> if u <> 0 then Alcotest.failf "switch %d not fully refunded" v)
    used

let test_fault_replay_qcheck () =
  let prop seed =
    let rng = Prng.create ((seed * 7) + 1) in
    let g = network ~users:6 ~switches:15 ~qubits:2 ((seed mod 50) + 1) in
    let spec =
      Workload.spec ~requests:25
        ~arrivals:(Workload.Poisson 1.5)
        ~group_size:(Workload.Uniform (2, 3))
        ~duration:(1., 5.) ~patience:(0., 8.) ()
    in
    let reqs = Workload.generate (Prng.create seed) g spec in
    (* Adversarial schedule: random instants, random elements, random
       direction — repairs of healthy elements and double failures
       included on purpose. *)
    let schedule =
      List.init
        (1 + Prng.int rng 60)
        (fun _ ->
          {
            Fsched.time = Prng.float rng 40.;
            element =
              (if Prng.bool rng then
                 Fsched.Link (Prng.int rng (Graph.edge_count g))
               else Fsched.Switch (Prng.int rng (Graph.vertex_count g)));
            up = Prng.bool rng;
          })
    in
    let recovery =
      match seed mod 3 with
      | 0 -> Engine.Abort
      | 1 -> Engine.Repair
      | _ -> Engine.Reroute
    in
    let config = Engine.config ~recovery Policy.prim in
    let incidents = ref [] in
    let report, outcomes =
      Engine.run ~config ~fault_schedule:schedule
        ~on_incident:(fun i -> incidents := i :: !incidents)
        g params ~requests:reqs
    in
    assert_fault_replay_safe g outcomes (List.rev !incidents);
    let interrupted =
      List.length
        (List.filter
           (fun o ->
             match o.Engine.resolution with
             | Engine.Interrupted _ -> true
             | _ -> false)
           outcomes)
    in
    check_int "aborts match interrupted outcomes" report.Engine.leases_aborted
      interrupted;
    check_int "interruption ledger balances" report.Engine.leases_interrupted
      (report.Engine.leases_recovered + report.Engine.leases_aborted);
    report.Engine.served + report.Engine.rejected + report.Engine.expired
    + interrupted
    = report.Engine.arrived
  in
  let test =
    QCheck.Test.make ~count:120
      ~name:"fault replay: refund exactly once, never oversubscribed"
      QCheck.(int_range 1 10_000)
      prop
  in
  QCheck.Test.check_exn test

(* ------------------------------------------------------------------ *)
(* Batched serving equivalence: pool-backed speculative solves with
   deterministic commit must leave no observable trace — report,
   resolution stream, and the engine/overload counters all equal to
   the serial run, at every jobs level and slot window, under faults
   and overload too.  (Solver-internal telemetry like online.route
   span counts is explicitly OUTSIDE the contract: discarded
   speculation adds calls there by design.) *)

let run_with_engine_counters f =
  let module Tm = Qnet_telemetry.Metrics in
  Tm.set_enabled true;
  Tm.reset ();
  let result = f () in
  let counters =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Tm.Counter_v n
          when String.starts_with ~prefix:"online.engine." name
               || String.starts_with ~prefix:"online.overload." name ->
            Some (name, n)
        | _ -> None)
      (Tm.snapshot ())
  in
  Tm.set_enabled false;
  (result, List.sort compare counters)

let test_batched_matches_serial_qcheck () =
  let prop seed =
    let rng = Prng.create ((seed * 13) + 5) in
    let g = network ~users:6 ~switches:15 ~qubits:2 ((seed mod 50) + 1) in
    let spec =
      Workload.spec ~requests:30
        ~arrivals:
          (match seed mod 3 with
          | 0 -> Workload.Batched { period = 1.5; size = 5 }
          | 1 -> Workload.Poisson 2.
          | _ -> Workload.Pareto { alpha = 1.5; lo = 0.05; hi = 2. })
        ~group_size:(Workload.Uniform (2, 3))
        ~duration:(1., 5.) ~patience:(0., 8.) ()
    in
    let reqs = Workload.generate (Prng.create seed) g spec in
    (* Fresh policy per run: the cached adapter's memo table must not
       leak between the serial baseline and the batched replays. *)
    let make_policy () =
      match seed mod 4 with
      | 0 -> Policy.prim
      | 1 -> Option.get (Policy.of_name "alg3")
      | 2 -> Option.get (Policy.of_name "eqcast")
      (* concurrent_safe = false: the engine must fall back to the
         serial path and still agree. *)
      | _ -> Policy.cached Policy.prim
    in
    let overload =
      if seed mod 5 = 0 then
        Qnet_overload.Admission.make ~max_queue:4 ~max_inflight:6 ~rate:2. ()
      else Qnet_overload.Admission.none
    in
    (* Half the scenarios replay an adversarial fault schedule. *)
    let fault_schedule =
      if seed mod 2 = 0 then
        Some
          (List.init
             (1 + Prng.int rng 40)
             (fun _ ->
               {
                 Fsched.time = Prng.float rng 30.;
                 element =
                   (if Prng.bool rng then
                      Fsched.Link (Prng.int rng (Graph.edge_count g))
                    else Fsched.Switch (Prng.int rng (Graph.vertex_count g)));
                 up = Prng.bool rng;
               }))
      else None
    in
    let run ?pool ?slot () =
      let config = Engine.config ~retry_base:0.5 ~overload (make_policy ()) in
      run_with_engine_counters (fun () ->
          Engine.run ~config ?fault_schedule ?pool ?slot g params
            ~requests:reqs)
    in
    let (base_report, base_outcomes), base_counters = run () in
    List.iter
      (fun jobs ->
        Qnet_util.Pool.with_pool ~jobs (fun pool ->
            List.iter
              (fun slot ->
                let (report, outcomes), counters = run ~pool ~slot () in
                if report <> base_report then
                  Alcotest.failf "report diverged at jobs=%d slot=%g" jobs
                    slot;
                if outcomes <> base_outcomes then
                  Alcotest.failf "outcomes diverged at jobs=%d slot=%g" jobs
                    slot;
                if counters <> base_counters then
                  Alcotest.failf
                    "engine counters diverged at jobs=%d slot=%g" jobs slot)
              [ 0.; 2. ]))
      [ 1; 2; 4 ];
    true
  in
  let test =
    QCheck.Test.make ~count:30
      ~name:"batched serving equals serial (reports, outcomes, counters)"
      QCheck.(int_range 1 10_000)
      prop
  in
  QCheck.Test.check_exn test

(* The engine must also survive being handed a pool while already
   inside a parallel region (nested speculation is downgraded to the
   serial path, not an exception). *)
let test_engine_inside_parallel_region () =
  let g, (a0, a1), (b0, b1) = hub_network () in
  let reqs =
    [
      request ~duration:4. ~patience:10. 0 [ a0; a1 ] 0.;
      request ~duration:4. ~patience:10. 1 [ b0; b1 ] 0.;
    ]
  in
  let config = Engine.config ~retry_base:0.5 Policy.prim in
  let base = Engine.run ~config g params ~requests:reqs in
  Qnet_util.Pool.with_pool ~jobs:2 (fun pool ->
      let inner = ref None in
      Qnet_util.Pool.parallel_for pool 1 (fun _ ->
          inner := Some (Engine.run ~config ~pool g params ~requests:reqs));
      match !inner with
      | Some got ->
          check_bool "nested run equals serial" true (fst got = fst base)
      | None -> Alcotest.fail "nested run never happened")

let () =
  Alcotest.run "online"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_event_queue_order;
          Alcotest.test_case "batches" `Quick test_event_queue_batches;
          Alcotest.test_case "batch drain order (qcheck)" `Quick
            test_batch_drain_matches_pop_qcheck;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "shapes" `Quick test_workload_shapes;
          Alcotest.test_case "validation" `Quick test_workload_validation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single request" `Quick test_single_request_served;
          Alcotest.test_case "contention + queueing" `Quick
            test_contention_and_queueing;
          Alcotest.test_case "queue bound" `Quick test_queue_bound;
          Alcotest.test_case "conservation + determinism" `Quick
            test_conservation_and_determinism;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "retry at deadline expires" `Quick
            test_retry_at_deadline_expires;
        ] );
      ( "policy",
        [
          Alcotest.test_case "names" `Quick test_policy_names;
          Alcotest.test_case "try_consume" `Quick test_try_consume;
          Alcotest.test_case "residual adapter" `Quick
            test_adapter_respects_residual;
          Alcotest.test_case "cached" `Quick test_cached_policy;
        ] );
      ( "safety",
        [
          Alcotest.test_case "never oversubscribed (qcheck)" `Slow
            test_never_oversubscribed_qcheck;
          Alcotest.test_case "fault replay (qcheck)" `Slow
            test_fault_replay_qcheck;
        ] );
      ( "batched",
        [
          Alcotest.test_case "matches serial (qcheck)" `Slow
            test_batched_matches_serial_qcheck;
          Alcotest.test_case "nested region falls back" `Quick
            test_engine_inside_parallel_region;
        ] );
    ]
