(* Unit tests for Qnet_util.Sexp and Qnet_graph.Codec. *)

module Sexp = Qnet_util.Sexp
module Graph = Qnet_graph.Graph
module Codec = Qnet_graph.Codec

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip t =
  match Sexp.of_string (Sexp.to_string t) with
  | Ok t' -> t' = t
  | Error _ -> false

let test_print_atoms () =
  check_str "bare atom" "hello" (Sexp.to_string (Sexp.atom "hello"));
  check_str "empty atom quoted" "\"\"" (Sexp.to_string (Sexp.atom ""));
  check_str "spaces quoted" "\"a b\"" (Sexp.to_string (Sexp.atom "a b"));
  check_str "quotes escaped" "\"a\\\"b\"" (Sexp.to_string (Sexp.atom "a\"b"));
  check_str "list" "(a b (c))"
    (Sexp.to_string
       (Sexp.list [ Sexp.atom "a"; Sexp.atom "b"; Sexp.list [ Sexp.atom "c" ] ]))

let test_parse_basics () =
  check_bool "atom" true (Sexp.of_string "abc" = Ok (Sexp.Atom "abc"));
  check_bool "list" true
    (Sexp.of_string "(a b)" = Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]));
  check_bool "nested" true
    (Sexp.of_string "((a) (b c))"
    = Ok
        (Sexp.List
           [
             Sexp.List [ Sexp.Atom "a" ];
             Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ];
           ]));
  check_bool "whitespace tolerated" true
    (Sexp.of_string "  ( a\n\tb )  " = Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]));
  check_bool "comments skipped" true
    (Sexp.of_string "; header\n(a ; inline\n b)"
    = Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]))

let test_parse_quoted () =
  check_bool "quoted atom" true
    (Sexp.of_string "\"a b\"" = Ok (Sexp.Atom "a b"));
  check_bool "escapes" true
    (Sexp.of_string "\"a\\\"b\\\\c\\nd\"" = Ok (Sexp.Atom "a\"b\\c\nd"))

let test_parse_errors () =
  let is_error s = match Sexp.of_string s with Error _ -> true | Ok _ -> false in
  check_bool "empty" true (is_error "");
  check_bool "unbalanced open" true (is_error "(a");
  check_bool "unbalanced close" true (is_error "a)");
  check_bool "trailing garbage" true (is_error "(a) b");
  check_bool "unterminated quote" true (is_error "\"abc");
  check_bool "bare close" true (is_error ")")

let test_roundtrip_random_shapes () =
  let cases =
    [
      Sexp.atom "x";
      Sexp.list [];
      Sexp.list [ Sexp.atom "weird atom"; Sexp.int 42; Sexp.float 3.14 ];
      Sexp.list
        [ Sexp.list [ Sexp.list [ Sexp.atom "deep" ] ]; Sexp.atom "a;b" ];
    ]
  in
  List.iter
    (fun t -> check_bool (Sexp.to_string t ^ " roundtrips") true (roundtrip t))
    cases

let test_hum_rendering_parses () =
  (* A wide structure forces multi-line rendering; it must re-parse. *)
  let wide =
    Sexp.list
      (Sexp.atom "root"
      :: List.init 30 (fun i -> Sexp.list [ Sexp.atom "item"; Sexp.int i ]))
  in
  let rendered = Sexp.to_string_hum wide in
  check_bool "multi-line" true (String.contains rendered '\n');
  check_bool "re-parses" true (Sexp.of_string rendered = Ok wide)

let test_typed_helpers () =
  check_bool "int" true (Sexp.to_int (Sexp.int 7) = Ok 7);
  check_bool "bad int" true
    (match Sexp.to_int (Sexp.atom "x") with Error _ -> true | Ok _ -> false);
  check_bool "float roundtrip" true
    (Sexp.to_float (Sexp.float 0.1) = Ok 0.1);
  check_bool "float of int atom" true (Sexp.to_float (Sexp.atom "2") = Ok 2.);
  let doc =
    Sexp.list
      [
        Sexp.atom "doc";
        Sexp.list [ Sexp.atom "single"; Sexp.int 1 ];
        Sexp.list [ Sexp.atom "multi"; Sexp.int 1; Sexp.int 2 ];
      ]
  in
  check_bool "single field unwraps" true
    (Sexp.field doc "single" = Ok (Sexp.int 1));
  check_bool "multi field wraps" true
    (Sexp.field doc "multi" = Ok (Sexp.list [ Sexp.int 1; Sexp.int 2 ]));
  check_bool "missing field" true
    (match Sexp.field doc "absent" with Error _ -> true | Ok _ -> false)

(* ---- Codec ---- *)

let sample_graph () =
  let rng = Qnet_util.Prng.create 5 in
  let spec = Qnet_topology.Spec.create ~n_users:4 ~n_switches:10 () in
  Qnet_topology.Waxman.generate rng spec

let graphs_equal g1 g2 =
  Graph.vertex_count g1 = Graph.vertex_count g2
  && Graph.edge_count g1 = Graph.edge_count g2
  && List.for_all
       (fun i ->
         let v1 = Graph.vertex g1 i and v2 = Graph.vertex g2 i in
         v1.Graph.kind = v2.Graph.kind
         && v1.Graph.qubits = v2.Graph.qubits
         && v1.Graph.x = v2.Graph.x
         && v1.Graph.y = v2.Graph.y)
       (List.init (Graph.vertex_count g1) (fun i -> i))
  && List.for_all
       (fun i ->
         let e1 = Graph.edge g1 i and e2 = Graph.edge g2 i in
         e1.Graph.a = e2.Graph.a
         && e1.Graph.b = e2.Graph.b
         && e1.Graph.length = e2.Graph.length)
       (List.init (Graph.edge_count g1) (fun i -> i))

let test_codec_roundtrip () =
  let g = sample_graph () in
  match Codec.graph_of_sexp (Codec.graph_to_sexp g) with
  | Error msg -> Alcotest.fail msg
  | Ok g' -> check_bool "exact roundtrip" true (graphs_equal g g')

let test_codec_through_disk () =
  let g = sample_graph () in
  let path = Filename.temp_file "qnet" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save_graph path g;
      match Codec.load_graph path with
      | Error msg -> Alcotest.fail msg
      | Ok g' ->
          check_bool "disk roundtrip" true (graphs_equal g g');
          (* And the loaded graph routes identically. *)
          let solve g =
            (Qnet_core.Muerp.solve Qnet_core.Muerp.Conflict_free
               (Qnet_core.Muerp.instance g))
              .Qnet_core.Muerp.rate
          in
          Alcotest.(check (float 0.)) "same solution" (solve g) (solve g'))

let test_codec_rejects_garbage () =
  let bad s =
    match Sexp.of_string s with
    | Error _ -> true
    | Ok sexp -> (
        match Codec.graph_of_sexp sexp with Error _ -> true | Ok _ -> false)
  in
  check_bool "not a graph" true (bad "(something-else)");
  check_bool "bad version" true
    (bad "(qnet-graph (version 99) (vertices) (edges))");
  check_bool "bad kind" true
    (bad
       "(qnet-graph (version 1) (vertices (0 alien 0 0 0)) (edges))");
  check_bool "sparse ids" true
    (bad
       "(qnet-graph (version 1) (vertices (5 user 0 0 0)) (edges))")

let test_codec_single_vertex () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:3 ~x:1. ~y:2.);
  let g = Graph.Builder.freeze b in
  match Codec.graph_of_sexp (Codec.graph_to_sexp g) with
  | Error msg -> Alcotest.fail msg
  | Ok g' ->
      check_int "one vertex" 1 (Graph.vertex_count g');
      check_int "no edges" 0 (Graph.edge_count g')

(* Stack-safety at the hierarchical scale (satellite of the qnet_hier
   work): a ~120k-vertex network must survive print/parse/codec without
   overflowing — the printer iterates siblings, the parser loops. *)
let test_codec_large_graph () =
  let n = 120_000 in
  let b = Graph.Builder.create () in
  for i = 0 to n - 1 do
    let kind = if i < 2 then Graph.User else Graph.Switch in
    ignore
      (Graph.Builder.add_vertex b ~kind ~qubits:4
         ~x:(float_of_int (i mod 1000))
         ~y:(float_of_int (i / 1000)))
  done;
  for i = 0 to n - 2 do
    ignore (Graph.Builder.add_edge b i (i + 1) 1.)
  done;
  let g = Graph.Builder.freeze b in
  let doc = Codec.graph_to_sexp g in
  (* Both printers and the parser must handle the wide document. *)
  let flat = Sexp.to_string doc in
  check_bool "flat render is large" true (String.length flat > n);
  let hum = Sexp.to_string_hum doc in
  match Sexp.of_string hum with
  | Error msg -> Alcotest.fail msg
  | Ok parsed -> (
      match Codec.graph_of_sexp parsed with
      | Error msg -> Alcotest.fail msg
      | Ok g' ->
          check_int "vertices survive" n (Graph.vertex_count g');
          check_int "edges survive" (n - 1) (Graph.edge_count g');
          let v = Graph.vertex g' (n - 1) in
          check_bool "spot vertex" true
            (v.Graph.kind = Graph.Switch && v.Graph.x = float_of_int ((n - 1) mod 1000)))

(* Property: arbitrary sexp values round-trip through print/parse. *)
let sexp_gen =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        let atom =
          map (fun s -> Sexp.Atom s) (string_size ~gen:printable (int_bound 12))
        in
        if size = 0 then atom
        else
          frequency
            [
              (2, atom);
              ( 1,
                map
                  (fun items -> Sexp.List items)
                  (list_size (int_bound 4) (self (size / 2))) );
            ]))

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300
    (QCheck.make ~print:Sexp.to_string sexp_gen)
    (fun t -> Sexp.of_string (Sexp.to_string t) = Ok t)

let prop_roundtrip_hum =
  QCheck.Test.make ~name:"hum print/parse roundtrip" ~count:300
    (QCheck.make ~print:Sexp.to_string sexp_gen)
    (fun t -> Sexp.of_string (Sexp.to_string_hum t) = Ok t)

let () =
  Alcotest.run "sexp"
    [
      ( "printer",
        [
          Alcotest.test_case "atoms" `Quick test_print_atoms;
          Alcotest.test_case "hum" `Quick test_hum_rendering_parses;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "quoted" `Quick test_parse_quoted;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_random_shapes;
          Alcotest.test_case "helpers" `Quick test_typed_helpers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_roundtrip_hum ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "disk" `Quick test_codec_through_disk;
          Alcotest.test_case "garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "single vertex" `Quick test_codec_single_vertex;
          Alcotest.test_case "large graph" `Slow test_codec_large_graph;
        ] );
    ]
