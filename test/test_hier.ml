(* Tests for the hierarchical routing subsystem (Qnet_hier) and the
   continent-of-Waxmans scale generator: partition correctness, the
   feasibility-equivalence and rate properties of the channel oracle,
   Verify-clean tree construction without oversubscription, exclusion-
   driven cache invalidation, and engine determinism across --jobs. *)

module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Prng = Qnet_util.Prng
module Pool = Qnet_util.Pool
module Spec = Qnet_topology.Spec
module Waxman = Qnet_topology.Waxman
module Continent = Qnet_topology.Continent
module Partition = Qnet_hier.Partition
module Skeleton = Qnet_hier.Skeleton
module Oracle = Qnet_hier.Oracle
module Serve = Qnet_hier.Serve
module Workload = Qnet_online.Workload
module Engine = Qnet_online.Engine
module Policy = Qnet_online.Policy
module Fsched = Qnet_faults.Schedule
module Fhealth = Qnet_faults.Health
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let continent ?(regions = 4) ?(users = 12) ?(switches = 60) ?(qubits = 4) seed
    =
  let rng = Prng.create seed in
  let spec =
    Spec.create ~n_users:users ~n_switches:switches ~qubits_per_switch:qubits
      ()
  in
  Continent.generate_labeled
    ~params:{ Continent.default_params with regions }
    rng spec

let waxman ?(users = 8) ?(switches = 24) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Spec.create ~n_users:users ~n_switches:switches ~qubits_per_switch:qubits
      ()
  in
  Waxman.generate rng spec

(* ------------------------------------------------------------------ *)
(* Continent generator                                                 *)

let test_continent_shape () =
  let g, labels = continent ~regions:6 ~users:18 ~switches:90 3 in
  check_int "vertices" 108 (Graph.vertex_count g);
  check_int "users" 18 (Graph.user_count g);
  check_int "switches" 90 (Graph.switch_count g);
  check_int "labels arity" 108 (Array.length labels);
  Array.iter
    (fun r -> check_bool "label in range" true (r >= 0 && r < 6))
    labels;
  (* Every region is populated and holds at least one switch. *)
  let switches_per = Array.make 6 0 in
  Array.iteri
    (fun v r -> if Graph.is_switch g v then switches_per.(r) <- switches_per.(r) + 1)
    labels;
  Array.iter (fun c -> check_bool "switch per region" true (c >= 1)) switches_per;
  check_bool "connected" true (Paths.is_connected g);
  (* Cross-region fibers exist and land on switches. *)
  let cross = ref 0 in
  Graph.iter_edges g (fun e ->
      if labels.(e.Graph.a) <> labels.(e.Graph.b) then begin
        incr cross;
        check_bool "cross fiber joins switches" true
          (Graph.is_switch g e.Graph.a && Graph.is_switch g e.Graph.b)
      end);
  check_bool "has cross fibers" true (!cross >= 5)

let test_continent_deterministic () =
  let g1, l1 = continent ~regions:5 ~users:10 ~switches:50 11 in
  let g2, l2 = continent ~regions:5 ~users:10 ~switches:50 11 in
  check_bool "same labels" true (l1 = l2);
  check_int "same edges" (Graph.edge_count g1) (Graph.edge_count g2);
  let edges g =
    List.init (Graph.edge_count g) (fun i ->
        let e = Graph.edge g i in
        (e.Graph.a, e.Graph.b, e.Graph.length))
  in
  check_bool "same edge list" true (edges g1 = edges g2)

let test_continent_via_generate () =
  match Qnet_topology.Generate.of_name "continent" with
  | None -> Alcotest.fail "continent not registered"
  | Some kind ->
      let rng = Prng.create 5 in
      let spec = Spec.create ~n_users:8 ~n_switches:40 () in
      let g = Qnet_topology.Generate.run kind rng spec in
      check_int "vertices" 48 (Graph.vertex_count g);
      check_bool "connected" true (Paths.is_connected g)

let test_continent_rejects () =
  let rng = Prng.create 1 in
  let spec = Spec.create ~n_users:4 ~n_switches:3 () in
  Alcotest.check_raises "fewer switches than regions"
    (Invalid_argument "Continent.generate: need at least one switch per region")
    (fun () ->
      ignore
        (Continent.generate
           ~params:{ Continent.default_params with regions = 8 }
           rng spec))

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)

let test_partition_of_assignment () =
  let g, labels = continent ~regions:4 7 in
  let part = Partition.of_assignment g labels in
  check_int "regions" 4 part.Partition.count;
  check_bool "labels preserved" true (part.Partition.region_of = labels);
  (* Gateways are exactly the switches with a cross-region edge. *)
  Array.iteri
    (fun v flagged ->
      let crosses = ref false in
      Graph.iter_adjacent g v (fun w _ ->
          if labels.(w) <> labels.(v) then crosses := true);
      let expect = Graph.is_switch g v && !crosses in
      check_bool "gateway iff border switch" expect flagged)
    part.Partition.is_gateway;
  let member_total =
    Array.fold_left (fun acc m -> acc + Array.length m) 0 part.Partition.members
  in
  check_int "members partition the graph" (Graph.vertex_count g) member_total

let test_partition_kmeans () =
  let g = waxman ~users:10 ~switches:50 9 in
  let p1 = Partition.kmeans ~regions:5 ~seed:3 g in
  let p2 = Partition.kmeans ~regions:5 ~seed:3 g in
  check_bool "deterministic" true
    (p1.Partition.region_of = p2.Partition.region_of);
  check_int "regions" 5 p1.Partition.count;
  Array.iter
    (fun members ->
      check_bool "no empty region" true (Array.length members > 0))
    p1.Partition.members;
  let p3 = Partition.kmeans ~regions:5 ~seed:4 g in
  check_bool "seed matters (labels may differ)" true
    (Array.length p3.Partition.region_of = Graph.vertex_count g)

let test_partition_rejects () =
  let g = waxman 2 in
  Alcotest.check_raises "arity"
    (Invalid_argument "Partition.of_assignment: label arity mismatch")
    (fun () -> ignore (Partition.of_assignment g [| 0 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Partition.of_assignment: negative label") (fun () ->
      ignore
        (Partition.of_assignment g
           (Array.make (Graph.vertex_count g) (-1))))

(* ------------------------------------------------------------------ *)
(* Oracle vs flat routing                                              *)

let neg_log (c : Channel.t) = Qnet_util.Logprob.to_neg_log c.rate

(* The qcheck property at the heart of the subsystem: on any network
   small enough to solve flat, the oracle is feasibility-equivalent to
   Routing.best_channel, never better than the flat optimum, and exactly
   optimal whenever the flat winner stays inside one region.  The worst
   observed rate ratio is logged for the "within a logged ratio"
   half of the property. *)
let worst_ratio = ref 0. (* as neg-log delta: hier − flat *)

let prop_oracle_matches_flat =
  QCheck.Test.make ~name:"oracle feasibility-equivalent to flat" ~count:40
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, regions) ->
      let g, labels =
        continent ~regions ~users:8 ~switches:(12 * regions) ~qubits:4 seed
      in
      let part = Partition.of_assignment g labels in
      let oracle = Oracle.create g params part in
      let users = Graph.users g in
      let ok = ref true in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src < dst then begin
                let cap_flat = Capacity.of_graph g in
                let cap_hier = Capacity.of_graph g in
                let flat =
                  Routing.best_channel g params ~capacity:cap_flat ~src ~dst
                in
                let hier =
                  Oracle.best_channel oracle ~capacity:cap_hier ~src ~dst
                in
                match (flat, hier) with
                | None, None -> ()
                | Some _, None | None, Some _ -> ok := false
                | Some f, Some h ->
                    let df = neg_log f and dh = neg_log h in
                    (* Flat is optimal: hier can never beat it. *)
                    if dh < df -. 1e-9 then ok := false;
                    (* When the flat optimum stays within one region the
                       corridor search must reproduce its rate. *)
                    let rf = labels.(List.hd f.Channel.path) in
                    if
                      List.for_all (fun v -> labels.(v) = rf) f.Channel.path
                      && Float.abs (dh -. df) > 1e-9
                    then ok := false;
                    if dh -. df > !worst_ratio then worst_ratio := dh -. df
              end)
            users)
        users;
      !ok)

let prop_oracle_kmeans_on_waxman =
  (* Same equivalence under a derived (k-means) partition of a flat
     Waxman network — the arbitrary-graph path. *)
  QCheck.Test.make ~name:"oracle with kmeans partition" ~count:25
    QCheck.(int_bound 1000)
    (fun seed ->
      let g = waxman ~users:6 ~switches:30 seed in
      let part = Partition.kmeans ~regions:3 ~seed g in
      let oracle = Oracle.create g params part in
      let users = Graph.users g in
      let ok = ref true in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src < dst then begin
                let flat =
                  Routing.best_channel g params
                    ~capacity:(Capacity.of_graph g) ~src ~dst
                in
                let hier =
                  Oracle.best_channel oracle
                    ~capacity:(Capacity.of_graph g) ~src ~dst
                in
                match (flat, hier) with
                | None, None -> ()
                | Some _, None | None, Some _ -> ok := false
                | Some f, Some h ->
                    if neg_log h < neg_log f -. 1e-9 then ok := false
              end)
            users)
        users;
      !ok)

let prop_trees_verify_without_oversubscription =
  (* Route several disjoint groups hierarchically under one shared
     capacity: every produced tree passes Verify.check_exn and the
     shared capacity is never overcommitted. *)
  QCheck.Test.make ~name:"hier trees verify, no oversubscription" ~count:25
    QCheck.(int_bound 1000)
    (fun seed ->
      let g, labels =
        continent ~regions:3 ~users:12 ~switches:36 ~qubits:6 seed
      in
      let part = Partition.of_assignment g labels in
      let oracle = Oracle.create g params part in
      let users = Array.of_list (Graph.users g) in
      let groups =
        [
          [ users.(0); users.(1); users.(2); users.(3) ];
          [ users.(4); users.(5); users.(6) ];
          [ users.(7); users.(8) ];
        ]
      in
      let capacity = Capacity.of_graph g in
      List.iter
        (fun group ->
          match Oracle.route_users oracle ~capacity ~users:group with
          | None -> ()
          | Some tree -> Verify.check_exn g params ~users:group tree)
        groups;
      Capacity.overcommitted capacity = [])

let test_oracle_rejects () =
  let g, labels = continent 1 in
  let part = Partition.of_assignment g labels in
  let oracle = Oracle.create g params part in
  let sw = List.hd (Graph.switches g) in
  let u = List.hd (Graph.users g) in
  Alcotest.check_raises "non-user endpoint"
    (Invalid_argument "Oracle.best_channel: endpoint is not a quantum user")
    (fun () ->
      ignore
        (Oracle.best_channel oracle ~capacity:(Capacity.of_graph g) ~src:u
           ~dst:sw));
  Alcotest.check_raises "src = dst"
    (Invalid_argument "Oracle.best_channel: src = dst") (fun () ->
      ignore
        (Oracle.best_channel oracle ~capacity:(Capacity.of_graph g) ~src:u
           ~dst:u))

let test_oracle_respects_exclusion () =
  let g, labels = continent ~regions:4 ~users:10 ~switches:48 21 in
  let part = Partition.of_assignment g labels in
  let oracle = Oracle.create g params part in
  let users = Array.of_list (Graph.users g) in
  let src = users.(0) and dst = users.(Array.length users - 1) in
  match Oracle.best_channel oracle ~capacity:(Capacity.of_graph g) ~src ~dst with
  | None -> () (* nothing to exclude against on this seed *)
  | Some c ->
      (* Kill one interior switch of the found channel: the next answer
         must avoid it (or honestly fail). *)
      let interior =
        List.filter (fun v -> Graph.is_switch g v) c.Channel.path
      in
      let dead = List.hd interior in
      let exclude =
        {
          Routing.vertex_ok = (fun v -> v <> dead);
          edge_ok = (fun _ -> true);
        }
      in
      (match
         Oracle.best_channel ~exclude oracle ~capacity:(Capacity.of_graph g)
           ~src ~dst
       with
      | None -> ()
      | Some c' ->
          check_bool "avoids the dead switch" false
            (List.mem dead c'.Channel.path))

let test_skeleton_stats () =
  let g, labels = continent ~regions:4 ~users:10 ~switches:48 33 in
  let part = Partition.of_assignment g labels in
  let sk = Skeleton.create g params part in
  check_int "skeleton nodes = gateways" (Partition.gateway_count part)
    (Skeleton.node_count sk);
  check_bool "has inter edges" true (Skeleton.inter_edge_count sk > 0)

let test_eager_invalidation () =
  (* Health transitions wired through Serve.attach_health must drop the
     touched region's cached segments (observable via cache behaviour:
     a query after invalidation recomputes and still answers). *)
  let g, labels = continent ~regions:3 ~users:8 ~switches:36 5 in
  let part = Partition.of_assignment g labels in
  let oracle = Oracle.create g params part in
  let health = Fhealth.create g in
  Serve.attach_health oracle health;
  let users = Array.of_list (Graph.users g) in
  let src = users.(0) and dst = users.(Array.length users - 1) in
  let q () =
    Oracle.best_channel oracle ~exclude:(Fhealth.exclusion health)
      ~capacity:(Capacity.of_graph g) ~src ~dst
  in
  let before = q () in
  (* Fail a switch, query again (exclusion-aware), repair, re-query. *)
  let sw = List.hd (Graph.switches g) in
  ignore
    (Fhealth.apply health
       { Fsched.time = 1.; element = Fsched.Switch sw; up = false });
  let during = q () in
  (match during with
  | None -> ()
  | Some c -> check_bool "down switch avoided" false (List.mem sw c.Channel.path));
  ignore
    (Fhealth.apply health
       { Fsched.time = 2.; element = Fsched.Switch sw; up = true });
  let after = q () in
  match (before, after) with
  | Some b, Some a ->
      check_bool "same rate after repair" true
        (Float.abs (neg_log b -. neg_log a) < 1e-9)
  | None, None -> ()
  | _ -> Alcotest.fail "feasibility changed across a repaired fault"

(* ------------------------------------------------------------------ *)
(* Online integration & determinism                                    *)

let hier_policy g labels =
  let part = Partition.of_assignment g labels in
  Serve.policy (Oracle.create g params part)

let traffic_requests g seed n =
  let users = Array.of_list (Graph.users g) in
  let rng = Prng.create seed in
  List.init n (fun id ->
      let a = Prng.int rng (Array.length users) in
      let b = (a + 1 + Prng.int rng (Array.length users - 1))
              mod Array.length users in
      let arrival = float_of_int id *. 0.25 in
      {
        Workload.id;
        users = [ users.(a); users.(b) ];
        arrival;
        duration = 2.;
        deadline = arrival +. 1.5;
      })

let test_engine_serves_hierarchically () =
  let g, labels = continent ~regions:4 ~users:12 ~switches:60 42 in
  let config = Engine.config (hier_policy g labels) in
  let report, outcomes =
    Engine.run ~config g params ~requests:(traffic_requests g 42 40)
  in
  check_bool "served some" true (report.Engine.served > 0);
  check_int "all resolved" 40 (List.length outcomes)

let test_engine_jobs_determinism () =
  (* Same seed, --jobs 1 vs --jobs 2: identical hierarchical solves.
     Fresh oracle per run so no cache state crosses runs. *)
  let g, labels = continent ~regions:4 ~users:12 ~switches:60 17 in
  let summary (o : Engine.outcome) =
    let id = o.Engine.request.Workload.id in
    match o.Engine.resolution with
    | Engine.Served { start; finish; rate; attempts; _ } ->
        (id, "served", start, finish, rate, attempts)
    | Engine.Rejected { at; _ } -> (id, "rejected", at, 0., 0., 0)
    | Engine.Shed { at; _ } -> (id, "shed", at, 0., 0., 0)
    | Engine.Expired { at; attempts } ->
        (id, "expired", at, 0., 0., attempts)
    | Engine.Interrupted { start; at; attempts; _ } ->
        (id, "interrupted", start, at, 0., attempts)
  in
  let run pool =
    let config = Engine.config (hier_policy g labels) in
    let report, outcomes =
      Engine.run ~config ?pool g params ~requests:(traffic_requests g 17 60)
    in
    ( report.Engine.served,
      report.Engine.acceptance_ratio,
      report.Engine.mean_rate,
      List.map summary outcomes )
  in
  let r1 = run None in
  let r2 = Pool.with_pool ~jobs:2 (fun p -> run (Some p)) in
  check_bool "identical at jobs 1 vs 2" true (r1 = r2)

let test_engine_hier_under_faults () =
  let g, labels = continent ~regions:4 ~users:12 ~switches:60 23 in
  let part = Partition.of_assignment g labels in
  let oracle = Oracle.create g params part in
  let config = Engine.config (Serve.policy oracle) in
  let schedule =
    (* Deterministic down/up pulses on the first few switches. *)
    List.concat_map
      (fun (i, sw) ->
        [
          { Fsched.time = 1. +. float_of_int i; element = Fsched.Switch sw;
            up = false };
          { Fsched.time = 3. +. float_of_int i; element = Fsched.Switch sw;
            up = true };
        ])
      (List.filteri (fun i _ -> i < 3)
         (List.mapi (fun i s -> (i, s)) (Graph.switches g)))
  in
  let report, _ =
    Engine.run ~config ~fault_schedule:schedule
      ~on_health:(fun h -> Serve.attach_health oracle h)
      g params
      ~requests:(traffic_requests g 23 50)
  in
  check_bool "faults applied" true (report.Engine.faults_injected > 0);
  check_bool "still serves" true (report.Engine.served > 0)

let test_prim_oracle_seam_flat_identity () =
  (* Multi_group with the identity (flat) oracle must produce a tree of
     the same rate as the oracle-less path. *)
  let g = waxman ~users:6 ~switches:30 ~qubits:8 13 in
  let users = Graph.users g in
  let t1 =
    Multi_group.prim_for_users g params ~capacity:(Capacity.of_graph g) ~users
  in
  let t2 =
    Multi_group.prim_for_users
      ~oracle:(Routing.flat_oracle g params)
      g params ~capacity:(Capacity.of_graph g) ~users
  in
  match (t1, t2) with
  | None, None -> ()
  | Some a, Some b ->
      check_bool "same tree rate" true
        (Float.abs (Ent_tree.rate_neg_log a -. Ent_tree.rate_neg_log b)
        < 1e-9)
  | _ -> Alcotest.fail "oracle seam changed feasibility"

(* The "within a logged ratio" half of the ISSUE property: report the
   worst hier/flat rate ratio the property tests observed.  Runs after
   the properties section (alcotest executes sections in order). *)
let test_log_worst_ratio () =
  Printf.printf "hier worst rate ratio vs flat: exp(-%.4f) = %.4f\n%!"
    !worst_ratio
    (exp (-. !worst_ratio));
  check_bool "ratio is a sane probability factor" true
    (!worst_ratio >= 0. && Float.is_finite !worst_ratio)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_oracle_matches_flat;
        prop_oracle_kmeans_on_waxman;
        prop_trees_verify_without_oversubscription;
      ]
  in
  Alcotest.run "hier"
    [
      ( "continent",
        [
          Alcotest.test_case "shape" `Quick test_continent_shape;
          Alcotest.test_case "deterministic" `Quick
            test_continent_deterministic;
          Alcotest.test_case "via generate" `Quick test_continent_via_generate;
          Alcotest.test_case "rejects" `Quick test_continent_rejects;
        ] );
      ( "partition",
        [
          Alcotest.test_case "of_assignment" `Quick
            test_partition_of_assignment;
          Alcotest.test_case "kmeans" `Quick test_partition_kmeans;
          Alcotest.test_case "rejects" `Quick test_partition_rejects;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "rejects" `Quick test_oracle_rejects;
          Alcotest.test_case "exclusion" `Quick test_oracle_respects_exclusion;
          Alcotest.test_case "skeleton stats" `Quick test_skeleton_stats;
          Alcotest.test_case "eager invalidation" `Quick
            test_eager_invalidation;
          Alcotest.test_case "flat oracle seam" `Quick
            test_prim_oracle_seam_flat_identity;
        ] );
      ("properties", props);
      ( "summary",
        [ Alcotest.test_case "worst ratio logged" `Quick test_log_worst_ratio ]
      );
      ( "online",
        [
          Alcotest.test_case "engine serves" `Quick
            test_engine_serves_hierarchically;
          Alcotest.test_case "jobs determinism" `Quick
            test_engine_jobs_determinism;
          Alcotest.test_case "faults" `Quick test_engine_hier_under_faults;
        ] );
    ]
