(* Tests for the qnet_flow subsystem: LP bound dominance over every
   heuristic, rounding validity, the analytic flow ceiling, the
   admission gate, and the "flow" serving policy. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Flow = Qnet_flow
open Qnet_core

let check_bool = Alcotest.(check bool)
let params = Params.default

let network ?(users = 6) ?(switches = 24) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:switches
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

(* Every heuristic's (name, neg-log achieved, capacity-respecting) on a
   fresh full-capacity instance. *)
let heuristic_outcomes ?(seed = 7) g =
  let inst = Muerp.instance ~params g in
  let solver alg =
    let o = Muerp.solve ~rng:(Prng.create seed) alg inst in
    (Muerp.algorithm_name alg, o.Muerp.neg_log_rate,
     Muerp.outcome_capacity_ok inst o)
  in
  let eqcast =
    match Qnet_baselines.Eqcast.solve g params with
    | None -> ("e-q-cast", infinity, true)
    | Some t -> ("e-q-cast", Ent_tree.rate_neg_log t, true)
  in
  List.map solver Muerp.all_heuristics @ [ eqcast ]

let test_bound_dominates_small () =
  let g = network 3 in
  let users = Graph.users g in
  (match Flow.Lp.relax g params ~users with
  | Flow.Lp.Bound b ->
      List.iter
        (fun (name, neg_log, capacity_ok) ->
          if capacity_ok then
            check_bool
              (Printf.sprintf "capacity bound <= %s neg-log" name)
              true
              (b.Flow.Lp.neg_log <= neg_log))
        (heuristic_outcomes g)
  | _ -> Alcotest.fail "expected a bound on a connected network");
  match Flow.Lp.relax ~capacity_rows:false g params ~users with
  | Flow.Lp.Bound b ->
      (* The structure-only bound dominates everything, capacity
         respected or not (Algorithm 2 included). *)
      List.iter
        (fun (name, neg_log, _) ->
          check_bool
            (Printf.sprintf "structure bound <= %s neg-log" name)
            true
            (b.Flow.Lp.neg_log <= neg_log))
        (heuristic_outcomes g)
  | _ -> Alcotest.fail "expected a structure bound"

let test_structure_dominates_capacity () =
  let g = network 11 in
  let users = Graph.users g in
  match
    (Flow.Lp.relax ~capacity_rows:false g params ~users,
     Flow.Lp.relax g params ~users)
  with
  | Flow.Lp.Bound s, Flow.Lp.Bound c ->
      (* Extra rows can only push the minimum up: the capacity bound is
         the tighter (larger neg-log) of the two. *)
      check_bool "structure <= capacity neg-log" true
        (s.Flow.Lp.neg_log <= c.Flow.Lp.neg_log +. 1e-9)
  | _ -> Alcotest.fail "expected both bounds"

let test_rounding_valid () =
  let g = network 5 in
  let users = Graph.users g in
  match Flow.Lp.relax g params ~users with
  | Flow.Lp.Bound bound -> (
      let capacity = Capacity.of_graph g in
      match Flow.Rounding.round ~seed:42 g params ~capacity ~users ~bound with
      | Some tree ->
          (* check_exn raising would fail the test. *)
          Verify.check_exn ~context:"test rounding" g params ~users tree;
          check_bool "rounded rate within the bound" true
            (bound.Flow.Lp.neg_log <= Ent_tree.rate_neg_log tree)
      | None ->
          (* Rounding may honestly fail; it must then have consumed
             nothing. *)
          List.iter
            (fun s ->
              Alcotest.(check int)
                (Printf.sprintf "switch %d untouched" s)
                0 (Capacity.used capacity s))
            (Graph.switches g))
  | _ -> Alcotest.fail "expected a bound"

let test_rounding_deterministic () =
  let g = network 9 in
  let users = Graph.users g in
  match Flow.Lp.relax g params ~users with
  | Flow.Lp.Bound bound ->
      let run () =
        let capacity = Capacity.of_graph g in
        Flow.Rounding.round ~seed:123 g params ~capacity ~users ~bound
      in
      (match (run (), run ()) with
      | Some a, Some b ->
          check_bool "same tree both runs" true
            (List.for_all2 Channel.equal a.Ent_tree.channels
               b.Ent_tree.channels)
      | None, None -> ()
      | _ -> Alcotest.fail "rounding not deterministic")
  | _ -> Alcotest.fail "expected a bound"

let test_gate_sound () =
  let g = network 13 in
  let users = Graph.users g in
  (* Whenever any solver serves the group, the gate must not condemn
     it. *)
  let served =
    List.exists
      (fun (_, neg_log, _) -> Float.is_finite neg_log)
      (heuristic_outcomes g)
  in
  if served then
    check_bool "gate accepts a servable group" false
      (Flow.Gate.infeasible g ~users);
  (* And small groups are never condemned spuriously on a connected
     network while a full-blown solve succeeds. *)
  match users with
  | u :: v :: _ ->
      let pair = [ u; v ] in
      let cap = Capacity.of_graph g in
      (match Routing.best_channel g params ~capacity:cap ~src:u ~dst:v with
      | Some _ ->
          check_bool "gate accepts a routable pair" false
            (Flow.Gate.infeasible g ~users:pair)
      | None -> ())
  | _ -> Alcotest.fail "expected at least 2 users"

let test_gate_rejects_unreachable () =
  (* An isolated pair of users connected only through 1-qubit switches
     is provably unservable. *)
  let b = Graph.Builder.create () in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:10 ~x:0. ~y:0. in
  let s = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:1 ~x:1. ~y:0. in
  let u2 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:10 ~x:2. ~y:0. in
  ignore (Graph.Builder.add_edge b u1 s 10.);
  ignore (Graph.Builder.add_edge b s u2 10.);
  let g = Graph.Builder.freeze b in
  check_bool "1-qubit relay cannot serve" true
    (Flow.Gate.infeasible g ~users:[ u1; u2 ])

let test_ceiling_dominates_best_channel () =
  let g = network 17 in
  match Graph.users g with
  | u :: v :: _ ->
      let cap = Capacity.of_graph g in
      (match Routing.best_channel g params ~capacity:cap ~src:u ~dst:v with
      | Some ch ->
          let ceiling = Flow.Capacity_bound.pair_ceiling g params ~src:u ~dst:v in
          check_bool "flow ceiling >= best channel rate" true
            (ceiling +. 1e-12 >= Channel.rate_prob ch)
      | None -> ())
  | _ -> Alcotest.fail "expected users"

let test_policy_contract () =
  let g = network 23 in
  let policy = Flow.Serve.policy () in
  let users =
    match Graph.users g with a :: b :: c :: _ -> [ a; b; c ] | l -> l
  in
  let capacity = Capacity.of_graph g in
  (match
     Qnet_online.Policy.route policy g params ~capacity ~users
   with
  | Some tree ->
      Verify.check_exn ~context:"flow policy" g params ~users tree;
      (* Consumption happened: the tree's usage is reflected in the
         capacity state. *)
      List.iter
        (fun (s, q) ->
          check_bool "consumed" true (Capacity.used capacity s >= q))
        (Ent_tree.qubit_usage tree)
  | None ->
      List.iter
        (fun s -> Alcotest.(check int) "untouched" 0 (Capacity.used capacity s))
        (Graph.switches g));
  (* Registration: the roster resolves flow and cached-flow. *)
  Flow.Serve.register ();
  check_bool "of_name flow" true (Qnet_online.Policy.of_name "flow" <> None);
  check_bool "of_name cached-flow" true
    (Qnet_online.Policy.of_name "cached-flow" <> None)

(* Property: on random connected instances the LP bounds dominate every
   heuristic (structure bound: all methods; capacity bound:
   capacity-respecting methods), and rounding output always verifies. *)
let prop_bound_dominates =
  QCheck.Test.make ~name:"LP bound dominates every heuristic" ~count:60
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let g =
        network ~users:(2 + (seed mod 5)) ~switches:(8 + (seed mod 17)) seed
      in
      let users = Graph.users g in
      match
        (Flow.Lp.relax ~capacity_rows:false g params ~users,
         Flow.Lp.relax g params ~users)
      with
      | Flow.Lp.Bound s, Flow.Lp.Bound c ->
          let outcomes = heuristic_outcomes ~seed g in
          List.for_all
            (fun (_, neg_log, _) -> s.Flow.Lp.neg_log <= neg_log)
            outcomes
          && List.for_all
               (fun (_, neg_log, capacity_ok) ->
                 (not capacity_ok) || c.Flow.Lp.neg_log <= neg_log)
               outcomes
      | _ ->
          (* Group not connected in the eligible subgraph: then no
             solver may serve it either. *)
          List.for_all
            (fun (_, neg_log, capacity_ok) ->
              (not capacity_ok) || not (Float.is_finite neg_log))
            (heuristic_outcomes ~seed g))

let prop_rounding_verifies =
  QCheck.Test.make ~name:"rounding output passes Verify.check_exn" ~count:60
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let g =
        network ~users:(2 + (seed mod 4)) ~switches:(8 + (seed mod 13)) seed
      in
      let users = Graph.users g in
      match Flow.Lp.relax g params ~users with
      | Flow.Lp.Bound bound -> (
          let capacity = Capacity.of_graph g in
          match
            Flow.Rounding.round ~seed g params ~capacity ~users ~bound
          with
          | Some tree ->
              Verify.check_exn ~context:"prop rounding" g params ~users tree;
              bound.Flow.Lp.neg_log <= Ent_tree.rate_neg_log tree
          | None -> true)
      | _ -> true)

let () =
  Alcotest.run "flow"
    [
      ( "bounds",
        [
          Alcotest.test_case "bound dominates heuristics" `Quick
            test_bound_dominates_small;
          Alcotest.test_case "structure <= capacity bound" `Quick
            test_structure_dominates_capacity;
          Alcotest.test_case "ceiling >= best channel" `Quick
            test_ceiling_dominates_best_channel;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "valid + within bound" `Quick test_rounding_valid;
          Alcotest.test_case "deterministic" `Quick test_rounding_deterministic;
        ] );
      ( "gate",
        [
          Alcotest.test_case "sound on servable groups" `Quick test_gate_sound;
          Alcotest.test_case "rejects provably unservable" `Quick
            test_gate_rejects_unreachable;
        ] );
      ( "serve",
        [ Alcotest.test_case "policy contract" `Quick test_policy_contract ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bound_dominates; prop_rounding_verifies ] );
    ]
