(* Unit tests for qnet_faults and the engine's fault path: model
   validation, schedule generation (determinism, ordering, alternation,
   targeting, regional correlation), health bookkeeping, and the
   recovery policies driven through explicit fault schedules. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Model = Qnet_faults.Model
module Schedule = Qnet_faults.Schedule
module Health = Qnet_faults.Health
module Workload = Qnet_online.Workload
module Policy = Qnet_online.Policy
module Engine = Qnet_online.Engine
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let params = Params.default

let network ?(users = 8) ?(switches = 25) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:switches
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

(* Four users joined through one 2-qubit hub: kill the hub and nothing
   can be repaired — the canonical abort instance. *)
let hub_network () =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  (Graph.Builder.freeze b, (a0, a1), hub)

(* Two users reachable through either of two parallel switches: killing
   the one in use leaves a live detour — the canonical repair
   instance. *)
let parallel_network () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:0.
  in
  let sa =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:100.
  in
  let sb =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:(-300.)
  in
  List.iter
    (fun s ->
      ignore (Graph.Builder.add_edge b u0 s 1100.);
      ignore (Graph.Builder.add_edge b s u1 1100.))
    [ sa; sb ];
  (Graph.Builder.freeze b, (u0, u1), (sa, sb))

let request ?(duration = 4.) ?(patience = 0.) id users arrival =
  { Workload.id; users; arrival; deadline = arrival +. patience; duration }

let down ?(t = 1.) e = { Schedule.time = t; element = e; up = false }
let up ?(t = 1.) e = { Schedule.time = t; element = e; up = true }

(* ------------------------------------------------------------------ *)
(* Model                                                               *)

let test_model_validation () =
  let m = Model.make () in
  check_bool "default model disabled" false (Model.enabled m);
  check_bool "default independent off" false (Model.independent_enabled m);
  let m = Model.make ~mtbf:20. () in
  check_bool "finite mtbf enables" true
    (Model.enabled m && Model.independent_enabled m);
  let m = Model.make ~regional_rate:0.1 () in
  check_bool "regional alone enables" true (Model.enabled m);
  check_bool "regional alone is not independent" false
    (Model.independent_enabled m);
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  raises "Faults.Model.make: mttr must be > 0" (fun () ->
      ignore (Model.make ~mttr:0. ()));
  raises "Faults.Model.make: negative regional_rate" (fun () ->
      ignore (Model.make ~regional_rate:(-1.) ()));
  raises "Faults.Model.make: negative regional_radius" (fun () ->
      ignore (Model.make ~regional_radius:(-1.) ()))

let test_target_strings () =
  List.iter
    (fun t ->
      match Model.target_of_string (Model.target_to_string t) with
      | Ok t' -> check_bool "round trip" true (t = t')
      | Error e -> Alcotest.fail e)
    [ Model.Links; Model.Switches; Model.Both ];
  check_bool "unknown rejected" true
    (Result.is_error (Model.target_of_string "fiber"))

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)

let test_schedule_deterministic () =
  let g = network 1 in
  let model = Model.make ~mtbf:15. ~mttr:3. ~regional_rate:0.02 ~seed:7 () in
  let s1 = Schedule.generate model g ~horizon:60. in
  let s2 = Schedule.generate model g ~horizon:60. in
  check_bool "same model, same schedule" true (s1 = s2);
  check_bool "non-empty" true (s1 <> []);
  let other = Schedule.generate { model with Model.seed = 8 } g ~horizon:60. in
  check_bool "different seed, different schedule" true (s1 <> other);
  check_bool "sorted" true
    (List.sort Schedule.compare_event s1 = s1);
  List.iter
    (fun (e : Schedule.event) ->
      check_bool "within horizon" true (e.Schedule.time >= 0. && e.time < 60.))
    s1

let test_schedule_disabled_or_empty () =
  let g = network 2 in
  check_bool "disabled model yields nothing" true
    (Schedule.generate (Model.make ()) g ~horizon:100. = []);
  let model = Model.make ~mtbf:5. () in
  check_bool "zero horizon yields nothing" true
    (Schedule.generate model g ~horizon:0. = [])

let test_schedule_alternation () =
  let g = network 3 in
  let model = Model.make ~mtbf:8. ~mttr:2. ~seed:4 () in
  let sched = Schedule.generate model g ~horizon:200. in
  (* Per element: transitions strictly alternate, starting with a
     failure (elements start healthy), at increasing times. *)
  let by_element = Hashtbl.create 16 in
  List.iter
    (fun (e : Schedule.event) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_element e.element)
      in
      Hashtbl.replace by_element e.element (e :: prev))
    sched;
  Hashtbl.iter
    (fun _ evs ->
      let evs = List.rev evs in
      List.iteri
        (fun i (e : Schedule.event) ->
          check_bool "alternates starting down" true (e.up = (i mod 2 = 1)))
        evs;
      let times = List.map (fun (e : Schedule.event) -> e.Schedule.time) evs in
      check_bool "times increase" true (List.sort compare times = times))
    by_element

let test_schedule_targets () =
  let g = network 4 in
  let gen targets =
    Schedule.generate (Model.make ~mtbf:5. ~mttr:2. ~targets ~seed:1 ()) g
      ~horizon:100.
  in
  let is_link (e : Schedule.event) =
    match e.element with Schedule.Link _ -> true | Schedule.Switch _ -> false
  in
  check_bool "links only" true (List.for_all is_link (gen Model.Links));
  check_bool "switches only" true
    (List.for_all (fun e -> not (is_link e)) (gen Model.Switches));
  let both = gen Model.Both in
  check_bool "both kinds present" true
    (List.exists is_link both && List.exists (fun e -> not (is_link e)) both)

let test_schedule_regional_correlation () =
  let g = network 5 in
  (* A radius swallowing the whole layout: every outage must take down
     many elements at one instant and bring them back at one instant. *)
  let model =
    Model.make ~regional_rate:0.05 ~regional_radius:1.e6 ~mttr:4. ~seed:9 ()
  in
  let sched = Schedule.generate model g ~horizon:100. in
  check_bool "outages happened" true (sched <> []);
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (e : Schedule.event) ->
      let key = (e.Schedule.time, e.up) in
      Hashtbl.replace groups key
        (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
    sched;
  Hashtbl.iter
    (fun _ n -> check_bool "correlated transition batch" true (n > 1))
    groups;
  (* Failure instants and repair instants pair up, except that repairs
     landing past the horizon are clipped off the schedule. *)
  let downs = Hashtbl.fold (fun (_, u) _ n -> if u then n else n + 1) groups 0 in
  let ups = Hashtbl.fold (fun (_, u) _ n -> if u then n + 1 else n) groups 0 in
  check_bool "repair instants never exceed outage instants" true (ups <= downs);
  check_bool "most outages repaired within horizon" true (ups > 0)

let test_compare_event_ties () =
  let a = down ~t:2. (Schedule.Link 0) in
  let b = up ~t:2. (Schedule.Link 1) in
  check_bool "repairs sort before failures at the same instant" true
    (Schedule.compare_event b a < 0);
  check_bool "ordering is total" true
    (Schedule.compare_event a a = 0
    && Schedule.compare_event a b = -Schedule.compare_event b a)

(* ------------------------------------------------------------------ *)
(* Health                                                              *)

let test_health_transitions () =
  let g = network 6 in
  let h = Health.create g in
  check_bool "starts healthy" false (Health.any_down h);
  let e = Schedule.Link 0 in
  check_bool "first failure transitions" true
    (Health.apply h (down ~t:1. e) = Health.Went_down);
  check_bool "now down" false (Health.link_up h 0);
  check_bool "second cause is silent" true
    (Health.apply h (down ~t:2. e) = Health.No_change);
  check_bool "first repair leaves it down" true
    (Health.apply h (up ~t:3. e) = Health.No_change);
  check_bool "still down" false (Health.element_up h e);
  check_bool "last repair transitions" true
    (Health.apply h (up ~t:5. e) = Health.Came_up);
  check_bool "healthy again" true (Health.link_up h 0 && not (Health.any_down h));
  check_bool "spurious repair clamped" true
    (Health.apply h (up ~t:6. e) = Health.No_change);
  check_bool "spurious repair did not corrupt the count" true
    (Health.apply h (down ~t:7. e) = Health.Went_down)

let test_health_down_lists_and_mttr () =
  let g = network 7 in
  let h = Health.create g in
  ignore (Health.apply h (down ~t:1. (Schedule.Switch 9)));
  ignore (Health.apply h (down ~t:1. (Schedule.Link 3)));
  ignore (Health.apply h (down ~t:2. (Schedule.Link 1)));
  Alcotest.(check (list int)) "down links ascend" [ 1; 3 ] (Health.down_links h);
  Alcotest.(check (list int)) "down switches" [ 9 ] (Health.down_switches h);
  check_int "no repairs yet" 0 (Health.repairs h);
  check_float "mttr defined as 0 before repairs" 0. (Health.observed_mttr h);
  ignore (Health.apply h (up ~t:4. (Schedule.Link 3)));
  ignore (Health.apply h (up ~t:7. (Schedule.Link 1)));
  check_int "two repairs" 2 (Health.repairs h);
  (* Spells: link 3 down 1→4 (3s), link 1 down 2→7 (5s). *)
  check_float "observed mttr" 4. (Health.observed_mttr h)

let test_health_exclusion_is_live () =
  let g, (u0, u1), (sa, _) = parallel_network () in
  let h = Health.create g in
  let ex = Health.exclusion h in
  check_bool "healthy switch passes" true (ex.Routing.vertex_ok sa);
  ignore (Health.apply h (down ~t:1. (Schedule.Switch sa)));
  check_bool "same closure sees the failure" false (ex.Routing.vertex_ok sa);
  let capacity = Capacity.of_graph g in
  (match
     Routing.best_channel ~exclude:ex g params ~capacity ~src:u0 ~dst:u1
   with
  | None -> Alcotest.fail "detour must route"
  | Some c ->
      check_bool "route avoids the failed switch" false
        (List.mem sa c.Channel.path);
      check_bool "dead_channel agrees" false (Health.dead_channel h g c.path));
  ignore (Health.apply h (up ~t:2. (Schedule.Switch sa)));
  check_bool "closure sees the repair too" true (ex.Routing.vertex_ok sa)

let test_health_tree_ok () =
  let g, (u0, u1), (sa, sb) = parallel_network () in
  let capacity = Capacity.of_graph g in
  let tree =
    match Multi_group.prim_for_users g params ~capacity ~users:[ u0; u1 ] with
    | Some t -> t
    | None -> Alcotest.fail "pair must route"
  in
  let used_switch =
    match (List.hd tree.Ent_tree.channels).Channel.path with
    | [ _; s; _ ] -> s
    | _ -> Alcotest.fail "expected a 2-hop channel"
  in
  let other = if used_switch = sa then sb else sa in
  let h = Health.create g in
  check_bool "healthy tree ok" true (Health.tree_ok h g tree);
  ignore (Health.apply h (down (Schedule.Switch other)));
  check_bool "unrelated failure leaves tree ok" true (Health.tree_ok h g tree);
  ignore (Health.apply h (down (Schedule.Switch used_switch)));
  check_bool "tree dies with its switch" false (Health.tree_ok h g tree)

(* ------------------------------------------------------------------ *)
(* Engine recovery policies (explicit schedules pin fault instants)    *)

let run_with ~recovery g reqs schedule =
  let config = Engine.config ~recovery Policy.prim in
  Engine.run ~config ~fault_schedule:schedule g params ~requests:reqs

let test_abort_interrupts () =
  let g, (a0, a1), hub = hub_network () in
  let reqs = [ request ~duration:4. 0 [ a0; a1 ] 0. ] in
  let report, outcomes =
    run_with ~recovery:Engine.Abort g reqs [ down ~t:1. (Schedule.Switch hub) ]
  in
  check_int "nothing served" 0 report.Engine.served;
  check_int "one fault injected" 1 report.Engine.faults_injected;
  check_int "one interruption" 1 report.Engine.leases_interrupted;
  check_int "aborted" 1 report.Engine.leases_aborted;
  check_int "none recovered" 0 report.Engine.leases_recovered;
  check_float "lost service = unserved remainder" 3.
    report.Engine.mean_lost_service;
  match outcomes with
  | [ { Engine.resolution = Engine.Interrupted { start; at; recoveries; _ }; _ } ]
    ->
      check_float "had started at arrival" 0. start;
      check_float "cut at the fault instant" 1. at;
      check_int "no recoveries under abort" 0 recoveries
  | _ -> Alcotest.fail "expected one interrupted outcome"

let test_repair_fallback_aborts_when_no_detour () =
  (* The hub is the only connectivity: Repair must fall back to abort. *)
  let g, (a0, a1), hub = hub_network () in
  let reqs = [ request ~duration:4. 0 [ a0; a1 ] 0. ] in
  let report, _ =
    run_with ~recovery:Engine.Repair g reqs [ down ~t:1. (Schedule.Switch hub) ]
  in
  check_int "aborted despite repair policy" 1 report.Engine.leases_aborted;
  check_int "not recovered" 0 report.Engine.leases_recovered

let interior_switch (tree : Ent_tree.t) =
  match (List.hd tree.Ent_tree.channels).Channel.path with
  | [ _; s; _ ] -> s
  | _ -> Alcotest.fail "expected a 2-hop channel"

let test_repair_survives_with_detour () =
  let g, (u0, u1), (sa, sb) = parallel_network () in
  let reqs = [ request ~duration:4. 0 [ u0; u1 ] 0. ] in
  (* Learn which switch the policy picks, then kill exactly it. *)
  let _, outcomes = run_with ~recovery:Engine.Repair g reqs [] in
  let used =
    match outcomes with
    | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
        interior_switch tree
    | _ -> Alcotest.fail "baseline run must serve"
  in
  let incidents = ref [] in
  let config = Engine.config ~recovery:Engine.Repair Policy.prim in
  let report, outcomes =
    Engine.run ~config
      ~fault_schedule:[ down ~t:1. (Schedule.Switch used) ]
      ~on_incident:(fun i -> incidents := i :: !incidents)
      g params ~requests:reqs
  in
  check_int "served despite the fault" 1 report.Engine.served;
  check_int "one interruption" 1 report.Engine.leases_interrupted;
  check_int "recovered" 1 report.Engine.leases_recovered;
  check_int "no aborts" 0 report.Engine.leases_aborted;
  (match outcomes with
  | [ { Engine.resolution = Engine.Served { tree; recoveries; _ }; _ } ] ->
      check_int "one recovery recorded on the outcome" 1 recoveries;
      check_int "final tree took the detour"
        (if used = sa then sb else sa)
        (interior_switch tree)
  | _ -> Alcotest.fail "expected a served outcome");
  match !incidents with
  | [ { Engine.element = Schedule.Switch s; before; after = Some t; _ } ] ->
      check_int "incident names the failed switch" used s;
      check_int "incident.before used it" used (interior_switch before);
      check_bool "incident.after avoids it" true (interior_switch t <> used)
  | _ -> Alcotest.fail "expected exactly one recovered incident"

let test_reroute_survives_with_detour () =
  let g, (u0, u1), _ = parallel_network () in
  let reqs = [ request ~duration:4. 0 [ u0; u1 ] 0. ] in
  let _, outcomes = run_with ~recovery:Engine.Reroute g reqs [] in
  let used =
    match outcomes with
    | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
        interior_switch tree
    | _ -> Alcotest.fail "baseline run must serve"
  in
  let report, outcomes =
    run_with ~recovery:Engine.Reroute g reqs
      [ down ~t:1. (Schedule.Switch used) ]
  in
  check_int "served despite the fault" 1 report.Engine.served;
  check_int "recovered" 1 report.Engine.leases_recovered;
  match outcomes with
  | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
      check_bool "rerouted off the failed switch" true
        (interior_switch tree <> used)
  | _ -> Alcotest.fail "expected a served outcome"

let test_unrelated_fault_harmless () =
  let g, (u0, u1), (sa, sb) = parallel_network () in
  let reqs = [ request ~duration:4. 0 [ u0; u1 ] 0. ] in
  let _, outcomes = run_with ~recovery:Engine.Abort g reqs [] in
  let used =
    match outcomes with
    | [ { Engine.resolution = Engine.Served { tree; _ }; _ } ] ->
        interior_switch tree
    | _ -> Alcotest.fail "baseline run must serve"
  in
  let idle = if used = sa then sb else sa in
  let report, _ =
    run_with ~recovery:Engine.Abort g reqs [ down ~t:1. (Schedule.Switch idle) ]
  in
  check_int "fault landed" 1 report.Engine.faults_injected;
  check_int "no lease touched" 0 report.Engine.leases_interrupted;
  check_int "still served" 1 report.Engine.served

let test_repair_unblocks_queued_request () =
  (* The hub is down at arrival; the queued request is admitted by the
     rescan the repair triggers, before any backoff timer fires. *)
  let g, (a0, a1), hub = hub_network () in
  let reqs = [ request ~duration:2. ~patience:10. 0 [ a0; a1 ] 0.5 ] in
  let schedule =
    [ down ~t:0. (Schedule.Switch hub); up ~t:3. (Schedule.Switch hub) ]
  in
  let report, outcomes = run_with ~recovery:Engine.Repair g reqs schedule in
  check_int "served after the repair" 1 report.Engine.served;
  check_int "repair counted" 1 report.Engine.faults_repaired;
  check_float "observed mttr" 3. report.Engine.mean_time_to_repair;
  match outcomes with
  | [ { Engine.resolution = Engine.Served { start; _ }; _ } ] ->
      check_float "admitted exactly at the repair instant" 3. start
  | _ -> Alcotest.fail "expected a served outcome"

let test_schedule_validation () =
  let g, (a0, a1), _ = hub_network () in
  let reqs = [ request 0 [ a0; a1 ] 0. ] in
  let bad label schedule msg =
    Alcotest.check_raises label (Invalid_argument msg) (fun () ->
        ignore (Engine.run ~fault_schedule:schedule g params ~requests:reqs))
  in
  bad "negative time"
    [ down ~t:(-1.) (Schedule.Link 0) ]
    "Engine.run: fault event with bad timestamp";
  bad "unknown edge"
    [ down (Schedule.Link 999) ]
    "Engine.run: fault event on unknown edge";
  bad "unknown vertex"
    [ down (Schedule.Switch 999) ]
    "Engine.run: fault event on unknown vertex"

(* ------------------------------------------------------------------ *)
(* Determinism and report guards                                       *)

let chaos_run ?pool () =
  let g = network ~qubits:2 11 in
  let spec =
    Workload.spec ~requests:40 ~arrivals:(Workload.Poisson 1.5)
      ~patience:(0., 6.) ()
  in
  let reqs = Workload.generate (Prng.create 21) g spec in
  let faults = Model.make ~mtbf:25. ~mttr:4. ~seed:5 () in
  let config = Engine.config ~recovery:Engine.Repair Policy.prim in
  Engine.run ~config ~faults ?pool g params ~requests:reqs

let test_chaos_deterministic_across_pools () =
  let r1, o1 = chaos_run () in
  let r2, o2 = chaos_run () in
  check_bool "identical reports across runs" true (r1 = r2);
  check_bool "identical outcomes across runs" true (o1 = o2);
  check_bool "faults actually fired" true (r1.Engine.faults_injected > 0);
  Qnet_util.Pool.with_pool ~jobs:2 (fun pool ->
      let r3, o3 = chaos_run ~pool () in
      check_bool "identical report under a pool" true (r1 = r3);
      check_bool "identical outcomes under a pool" true (o1 = o3))

let assert_no_nan (r : Engine.report) =
  List.iter
    (fun (name, v) ->
      check_bool (name ^ " is finite") true (Float.is_finite v))
    [
      ("acceptance_ratio", r.Engine.acceptance_ratio);
      ("mean_wait", r.Engine.mean_wait);
      ("p95_wait", r.Engine.p95_wait);
      ("mean_rate", r.Engine.mean_rate);
      ("throughput", r.Engine.throughput);
      ("makespan", r.Engine.makespan);
      ("mean_utilization", r.Engine.mean_utilization);
      ("mean_time_to_repair", r.Engine.mean_time_to_repair);
      ("mean_lost_service", r.Engine.mean_lost_service);
    ]

let test_empty_workload_report () =
  let g, _, hub = hub_network () in
  let faults = Model.make ~mtbf:5. ~mttr:1. ~seed:3 () in
  let report, outcomes = Engine.run ~faults g params ~requests:[] in
  check_int "no outcomes" 0 (List.length outcomes);
  check_int "nothing arrived" 0 report.Engine.arrived;
  check_float "acceptance 0" 0. report.Engine.acceptance_ratio;
  check_float "mean_wait 0" 0. report.Engine.mean_wait;
  check_float "p95 0" 0. report.Engine.p95_wait;
  assert_no_nan report;
  (* Same with an explicit schedule: churn with no workload is inert. *)
  let report, _ =
    Engine.run
      ~fault_schedule:
        [ down ~t:1. (Schedule.Switch hub); up ~t:2. (Schedule.Switch hub) ]
      g params ~requests:[]
  in
  check_float "no-op churn leaves makespan 0" 0. report.Engine.makespan;
  assert_no_nan report

let test_all_faulted_report () =
  (* Every lease is cut down; served stays 0 and every mean field must
     still be a number. *)
  let g, (a0, a1), hub = hub_network () in
  let reqs =
    [ request ~duration:4. 0 [ a0; a1 ] 0.; request ~duration:4. 1 [ a0; a1 ] 10. ]
  in
  let schedule =
    [
      down ~t:1. (Schedule.Switch hub);
      up ~t:2. (Schedule.Switch hub);
      down ~t:11. (Schedule.Switch hub);
    ]
  in
  let report, outcomes = run_with ~recovery:Engine.Abort g reqs schedule in
  check_int "nothing served" 0 report.Engine.served;
  check_int "both aborted" 2 report.Engine.leases_aborted;
  check_float "acceptance 0" 0. report.Engine.acceptance_ratio;
  check_float "mean_rate 0" 0. report.Engine.mean_rate;
  assert_no_nan report;
  check_int "conservation with interruptions" 2
    (List.length
       (List.filter
          (fun o ->
            match o.Engine.resolution with
            | Engine.Interrupted _ -> true
            | _ -> false)
          outcomes))

let () =
  Alcotest.run "faults"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "target strings" `Quick test_target_strings;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "disabled/empty" `Quick
            test_schedule_disabled_or_empty;
          Alcotest.test_case "alternation" `Quick test_schedule_alternation;
          Alcotest.test_case "targets" `Quick test_schedule_targets;
          Alcotest.test_case "regional correlation" `Quick
            test_schedule_regional_correlation;
          Alcotest.test_case "event order" `Quick test_compare_event_ties;
        ] );
      ( "health",
        [
          Alcotest.test_case "transitions" `Quick test_health_transitions;
          Alcotest.test_case "down lists + mttr" `Quick
            test_health_down_lists_and_mttr;
          Alcotest.test_case "live exclusion" `Quick
            test_health_exclusion_is_live;
          Alcotest.test_case "tree_ok" `Quick test_health_tree_ok;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "abort interrupts" `Quick test_abort_interrupts;
          Alcotest.test_case "repair falls back" `Quick
            test_repair_fallback_aborts_when_no_detour;
          Alcotest.test_case "repair survives" `Quick
            test_repair_survives_with_detour;
          Alcotest.test_case "reroute survives" `Quick
            test_reroute_survives_with_detour;
          Alcotest.test_case "unrelated fault" `Quick
            test_unrelated_fault_harmless;
          Alcotest.test_case "repair unblocks queue" `Quick
            test_repair_unblocks_queued_request;
          Alcotest.test_case "schedule validation" `Quick
            test_schedule_validation;
        ] );
      ( "reports",
        [
          Alcotest.test_case "chaos determinism" `Slow
            test_chaos_deterministic_across_pools;
          Alcotest.test_case "empty workload" `Quick test_empty_workload_report;
          Alcotest.test_case "all faulted" `Quick test_all_faulted_report;
        ] );
    ]
