(* Unit tests for Qnet_sim.Scheduler — the online admission controller. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Scheduler = Qnet_sim.Scheduler
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let network ?(users = 8) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:25
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

let request ?(duration = 5) id users arrival =
  { Scheduler.id; users; arrival; duration }

let test_validation () =
  let g = network 1 in
  let u = Graph.users g in
  let u0 = List.nth u 0 and u1 = List.nth u 1 in
  let bad label reqs msg =
    Alcotest.check_raises label (Invalid_argument msg) (fun () ->
        ignore (Scheduler.run g params ~requests:reqs))
  in
  bad "duplicate id"
    [ request 1 [ u0; u1 ] 0; request 1 [ u0; u1 ] 1 ]
    "Scheduler.run: duplicate request id";
  bad "bad arrival" [ request 1 [ u0; u1 ] (-1) ]
    "Scheduler.run: negative arrival";
  bad "short group" [ request 1 [ u0 ] 0 ]
    "Scheduler.run: request needs >= 2 users";
  bad "duplicate member" [ request 1 [ u0; u0 ] 0 ]
    "Scheduler.run: duplicate users in request";
  bad "duration"
    [ { Scheduler.id = 1; users = [ u0; u1 ]; arrival = 0; duration = 0 } ]
    "Scheduler.run: duration < 1";
  let s = List.hd (Graph.switches g) in
  bad "switch member" [ request 1 [ u0; s ] 0 ]
    "Scheduler.run: request member is not a user"

let test_single_request_accepted () =
  let g = network 2 in
  let u = Graph.users g in
  let reqs = [ request 0 [ List.nth u 0; List.nth u 1 ] 0 ] in
  let stats, outcomes = Scheduler.run g params ~requests:reqs in
  check_int "arrived" 1 stats.Scheduler.arrived;
  check_int "accepted" 1 stats.Scheduler.accepted;
  Alcotest.(check (float 1e-12)) "ratio" 1. stats.Scheduler.acceptance_ratio;
  match outcomes with
  | [ { Scheduler.disposition = Scheduler.Accepted { slot; rate; tree }; _ } ]
    ->
      check_int "admitted on arrival" 0 slot;
      check_bool "positive rate" true (rate > 0.);
      check_bool "valid tree" true
        (Verify.is_valid g params
           ~users:(List.filteri (fun i _ -> i < 2) u)
           tree)
  | _ -> Alcotest.fail "expected one acceptance"

let test_contention_drop_policy () =
  (* Two pair-requests forced through one 2-qubit hub, same slot: the
     second must be dropped under Drop. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  let g = Graph.Builder.freeze b in
  let reqs =
    [ request ~duration:4 0 [ a0; a1 ] 0; request ~duration:4 1 [ b0; b1 ] 0 ]
  in
  let stats, _ = Scheduler.run ~policy:Scheduler.Drop g params ~requests:reqs in
  check_int "one accepted" 1 stats.Scheduler.accepted;
  check_int "one rejected" 1 stats.Scheduler.rejected;
  (* With queueing, the second waits out the first lease (4 slots). *)
  let stats, outcomes =
    Scheduler.run ~policy:(Scheduler.Queue 10) g params ~requests:reqs
  in
  check_int "both eventually accepted" 2 stats.Scheduler.accepted;
  check_bool "waiting happened" true (stats.Scheduler.mean_wait_slots > 0.);
  List.iter
    (fun (o : Scheduler.outcome) ->
      match o.Scheduler.disposition with
      | Scheduler.Accepted { slot; _ } ->
          check_bool "second admitted after lease expiry" true
            (o.Scheduler.request.Scheduler.id = 0 || slot >= 4)
      | Scheduler.Rejected _ -> Alcotest.fail "no rejections expected")
    outcomes

let test_queue_timeout () =
  (* Same contention but the lease outlives the queue patience. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  let g = Graph.Builder.freeze b in
  let reqs =
    [ request ~duration:50 0 [ a0; a1 ] 0; request ~duration:5 1 [ b0; b1 ] 0 ]
  in
  let stats, _ =
    Scheduler.run ~policy:(Scheduler.Queue 3) g params ~requests:reqs
  in
  check_int "queued request times out" 1 stats.Scheduler.rejected

let test_leases_release () =
  (* Sequential non-overlapping requests through the same hub must all
     be admitted: leases release qubits. *)
  let g = network ~qubits:2 3 in
  let u = Graph.users g in
  let u0 = List.nth u 0 and u1 = List.nth u 1 in
  let reqs =
    List.init 5 (fun i -> request ~duration:2 i [ u0; u1 ] (i * 3))
  in
  let stats, _ = Scheduler.run g params ~requests:reqs in
  check_int "all admitted in turn" 5 stats.Scheduler.accepted;
  check_bool "peak usage bounded" true (stats.Scheduler.peak_qubits_in_use > 0)

let test_outcomes_cover_all_requests () =
  let g = network 4 in
  let rng = Prng.create 9 in
  let reqs =
    Scheduler.random_requests rng g ~n:30 ~mean_gap:2. ~max_group:4
      ~duration_range:(1, 6)
  in
  let stats, outcomes = Scheduler.run ~policy:(Scheduler.Queue 5) g params ~requests:reqs in
  check_int "every request decided" 30 (List.length outcomes);
  check_int "stats add up" 30
    (stats.Scheduler.accepted + stats.Scheduler.rejected)

let test_random_requests_wellformed () =
  let g = network 5 in
  let rng = Prng.create 11 in
  let reqs =
    Scheduler.random_requests rng g ~n:50 ~mean_gap:1.5 ~max_group:5
      ~duration_range:(2, 4)
  in
  check_int "count" 50 (List.length reqs);
  let sorted_arrivals =
    List.map (fun r -> r.Scheduler.arrival) reqs
  in
  check_bool "arrivals non-decreasing" true
    (sorted_arrivals = List.sort compare sorted_arrivals);
  List.iter
    (fun r ->
      check_bool "group size" true
        (List.length r.Scheduler.users >= 2
        && List.length r.Scheduler.users <= 5);
      check_bool "duration range" true
        (r.Scheduler.duration >= 2 && r.Scheduler.duration <= 4);
      check_bool "distinct members" true
        (List.length (List.sort_uniq compare r.Scheduler.users)
        = List.length r.Scheduler.users))
    reqs;
  Alcotest.check_raises "max_group too large"
    (Invalid_argument "Scheduler.random_requests: max_group exceeds user count")
    (fun () ->
      ignore
        (Scheduler.random_requests rng g ~n:1 ~mean_gap:1. ~max_group:100
           ~duration_range:(1, 2)))

let test_lease_roundtrip () =
  let g = network ~qubits:4 7 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1 ] in
  let capacity = Capacity.of_graph g in
  let tree =
    match Multi_group.prim_for_users g params ~capacity ~users with
    | Some t -> t
    | None -> Alcotest.fail "pair must route on a fresh network"
  in
  let lease = Scheduler.Lease.acquire tree in
  check_bool "lease covers qubits" true (Scheduler.Lease.qubits lease > 0);
  check_int "one channel path per channel"
    (List.length tree.Ent_tree.channels)
    (List.length (Scheduler.Lease.channels lease));
  let consumed_somewhere =
    List.exists (fun s -> Capacity.used capacity s > 0) (Graph.switches g)
  in
  check_bool "routing consumed capacity" true consumed_somewhere;
  Scheduler.Lease.release capacity lease;
  List.iter
    (fun s -> check_int "release restores residual" 0 (Capacity.used capacity s))
    (Graph.switches g);
  Alcotest.check_raises "double release rejected"
    (Invalid_argument "Scheduler.Lease.release: already released") (fun () ->
      Scheduler.Lease.release capacity lease)

let test_lease_invariant_violation () =
  (* Releasing a lease whose qubits were already refunded behind its
     back must trip the capacity invariant, not silently underflow. *)
  let g = network ~qubits:4 8 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1 ] in
  let capacity = Capacity.of_graph g in
  let tree =
    match Multi_group.prim_for_users g params ~capacity ~users with
    | Some t -> t
    | None -> Alcotest.fail "pair must route on a fresh network"
  in
  let lease = Scheduler.Lease.acquire tree in
  List.iter
    (fun (c : Channel.t) -> Capacity.release_channel capacity c.Channel.path)
    tree.Ent_tree.channels;
  Alcotest.check_raises "invariant trips"
    (Invalid_argument
       "Scheduler.Lease.release: capacity invariant violated (refund exceeds \
        recorded consumption)") (fun () ->
      Scheduler.Lease.release capacity lease)

let test_heavier_load_lowers_acceptance () =
  let g = network ~qubits:2 6 in
  let run gap =
    let rng = Prng.create 13 in
    let reqs =
      Scheduler.random_requests rng g ~n:40 ~mean_gap:gap ~max_group:3
        ~duration_range:(4, 8)
    in
    (fst (Scheduler.run g params ~requests:reqs)).Scheduler.acceptance_ratio
  in
  let sparse = run 10. and dense = run 0.5 in
  check_bool "denser arrivals accept no more" true (dense <= sparse +. 1e-9)

let () =
  Alcotest.run "scheduler"
    [
      ("validation", [ Alcotest.test_case "inputs" `Quick test_validation ]);
      ( "admission",
        [
          Alcotest.test_case "single request" `Quick
            test_single_request_accepted;
          Alcotest.test_case "contention + drop" `Quick
            test_contention_drop_policy;
          Alcotest.test_case "queue timeout" `Quick test_queue_timeout;
          Alcotest.test_case "lease release" `Quick test_leases_release;
          Alcotest.test_case "all decided" `Quick
            test_outcomes_cover_all_requests;
        ] );
      ( "lease",
        [
          Alcotest.test_case "roundtrip" `Quick test_lease_roundtrip;
          Alcotest.test_case "invariant violation" `Quick
            test_lease_invariant_violation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "random requests" `Quick
            test_random_requests_wellformed;
          Alcotest.test_case "load response" `Quick
            test_heavier_load_lowers_acceptance;
        ] );
    ]
