(* Unit tests for Qnet_sim.Scheduler — the online admission controller. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Scheduler = Qnet_sim.Scheduler
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let network ?(users = 8) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:25
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

let request ?(duration = 5) id users arrival =
  { Scheduler.id; users; arrival; duration }

let test_validation () =
  let g = network 1 in
  let u = Graph.users g in
  let u0 = List.nth u 0 and u1 = List.nth u 1 in
  let bad label reqs msg =
    Alcotest.check_raises label (Invalid_argument msg) (fun () ->
        ignore (Scheduler.run g params ~requests:reqs))
  in
  bad "duplicate id"
    [ request 1 [ u0; u1 ] 0; request 1 [ u0; u1 ] 1 ]
    "Scheduler.run: duplicate request id";
  bad "bad arrival" [ request 1 [ u0; u1 ] (-1) ]
    "Scheduler.run: negative arrival";
  bad "short group" [ request 1 [ u0 ] 0 ]
    "Scheduler.run: request needs >= 2 users";
  bad "duplicate member" [ request 1 [ u0; u0 ] 0 ]
    "Scheduler.run: duplicate users in request";
  bad "duration"
    [ { Scheduler.id = 1; users = [ u0; u1 ]; arrival = 0; duration = 0 } ]
    "Scheduler.run: duration < 1";
  let s = List.hd (Graph.switches g) in
  bad "switch member" [ request 1 [ u0; s ] 0 ]
    "Scheduler.run: request member is not a user"

let test_single_request_accepted () =
  let g = network 2 in
  let u = Graph.users g in
  let reqs = [ request 0 [ List.nth u 0; List.nth u 1 ] 0 ] in
  let stats, outcomes = Scheduler.run g params ~requests:reqs in
  check_int "arrived" 1 stats.Scheduler.arrived;
  check_int "accepted" 1 stats.Scheduler.accepted;
  Alcotest.(check (float 1e-12)) "ratio" 1. stats.Scheduler.acceptance_ratio;
  match outcomes with
  | [ { Scheduler.disposition = Scheduler.Accepted { slot; rate; tree }; _ } ]
    ->
      check_int "admitted on arrival" 0 slot;
      check_bool "positive rate" true (rate > 0.);
      check_bool "valid tree" true
        (Verify.is_valid g params
           ~users:(List.filteri (fun i _ -> i < 2) u)
           tree)
  | _ -> Alcotest.fail "expected one acceptance"

let test_contention_drop_policy () =
  (* Two pair-requests forced through one 2-qubit hub, same slot: the
     second must be dropped under Drop. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  let g = Graph.Builder.freeze b in
  let reqs =
    [ request ~duration:4 0 [ a0; a1 ] 0; request ~duration:4 1 [ b0; b1 ] 0 ]
  in
  let stats, _ = Scheduler.run ~policy:Scheduler.Drop g params ~requests:reqs in
  check_int "one accepted" 1 stats.Scheduler.accepted;
  check_int "one rejected" 1 stats.Scheduler.rejected;
  (* With queueing, the second waits out the first lease (4 slots). *)
  let stats, outcomes =
    Scheduler.run ~policy:(Scheduler.Queue 10) g params ~requests:reqs
  in
  check_int "both eventually accepted" 2 stats.Scheduler.accepted;
  check_bool "waiting happened" true (stats.Scheduler.mean_wait_slots > 0.);
  List.iter
    (fun (o : Scheduler.outcome) ->
      match o.Scheduler.disposition with
      | Scheduler.Accepted { slot; _ } ->
          check_bool "second admitted after lease expiry" true
            (o.Scheduler.request.Scheduler.id = 0 || slot >= 4)
      | Scheduler.Rejected _ -> Alcotest.fail "no rejections expected")
    outcomes

let test_queue_timeout () =
  (* Same contention but the lease outlives the queue patience. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  let g = Graph.Builder.freeze b in
  let reqs =
    [ request ~duration:50 0 [ a0; a1 ] 0; request ~duration:5 1 [ b0; b1 ] 0 ]
  in
  let stats, _ =
    Scheduler.run ~policy:(Scheduler.Queue 3) g params ~requests:reqs
  in
  check_int "queued request times out" 1 stats.Scheduler.rejected

let test_leases_release () =
  (* Sequential non-overlapping requests through the same hub must all
     be admitted: leases release qubits. *)
  let g = network ~qubits:2 3 in
  let u = Graph.users g in
  let u0 = List.nth u 0 and u1 = List.nth u 1 in
  let reqs =
    List.init 5 (fun i -> request ~duration:2 i [ u0; u1 ] (i * 3))
  in
  let stats, _ = Scheduler.run g params ~requests:reqs in
  check_int "all admitted in turn" 5 stats.Scheduler.accepted;
  check_bool "peak usage bounded" true (stats.Scheduler.peak_qubits_in_use > 0)

let test_outcomes_cover_all_requests () =
  let g = network 4 in
  let rng = Prng.create 9 in
  let reqs =
    Scheduler.random_requests rng g ~n:30 ~mean_gap:2. ~max_group:4
      ~duration_range:(1, 6)
  in
  let stats, outcomes = Scheduler.run ~policy:(Scheduler.Queue 5) g params ~requests:reqs in
  check_int "every request decided" 30 (List.length outcomes);
  check_int "stats add up" 30
    (stats.Scheduler.accepted + stats.Scheduler.rejected)

let test_random_requests_wellformed () =
  let g = network 5 in
  let rng = Prng.create 11 in
  let reqs =
    Scheduler.random_requests rng g ~n:50 ~mean_gap:1.5 ~max_group:5
      ~duration_range:(2, 4)
  in
  check_int "count" 50 (List.length reqs);
  let sorted_arrivals =
    List.map (fun r -> r.Scheduler.arrival) reqs
  in
  check_bool "arrivals non-decreasing" true
    (sorted_arrivals = List.sort compare sorted_arrivals);
  List.iter
    (fun r ->
      check_bool "group size" true
        (List.length r.Scheduler.users >= 2
        && List.length r.Scheduler.users <= 5);
      check_bool "duration range" true
        (r.Scheduler.duration >= 2 && r.Scheduler.duration <= 4);
      check_bool "distinct members" true
        (List.length (List.sort_uniq compare r.Scheduler.users)
        = List.length r.Scheduler.users))
    reqs;
  Alcotest.check_raises "max_group too large"
    (Invalid_argument "Scheduler.random_requests: max_group exceeds user count")
    (fun () ->
      ignore
        (Scheduler.random_requests rng g ~n:1 ~mean_gap:1. ~max_group:100
           ~duration_range:(1, 2)))

let test_lease_roundtrip () =
  let g = network ~qubits:4 7 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1 ] in
  let capacity = Capacity.of_graph g in
  let tree =
    match Multi_group.prim_for_users g params ~capacity ~users with
    | Some t -> t
    | None -> Alcotest.fail "pair must route on a fresh network"
  in
  let lease = Scheduler.Lease.acquire tree in
  check_bool "lease covers qubits" true (Scheduler.Lease.qubits lease > 0);
  check_int "one channel path per channel"
    (List.length tree.Ent_tree.channels)
    (List.length (Scheduler.Lease.channels lease));
  let consumed_somewhere =
    List.exists (fun s -> Capacity.used capacity s > 0) (Graph.switches g)
  in
  check_bool "routing consumed capacity" true consumed_somewhere;
  Scheduler.Lease.release capacity lease;
  List.iter
    (fun s -> check_int "release restores residual" 0 (Capacity.used capacity s))
    (Graph.switches g);
  Alcotest.check_raises "double release rejected"
    (Invalid_argument "Scheduler.Lease.release: already released") (fun () ->
      Scheduler.Lease.release capacity lease)

let test_lease_invariant_violation () =
  (* Releasing a lease whose qubits were already refunded behind its
     back must trip the capacity invariant, not silently underflow. *)
  let g = network ~qubits:4 8 in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1 ] in
  let capacity = Capacity.of_graph g in
  let tree =
    match Multi_group.prim_for_users g params ~capacity ~users with
    | Some t -> t
    | None -> Alcotest.fail "pair must route on a fresh network"
  in
  let lease = Scheduler.Lease.acquire tree in
  List.iter
    (fun (c : Channel.t) -> Capacity.release_channel capacity c.Channel.path)
    tree.Ent_tree.channels;
  Alcotest.check_raises "invariant trips"
    (Invalid_argument
       "Scheduler.Lease.release: capacity invariant violated (refund exceeds \
        recorded consumption)") (fun () ->
      Scheduler.Lease.release capacity lease)

let test_lease_commit () =
  (* The batched engine's commit half: two speculative solves against
     independent snapshots of the same state both believe the one
     2-qubit hub has room; only the first commit admits, the second
     refuses atomically. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  let g = Graph.Builder.freeze b in
  let capacity = Capacity.of_graph g in
  let route users snapshot =
    match Multi_group.prim_for_users g params ~capacity:snapshot ~users with
    | Some t -> t
    | None -> Alcotest.fail "pair must route on a fresh snapshot"
  in
  let t_a = route [ a0; a1 ] (Capacity.overlay capacity) in
  let t_b = route [ b0; b1 ] (Capacity.overlay capacity) in
  check_int "snapshot routing left live state alone" 0
    (Capacity.used capacity hub);
  let lease_a =
    match Scheduler.Lease.commit capacity t_a with
    | Some l -> l
    | None -> Alcotest.fail "first commit must admit"
  in
  check_int "winner's qubits consumed" 2 (Capacity.used capacity hub);
  (* The conflicting commit must consume nothing. *)
  (match Scheduler.Lease.commit capacity t_b with
  | None -> ()
  | Some _ -> Alcotest.fail "conflicting commit must refuse");
  check_int "hub untouched by the refusal" 2 (Capacity.used capacity hub);
  (* Once the winner releases, the loser's tree commits cleanly. *)
  Scheduler.Lease.release capacity lease_a;
  (match Scheduler.Lease.commit capacity t_b with
  | Some l -> Scheduler.Lease.release capacity l
  | None -> Alcotest.fail "commit must admit after release");
  check_int "books balanced" 0 (Capacity.used capacity hub)

(* Route a 3-user group so the lease spans at least two channels —
   partial release needs something to keep. *)
let multi_channel_lease seed =
  let g = network ~qubits:4 seed in
  let u = Graph.users g in
  let users = [ List.nth u 0; List.nth u 1; List.nth u 2 ] in
  let capacity = Capacity.of_graph g in
  match Multi_group.prim_for_users g params ~capacity ~users with
  | Some t -> (g, capacity, Scheduler.Lease.acquire t)
  | None -> Alcotest.fail "triple must route on a fresh network"

let test_release_where_partial () =
  let g, capacity, lease = multi_channel_lease 21 in
  let paths = Scheduler.Lease.channels lease in
  check_bool "multi-channel tree" true (List.length paths >= 2);
  (* No dead channel: the very same live lease comes back, nothing is
     refunded. *)
  (match Scheduler.Lease.release_where capacity lease ~dead:(fun _ -> false) with
  | Some l, [] -> check_bool "lease returned untouched" true (l == lease)
  | _ -> Alcotest.fail "expected the unchanged lease");
  (* Kill exactly the first channel. *)
  let victim = List.hd paths in
  let remainder, dead =
    Scheduler.Lease.release_where capacity lease ~dead:(fun p -> p = victim)
  in
  Alcotest.(check (list (list int))) "dead path reported" [ victim ] dead;
  let remainder =
    match remainder with
    | Some r -> r
    | None -> Alcotest.fail "survivors must form a remainder lease"
  in
  check_int "remainder keeps the other channels"
    (List.length paths - 1)
    (List.length (Scheduler.Lease.channels remainder));
  check_int "qubits split exactly"
    (Scheduler.Lease.qubits lease)
    (Scheduler.Lease.qubits remainder + (2 * (List.length victim - 2)));
  (* The original lease is retired; only the remainder is live. *)
  Alcotest.check_raises "original retired"
    (Invalid_argument "Scheduler.Lease.release_where: already released")
    (fun () ->
      ignore (Scheduler.Lease.release_where capacity lease ~dead:(fun _ -> true)));
  Scheduler.Lease.release capacity remainder;
  List.iter
    (fun s -> check_int "everything refunded" 0 (Capacity.used capacity s))
    (Graph.switches g)

let test_release_where_all_dead () =
  let g, capacity, lease = multi_channel_lease 22 in
  let paths = Scheduler.Lease.channels lease in
  let remainder, dead =
    Scheduler.Lease.release_where capacity lease ~dead:(fun _ -> true)
  in
  check_bool "no remainder" true (remainder = None);
  check_int "every path refunded" (List.length paths) (List.length dead);
  List.iter
    (fun s -> check_int "fully refunded" 0 (Capacity.used capacity s))
    (Graph.switches g);
  Alcotest.check_raises "double release rejected"
    (Invalid_argument "Scheduler.Lease.release: already released") (fun () ->
      Scheduler.Lease.release capacity lease)

let test_release_where_refunds_once_qcheck () =
  (* Any random subset of channels may die; afterwards the books must
     balance and the retired lease must refuse a second refund. *)
  let prop seed =
    let g = network ~users:6 ~qubits:3 ((seed mod 40) + 1) in
    let rng = Prng.create seed in
    let u = Array.of_list (Graph.users g) in
    Prng.shuffle_in_place rng u;
    let users = Array.to_list (Array.sub u 0 (2 + Prng.int rng 3)) in
    let capacity = Capacity.of_graph g in
    match Multi_group.prim_for_users g params ~capacity ~users with
    | None -> true (* infeasible draw: nothing to lease *)
    | Some tree ->
        let lease = Scheduler.Lease.acquire tree in
        let marks =
          List.map
            (fun p -> (p, Prng.bool rng))
            (Scheduler.Lease.channels lease)
        in
        let remainder, dead_paths =
          Scheduler.Lease.release_where capacity lease ~dead:(fun p ->
              List.assoc p marks)
        in
        List.iter
          (fun p ->
            if not (List.assoc p marks) then
              Alcotest.fail "live channel reported dead")
          dead_paths;
        Option.iter (fun r -> Scheduler.Lease.release capacity r) remainder;
        List.iter
          (fun s ->
            if Capacity.used capacity s <> 0 then
              Alcotest.failf "switch %d not fully refunded" s)
          (Graph.switches g);
        (* Whichever way it went, the original lease handle is spent. *)
        (try
           Scheduler.Lease.release capacity lease;
           Alcotest.fail "second refund accepted"
         with Invalid_argument _ -> ());
        true
  in
  let test =
    QCheck.Test.make ~count:100 ~name:"release_where refunds exactly once"
      QCheck.(int_range 1 10_000)
      prop
  in
  QCheck.Test.check_exn test

let test_heavier_load_lowers_acceptance () =
  let g = network ~qubits:2 6 in
  let run gap =
    let rng = Prng.create 13 in
    let reqs =
      Scheduler.random_requests rng g ~n:40 ~mean_gap:gap ~max_group:3
        ~duration_range:(4, 8)
    in
    (fst (Scheduler.run g params ~requests:reqs)).Scheduler.acceptance_ratio
  in
  let sparse = run 10. and dense = run 0.5 in
  check_bool "denser arrivals accept no more" true (dense <= sparse +. 1e-9)

let () =
  Alcotest.run "scheduler"
    [
      ("validation", [ Alcotest.test_case "inputs" `Quick test_validation ]);
      ( "admission",
        [
          Alcotest.test_case "single request" `Quick
            test_single_request_accepted;
          Alcotest.test_case "contention + drop" `Quick
            test_contention_drop_policy;
          Alcotest.test_case "queue timeout" `Quick test_queue_timeout;
          Alcotest.test_case "lease release" `Quick test_leases_release;
          Alcotest.test_case "all decided" `Quick
            test_outcomes_cover_all_requests;
        ] );
      ( "lease",
        [
          Alcotest.test_case "roundtrip" `Quick test_lease_roundtrip;
          Alcotest.test_case "invariant violation" `Quick
            test_lease_invariant_violation;
          Alcotest.test_case "snapshot commit" `Quick test_lease_commit;
          Alcotest.test_case "partial release" `Quick
            test_release_where_partial;
          Alcotest.test_case "all channels dead" `Quick
            test_release_where_all_dead;
          Alcotest.test_case "refunds exactly once (qcheck)" `Slow
            test_release_where_refunds_once_qcheck;
        ] );
      ( "workload",
        [
          Alcotest.test_case "random requests" `Quick
            test_random_requests_wellformed;
          Alcotest.test_case "load response" `Quick
            test_heavier_load_lowers_acceptance;
        ] );
    ]
