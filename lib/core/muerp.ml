module Graph = Qnet_graph.Graph
module Clock = Qnet_telemetry.Clock
module Tm = Qnet_telemetry.Metrics

type algorithm = Optimal | Conflict_free | Prim_based | Exhaustive

let all_heuristics = [ Optimal; Conflict_free; Prim_based ]

let algorithm_name = function
  | Optimal -> "alg2-optimal"
  | Conflict_free -> "alg3-conflict-free"
  | Prim_based -> "alg4-prim"
  | Exhaustive -> "exhaustive"

type instance = { graph : Graph.t; params : Params.t }

let instance ?(params = Params.default) graph =
  if Graph.user_count graph = 0 then
    invalid_arg "Muerp.instance: graph has no users";
  { graph; params }

type outcome = {
  algorithm : algorithm;
  tree : Ent_tree.t option;
  rate : float;
  neg_log_rate : float;
  elapsed_s : float;
}

let capacity_ok g tree =
  List.for_all
    (fun (s, used) -> used <= Graph.qubits g s)
    (Ent_tree.qubit_usage tree)

let outcome_capacity_ok inst outcome =
  match outcome.tree with
  | None -> true
  | Some tree -> capacity_ok inst.graph tree

let validate_outcome inst algorithm tree =
  let users = Graph.users inst.graph in
  let violations = Verify.check inst.graph inst.params ~users tree in
  let tolerated = function
    (* Algorithm 2 legitimately ignores cumulative capacity. *)
    | Verify.Capacity_exceeded _ -> algorithm = Optimal
    | Verify.Bad_channel _ | Verify.Not_a_spanning_tree
    | Verify.Rate_mismatch _ ->
        false
  in
  match List.filter (fun v -> not (tolerated v)) violations with
  | [] -> ()
  | v :: _ ->
      failwith
        (Format.asprintf "Muerp.solve: %s produced an invalid tree: %a"
           (algorithm_name algorithm) Verify.pp_violation v)

(* Per-algorithm wall-time histograms (seconds), fed on every solve.
   Timing uses the monotone telemetry clock so a wall-clock step cannot
   produce negative or inflated solver timings. *)
let hist_optimal = Tm.histogram "solve.alg2-optimal.seconds"
let hist_conflict_free = Tm.histogram "solve.alg3-conflict-free.seconds"
let hist_prim = Tm.histogram "solve.alg4-prim.seconds"
let hist_exhaustive = Tm.histogram "solve.exhaustive.seconds"

let wall_time_hist = function
  | Optimal -> hist_optimal
  | Conflict_free -> hist_conflict_free
  | Prim_based -> hist_prim
  | Exhaustive -> hist_exhaustive

let c_solves = Tm.counter "solve.calls"
let c_infeasible = Tm.counter "solve.infeasible"

let solve ?rng ?budget algorithm inst =
  Tm.Counter.incr c_solves;
  let t0 = Clock.now_s () in
  let tree =
    Qnet_telemetry.Span.with_span (algorithm_name algorithm) (fun () ->
        match algorithm with
        | Optimal -> Alg_optimal.solve ?budget inst.graph inst.params
        | Conflict_free ->
            Alg_conflict_free.solve ?budget inst.graph inst.params
        | Prim_based -> Alg_prim.solve ?rng ?budget inst.graph inst.params
        | Exhaustive -> Exact.solve inst.graph inst.params)
  in
  let elapsed_s = Clock.elapsed_since t0 in
  Tm.Histogram.observe (wall_time_hist algorithm) elapsed_s;
  if tree = None then Tm.Counter.incr c_infeasible;
  Option.iter (validate_outcome inst algorithm) tree;
  let rate, neg_log_rate =
    match tree with
    | None -> (0., infinity)
    | Some t -> (Ent_tree.rate_prob t, Ent_tree.rate_neg_log t)
  in
  { algorithm; tree; rate; neg_log_rate; elapsed_s }

let rate_of o = o.rate

(* The gap convention shared by the solve/traffic reports and the bench
   flow section: how far below a proven rate ceiling a heuristic
   landed, as a fraction of the ceiling. *)
let optimality_gap ~bound_neg_log ~achieved_neg_log =
  if not (Float.is_finite achieved_neg_log) then 1.
  else if not (Float.is_finite bound_neg_log) then 0.
  else 1. -. exp (bound_neg_log -. achieved_neg_log)
