(** Concurrent routing of multiple independent entanglement groups.

    The paper's second named extension (§II-D, §VII): several disjoint
    user sets request entanglement simultaneously and must share the
    switches' qubits.  Each group still needs its own entanglement tree
    (Definition 1), and a switch's qubits are consumed by whichever
    groups' channels cross it.

    Two allocation strategies are provided:

    - [Sequential]: solve groups one after another (in the given order),
      each seeing the residual capacity its predecessors left — simple,
      but early groups can starve later ones.
    - [Round_robin]: grow all groups' trees concurrently, one channel
      per group per round (each round attaches the best available
      channel for that group under the shared residual capacity) —
      trades peak rates for fairness. *)

type strategy = Sequential | Round_robin

type group_result = {
  group : int list;  (** The user set, as given. *)
  tree : Ent_tree.t option;  (** [None] when the group could not be
                                 spanned under the shared capacity. *)
  rate : float;  (** Eq. (2); [0.] when unspanned. *)
}

type t = {
  strategy : strategy;
  groups : group_result list;  (** In the order given. *)
  all_feasible : bool;
  aggregate_neg_log : float;
      (** Σ of −ln rates over feasible groups — the joint "all groups
          entangle simultaneously" log-rate restricted to served
          groups. *)
  min_rate : float;  (** Worst served group's rate ([0.] if any group is
                         unserved) — the fairness metric. *)
}

val solve :
  ?strategy:strategy ->
  Qnet_graph.Graph.t ->
  Params.t ->
  groups:int list list ->
  t
(** Route every group's entanglement tree under shared switch
    capacities (default strategy [Sequential]).  Groups must be
    non-empty, pairwise-disjoint sets of user vertices; a group's
    vertices need not be all of the graph's users.
    @raise Invalid_argument on empty/overlapping groups or non-user
    members. *)

val prim_for_users :
  ?exclude:Routing.exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  ?oracle:Routing.channel_oracle ->
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  users:int list ->
  Ent_tree.t option
(** Algorithm 4 generalised to an arbitrary user subset and an external
    residual-capacity state (consumed on success, partially consumed on
    failure paths are rolled back).  [exclude] (default
    {!Routing.no_exclusion}) keeps the grown tree clear of failed
    switches and fibers.  [budget] meters the underlying Dijkstra runs;
    on {!Qnet_overload.Budget.Exhausted} any channels already consumed
    from [capacity] are released before the exception propagates, so a
    fuel-starved call leaves shared capacity exactly as it found it.
    [oracle] replaces the flat per-source channel enumeration with
    point queries (see {!Routing.channel_oracle}) — how the
    hierarchical router drops in under Algorithm 4 without this module
    knowing about regions.  Exposed for reuse and testing. *)
