(** Top-level MUERP interface: one entry point over all solvers.

    This is the API the examples, experiments and CLI use: build an
    {!instance}, pick an {!algorithm}, read off the {!outcome}. *)

type algorithm =
  | Optimal  (** Algorithm 2 — exact under the sufficient condition;
                 capacity-oblivious otherwise. *)
  | Conflict_free  (** Algorithm 3 — Algorithm 2 + conflict repair. *)
  | Prim_based  (** Algorithm 4 — direct Prim-style growth. *)
  | Exhaustive  (** Brute force ({!Exact.solve}) — tiny instances
                    only. *)

val all_heuristics : algorithm list
(** [\[Optimal; Conflict_free; Prim_based\]] — the paper's three
    algorithms in paper order. *)

val algorithm_name : algorithm -> string
(** "alg2-optimal", "alg3-conflict-free", "alg4-prim", "exhaustive". *)

type instance = {
  graph : Qnet_graph.Graph.t;
  params : Params.t;
}

val instance : ?params:Params.t -> Qnet_graph.Graph.t -> instance
(** Package a graph with physical parameters (default {!Params.default}).
    @raise Invalid_argument when the graph has no user vertices. *)

type outcome = {
  algorithm : algorithm;
  tree : Ent_tree.t option;  (** [None] = infeasible / not found. *)
  rate : float;  (** Eq. (2) as probability; [0.] when [tree = None] —
                     the paper's convention for failed entanglement. *)
  neg_log_rate : float;  (** [−ln rate]; [infinity] when infeasible. *)
  elapsed_s : float;  (** Wall-clock solver time. *)
}

val solve :
  ?rng:Qnet_util.Prng.t ->
  ?budget:Qnet_overload.Budget.t ->
  algorithm ->
  instance ->
  outcome
(** Run one solver.  [rng] seeds Algorithm 4's random start user (and is
    ignored by the others); without it the smallest user id starts.
    [budget] meters the heuristics' Dijkstra expansions and propagates
    {!Qnet_overload.Budget.Exhausted} ([Exhaustive] ignores it — its
    cost is bounded by instance size, not search).
    The returned tree, when present, has been checked against
    {!Verify.check} — a violation raises [Failure] (it would indicate a
    solver bug, not a user error), except for [Optimal] whose
    capacity violations are expected on insufficient instances and
    reported via {!outcome_capacity_ok}. *)

val outcome_capacity_ok : instance -> outcome -> bool
(** Whether the outcome's tree (if any) respects all switch
    capacities.  Always true for Conflict_free / Prim_based /
    Exhaustive outcomes; Algorithm 2 may overcommit when the sufficient
    condition fails — the paper plots it regardless, flagging that its
    switches got [2·|U|] qubits (Fig. 8a). *)

val rate_of : outcome -> float
(** The outcome's entanglement rate ([0.] when infeasible). *)

val optimality_gap : bound_neg_log:float -> achieved_neg_log:float -> float
(** [1 − achieved/bound] in rate space, computed stably in negative-log
    space: [1 − exp (bound_neg_log − achieved_neg_log)].  [0.] = the
    heuristic met the ceiling, [1.] = it delivered nothing (including
    [achieved_neg_log = infinity], i.e. infeasible); an infinite
    [bound_neg_log] (the ceiling itself proves infeasibility) reports
    [0.] — nothing was left on the table.  Deliberately {e not} clamped
    below at 0: with a valid bound the result is always ≥ 0 (the flow
    LP subtracts its float-noise slack on its side), so a negative gap
    is a real bound violation and must stay visible to the bench
    guard. *)
