(** Algorithm 1 — the maximum-entanglement-rate channel between users.

    Eq. (1) is a product, so it is maximised by a shortest path in the
    negative-log transform (§IV-A): each fiber edge gets the additive
    weight [alpha · L + (−ln q)], one [−ln q] is refunded at the end
    (a channel of [l] links crosses only [l − 1] switches), and Dijkstra
    does the rest.  Relaxation only enters switches holding at least 2
    free qubits, and never relays through user vertices, which
    implements the capacity filtering of Algorithm 1's line 11 and
    Definition 2's "path through vertices in R". *)

val edge_weight : Params.t -> Qnet_graph.Graph.edge -> float
(** The −log-space edge weight [alpha · L_e − ln q].  [infinity] when
    [q = 0.]. *)

(** {2 Fault exclusion}

    Routing normally sees the full graph; under infrastructure failure
    (see [Qnet_faults]) callers pass an {!exclusion} so relaxation never
    enters a failed switch nor crosses a failed fiber.  The hooks are
    plain predicates, so this module stays independent of any particular
    fault model. *)

type exclusion = {
  vertex_ok : int -> bool;  (** May the path enter this vertex? *)
  edge_ok : int -> bool;  (** May the path cross this edge (by id)? *)
}

val no_exclusion : exclusion
(** Permits everything — the default for every [?exclude] below. *)

val path_ok : Qnet_graph.Graph.t -> exclusion -> int list -> bool
(** Whether a vertex path survives the exclusion: every vertex passes
    [vertex_ok] and every consecutive pair is joined by an edge passing
    [edge_ok].  [false] when some pair has no edge at all. *)

val best_channel :
  ?exclude:exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  src:int ->
  dst:int ->
  Channel.t option
(** Maximum-rate channel between users [src] and [dst] given residual
    switch capacities, or [None] when no capacity-feasible channel
    exists.  [?budget] charges underlying Dijkstra heap pops (see
    {!Qnet_graph.Paths.dijkstra}) and propagates
    {!Qnet_overload.Budget.Exhausted}.
    @raise Invalid_argument if either endpoint is not a user or
    [src = dst]. *)

val best_channels_from :
  ?exclude:exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  src:int ->
  (int * Channel.t) list
(** One Dijkstra run from [src] yielding the best channel to {e every}
    other reachable user, as [(user, channel)] pairs in ascending user
    order — the paper's optimisation that drops the all-pairs phase of
    Algorithm 2 from [|U|²] to [|U|] Dijkstra runs. *)

type channel_oracle =
  exclude:exclusion ->
  budget:Qnet_overload.Budget.t option ->
  capacity:Capacity.t ->
  src:int ->
  dst:int ->
  Channel.t option
(** A point best-channel query as a first-class value — the seam that
    lets higher layers (Algorithm 4 via {!Multi_group.prim_for_users},
    the online policies) swap the flat whole-graph Dijkstra for an
    alternative strategy such as the hierarchical router in
    [Qnet_hier].  Contract: the returned channel joins [src] and [dst],
    crosses no element ruled out by [exclude], and is capacity-feasible
    under [capacity] {e without consuming from it}; [budget] meters the
    work and may raise {!Qnet_overload.Budget.Exhausted}. *)

val flat_oracle : Qnet_graph.Graph.t -> Params.t -> channel_oracle
(** {!best_channel} packaged as an oracle — the identity plug. *)

val all_pairs_best :
  ?exclude:exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  users:int list ->
  Channel.t list
(** Best channels for all unordered user pairs (omitting unreachable
    pairs), deduplicated, in no particular order. *)
