module Graph = Qnet_graph.Graph

(* Dense residual state, optionally wrapped by a copy-on-write overlay:
   an overlay shares the base residual array read-only and keeps its own
   writes in [delta], so speculative solvers can consume qubits from a
   snapshot without copying (or disturbing) the live state.  [version]
   counts mutations of a dense state; overlay writes never touch it, so
   an unchanged version number certifies that a snapshot taken earlier
   is still an exact view of the live residual state. *)
(* [quota] is the provisioned qubit budget per switch — it starts as the
   graph's static qubit counts but live re-provisioning (switch
   upgrades/downgrades mid-run) can move it, which is why [used] must be
   computed against the quota rather than the immutable graph. *)
type t = {
  graph : Graph.t;
  quota : int array;
  residual : int array;
  delta : (int, int) Hashtbl.t option;  (* [Some] ⇒ COW view over [residual] *)
  mutable version : int;
}

let of_graph graph =
  let n = Graph.vertex_count graph in
  let quota =
    Array.init n (fun v ->
        if Graph.is_switch graph v then Graph.qubits graph v else 0)
  in
  { graph; quota; residual = Array.copy quota; delta = None; version = 0 }

let residual_of t v =
  match t.delta with
  | None -> t.residual.(v)
  | Some d -> (
      match Hashtbl.find_opt d v with
      | Some r -> r
      | None -> t.residual.(v))

let set t v r =
  match t.delta with
  | None ->
      t.residual.(v) <- r;
      t.version <- t.version + 1
  | Some d -> Hashtbl.replace d v r

let copy t =
  match t.delta with
  | None ->
      { t with quota = Array.copy t.quota; residual = Array.copy t.residual }
  | Some d ->
      (* Materialise the view: base plus delta collapses into a fresh
         dense state, so the copy is independent of both. *)
      let residual = Array.copy t.residual in
      Hashtbl.iter (fun v r -> residual.(v) <- r) d;
      { t with quota = Array.copy t.quota; residual; delta = None }

let overlay t =
  {
    t with
    delta =
      Some
        (match t.delta with
        | None -> Hashtbl.create 16
        | Some d -> Hashtbl.copy d);
  }

let version t = t.version

let remaining t v =
  if Graph.is_user t.graph v then max_int else residual_of t v

let can_relay t v = Graph.is_user t.graph v || residual_of t v >= 2

let interior path =
  match path with
  | [] | [ _ ] -> []
  | _ :: rest ->
      let rec drop_last = function
        | [] | [ _ ] -> []
        | x :: tl -> x :: drop_last tl
      in
      drop_last rest

let consume_channel t path =
  let switches =
    List.filter (fun v -> Graph.is_switch t.graph v) (interior path)
  in
  if List.exists (fun v -> residual_of t v < 2) switches then
    invalid_arg "Capacity.consume_channel: insufficient qubits";
  List.iter (fun v -> set t v (residual_of t v - 2)) switches

let release_channel t path =
  List.iter
    (fun v ->
      if Graph.is_switch t.graph v then set t v (residual_of t v + 2))
    (interior path)

let used t v =
  if Graph.is_user t.graph v then 0 else t.quota.(v) - residual_of t v

let quota t v = t.quota.(v)

(* Live re-provisioning: move switch [v]'s qubit budget to [q], shifting
   the residual by the same amount so in-flight consumption is
   preserved.  Shrinking below current usage legitimately drives the
   residual negative — the caller (the online engine) must recover
   enough leases to restore it before admitting new work.  Dense states
   only: an overlay is a speculative view and must never re-provision. *)
let provision t v q =
  if t.delta <> None then invalid_arg "Capacity.provision: overlay view";
  if not (Graph.is_switch t.graph v) then
    invalid_arg "Capacity.provision: not a switch";
  if q < 0 then invalid_arg "Capacity.provision: negative quota";
  let shift = q - t.quota.(v) in
  t.quota.(v) <- q;
  t.residual.(v) <- t.residual.(v) + shift;
  t.version <- t.version + 1

let overcommitted t =
  let bad = ref [] in
  for v = Array.length t.residual - 1 downto 0 do
    if residual_of t v < 0 then bad := v :: !bad
  done;
  !bad
