module Graph = Qnet_graph.Graph
module Union_find = Qnet_graph.Union_find
module Logprob = Qnet_util.Logprob
module Tm = Qnet_telemetry.Metrics

let c_seed_rejected = Tm.counter "core.alg3.seed_rejected"
let c_reconnect_rounds = Tm.counter "core.alg3.reconnect_rounds"
let c_reconnect_added = Tm.counter "core.alg3.reconnect_channels"

let channel_feasible capacity (c : Channel.t) =
  List.for_all
    (fun s -> Capacity.remaining capacity s >= 2)
    (Channel.interior_switches c)

(* Phase 2: repeatedly bridge two user unions with the best residual-
   capacity channel.  Returns the accepted channels, or None when some
   unions can no longer be joined. *)
let reconnect ?budget g params capacity uf users =
  let rec loop acc =
    if Union_find.all_same uf users then Some acc
    else begin
      Tm.Counter.incr c_reconnect_rounds;
      let best = ref None in
      let consider (c : Channel.t) =
        if not (Union_find.same uf c.src c.dst) then
          match !best with
          | Some (b : Channel.t) when Logprob.compare_desc b.rate c.rate <= 0
            ->
              ()
          | _ -> best := Some c
      in
      List.iter
        (fun src ->
          Routing.best_channels_from ?budget g params ~capacity ~src
          |> List.iter (fun (_, c) -> consider c))
        users;
      match !best with
      | None -> None
      | Some c ->
          if Logprob.is_impossible c.rate then None
          else begin
            Capacity.consume_channel capacity c.path;
            ignore (Union_find.union uf c.src c.dst);
            loop (c :: acc)
          end
    end
  in
  loop []

let solve ?seed_channels ?budget g params =
  let users = Graph.users g in
  match users with
  | [] | [ _ ] -> Some (Ent_tree.of_channels [])
  | _ ->
      let seed =
        match seed_channels with
        | Some cs -> List.sort Alg_optimal.compare_channels cs
        | None -> begin
            match Alg_optimal.solve ?budget g params with
            | None -> []
            | Some tree -> List.sort Alg_optimal.compare_channels tree.channels
          end
      in
      let capacity = Capacity.of_graph g in
      let uf = Union_find.create (Graph.vertex_count g) in
      (* Phase 1: replay the seed channels in descending rate order,
         keeping only those the switches can still afford. *)
      let kept =
        List.fold_left
          (fun acc (c : Channel.t) ->
            if
              (not (Union_find.same uf c.src c.dst))
              && channel_feasible capacity c
            then begin
              Capacity.consume_channel capacity c.path;
              ignore (Union_find.union uf c.src c.dst);
              c :: acc
            end
            else acc)
          [] seed
      in
      let rejected = List.length seed - List.length kept in
      Tm.Counter.add c_seed_rejected rejected;
      if rejected > 0 then
        Qnet_util.Log.debug
          "alg3: %d seed channel(s) rejected by capacity, reconnecting"
          rejected;
      (* Phase 2: reconnect the unions split by rejected channels. *)
      begin
        match reconnect ?budget g params capacity uf users with
        | None -> None
        | Some extra ->
            Tm.Counter.add c_reconnect_added (List.length extra);
            if extra <> [] then
              Qnet_util.Log.debug "alg3: reconnection added %d channel(s)"
                (List.length extra);
            Some (Ent_tree.of_channels (List.rev_append kept (List.rev extra)))
      end
