module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Logprob = Qnet_util.Logprob

type t = {
  src : int;
  dst : int;
  path : int list;
  hops : int;
  total_length : float;
  rate : Logprob.t;
}

let validate g path =
  match path with
  | [] | [ _ ] -> Error "channel path needs at least two vertices"
  | first :: _ ->
      let last = List.nth path (List.length path - 1) in
      if not (Paths.path_is_valid g path) then
        Error "channel path is not a simple path over existing fibers"
      else if not (Graph.is_user g first && Graph.is_user g last) then
        Error "channel endpoints must be quantum users"
      else begin
        let interior =
          List.filteri
            (fun i _ -> i > 0 && i < List.length path - 1)
            path
        in
        if List.exists (fun v -> not (Graph.is_switch g v)) interior then
          Error "channel interior vertices must be quantum switches"
        else Ok ()
      end

let build g params path =
  let hops = List.length path - 1 in
  (* Normalise the orientation before measuring: float summation order
     depends on direction, so computing on the stored src->dst path
     makes the channel bit-identical however the path was discovered —
     which checkpoint restore relies on to rebuild channels from their
     stored paths. *)
  let first = List.hd path in
  let last = List.nth path (List.length path - 1) in
  let src, dst, path =
    if first <= last then (first, last, path) else (last, first, List.rev path)
  in
  let total_length = Paths.path_length g path in
  (* Guard the hops = 1 case: 0. *. infinity is NaN when q = 0. *)
  let swap_cost =
    if hops <= 1 then 0.
    else float_of_int (hops - 1) *. Params.swap_neg_log params
  in
  let neg_log = Params.link_neg_log params total_length +. swap_cost in
  {
    src;
    dst;
    path;
    hops;
    total_length;
    rate = Logprob.of_neg_log (Float.max 0. neg_log);
  }

let make g params path =
  match validate g path with
  | Error _ as e -> e
  | Ok () -> Ok (build g params path)

let make_exn g params path =
  match make g params path with
  | Ok c -> c
  | Error reason -> invalid_arg ("Channel.make: " ^ reason)

let rate_of_path g params path =
  let hops = List.length path - 1 in
  let total_length = Paths.path_length g path in
  Params.link_success params total_length *. (params.Params.q ** float_of_int (hops - 1))

let rate_prob t = Logprob.to_prob t.rate

let interior_switches t =
  List.filteri (fun i _ -> i > 0 && i < List.length t.path - 1) t.path

let endpoints t = (t.src, t.dst)
let connects t u v = (t.src = u && t.dst = v) || (t.src = v && t.dst = u)
let equal t1 t2 = t1.path = t2.path

let pp fmt t =
  Format.fprintf fmt "channel %d<->%d via [%s] (rate %g)" t.src t.dst
    (String.concat "; " (List.map string_of_int t.path))
    (rate_prob t)
