(** Algorithm 2 — optimal solution under the sufficient capacity
    condition (§IV-B).

    When every switch holds [Q_r ≥ 2·|U|] qubits, no switch can ever be
    a bottleneck (even if every one of the [|U| − 1] tree channels
    crossed it).  The algorithm then mirrors Kruskal: compute the
    maximum-rate channel for every user pair (Algorithm 1, one Dijkstra
    per user), sort channels by descending rate, and greedily merge
    components with a union–find.  Theorem 3 proves the result optimal
    under the condition.

    On general instances (condition violated) the returned tree may
    overcommit switches; it is then the {e input} to Algorithm 3, which
    repairs the conflicts.  {!solve} itself never checks capacities
    beyond Algorithm 1's static "switch has ≥ 2 qubits at all" filter. *)

val sufficient_condition : Qnet_graph.Graph.t -> bool
(** Whether [Q_r ≥ 2·|U|] holds for every switch [r]. *)

val compare_channels : Channel.t -> Channel.t -> int
(** Descending-rate order with deterministic endpoint tie-breaking —
    the selection order shared by Algorithms 2 and 3. *)

val candidate_channels :
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  Channel.t list
(** Maximum-rate channels for all user pairs, sorted by descending
    entanglement rate (ties broken by endpoint ids for determinism).
    Pairs with no channel at all are absent. *)

val solve :
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  Ent_tree.t option
(** The Kruskal-style selection over {!candidate_channels}.  [None] when
    the users cannot all be connected by channels (the graph
    disconnects them or 0-rate channels block merging).  [budget]
    meters the candidate-enumeration Dijkstra runs and propagates
    {!Qnet_overload.Budget.Exhausted}; only local capacity views are
    touched, so an exhausted run leaks nothing. *)
