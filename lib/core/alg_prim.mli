(** Algorithm 4 — the Prim-based heuristic (§IV-D).

    Unlike Algorithm 3, this needs no seed solution: starting from one
    user, it grows the entangled set one user per round, each time
    attaching the maximum-rate capacity-feasible channel from any
    already-entangled user to any outside user, and deducting the
    channel's qubits.  After [|U| − 1] successful rounds every user is
    entangled; if some round finds no feasible channel the instance is
    declared infeasible ([None]). *)

val solve :
  ?start:int ->
  ?rng:Qnet_util.Prng.t ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  Ent_tree.t option
(** [solve g params] grows the tree from a start user: [start] if given
    (must be a user id), else a user drawn from [rng] (the paper picks
    uniformly at random), else the smallest user id.  The produced tree
    always respects switch capacities.  [budget] meters the underlying
    Dijkstra runs (local capacity only — exhaustion leaks nothing). *)
