module Graph = Qnet_graph.Graph
module Logprob = Qnet_util.Logprob

type strategy = Sequential | Round_robin

type group_result = {
  group : int list;
  tree : Ent_tree.t option;
  rate : float;
}

type t = {
  strategy : strategy;
  groups : group_result list;
  all_feasible : bool;
  aggregate_neg_log : float;
  min_rate : float;
}

let validate_groups g groups =
  if groups = [] then invalid_arg "Multi_group.solve: no groups";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun group ->
      if group = [] then invalid_arg "Multi_group.solve: empty group";
      List.iter
        (fun u ->
          if not (Graph.is_user g u) then
            invalid_arg "Multi_group.solve: group member is not a user";
          if Hashtbl.mem seen u then
            invalid_arg "Multi_group.solve: groups overlap";
          Hashtbl.replace seen u ())
        group)
    groups

(* One best channel from the grown set to an outside user of the group,
   under the shared residual capacity.  With an [oracle] the enumeration
   becomes per-pair point queries (the oracle is expected to make each
   query cheap — e.g. hierarchically); without one it keeps the paper's
   one-SSSP-per-inside-user enumeration. *)
let best_attachment ?exclude ?budget ?oracle g params ~capacity ~inside
    ~outside_users =
  let best = ref None in
  let consider (c : Channel.t) =
    match !best with
    | Some (b : Channel.t) when Logprob.compare_desc b.rate c.rate <= 0 -> ()
    | _ -> best := Some c
  in
  (match oracle with
  | Some (query : Routing.channel_oracle) ->
      let exclude = Option.value exclude ~default:Routing.no_exclusion in
      Hashtbl.iter
        (fun src () ->
          List.iter
            (fun dst ->
              match query ~exclude ~budget ~capacity ~src ~dst with
              | None -> ()
              | Some c -> consider c)
            outside_users)
        inside
  | None ->
      Hashtbl.iter
        (fun src () ->
          Routing.best_channels_from ?exclude ?budget g params ~capacity ~src
          |> List.iter (fun (dst, (c : Channel.t)) ->
                 if List.mem dst outside_users then consider c))
        inside);
  !best

let prim_for_users ?exclude ?budget ?oracle g params ~capacity ~users =
  match users with
  | [] -> invalid_arg "Multi_group.prim_for_users: empty user set"
  | [ _ ] -> Some (Ent_tree.of_channels [])
  | start :: _ ->
      let inside = Hashtbl.create (List.length users) in
      Hashtbl.replace inside start ();
      let remaining = ref (List.filter (fun u -> u <> start) users) in
      let consumed = ref [] in
      let rollback () =
        (* Roll back so a failed (or fuel-starved) group leaves shared
           capacity unchanged for the groups after it. *)
        List.iter (Capacity.release_channel capacity) !consumed
      in
      let rec grow acc =
        if !remaining = [] then Some (Ent_tree.of_channels (List.rev acc))
        else
          match
            best_attachment ?exclude ?budget ?oracle g params ~capacity
              ~inside ~outside_users:!remaining
          with
          | None ->
              rollback ();
              None
          | Some c ->
              Capacity.consume_channel capacity c.path;
              consumed := c.path :: !consumed;
              let fresh = if Hashtbl.mem inside c.src then c.dst else c.src in
              Hashtbl.replace inside fresh ();
              remaining := List.filter (fun u -> u <> fresh) !remaining;
              grow (c :: acc)
      in
      (* Budget exhaustion mid-grow must not leak partial consumption
         into the shared capacity the engine asserts over. *)
      (try grow [] with
      | Qnet_overload.Budget.Exhausted _ as e ->
          rollback ();
          raise e)

(* Round-robin: every group keeps a grown set; rounds attach one channel
   per unfinished group.  A group that cannot extend is marked failed
   and its channels are released. *)
type rr_state = {
  rr_group : int list;
  rr_inside : (int, unit) Hashtbl.t;
  mutable rr_remaining : int list;
  mutable rr_channels : Channel.t list;
  mutable rr_consumed : int list list;
  mutable rr_failed : bool;
}

let rr_finished s = s.rr_remaining = [] || s.rr_failed

let rr_step g params ~capacity s =
  match
    best_attachment g params ~capacity ~inside:s.rr_inside
      ~outside_users:s.rr_remaining
  with
  | None ->
      s.rr_failed <- true;
      List.iter (Capacity.release_channel capacity) s.rr_consumed
  | Some c ->
      Capacity.consume_channel capacity c.path;
      s.rr_consumed <- c.path :: s.rr_consumed;
      let fresh =
        if Hashtbl.mem s.rr_inside c.Channel.src then c.Channel.dst
        else c.Channel.src
      in
      Hashtbl.replace s.rr_inside fresh ();
      s.rr_remaining <- List.filter (fun u -> u <> fresh) s.rr_remaining;
      s.rr_channels <- c :: s.rr_channels

let round_robin g params ~capacity groups =
  let states =
    List.map
      (fun group ->
        match group with
        | [] -> assert false
        | start :: rest ->
            let inside = Hashtbl.create 8 in
            Hashtbl.replace inside start ();
            {
              rr_group = group;
              rr_inside = inside;
              rr_remaining = rest;
              rr_channels = [];
              rr_consumed = [];
              rr_failed = false;
            })
      groups
  in
  let rec rounds () =
    if List.exists (fun s -> not (rr_finished s)) states then begin
      List.iter
        (fun s -> if not (rr_finished s) then rr_step g params ~capacity s)
        states;
      rounds ()
    end
  in
  rounds ();
  List.map
    (fun s ->
      ( s.rr_group,
        if s.rr_failed then None
        else Some (Ent_tree.of_channels (List.rev s.rr_channels)) ))
    states

let summarise strategy results =
  let groups =
    List.map
      (fun (group, tree) ->
        {
          group;
          tree;
          rate = (match tree with None -> 0. | Some t -> Ent_tree.rate_prob t);
        })
      results
  in
  let all_feasible = List.for_all (fun r -> r.tree <> None) groups in
  let aggregate_neg_log =
    List.fold_left
      (fun acc r ->
        match r.tree with
        | None -> acc
        | Some t -> acc +. Ent_tree.rate_neg_log t)
      0. groups
  in
  let min_rate =
    List.fold_left (fun acc r -> Float.min acc r.rate) 1. groups
  in
  { strategy; groups; all_feasible; aggregate_neg_log; min_rate }

let solve ?(strategy = Sequential) g params ~groups =
  validate_groups g groups;
  let capacity = Capacity.of_graph g in
  let results =
    match strategy with
    | Sequential ->
        List.map
          (fun group ->
            (group, prim_for_users g params ~capacity ~users:group))
          groups
    | Round_robin -> round_robin g params ~capacity groups
  in
  summarise strategy results
