module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Tm = Qnet_telemetry.Metrics

let c_sssp_runs = Tm.counter "core.routing.sssp_runs"
let c_channels_built = Tm.counter "core.routing.channels_built"
let c_enumerations = Tm.counter "core.routing.enumerations"

let edge_weight params (e : Graph.edge) =
  Params.link_neg_log params e.length +. Params.swap_neg_log params

type exclusion = { vertex_ok : int -> bool; edge_ok : int -> bool }

let no_exclusion = { vertex_ok = (fun _ -> true); edge_ok = (fun _ -> true) }

let path_ok g exclude path =
  let rec edges_up = function
    | [] | [ _ ] -> true
    | u :: (v :: _ as rest) -> (
        match Graph.find_edge g u v with
        | None -> false
        | Some eid -> exclude.edge_ok eid && edges_up rest)
  in
  List.for_all exclude.vertex_ok path && edges_up path

let check_user g v =
  if not (Graph.is_user g v) then
    invalid_arg "Routing: endpoint is not a quantum user"

(* With q = 0 every swap fails, so the only viable channels are direct
   user-to-user fibers; the additive-weight transform would degenerate
   to infinity - infinity there, hence the special case. *)
let direct_only g params ~exclude ~src =
  List.filter_map
    (fun (v, eid) ->
      if Graph.is_user g v && exclude.vertex_ok v && exclude.edge_ok eid then
        match Channel.make g params [ src; v ] with
        | Ok c ->
            Tm.Counter.incr c_channels_built;
            Some (v, c)
        | Error _ -> None
      else None)
    (Graph.neighbors g src)

let sssp ?target ?budget g params ~capacity ~exclude ~src =
  Tm.Counter.incr c_sssp_runs;
  let admit v =
    exclude.vertex_ok v
    && if Graph.is_user g v then v <> src else Capacity.can_relay capacity v
  in
  let expand v = Graph.is_switch g v in
  Paths.dijkstra g ~source:src ~weight:(edge_weight params) ~admit ~expand
    ~edge_ok:exclude.edge_ok ?target ?budget ()

let channel_from_result g params result ~src ~dst =
  match Paths.extract_path result ~source:src ~target:dst with
  | None -> None
  | Some path -> begin
      match Channel.make g params path with
      | Ok c ->
          Tm.Counter.incr c_channels_built;
          Some c
      | Error _ -> None
    end

let best_channel ?(exclude = no_exclusion) ?budget g params ~capacity ~src ~dst
    =
  check_user g src;
  check_user g dst;
  if src = dst then invalid_arg "Routing.best_channel: src = dst";
  if params.Params.q = 0. then
    List.assoc_opt dst (direct_only g params ~exclude ~src)
  else
    (* A point query: let Dijkstra stop once [dst] settles instead of
       settling the whole graph. *)
    channel_from_result g params
      (sssp ~target:dst ?budget g params ~capacity ~exclude ~src)
      ~src ~dst

let best_channels_from ?(exclude = no_exclusion) ?budget g params ~capacity
    ~src =
  check_user g src;
  Tm.Counter.incr c_enumerations;
  if params.Params.q = 0. then
    List.sort compare (direct_only g params ~exclude ~src)
  else begin
    let result = sssp ?budget g params ~capacity ~exclude ~src in
    Graph.users g
    |> List.filter_map (fun u ->
           if u = src then None
           else
             match channel_from_result g params result ~src ~dst:u with
             | None -> None
             | Some c -> Some (u, c))
  end

type channel_oracle =
  exclude:exclusion ->
  budget:Qnet_overload.Budget.t option ->
  capacity:Capacity.t ->
  src:int ->
  dst:int ->
  Channel.t option

let flat_oracle g params ~exclude ~budget ~capacity ~src ~dst =
  best_channel ~exclude ?budget g params ~capacity ~src ~dst

let all_pairs_best ?exclude ?budget g params ~capacity ~users =
  let users = List.sort_uniq compare users in
  List.concat_map
    (fun src ->
      best_channels_from ?exclude ?budget g params ~capacity ~src
      |> List.filter_map (fun (dst, c) ->
             (* Keep each unordered pair once. *)
             if List.mem dst users && src < dst then Some c else None))
    users
