(** Independent validation of MUERP solutions.

    The routing algorithms are heuristic and mutate residual-capacity
    state as they go; this module re-derives every constraint from
    scratch so tests (and paranoid callers) can check any produced
    entanglement tree against the original problem instance. *)

type violation =
  | Bad_channel of Channel.t * string
      (** The channel fails structural validation in the graph. *)
  | Not_a_spanning_tree
      (** The channel endpoints do not form a tree over the user set. *)
  | Capacity_exceeded of int * int * int
      (** [(switch, used, available)]: aggregate qubit demand at a
          switch exceeds its budget. *)
  | Rate_mismatch of float * float
      (** [(claimed, recomputed)] negative-log rates differ beyond
          tolerance. *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  Qnet_graph.Graph.t ->
  Params.t ->
  users:int list ->
  Ent_tree.t ->
  violation list
(** All violations of the given solution (empty means valid).  Checks:
    each channel is a real capacity-eligible path (users at the ends,
    switches inside, fibers between); the channels span [users] as a
    tree; summed per-switch qubit usage stays within each switch's
    budget; the claimed Eq. (2) rate matches recomputation. *)

val is_valid :
  Qnet_graph.Graph.t -> Params.t -> users:int list -> Ent_tree.t -> bool
(** [check] is empty. *)

exception Violations of violation list
(** Raised by {!check_exn}; carries every violation found. *)

val check_exn :
  ?context:string ->
  Qnet_graph.Graph.t ->
  Params.t ->
  users:int list ->
  Ent_tree.t ->
  unit
(** Watchdog mode: {!check}, raising {!Violations} if any violation is
    found.  [context] prefixes the log line emitted before raising
    (e.g. ["engine repair"]) so chaos runs can tell which code path
    produced the bad tree.  The online engine runs every repaired or
    rerouted tree through this before putting it back in service. *)
