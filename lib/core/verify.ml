module Graph = Qnet_graph.Graph

type violation =
  | Bad_channel of Channel.t * string
  | Not_a_spanning_tree
  | Capacity_exceeded of int * int * int
  | Rate_mismatch of float * float

let pp_violation fmt = function
  | Bad_channel (c, reason) ->
      Format.fprintf fmt "bad channel %a: %s" Channel.pp c reason
  | Not_a_spanning_tree ->
      Format.fprintf fmt "channels do not form a spanning tree over the users"
  | Capacity_exceeded (s, used, avail) ->
      Format.fprintf fmt "switch %d capacity exceeded: %d qubits used of %d" s
        used avail
  | Rate_mismatch (claimed, actual) ->
      Format.fprintf fmt "rate mismatch: claimed -ln rate %g, recomputed %g"
        claimed actual

let check g params ~users (tree : Ent_tree.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Channel structure: rebuild each channel from its path; any failure
     or disagreement is a violation. *)
  List.iter
    (fun (c : Channel.t) ->
      match Channel.make g params c.path with
      | Error reason -> add (Bad_channel (c, reason))
      | Ok rebuilt ->
          if not (Channel.equal c rebuilt) then
            add (Bad_channel (c, "path normalisation mismatch"))
          else if
            Float.abs
              (Qnet_util.Logprob.to_neg_log c.rate
              -. Qnet_util.Logprob.to_neg_log rebuilt.rate)
            > 1e-9 *. (1. +. Qnet_util.Logprob.to_neg_log rebuilt.rate)
          then add (Bad_channel (c, "stored rate disagrees with Eq. (1)")))
    tree.channels;
  if not (Ent_tree.spans_users tree users) then add Not_a_spanning_tree;
  List.iter
    (fun (s, used) ->
      let avail = Graph.qubits g s in
      if used > avail then add (Capacity_exceeded (s, used, avail)))
    (Ent_tree.qubit_usage tree);
  let recomputed =
    List.fold_left
      (fun acc (c : Channel.t) ->
        acc +. Qnet_util.Logprob.to_neg_log c.rate)
      0. tree.channels
  in
  let claimed = Ent_tree.rate_neg_log tree in
  if
    Float.abs (claimed -. recomputed) > 1e-9 *. (1. +. Float.abs recomputed)
    && not (claimed = infinity && recomputed = infinity)
  then add (Rate_mismatch (claimed, recomputed));
  List.rev !violations

let is_valid g params ~users tree = check g params ~users tree = []

exception Violations of violation list

let () =
  Printexc.register_printer (function
    | Violations vs ->
        Some
          (Format.asprintf "Verify.Violations [@[%a@]]"
             (Format.pp_print_list
                ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
                pp_violation)
             vs)
    | _ -> None)

let check_exn ?context g params ~users tree =
  match check g params ~users tree with
  | [] -> ()
  | vs ->
      List.iter
        (fun v ->
          Qnet_util.Log.warn "verify%s: %s"
            (match context with None -> "" | Some c -> " (" ^ c ^ ")")
            (Format.asprintf "%a" pp_violation v))
        vs;
      raise (Violations vs)
