(** Residual qubit bookkeeping for quantum switches.

    Every channel through a switch pins 2 of its qubits (one per
    adjacent quantum link at the swap point), so a switch with [Q]
    qubits supports [⌊Q/2⌋] channels (Definition 3).  User vertices are
    unconstrained by assumption and always report unlimited capacity. *)

type t

val of_graph : Qnet_graph.Graph.t -> t
(** Fresh residual state: every switch starts with its full qubit
    budget. *)

val copy : t -> t
(** Independent snapshot — algorithms fork state when exploring.  Always
    a fresh dense state: copying an {!overlay} materialises base plus
    delta. *)

val overlay : t -> t
(** [overlay t] is a copy-on-write view of [t]: reads fall through to
    [t]'s residual state, writes land in a private delta and never touch
    [t].  O(1) to create (no array copy), which is what lets the batched
    serving engine hand every speculative solver its own snapshot.
    Overlaying an overlay forks the delta, so views nest safely.  The
    view is only a faithful snapshot while the base is not mutated —
    check {!version} to detect that. *)

val version : t -> int
(** Mutation counter of a dense state: bumped by every write from
    {!consume_channel}/{!release_channel}.  Writes to an {!overlay}
    never bump the base's version, so [version base] unchanged between
    snapshot and commit certifies the snapshot still equals the live
    state.  (An overlay reports the version its base had at creation.) *)

val remaining : t -> int -> int
(** [remaining t v] is the residual qubits of switch [v]; [max_int] for
    users. *)

val can_relay : t -> int -> bool
(** Whether vertex [v] can carry one more channel through it: users
    always can, switches need [remaining >= 2]. *)

val consume_channel : t -> int list -> unit
(** [consume_channel t path] deducts 2 qubits from every {e interior}
    switch of the channel's vertex path (endpoints are users and cost
    nothing).  @raise Invalid_argument if some interior switch lacks the
    qubits — callers must check admissibility first. *)

val release_channel : t -> int list -> unit
(** Inverse of {!consume_channel}: refunds 2 qubits to every interior
    switch (used when a previously accepted channel is evicted, as in
    Algorithm 3's conflict resolution). *)

val used : t -> int -> int
(** Qubits currently consumed at vertex [v] ([0] for users), measured
    against the live {!quota} (not the immutable graph, which a
    {!provision} call may have superseded). *)

val quota : t -> int -> int
(** The provisioned qubit budget of vertex [v] — initially the graph's
    static qubit count, moved by {!provision}. *)

val provision : t -> int -> int -> unit
(** [provision t v q] re-provisions switch [v] to a budget of [q]
    qubits, shifting the residual by the same delta so current
    consumption is preserved.  Shrinking below current usage leaves the
    residual {e negative}; the caller must recover leases through [v]
    until it is non-negative again.  Bumps {!version}.
    @raise Invalid_argument on an overlay view, a user vertex, or a
    negative budget. *)

val overcommitted : t -> int list
(** Switch ids whose residual went negative — always empty unless
    internal invariants were violated; exposed for the test suite. *)
