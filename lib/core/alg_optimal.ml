module Graph = Qnet_graph.Graph
module Union_find = Qnet_graph.Union_find
module Logprob = Qnet_util.Logprob

let sufficient_condition g =
  let bound = 2 * Graph.user_count g in
  List.for_all (fun r -> Graph.qubits g r >= bound) (Graph.switches g)

let compare_channels (c1 : Channel.t) (c2 : Channel.t) =
  let by_rate = Logprob.compare_desc c1.rate c2.rate in
  if by_rate <> 0 then by_rate else compare (c1.src, c1.dst) (c2.src, c2.dst)

let c_candidates = Qnet_telemetry.Metrics.counter "core.alg2.candidate_channels"

let candidate_channels ?budget g params =
  let capacity = Capacity.of_graph g in
  let candidates =
    Routing.all_pairs_best ?budget g params ~capacity ~users:(Graph.users g)
    |> List.sort compare_channels
  in
  Qnet_telemetry.Metrics.Counter.add c_candidates (List.length candidates);
  candidates

let solve ?budget g params =
  let users = Graph.users g in
  match users with
  | [] | [ _ ] -> Some (Ent_tree.of_channels [])
  | _ ->
      let n = Graph.vertex_count g in
      let uf = Union_find.create n in
      let chosen =
        List.fold_left
          (fun acc (c : Channel.t) ->
            if Union_find.union uf c.src c.dst then c :: acc else acc)
          []
          (candidate_channels ?budget g params)
      in
      if Union_find.all_same uf users then
        Some (Ent_tree.of_channels (List.rev chosen))
      else None
