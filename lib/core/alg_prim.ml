module Graph = Qnet_graph.Graph
module Logprob = Qnet_util.Logprob
module Prng = Qnet_util.Prng

let c_rounds = Qnet_telemetry.Metrics.counter "core.alg4.grow_rounds"

let solve ?start ?rng ?budget g params =
  let users = Graph.users g in
  match users with
  | [] | [ _ ] -> Some (Ent_tree.of_channels [])
  | first :: _ ->
      let start =
        match (start, rng) with
        | Some s, _ ->
            if not (Graph.is_user g s) then
              invalid_arg "Alg_prim.solve: start is not a user";
            s
        | None, Some rng -> Prng.pick rng (Array.of_list users)
        | None, None -> first
      in
      let capacity = Capacity.of_graph g in
      let inside = Hashtbl.create (List.length users) in
      Hashtbl.replace inside start ();
      let outside u = not (Hashtbl.mem inside u) in
      let remaining = ref (List.length users - 1) in
      let rec grow acc =
        if !remaining = 0 then Some (Ent_tree.of_channels (List.rev acc))
        else begin
          Qnet_telemetry.Metrics.Counter.incr c_rounds;
          let best = ref None in
          let consider (c : Channel.t) =
            match !best with
            | Some (b : Channel.t) when Logprob.compare_desc b.rate c.rate <= 0
              ->
                ()
            | _ -> best := Some c
          in
          Hashtbl.iter
            (fun src () ->
              Routing.best_channels_from ?budget g params ~capacity ~src
              |> List.iter (fun (dst, c) -> if outside dst then consider c))
            inside;
          match !best with
          | None -> None
          | Some c ->
              if Logprob.is_impossible c.rate then None
              else begin
                Capacity.consume_channel capacity c.path;
                let fresh = if outside c.src then c.src else c.dst in
                Hashtbl.replace inside fresh ();
                decr remaining;
                grow (c :: acc)
              end
        end
      in
      grow []
