(** Algorithm 3 — the Conflict-free heuristic (§IV-C).

    Takes Algorithm 2's capacity-oblivious tree and repairs switch
    over-commitments greedily:

    + Replay the candidate channels in descending rate order, accepting
      a channel only when every interior switch still holds 2 free
      qubits (deducting as it goes) — the greedy "keep the best
      channels" rule.  Users whose channel was rejected fall into
      separate unions.
    + While users remain split across unions, find the maximum-rate
      capacity-feasible channel between any two users in different
      unions (Algorithm 1 under residual capacity), accept it, merge.
    + If no cross-union channel exists, the instance is declared
      infeasible ([None]).

    The output, when present, always respects all switch capacities. *)

val solve :
  ?seed_channels:Channel.t list ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  Ent_tree.t option
(** [solve g params] runs the full pipeline (Algorithm 2 to obtain the
    seed channels, then conflict repair).  [seed_channels] overrides the
    seed set — tests use this to exercise specific conflict patterns;
    they are re-sorted by descending rate as the paper specifies.
    [budget] meters both the seeding and reconnection Dijkstra runs and
    propagates {!Qnet_overload.Budget.Exhausted}; capacity here is a
    local view, so exhaustion leaks nothing. *)
