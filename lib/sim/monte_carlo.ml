module Stats = Qnet_util.Stats
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_trials = Tm.counter "sim.monte_carlo.trials"
let c_successes = Tm.counter "sim.monte_carlo.successes"

type estimate = {
  trials : int;
  successes : int;
  p_hat : float;
  ci_low : float;
  ci_high : float;
  analytic : float;
  within_ci : bool;
}

(* Trials are partitioned into fixed-size chunks whose rngs are split
   sequentially off the caller's stream, so the sampled trajectories —
   and hence the estimate — are bitwise identical at every [?pool]
   size, including the serial default.  Chunks large enough that the
   per-chunk split/closure overhead is noise against [Trial.run]. *)
let chunk_trials = 4096

let estimate_rate ?pool rng g params tree ~trials =
  if trials <= 0 then invalid_arg "Monte_carlo.estimate_rate: trials <= 0";
  let n_chunks = (trials + chunk_trials - 1) / chunk_trials in
  let rngs = Qnet_util.Pool.split_seeds rng n_chunks in
  let run_chunk c =
    let rng = rngs.(c) in
    let lo = c * chunk_trials in
    let hi = min trials (lo + chunk_trials) in
    let hits = ref 0 in
    for _ = lo + 1 to hi do
      if (Trial.run rng g params tree).success then incr hits
    done;
    !hits
  in
  let successes =
    Qnet_telemetry.Span.with_span "monte_carlo.estimate" (fun () ->
        match pool with
        | Some pool when Qnet_util.Pool.jobs pool > 1 ->
            Qnet_util.Pool.parallel_map pool ~chunk:1 n_chunks run_chunk
            |> Array.fold_left ( + ) 0
        | _ ->
            let total = ref 0 in
            for c = 0 to n_chunks - 1 do
              total := !total + run_chunk c
            done;
            !total)
  in
  Tm.Counter.add c_trials trials;
  Tm.Counter.add c_successes successes;
  let p_hat = float_of_int successes /. float_of_int trials in
  let ci_low, ci_high = Stats.wilson_ci95 ~successes ~trials in
  let analytic = Ent_tree.rate_prob tree in
  {
    trials;
    successes;
    p_hat;
    ci_low;
    ci_high;
    analytic;
    within_ci = analytic >= ci_low && analytic <= ci_high;
  }

let slots_until_success rng g params tree ~max_slots =
  if max_slots <= 0 then
    invalid_arg "Monte_carlo.slots_until_success: max_slots <= 0";
  let rec attempt slot =
    if slot > max_slots then None
    else if (Trial.run rng g params tree).success then Some slot
    else attempt (slot + 1)
  in
  attempt 1

let mean_slots rng g params tree ~runs ~max_slots =
  if runs <= 0 then invalid_arg "Monte_carlo.mean_slots: runs <= 0";
  let samples = Array.make runs 0. in
  let ok = ref true in
  for i = 0 to runs - 1 do
    match slots_until_success rng g params tree ~max_slots with
    | Some s -> samples.(i) <- float_of_int s
    | None -> ok := false
  done;
  if !ok then Some (Stats.mean samples) else None
