module Stats = Qnet_util.Stats
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_trials = Tm.counter "sim.monte_carlo.trials"
let c_successes = Tm.counter "sim.monte_carlo.successes"

type estimate = {
  trials : int;
  successes : int;
  p_hat : float;
  ci_low : float;
  ci_high : float;
  analytic : float;
  within_ci : bool;
}

let estimate_rate rng g params tree ~trials =
  if trials <= 0 then invalid_arg "Monte_carlo.estimate_rate: trials <= 0";
  let successes = ref 0 in
  Qnet_telemetry.Span.with_span "monte_carlo.estimate" (fun () ->
      for _ = 1 to trials do
        if (Trial.run rng g params tree).success then incr successes
      done);
  let successes = !successes in
  Tm.Counter.add c_trials trials;
  Tm.Counter.add c_successes successes;
  let p_hat = float_of_int successes /. float_of_int trials in
  let ci_low, ci_high = Stats.wilson_ci95 ~successes ~trials in
  let analytic = Ent_tree.rate_prob tree in
  {
    trials;
    successes;
    p_hat;
    ci_low;
    ci_high;
    analytic;
    within_ci = analytic >= ci_low && analytic <= ci_high;
  }

let slots_until_success rng g params tree ~max_slots =
  if max_slots <= 0 then
    invalid_arg "Monte_carlo.slots_until_success: max_slots <= 0";
  let rec attempt slot =
    if slot > max_slots then None
    else if (Trial.run rng g params tree).success then Some slot
    else attempt (slot + 1)
  in
  attempt 1

let mean_slots rng g params tree ~runs ~max_slots =
  if runs <= 0 then invalid_arg "Monte_carlo.mean_slots: runs <= 0";
  let samples = Array.make runs 0. in
  let ok = ref true in
  for i = 0 to runs - 1 do
    match slots_until_success rng g params tree ~max_slots with
    | Some s -> samples.(i) <- float_of_int s
    | None -> ok := false
  done;
  if !ok then Some (Stats.mean samples) else None
