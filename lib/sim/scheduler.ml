module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_accepted = Tm.counter "sim.scheduler.accepted_leases"
let c_rejected = Tm.counter "sim.scheduler.rejected_requests"
let c_expired = Tm.counter "sim.scheduler.expired_leases"
let g_peak_qubits = Tm.gauge "sim.scheduler.peak_qubits_in_use"

type request = { id : int; users : int list; arrival : int; duration : int }
type policy = Drop | Queue of int

module Lease = struct
  type t = {
    paths : int list list;
    usage : (int * int) list;
    mutable released : bool;
  }

  let acquire (tree : Ent_tree.t) =
    {
      paths =
        List.map (fun (c : Channel.t) -> c.path) tree.Ent_tree.channels;
      usage = Ent_tree.qubit_usage tree;
      released = false;
    }

  let channels t = t.paths
  let qubits t = List.fold_left (fun acc (_, q) -> acc + q) 0 t.usage

  (* Interior vertices of a channel path (everything but the user
     endpoints) — by construction all switches, each pinning 2 qubits;
     the same rule as [Capacity.consume_channel]. *)
  let interior = function
    | [] | [ _ ] -> []
    | _ :: rest ->
        let rec drop_last = function
          | [] | [ _ ] -> []
          | x :: tl -> x :: drop_last tl
        in
        drop_last rest

  let usage_of_paths paths =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun p ->
        List.iter
          (fun v ->
            Hashtbl.replace tbl v
              (2 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
          (interior p))
      paths;
    Hashtbl.fold (fun v q acc -> (v, q) :: acc) tbl [] |> List.sort compare

  let check_refund ~who capacity usage =
    List.iter
      (fun (v, q) ->
        if Capacity.used capacity v < q then
          invalid_arg
            (who
           ^ ": capacity invariant violated (refund exceeds recorded \
              consumption)"))
      usage

  let release_where capacity t ~dead =
    if t.released then
      invalid_arg "Scheduler.Lease.release_where: already released";
    let dead_paths, live_paths = List.partition dead t.paths in
    if dead_paths = [] then (Some t, [])
    else begin
      check_refund ~who:"Scheduler.Lease.release_where" capacity
        (usage_of_paths dead_paths);
      List.iter (Capacity.release_channel capacity) dead_paths;
      t.released <- true;
      let remainder =
        if live_paths = [] then None
        else
          Some
            {
              paths = live_paths;
              usage = usage_of_paths live_paths;
              released = false;
            }
      in
      (remainder, dead_paths)
    end

  (* Atomic admission for trees routed against a snapshot: re-validate
     the tree's aggregate demand against the (possibly newer) capacity
     state, consume it, and record the lease — or leave the state
     untouched.  The commit half of the batched engine's
     snapshot/solve/commit protocol. *)
  let commit capacity (tree : Ent_tree.t) =
    let t = acquire tree in
    if
      List.for_all
        (fun (v, q) -> Capacity.remaining capacity v >= q)
        t.usage
    then begin
      List.iter (Capacity.consume_channel capacity) t.paths;
      Some t
    end
    else None

  let release capacity t =
    if t.released then invalid_arg "Scheduler.Lease.release: already released";
    (* Invariant: a refund may never push a switch above its budget,
       i.e. every switch the lease pinned must still show at least the
       lease's consumption.  A violation means the lease's qubits were
       double-released or released by someone else — a controller bug,
       caught here rather than as silent over-capacity later. *)
    List.iter
      (fun (v, q) ->
        if Capacity.used capacity v < q then
          invalid_arg
            "Scheduler.Lease.release: capacity invariant violated (refund \
             exceeds recorded consumption)")
      t.usage;
    List.iter (Capacity.release_channel capacity) t.paths;
    t.released <- true
end

type disposition =
  | Accepted of { slot : int; tree : Ent_tree.t; rate : float }
  | Rejected of { slot : int }

type outcome = { request : request; disposition : disposition }

type stats = {
  arrived : int;
  accepted : int;
  rejected : int;
  acceptance_ratio : float;
  mean_accepted_rate : float;
  mean_wait_slots : float;
  peak_qubits_in_use : int;
}

let validate g requests =
  let ids = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem ids r.id then
        invalid_arg "Scheduler.run: duplicate request id";
      Hashtbl.replace ids r.id ();
      if r.arrival < 0 then invalid_arg "Scheduler.run: negative arrival";
      if r.duration < 1 then invalid_arg "Scheduler.run: duration < 1";
      if List.length r.users < 2 then
        invalid_arg "Scheduler.run: request needs >= 2 users";
      List.iter
        (fun u ->
          if not (Graph.is_user g u) then
            invalid_arg "Scheduler.run: request member is not a user")
        r.users;
      if
        List.length (List.sort_uniq compare r.users)
        <> List.length r.users
      then invalid_arg "Scheduler.run: duplicate users in request")
    requests

let total_used g capacity =
  List.fold_left
    (fun acc s -> acc + Capacity.used capacity s)
    0 (Graph.switches g)

let run ?(policy = Drop) g params ~requests =
  validate g requests;
  let capacity = Capacity.of_graph g in
  let pending =
    (* FIFO by (arrival, id). *)
    ref
      (List.sort
         (fun a b -> compare (a.arrival, a.id) (b.arrival, b.id))
         requests)
  in
  let waiting = ref [] in
  (* (request, deadline_slot) *)
  let leases = ref [] in
  (* (expiry_slot, lease) *)
  let outcomes = ref [] in
  let peak = ref 0 in
  let decide slot r =
    match
      Qnet_telemetry.Span.with_span "scheduler.admit" (fun () ->
          Multi_group.prim_for_users g params ~capacity ~users:r.users)
    with
    | Some tree ->
        Tm.Counter.incr c_accepted;
        (* prim_for_users already consumed the qubits. *)
        leases := (slot + r.duration, Lease.acquire tree) :: !leases;
        peak := max !peak (total_used g capacity);
        Qnet_util.Log.debug "scheduler: accepted request %d at slot %d" r.id
          slot;
        outcomes :=
          {
            request = r;
            disposition =
              Accepted { slot; tree; rate = Ent_tree.rate_prob tree };
          }
          :: !outcomes;
        true
    | None -> false
  in
  let slot = ref 0 in
  while !pending <> [] || !waiting <> [] || !leases <> [] do
    let t = !slot in
    (* 1. Expire leases that end at this slot. *)
    let expired, alive = List.partition (fun (e, _) -> e <= t) !leases in
    Tm.Counter.add c_expired (List.length expired);
    List.iter (fun (_, lease) -> Lease.release capacity lease) expired;
    leases := alive;
    (* 2. Retry the waiting queue in FIFO order. *)
    let still_waiting = ref [] in
    List.iter
      (fun (r, deadline) ->
        if decide t r then ()
        else if t >= deadline then begin
          Tm.Counter.incr c_rejected;
          outcomes := { request = r; disposition = Rejected { slot = t } } :: !outcomes
        end
        else still_waiting := (r, deadline) :: !still_waiting)
      (List.rev !waiting);
    waiting := List.rev !still_waiting;
    (* 3. Admit this slot's arrivals. *)
    let arrivals, later = List.partition (fun r -> r.arrival <= t) !pending in
    pending := later;
    List.iter
      (fun r ->
        if decide t r then ()
        else
          match policy with
          | Drop ->
              Tm.Counter.incr c_rejected;
              outcomes :=
                { request = r; disposition = Rejected { slot = t } }
                :: !outcomes
          | Queue max_wait -> waiting := !waiting @ [ (r, t + max_wait) ])
      arrivals;
    incr slot
  done;
  let outcomes = List.rev !outcomes in
  let accepted_rates, waits =
    List.fold_left
      (fun (rates, waits) o ->
        match o.disposition with
        | Accepted { slot; rate; _ } ->
            (rate :: rates, float_of_int (slot - o.request.arrival) :: waits)
        | Rejected _ -> (rates, waits))
      ([], []) outcomes
  in
  let accepted = List.length accepted_rates in
  let arrived = List.length requests in
  Tm.Gauge.set_max g_peak_qubits (float_of_int !peak);
  let mean l =
    match l with
    | [] -> 0.
    | _ -> Qnet_util.Stats.mean (Array.of_list l)
  in
  ( {
      arrived;
      accepted;
      rejected = arrived - accepted;
      acceptance_ratio =
        (if arrived = 0 then 0.
         else float_of_int accepted /. float_of_int arrived);
      mean_accepted_rate = mean accepted_rates;
      mean_wait_slots = mean waits;
      peak_qubits_in_use = !peak;
    },
    outcomes )

let random_requests rng g ~n ~mean_gap ~max_group ~duration_range =
  if n < 0 then invalid_arg "Scheduler.random_requests: negative n";
  if mean_gap < 0. then invalid_arg "Scheduler.random_requests: negative gap";
  let users = Array.of_list (Graph.users g) in
  let population = Array.length users in
  if max_group < 2 then
    invalid_arg "Scheduler.random_requests: max_group < 2";
  if max_group > population then
    invalid_arg "Scheduler.random_requests: max_group exceeds user count";
  let lo, hi = duration_range in
  if lo < 1 || hi < lo then
    invalid_arg "Scheduler.random_requests: bad duration range";
  let arrival = ref 0 in
  List.init n (fun id ->
      (if mean_gap > 0. then
         arrival :=
           !arrival + int_of_float (Float.round (Prng.exponential rng (1. /. mean_gap))));
      let size = Prng.int_in_range rng ~min:2 ~max:max_group in
      let members =
        Prng.sample_without_replacement rng size population
        |> List.map (fun i -> users.(i))
      in
      {
        id;
        users = members;
        arrival = !arrival;
        duration = Prng.int_in_range rng ~min:lo ~max:hi;
      })
