(** Online entanglement-request scheduling over a shared network.

    The paper's §II-B describes a central controller that collects
    entanglement requests and computes routes offline.  This module
    animates that controller over time: requests for multi-user
    entanglement arrive in discrete slots, each accepted request
    reserves its channels' switch qubits for a lease duration, and
    leases expire back into the shared pool.  It turns the static MUERP
    solvers into the admission-control loop a deployed quantum network
    would actually run, and measures what operators care about —
    acceptance ratio and served entanglement rates under load.

    Routing uses the Prim-style subset solver
    ({!Qnet_core.Multi_group.prim_for_users}) against the controller's
    residual capacity. *)

type request = {
  id : int;
  users : int list;  (** User vertices to entangle (≥ 2). *)
  arrival : int;  (** Slot in which the request appears. *)
  duration : int;  (** Lease length in slots once admitted (≥ 1). *)
}

type policy =
  | Drop  (** Reject immediately when unroutable. *)
  | Queue of int
      (** Retry an unroutable request every slot for at most the given
          number of additional slots, then reject. *)

(** A lease over the switch qubits an admitted entanglement tree pins.

    The router ({!Qnet_core.Multi_group.prim_for_users} or any
    {!Qnet_online.Policy}-style router) consumes the qubits when it
    admits the tree; {!Lease.acquire} snapshots what was consumed so the
    reservation can later be torn down exactly once.  Shared with the
    continuous-time traffic engine ([Qnet_online.Engine]). *)
module Lease : sig
  type t

  val acquire : Qnet_core.Ent_tree.t -> t
  (** Record the tree's channel paths and per-switch qubit consumption.
      The capacity state must already reflect the consumption (the
      routing call performed it). *)

  val channels : t -> int list list
  (** The leased channels' vertex paths. *)

  val qubits : t -> int
  (** Total switch qubits the lease pins. *)

  val commit : Qnet_core.Capacity.t -> Qnet_core.Ent_tree.t -> t option
  (** [commit capacity tree] atomically admits a tree that was routed
      against a {e snapshot} of the capacity state: if every switch can
      still afford the tree's aggregate qubit demand, consume it and
      return the lease; otherwise consume nothing and return [None].
      This is the commit half of the batched engine's
      snapshot/solve/commit protocol — speculative solvers work on
      {!Qnet_core.Capacity.overlay} views, and their winning trees are
      re-validated here against the live state. *)

  val release : Qnet_core.Capacity.t -> t -> unit
  (** Refund every channel of the lease into the residual state.
      Asserts the capacity invariant: each touched switch must still
      show at least the lease's recorded consumption, so a refund can
      never lift a switch above its qubit budget.  @raise
      Invalid_argument on double release or on an invariant
      violation. *)

  val release_where :
    Qnet_core.Capacity.t ->
    t ->
    dead:(int list -> bool) ->
    t option * int list list
  (** Partial release, for mid-lease infrastructure failure: refund
      only the channels whose path satisfies [dead], retiring this
      lease and returning [(remainder, dead_paths)] — a fresh lease
      over the surviving channels ([None] when every channel died) and
      the refunded paths.  When no channel is dead the lease is
      returned unchanged (still live, nothing refunded).  The refund is
      checked against the same capacity invariant as {!release}.
      @raise Invalid_argument on an already-released lease or an
      invariant violation. *)
end

type disposition =
  | Accepted of { slot : int; tree : Qnet_core.Ent_tree.t; rate : float }
  | Rejected of { slot : int }
      (** [slot] is when the final decision was made. *)

type outcome = { request : request; disposition : disposition }

type stats = {
  arrived : int;
  accepted : int;
  rejected : int;
  acceptance_ratio : float;
  mean_accepted_rate : float;  (** Mean Eq. (2) rate over admitted
                                   requests; [0.] if none. *)
  mean_wait_slots : float;  (** Mean slots between arrival and
                                admission, over admitted requests. *)
  peak_qubits_in_use : int;  (** Max total switch qubits simultaneously
                                 leased. *)
}

val run :
  ?policy:policy ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  requests:request list ->
  stats * outcome list
(** Simulate the controller until every request is decided and every
    lease would have been placed.  Requests are processed in arrival
    order (FIFO within a slot by [id]).  @raise Invalid_argument on
    malformed requests (bad users, duration < 1, negative arrival,
    duplicate ids). *)

val random_requests :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  n:int ->
  mean_gap:float ->
  max_group:int ->
  duration_range:int * int ->
  request list
(** A synthetic workload: [n] requests with geometric inter-arrival
    gaps of the given mean, user groups drawn uniformly (size 2 to
    [max_group], members without replacement from the graph's users)
    and uniform lease durations.  @raise Invalid_argument when
    [max_group] exceeds the user population or parameters are out of
    range. *)
