(** Monte-Carlo estimation of entanglement rates.

    Repeats {!Trial.run} and compares the empirical success frequency to
    the analytic Eq. (2) value — the library's empirical check that the
    routing algorithms optimise the quantity the physical process
    actually realises. *)

type estimate = {
  trials : int;
  successes : int;
  p_hat : float;  (** Empirical success frequency. *)
  ci_low : float;  (** Wilson 95% lower bound. *)
  ci_high : float;  (** Wilson 95% upper bound. *)
  analytic : float;  (** Eq. (2) rate of the simulated tree. *)
  within_ci : bool;  (** Whether [analytic ∈ \[ci_low, ci_high\]]. *)
}

val estimate_rate :
  ?pool:Qnet_util.Pool.t ->
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t ->
  trials:int ->
  estimate
(** [estimate_rate rng g params tree ~trials] samples [trials]
    independent slots.  With [?pool] the trials run chunked across the
    pool's domains; the chunk rngs are split off [rng] sequentially, so
    the estimate is bitwise identical for every pool size (and for no
    pool at all) given the same [rng] state.
    @raise Invalid_argument if [trials <= 0]. *)

val slots_until_success :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t ->
  max_slots:int ->
  int option
(** Number of time slots the §II-B process needs before the first
    overall success (geometric with parameter Eq. (2)); [None] if
    [max_slots] elapse first. *)

val mean_slots :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t ->
  runs:int ->
  max_slots:int ->
  float option
(** Mean of {!slots_until_success} over [runs] repetitions; [None] if
    any repetition times out (keeps the estimator unbiased rather than
    silently truncating the geometric tail). *)
