module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng

type element = Link of int | Switch of int

type event = { time : float; element : element; up : bool }

let compare_element a b =
  match (a, b) with
  | Link x, Link y | Switch x, Switch y -> Int.compare x y
  | Link _, Switch _ -> -1
  | Switch _, Link _ -> 1

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c
  else
    (* Repairs before failures at an exact tie, so an element that is
       flapping at one instant ends the instant in its failed state. *)
    let c = Bool.compare b.up a.up in
    if c <> 0 then c else compare_element a.element b.element

(* Alternating Exp(mtbf) up / Exp(mttr) down renewal chain for one
   element, from its own generator. *)
let element_chain rng ~mtbf ~mttr ~horizon element acc =
  let fail_rate = 1. /. mtbf and repair_rate = 1. /. mttr in
  (* Every element starts the run healthy. *)
  let rec loop t acc =
    let t_fail = t +. Prng.exponential rng fail_rate in
    if t_fail >= horizon then acc
    else
      let acc = { time = t_fail; element; up = false } :: acc in
      let t_repair = t_fail +. Prng.exponential rng repair_rate in
      if t_repair >= horizon then acc
      else loop t_repair ({ time = t_repair; element; up = true } :: acc)
  in
  loop 0. acc

let independent model g ~horizon acc =
  if not (Model.independent_enabled model) then acc
  else begin
    let rng = Prng.create model.Model.seed in
    let acc = ref acc in
    (* Fixed element order (links by eid, then switches by vid) so each
       element's split stream is stable across runs and graphs edits
       elsewhere. *)
    let links_on =
      match model.targets with Model.Links | Model.Both -> true | _ -> false
    and switches_on =
      match model.targets with
      | Model.Switches | Model.Both -> true
      | _ -> false
    in
    if links_on then
      for eid = 0 to Graph.edge_count g - 1 do
        let r = Prng.split rng in
        acc :=
          element_chain r ~mtbf:model.mtbf ~mttr:model.mttr ~horizon
            (Link eid) !acc
      done;
    if switches_on then
      List.iter
        (fun vid ->
          let r = Prng.split rng in
          acc :=
            element_chain r ~mtbf:model.mtbf ~mttr:model.mttr ~horizon
              (Switch vid) !acc)
        (Graph.switches g);
    !acc
  end

let bounding_box g =
  let min_x = ref infinity
  and max_x = ref neg_infinity
  and min_y = ref infinity
  and max_y = ref neg_infinity in
  Graph.iter_vertices g (fun v ->
      if v.Graph.x < !min_x then min_x := v.x;
      if v.x > !max_x then max_x := v.x;
      if v.y < !min_y then min_y := v.y;
      if v.y > !max_y then max_y := v.y);
  (!min_x, !max_x, !min_y, !max_y)

let uniform_in rng lo hi =
  if hi > lo then lo +. Prng.float rng (hi -. lo) else lo

let regional model g ~horizon acc =
  if model.Model.regional_rate <= 0. then acc
  else begin
    let rng = Prng.create (model.Model.seed lxor 0x5eed_fa11) in
    let min_x, max_x, min_y, max_y = bounding_box g in
    let radius = model.regional_radius in
    let acc = ref acc in
    let t = ref 0. in
    let continue = ref true in
    while !continue do
      t := !t +. Prng.exponential rng model.regional_rate;
      if !t >= horizon then continue := false
      else begin
        let cx = uniform_in rng min_x max_x
        and cy = uniform_in rng min_y max_y in
        let repair_at = !t +. Prng.exponential rng (1. /. model.mttr) in
        let inside vid =
          let v = Graph.vertex g vid in
          let dx = v.Graph.x -. cx and dy = v.Graph.y -. cy in
          (dx *. dx) +. (dy *. dy) <= radius *. radius
        in
        let hit element =
          acc := { time = !t; element; up = false } :: !acc;
          if repair_at < horizon then
            acc := { time = repair_at; element; up = true } :: !acc
        in
        List.iter
          (fun vid -> if inside vid then hit (Switch vid))
          (Graph.switches g);
        Graph.iter_edges g (fun e ->
            if inside e.Graph.a || inside e.Graph.b then hit (Link e.eid))
      end
    done;
    !acc
  end

let generate model g ~horizon =
  if horizon <= 0. || not (Model.enabled model) then []
  else
    independent model g ~horizon [] |> regional model g ~horizon
    |> List.sort compare_event

let pp_element fmt = function
  | Link eid -> Format.fprintf fmt "link %d" eid
  | Switch vid -> Format.fprintf fmt "switch %d" vid

let pp_event fmt e =
  Format.fprintf fmt "%.3f %s %a" e.time
    (if e.up then "repair" else "fail")
    pp_element e.element
