(** Live infrastructure health during a run.

    Tracks, per element, {e how many} concurrent outages currently hold
    it down — a count, not a flag, because the independent process and a
    regional outage (or two overlapping regional outages) can fail the
    same element at once, and the element is only truly back once every
    cause has been repaired.  Applying a schedule event reports whether
    the element actually changed observable state, which is what the
    engine's recovery machinery keys on. *)

type t

type transition =
  | No_change  (** Already down (another cause) or spurious repair. *)
  | Went_down  (** First active outage: the element just became unusable. *)
  | Came_up  (** Last outage cleared: the element is usable again. *)

val create : Qnet_graph.Graph.t -> t
(** Everything starts healthy. *)

val apply : t -> Schedule.event -> transition
(** Fold one schedule event in.  Spurious repairs (no active outage —
    possible in adversarial replay tests) are clamped to {!No_change}
    rather than driving the count negative. *)

val on_transition : t -> (Schedule.element -> transition -> unit) -> unit
(** Register an observer called from {!apply} whenever an element
    actually changes observable state ({!Went_down} or {!Came_up};
    {!No_change} events are filtered out).  Observers fire in
    registration order, after the health state has been updated — the
    hook caching layers (e.g. the hierarchical router's precomputed
    region segments) use to invalidate eagerly on fault transitions
    instead of discovering staleness lazily at the next lookup. *)

val link_up : t -> int -> bool
val switch_up : t -> int -> bool
val element_up : t -> Schedule.element -> bool
val any_down : t -> bool

val down_links : t -> int list
(** Ascending edge ids. *)

val down_switches : t -> int list
(** Ascending vertex ids. *)

val exclusion : t -> Qnet_core.Routing.exclusion
(** Routing exclusion backed live by this health state: failed switches
    are not enterable, failed fibers not crossable.  The closure reads
    [t] at query time, so one value stays valid as health evolves. *)

val tree_ok : t -> Qnet_graph.Graph.t -> Qnet_core.Ent_tree.t -> bool
(** Whether every channel of the tree survives the current health
    state. *)

val dead_channel : t -> Qnet_graph.Graph.t -> int list -> bool
(** Whether a channel path crosses any failed element ([not] of
    {!Qnet_core.Routing.path_ok} under {!exclusion}). *)

(** {2 Downtime accounting}

    Observed (not modelled) repair statistics, fed by {!apply}'s event
    times: an element's downtime spell runs from its [Went_down] to its
    [Came_up]. *)

val repairs : t -> int
(** Completed downtime spells so far. *)

val observed_mttr : t -> float
(** Mean length of completed downtime spells; [0.] before the first
    repair. *)

(** {2 Checkpointing}

    The numeric health state (outage counts, spell start times, repair
    accounting) as a plain record — observers are {e not} captured;
    a restored run must re-register them before applying events. *)

type snapshot = {
  s_link_down : int array;
  s_switch_down : int array;
  s_link_since : float array;
  s_switch_since : float array;
  s_repairs : int;
  s_total_downtime : float;
}

val snapshot : t -> snapshot
(** Deep copy of the numeric state. *)

val restore : t -> snapshot -> unit
(** Overwrite [t]'s numeric state with the snapshot.
    @raise Invalid_argument if array sizes disagree (snapshot taken on
    a different graph). *)
