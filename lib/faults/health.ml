module Graph = Qnet_graph.Graph
module Routing = Qnet_core.Routing

type transition = No_change | Went_down | Came_up

type t = {
  graph : Graph.t;
  link_down : int array;  (* concurrent-outage counts *)
  switch_down : int array;
  link_since : float array;  (* Went_down time while a spell is open *)
  switch_since : float array;
  mutable repairs : int;
  mutable total_downtime : float;
  mutable observers : (Schedule.element -> transition -> unit) list;
}

let create g =
  {
    graph = g;
    link_down = Array.make (max 1 (Graph.edge_count g)) 0;
    switch_down = Array.make (max 1 (Graph.vertex_count g)) 0;
    link_since = Array.make (max 1 (Graph.edge_count g)) 0.;
    switch_since = Array.make (max 1 (Graph.vertex_count g)) 0.;
    repairs = 0;
    total_downtime = 0.;
    observers = [];
  }

let on_transition t f = t.observers <- t.observers @ [ f ]

let slot t = function
  | Schedule.Link eid -> (t.link_down, t.link_since, eid)
  | Schedule.Switch vid -> (t.switch_down, t.switch_since, vid)

let apply t (e : Schedule.event) =
  let counts, since, i = slot t e.element in
  let result =
    if e.up then
      if counts.(i) = 0 then No_change (* spurious repair: clamp *)
      else begin
        counts.(i) <- counts.(i) - 1;
        if counts.(i) = 0 then begin
          t.repairs <- t.repairs + 1;
          t.total_downtime <-
            t.total_downtime +. Float.max 0. (e.time -. since.(i));
          Came_up
        end
        else No_change
      end
    else begin
      counts.(i) <- counts.(i) + 1;
      if counts.(i) = 1 then begin
        since.(i) <- e.time;
        Went_down
      end
      else No_change
    end
  in
  if result <> No_change then
    List.iter (fun f -> f e.element result) t.observers;
  result

let link_up t eid = t.link_down.(eid) = 0
let switch_up t vid = t.switch_down.(vid) = 0

let element_up t = function
  | Schedule.Link eid -> link_up t eid
  | Schedule.Switch vid -> switch_up t vid

let any_down t =
  Array.exists (fun c -> c > 0) t.link_down
  || Array.exists (fun c -> c > 0) t.switch_down

let downs counts n =
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if counts.(i) > 0 then acc := i :: !acc
  done;
  !acc

let down_links t = downs t.link_down (Graph.edge_count t.graph)
let down_switches t = downs t.switch_down (Graph.vertex_count t.graph)

let exclusion t =
  {
    Routing.vertex_ok = (fun v -> t.switch_down.(v) = 0);
    edge_ok = (fun eid -> t.link_down.(eid) = 0);
  }

let dead_channel t g path = not (Routing.path_ok g (exclusion t) path)

let tree_ok t g (tree : Qnet_core.Ent_tree.t) =
  List.for_all
    (fun (c : Qnet_core.Channel.t) -> not (dead_channel t g c.path))
    tree.channels

let repairs t = t.repairs

let observed_mttr t =
  if t.repairs = 0 then 0. else t.total_downtime /. float_of_int t.repairs

(* Checkpoint support.  Observers are closures and cannot be
   serialised; a restored run re-registers them (the engine and the
   hier cache wiring both attach on startup), so the snapshot carries
   only the numeric state. *)
type snapshot = {
  s_link_down : int array;
  s_switch_down : int array;
  s_link_since : float array;
  s_switch_since : float array;
  s_repairs : int;
  s_total_downtime : float;
}

let snapshot t =
  {
    s_link_down = Array.copy t.link_down;
    s_switch_down = Array.copy t.switch_down;
    s_link_since = Array.copy t.link_since;
    s_switch_since = Array.copy t.switch_since;
    s_repairs = t.repairs;
    s_total_downtime = t.total_downtime;
  }

let restore t s =
  let blit name src dst =
    if Array.length src <> Array.length dst then
      invalid_arg ("Health.restore: " ^ name ^ " size mismatch");
    Array.blit src 0 dst 0 (Array.length src)
  in
  blit "link_down" s.s_link_down t.link_down;
  blit "switch_down" s.s_switch_down t.switch_down;
  blit "link_since" s.s_link_since t.link_since;
  blit "switch_since" s.s_switch_since t.switch_since;
  t.repairs <- s.s_repairs;
  t.total_downtime <- s.s_total_downtime
