type target = Links | Switches | Both

type t = {
  mtbf : float;
  mttr : float;
  targets : target;
  regional_rate : float;
  regional_radius : float;
  seed : int;
}

let make ?(mtbf = infinity) ?(mttr = 10.) ?(targets = Both)
    ?(regional_rate = 0.) ?(regional_radius = 100.) ?(seed = 0) () =
  if not (mttr > 0.) then invalid_arg "Faults.Model.make: mttr must be > 0";
  if regional_rate < 0. || Float.is_nan regional_rate then
    invalid_arg "Faults.Model.make: negative regional_rate";
  if regional_radius < 0. || Float.is_nan regional_radius then
    invalid_arg "Faults.Model.make: negative regional_radius";
  { mtbf; mttr; targets; regional_rate; regional_radius; seed }

let independent_enabled t = t.mtbf > 0. && Float.is_finite t.mtbf
let enabled t = independent_enabled t || t.regional_rate > 0.

let target_of_string = function
  | "links" -> Ok Links
  | "switches" -> Ok Switches
  | "both" -> Ok Both
  | s -> Error (Printf.sprintf "unknown fault target %S (expected links|switches|both)" s)

let target_to_string = function
  | Links -> "links"
  | Switches -> "switches"
  | Both -> "both"

let pp fmt t =
  Format.fprintf fmt
    "faults { mtbf=%g; mttr=%g; targets=%s; regional=%g/s r=%gkm; seed=%d }"
    t.mtbf t.mttr (target_to_string t.targets) t.regional_rate
    t.regional_radius t.seed
