(** Deterministic fault/repair schedules.

    {!generate} expands a {!Model.t} over a concrete graph and horizon
    into the full ordered list of up/down transitions, before the run
    starts.  Pre-materialising the schedule (rather than sampling faults
    inside the event loop) is what keeps chaos runs bitwise reproducible
    regardless of how the engine interleaves its own events or how many
    domains execute the surrounding pipeline: the schedule depends only
    on the model, the graph, and the horizon. *)

type element = Link of int  (** edge id *) | Switch of int  (** vertex id *)

type event = {
  time : float;
  element : element;
  up : bool;  (** [false] = failure, [true] = repair. *)
}

val compare_element : element -> element -> int
val compare_event : event -> event -> int
(** Total order: time, then repairs before failures, then element — the
    tie-break that makes simultaneous regional transitions
    deterministic. *)

val generate :
  Model.t -> Qnet_graph.Graph.t -> horizon:float -> event list
(** All transitions in [\[0, horizon)], sorted by {!compare_event}.

    Independent process: each eligible element (per [targets]) runs its
    own alternating Exp(mtbf) up / Exp(mttr) down renewal chain from its
    own PRNG stream, split off the model seed in a fixed element order —
    so one element's draws never perturb another's.

    Regional outages: outage starts arrive as a Poisson process of rate
    [regional_rate]; each picks a centre uniformly in the bounding box
    of the vertex layout and one shared Exp(mttr) repair delay.  Every
    switch inside the radius, and every fiber with an endpoint inside,
    goes down at the start time and comes back at the shared repair
    time (correlated failure and correlated repair).

    An element can be down for several overlapping reasons at once;
    consumers must count down/up transitions per element (see
    {!Health}) rather than treat them as a toggle. *)

val pp_event : Format.formatter -> event -> unit
