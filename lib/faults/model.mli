(** Failure-model parameters for fault injection.

    Infrastructure elements (optical fibers and switches) fail and come
    back following the classic availability model: each element
    alternates exponentially distributed up-times (mean {!mtbf}) and
    down-times (mean {!mttr}), independently of every other element.  On
    top of the independent process, optional {e regional outages} take
    down every element within a disc of the simulation area at once and
    repair them together — the correlated-failure mode (power cuts,
    backhoes) that independent exponentials cannot produce.

    A model is pure configuration; {!Schedule.generate} turns it into a
    concrete, deterministic event list for one run. *)

type target = Links | Switches | Both
(** Which element class the independent failure process applies to.
    Regional outages always hit both classes — a disaster does not
    distinguish fiber from switch. *)

type t = {
  mtbf : float;
      (** Mean time between failures per element, in simulation seconds.
          Non-positive or infinite disables the independent process. *)
  mttr : float;  (** Mean time to repair, in simulation seconds. *)
  targets : target;
  regional_rate : float;
      (** Regional outages per simulation second over the whole area;
          [0.] (the default) disables them. *)
  regional_radius : float;
      (** Radius (km) of the disc an outage takes down. *)
  seed : int;  (** Fault randomness is split from this seed alone. *)
}

val make :
  ?mtbf:float ->
  ?mttr:float ->
  ?targets:target ->
  ?regional_rate:float ->
  ?regional_radius:float ->
  ?seed:int ->
  unit ->
  t
(** Defaults: [mtbf = infinity] (no faults), [mttr = 10.],
    [targets = Both], [regional_rate = 0.], [regional_radius = 100.],
    [seed = 0].  @raise Invalid_argument on a non-positive [mttr] or
    negative rate/radius. *)

val enabled : t -> bool
(** Whether the model can produce any fault at all. *)

val independent_enabled : t -> bool
(** Whether the per-element exponential process is active (finite,
    positive [mtbf]). *)

val target_of_string : string -> (target, string) result
(** Parses ["links" | "switches" | "both"] (the CLI vocabulary). *)

val target_to_string : target -> string
val pp : Format.formatter -> t -> unit
