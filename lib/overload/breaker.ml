type state = Closed | Open | Half_open

type t = {
  failure_threshold : int;
  cooldown : int;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable cooldown_left : int;
  mutable opens : int;
}

let create ?(failure_threshold = 3) ?(cooldown = 16) () =
  if failure_threshold <= 0 then
    invalid_arg "Breaker.create: failure_threshold must be positive";
  if cooldown <= 0 then invalid_arg "Breaker.create: cooldown must be positive";
  {
    failure_threshold;
    cooldown;
    state = Closed;
    consecutive_failures = 0;
    cooldown_left = 0;
    opens = 0;
  }

let state t = t.state

let allow t =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      t.cooldown_left <- t.cooldown_left - 1;
      if t.cooldown_left <= 0 then begin
        t.state <- Half_open;
        true
      end
      else false

let success t =
  t.state <- Closed;
  t.consecutive_failures <- 0

let trip t =
  t.state <- Open;
  t.consecutive_failures <- 0;
  t.cooldown_left <- t.cooldown;
  t.opens <- t.opens + 1

let failure t =
  match t.state with
  | Half_open -> trip t
  | Open -> ()
  | Closed ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures >= t.failure_threshold then trip t

let opens t = t.opens

let snapshot t = (t.state, t.consecutive_failures, t.cooldown_left, t.opens)

let restore t (state, consecutive_failures, cooldown_left, opens) =
  t.state <- state;
  t.consecutive_failures <- consecutive_failures;
  t.cooldown_left <- cooldown_left;
  t.opens <- opens

let pp_state ppf = function
  | Closed -> Format.pp_print_string ppf "closed"
  | Open -> Format.pp_print_string ppf "open"
  | Half_open -> Format.pp_print_string ppf "half-open"
