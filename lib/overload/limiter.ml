type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate ~burst =
  if not (rate > 0. && Float.is_finite rate) then
    invalid_arg "Limiter.create: rate must be positive";
  if not (burst >= 1. && Float.is_finite burst) then
    invalid_arg "Limiter.create: burst must be at least 1";
  { rate; burst; tokens = burst; last = 0. }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

let try_take t ~now =
  refill t ~now;
  if t.tokens >= 1. then begin
    t.tokens <- t.tokens -. 1.;
    true
  end
  else false

let copy t = { t with tokens = t.tokens }

let tokens t = t.tokens
let rate t = t.rate
let burst t = t.burst

let snapshot t = (t.tokens, t.last)

let restore t (tokens, last) =
  t.tokens <- tokens;
  t.last <- last
