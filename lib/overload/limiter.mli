(** Deterministic token-bucket rate limiter.

    The bucket refills continuously at [rate] tokens per simulated
    second and holds at most [burst] tokens.  Time never comes from a
    wall clock: callers pass the current {e simulated} event time to
    {!try_take}, so admission decisions replay identically from a
    seed.  Timestamps must be offered monotonically (the engine's
    event loop guarantees this); a stale timestamp is clamped rather
    than refunding tokens. *)

type t

val create : rate:float -> burst:float -> t
(** [create ~rate ~burst] starts with a full bucket of [burst] tokens.
    @raise Invalid_argument unless [rate > 0] and [burst >= 1]. *)

val try_take : t -> now:float -> bool
(** [try_take t ~now] refills the bucket up to [now], then takes one
    token if at least one is available.  [false] means the caller is
    over rate and should shed. *)

val copy : t -> t
(** An independent limiter with the same configuration and current
    bucket state.  The batched serving engine dry-runs a copy over a
    drained event batch to predict which arrivals the live limiter will
    shed, without consuming the real tokens. *)

val tokens : t -> float
(** Tokens currently available (after the last refill). *)

val rate : t -> float

val burst : t -> float

val snapshot : t -> float * float
(** [(tokens, last_refill_time)] — the complete mutable state, for
    checkpointing.  Configuration ([rate]/[burst]) is rebuilt from the
    run's flags on restore. *)

val restore : t -> float * float -> unit
(** Overwrite the bucket state with a {!snapshot}. *)
