type t = { fuel : int; mutable remaining : int }

exception Exhausted of { fuel : int }

let create ~fuel =
  if fuel <= 0 then invalid_arg "Budget.create: fuel must be positive";
  { fuel; remaining = fuel }

let spend t n =
  if n < 0 then invalid_arg "Budget.spend: negative charge";
  if t.remaining < n then begin
    t.remaining <- 0;
    raise (Exhausted { fuel = t.fuel })
  end;
  t.remaining <- t.remaining - n

let tick t =
  if t.remaining < 1 then raise (Exhausted { fuel = t.fuel });
  t.remaining <- t.remaining - 1

let remaining t = t.remaining
let spent t = t.fuel - t.remaining
let fuel t = t.fuel
let exhausted t = t.remaining = 0
