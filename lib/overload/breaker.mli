(** Per-tier circuit breaker with deterministic event-count cooldown.

    A breaker protects one serving tier from burning fuel on every
    request while the tier is persistently failing (budget exhaustion,
    [Verify] rejection).  States follow the classic pattern:

    - {b Closed} — requests flow; [failure_threshold] {e consecutive}
      failures trip the breaker open.
    - {b Open} — requests are skipped.  Instead of a wall-clock timer
      (which would break determinism) the breaker counts skipped
      probes: after [cooldown] calls to {!allow} it moves to
      half-open.
    - {b Half_open} — exactly one trial request is let through; success
      closes the breaker, failure re-opens it (restarting the
      cooldown). *)

type state = Closed | Open | Half_open

type t

val create : ?failure_threshold:int -> ?cooldown:int -> unit -> t
(** Defaults: [failure_threshold = 3], [cooldown = 16].
    @raise Invalid_argument unless both are positive. *)

val state : t -> state

val allow : t -> bool
(** Whether the next request may be attempted.  In the open state this
    consumes one cooldown step (and transitions to half-open when the
    cooldown is spent, admitting that very call as the trial). *)

val success : t -> unit
(** Report a successful attempt: closes the breaker and clears the
    consecutive-failure count. *)

val failure : t -> unit
(** Report a failed attempt (budget exhausted / verification reject).
    Trips the breaker when the consecutive-failure threshold is
    reached; a half-open trial failure re-opens immediately. *)

val opens : t -> int
(** How many times the breaker has tripped open over its lifetime. *)

val snapshot : t -> state * int * int * int
(** [(state, consecutive_failures, cooldown_left, opens)] — the
    complete mutable state, for checkpointing. *)

val restore : t -> state * int * int * int -> unit
(** Overwrite the breaker's mutable state with a {!snapshot}. *)

val pp_state : Format.formatter -> state -> unit
