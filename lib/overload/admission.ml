type t = {
  max_queue : int option;
  max_inflight : int option;
  rate : float option;
  burst : float;
  infeasible : (int list -> bool) option;
}

let none =
  {
    max_queue = None;
    max_inflight = None;
    rate = None;
    burst = 1.;
    infeasible = None;
  }

let make ?max_queue ?max_inflight ?rate ?burst ?infeasible () =
  (match max_queue with
  | Some q when q < 0 -> invalid_arg "Admission.make: max_queue must be >= 0"
  | _ -> ());
  (match max_inflight with
  | Some i when i <= 0 -> invalid_arg "Admission.make: max_inflight must be > 0"
  | _ -> ());
  (match rate with
  | Some r when not (r > 0. && Float.is_finite r) ->
      invalid_arg "Admission.make: rate must be positive"
  | _ -> ());
  let burst =
    match (burst, rate) with
    | Some b, _ ->
        if not (b >= 1. && Float.is_finite b) then
          invalid_arg "Admission.make: burst must be at least 1";
        b
    | None, Some r -> Float.max 1. r
    | None, None -> 1.
  in
  { max_queue; max_inflight; rate; burst; infeasible }

let enabled t =
  t.max_queue <> None || t.max_inflight <> None || t.rate <> None
  || t.infeasible <> None

let limiter t =
  match t.rate with
  | None -> None
  | Some rate -> Some (Limiter.create ~rate ~burst:t.burst)

type victim = { id : int; group : int; slack : float }

let shed_order a b =
  (* Cheapest-to-refuse first: big groups, then loose deadlines. *)
  let c = compare b.group a.group in
  if c <> 0 then c
  else
    let c = compare b.slack a.slack in
    if c <> 0 then c else compare a.id b.id

let pick_victim = function
  | [] -> None
  | v :: vs ->
      Some
        (List.fold_left (fun best v -> if shed_order v best < 0 then v else best)
           v vs)

let pp ppf t =
  let opt_int ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some n -> Format.pp_print_int ppf n
  in
  let opt_f ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some r -> Format.fprintf ppf "%g" r
  in
  Format.fprintf ppf "queue<=%a inflight<=%a rate=%a burst=%g%s" opt_int
    t.max_queue opt_int t.max_inflight opt_f t.rate t.burst
    (if t.infeasible = None then "" else " gate=on")
