(** Admission-control configuration and deterministic load shedding.

    This module owns the {e decisions about which work to refuse};
    the online engine owns the queues and leases themselves.  Three
    independent limits can be enabled:

    - [max_queue] — upper bound on requests waiting for capacity;
    - [max_inflight] — upper bound on concurrently held leases;
    - [rate] — token-bucket arrival rate limit (see {!Limiter}).

    When the queue limit is hit the engine sheds the
    {b cheapest-to-refuse} request among the waiters and the newcomer:
    the one with the largest group (most capacity to satisfy), then the
    loosest deadline (most slack — it has the best chance to come back
    later), with request id as the final tie-break so shedding is a
    total, deterministic order. *)

type t = {
  max_queue : int option;  (** [None] = unbounded. *)
  max_inflight : int option;  (** [None] = unbounded. *)
  rate : float option;  (** Tokens per simulated second; [None] = off. *)
  burst : float;  (** Bucket depth when [rate] is set. *)
  infeasible : (int list -> bool) option;
      (** Feasibility oracle over a request's user group: [true] means
          the group is {e provably} unservable on this network and the
          engine rejects it at arrival, before any routing work.  The
          oracle must be sound (never condemn a servable group) and
          pure — it sees no capacity state, only the group.  [None] =
          no gate.  The flow subsystem's capacity-connectivity check
          ([Qnet_flow.Gate]) is the intended plug. *)
}

val none : t
(** All limits disabled — the engine behaves exactly as without
    overload control. *)

val make :
  ?max_queue:int ->
  ?max_inflight:int ->
  ?rate:float ->
  ?burst:float ->
  ?infeasible:(int list -> bool) ->
  unit ->
  t
(** [burst] defaults to [max 1. rate] when [rate] is given.
    @raise Invalid_argument on non-positive limits. *)

val enabled : t -> bool
(** Whether any limit is active. *)

val limiter : t -> Limiter.t option
(** A fresh token bucket for [rate]/[burst], if rate limiting is on. *)

(** A shedding candidate: enough of a request to rank it. *)
type victim = { id : int; group : int; slack : float }

val shed_order : victim -> victim -> int
(** Total order, cheapest-to-refuse first: larger [group] first, then
    larger [slack] (loosest deadline), then smaller [id]. *)

val pick_victim : victim list -> victim option
(** The minimum of {!shed_order} — the request to shed.  [None] on an
    empty list. *)

val pp : Format.formatter -> t -> unit
