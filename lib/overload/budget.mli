(** Cooperative solver fuel budgets.

    A budget is a mutable fuel counter handed to a solver invocation.
    Hot loops charge it (one unit per Dijkstra heap pop, per Prim
    attachment scan, ...) and the charge raises {!Exhausted} the moment
    the fuel runs out.  Because fuel counts node expansions — never
    wall-clock time — budgeted runs remain bit-for-bit deterministic:
    the same instance exhausts at exactly the same expansion on every
    machine and at every [--jobs] level.

    Budgets are intentionally single-use: create one per serving
    attempt, let the solver burn it, inspect {!spent} afterwards.
    Callers that hand shared capacity to a solver must treat
    {!Exhausted} like any other abort path and roll back partial
    consumption before re-raising (see
    {!Qnet_core.Multi_group.prim_for_users}). *)

type t

exception Exhausted of { fuel : int }
(** Raised by {!spend} / {!tick} when the counter hits zero.  [fuel] is
    the budget's initial allowance, for diagnostics. *)

val create : fuel:int -> t
(** [create ~fuel] is a fresh budget holding [fuel] units.
    @raise Invalid_argument if [fuel <= 0]. *)

val spend : t -> int -> unit
(** [spend t n] consumes [n >= 0] units.  @raise Exhausted if fewer
    than [n] units remain (the budget is left empty). *)

val tick : t -> unit
(** [tick t] is [spend t 1] — the common hot-loop charge. *)

val remaining : t -> int
(** Units left; [0] once exhausted. *)

val spent : t -> int
(** Units consumed so far. *)

val fuel : t -> int
(** The initial allowance. *)

val exhausted : t -> bool
(** Whether the budget has raised (or would raise on the next tick). *)
