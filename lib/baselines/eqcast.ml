module Graph = Qnet_graph.Graph
open Qnet_core

type order = By_id | Nearest_neighbor

let chain_order order g users =
  match order with
  | By_id -> users
  | Nearest_neighbor -> begin
      match users with
      | [] -> []
      | first :: _ ->
          let remaining = ref (List.filter (fun u -> u <> first) users) in
          let chain = ref [ first ] in
          let current = ref first in
          while !remaining <> [] do
            let cv = Graph.vertex g !current in
            let next =
              List.fold_left
                (fun best u ->
                  let d = Graph.euclidean cv (Graph.vertex g u) in
                  match best with
                  | Some (bd, _) when bd <= d -> best
                  | _ -> Some (d, u))
                None !remaining
            in
            match next with
            | None -> ()
            | Some (_, u) ->
                chain := u :: !chain;
                current := u;
                remaining := List.filter (fun x -> x <> u) !remaining
          done;
          List.rev !chain
    end

let solve ?(order = By_id) ?budget g params =
  let users = Graph.users g in
  match users with
  | [] | [ _ ] -> Some (Ent_tree.of_channels [])
  | _ ->
      let chain = chain_order order g users in
      let capacity = Capacity.of_graph g in
      let rec route acc = function
        | [] | [ _ ] -> Some (Ent_tree.of_channels (List.rev acc))
        | src :: (dst :: _ as rest) -> begin
            match Routing.best_channel ?budget g params ~capacity ~src ~dst with
            | None -> None
            | Some c ->
                Capacity.consume_channel capacity c.path;
                route (c :: acc) rest
          end
      in
      route [] chain
