(** E-Q-CAST — the paper's first comparison baseline (§V-A).

    Q-CAST (Shi & Qian, SIGCOMM 2020) routes entanglement for {e pairs}
    of users; the paper extends it to the multi-user case by chaining
    consecutive pairs: to entangle [{u1, u2, u3, u4}] it establishes the
    channels [<u1,u2>, <u2,u3>, <u3,u4>].  Each pair gets its
    maximum-rate channel under the residual switch capacities left by
    the earlier pairs; if any pair cannot be routed the whole
    entanglement fails (rate 0).

    The chain order is the user-id order by default — the natural
    reading of the paper's example — with an option to chain in a
    locality-greedy order (nearest unvisited user next), exposed for the
    ablation benches. *)

type order =
  | By_id  (** [u1, u2, …] in ascending vertex id (paper's example). *)
  | Nearest_neighbor
      (** Start at the smallest id, then repeatedly hop to the
          geometrically nearest unchained user. *)

val solve :
  ?order:order ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t option
(** Run the baseline (default [By_id]).  The produced tree is a path in
    the user-adjacency sense (each user chained to the next) and always
    respects switch capacities.  [budget] meters the per-pair Dijkstra
    runs (local capacity only — exhaustion leaks nothing). *)
