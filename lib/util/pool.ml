(* Fixed-size domain pool with chunked dynamic scheduling.

   One batch at a time: the caller publishes a job (an index space cut
   into chunks), wakes the workers, and participates itself.  Idle
   participants claim the next chunk with a fetch-and-add; the batch is
   done when every chunk has been executed.  Scheduling only decides
   which domain runs a chunk — task [i] writes nothing shared except
   its own result slot — so results are identical at any pool size. *)

type job = {
  run_task : int -> unit;
  n_tasks : int;
  chunk : int;
  n_chunks : int;
  next_chunk : int Atomic.t;
  mutable unfinished : int;  (* chunks not yet executed; pool.lock *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* a new batch was published, or shutdown *)
  finished : Condition.t;  (* the current batch completed *)
  mutable current : (int * job) option;  (* epoch-tagged batch *)
  mutable epoch : int;
  mutable stopped : bool;
  mutable submitting : bool;
  mutable workers : unit Domain.t list;
}

(* Region hooks (telemetry shard install/fold).  Registered at module
   initialisation, read-only afterwards. *)
let hooks : ((unit -> unit) * (unit -> unit)) list ref = ref []
let add_region_hooks ~enter ~leave = hooks := !hooks @ [ (enter, leave) ]
let run_enter_hooks () = List.iter (fun (e, _) -> e ()) !hooks
let run_leave_hooks () = List.iter (fun (_, l) -> l ()) (List.rev !hooks)

(* Every participant flags its domain while inside a region so nested
   submissions fail fast instead of deadlocking on the one batch slot
   or oversubscribing the machine. *)
let in_region : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let in_parallel_region () = !(Domain.DLS.get in_region)

let check_not_nested () =
  if in_parallel_region () then invalid_arg "Pool: nested parallel region"

(* Run this domain's share of [job]: claim chunks until none remain.
   The first failing task wins the race to record its exception; the
   remaining chunks still run so the index space is fully executed and
   the caller can safely reuse buffers afterwards. *)
let participate pool job =
  let claim () = Atomic.fetch_and_add job.next_chunk 1 in
  let c = ref (claim ()) in
  if !c < job.n_chunks then begin
    let executed = ref 0 in
    let flag = Domain.DLS.get in_region in
    flag := true;
    run_enter_hooks ();
    Fun.protect
      ~finally:(fun () ->
        run_leave_hooks ();
        flag := false;
        Mutex.lock pool.lock;
        job.unfinished <- job.unfinished - !executed;
        if job.unfinished = 0 then Condition.broadcast pool.finished;
        Mutex.unlock pool.lock)
      (fun () ->
        while !c < job.n_chunks do
          (try
             let lo = !c * job.chunk in
             let hi = min job.n_tasks (lo + job.chunk) - 1 in
             for i = lo to hi do
               job.run_task i
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Mutex.lock pool.lock;
             if job.failure = None then job.failure <- Some (e, bt);
             Mutex.unlock pool.lock);
          incr executed;
          c := claim ()
        done)
  end

let rec worker_loop pool seen_epoch =
  Mutex.lock pool.lock;
  let rec await () =
    if pool.stopped then None
    else
      match pool.current with
      | Some (e, job) when e <> seen_epoch -> Some (e, job)
      | _ ->
          Condition.wait pool.work pool.lock;
          await ()
  in
  match await () with
  | None -> Mutex.unlock pool.lock
  | Some (epoch, job) ->
      Mutex.unlock pool.lock;
      participate pool job;
      worker_loop pool epoch

let recommended_jobs () = Domain.recommended_domain_count ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      size = jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      epoch = 0;
      stopped = false;
      submitting = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let jobs pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  let ws = pool.workers in
  pool.stopped <- true;
  pool.workers <- [];
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join ws

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let default_chunk pool n = max 1 (n / (8 * pool.size))

let run_batch pool ~chunk ~n run_task =
  check_not_nested ();
  if n < 0 then invalid_arg "Pool: negative task count";
  if n > 0 then begin
    if pool.size = 1 then begin
      (* Serial fast path: inline, in index order, no hooks — exactly
         the pre-pool behaviour. *)
      let flag = Domain.DLS.get in_region in
      flag := true;
      Fun.protect
        ~finally:(fun () -> flag := false)
        (fun () ->
          for i = 0 to n - 1 do
            run_task i
          done)
    end
    else begin
      let chunk =
        match chunk with
        | None -> default_chunk pool n
        | Some c -> if c < 1 then invalid_arg "Pool: chunk must be >= 1" else c
      in
      let n_chunks = (n + chunk - 1) / chunk in
      let job =
        {
          run_task;
          n_tasks = n;
          chunk;
          n_chunks;
          next_chunk = Atomic.make 0;
          unfinished = n_chunks;
          failure = None;
        }
      in
      Mutex.lock pool.lock;
      if pool.stopped then begin
        Mutex.unlock pool.lock;
        invalid_arg "Pool: used after shutdown"
      end;
      if pool.submitting then begin
        Mutex.unlock pool.lock;
        invalid_arg "Pool: concurrent submission"
      end;
      pool.submitting <- true;
      pool.epoch <- pool.epoch + 1;
      pool.current <- Some (pool.epoch, job);
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      participate pool job;
      Mutex.lock pool.lock;
      while job.unfinished > 0 do
        Condition.wait pool.finished pool.lock
      done;
      pool.current <- None;
      pool.submitting <- false;
      Mutex.unlock pool.lock;
      match job.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let parallel_for pool ?chunk n f = run_batch pool ~chunk ~n f

let parallel_map pool ?chunk n f =
  if n < 0 then invalid_arg "Pool.parallel_map: negative task count";
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_batch pool ~chunk ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

(* Batch-of-thunks entry point for heterogeneous task sets (the serving
   engine's per-request speculative solves): each thunk owns its inputs,
   results come back in submission order. *)
let map_thunks pool ?chunk thunks =
  parallel_map pool ?chunk (Array.length thunks) (fun i -> thunks.(i) ())

let split_seeds rng n =
  if n < 0 then invalid_arg "Pool.split_seeds: negative count";
  if n = 0 then [||]
  else begin
    let a = Array.make n rng in
    for i = 0 to n - 1 do
      a.(i) <- Prng.split rng
    done;
    a
  end
