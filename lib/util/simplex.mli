(** Dense-tableau primal simplex — a from-scratch, dependency-free
    linear-programming solver.

    Built for the flow-based global optimizer ([Qnet_flow]): the LP
    relaxations it solves are small (hundreds of variables, tens of
    constraints), so a dense two-phase tableau with Bland's rule is the
    right tool — no sparse machinery, no external solver, and
    {e deterministic}: identical problems pivot identically on every
    run and at every [--jobs] level, because nothing here depends on
    iteration order of a hash table, wall time or randomness.

    Bland's smallest-index pivoting rule is used throughout, which
    guarantees termination on degenerate problems (no cycling) at the
    cost of a few extra pivots — a good trade at this scale. *)

(** Row sense of one linear constraint [a · x OP b]. *)
type sense = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;
      (** Sparse row: [(variable index, coefficient)], indices in
          [0 .. n_vars - 1].  Repeated indices are summed. *)
  sense : sense;
  rhs : float;
}

(** A linear program over [x >= 0]: maximize [objective · x] subject to
    the constraints. *)
type problem = {
  n_vars : int;
  objective : float array;  (** Length [n_vars]. *)
  constraints : constr list;
}

type solution = {
  objective_value : float;
  x : float array;  (** Length [n_vars]; the optimal vertex found. *)
  pivots : int;  (** Total pivot count across both phases. *)
}

type outcome =
  | Optimal of solution
  | Unbounded  (** The objective can grow without limit. *)
  | Infeasible  (** No [x >= 0] satisfies the constraints. *)

val maximize : problem -> outcome
(** Solve by two-phase primal simplex: phase 1 drives artificial
    variables out of the basis (detecting infeasibility), phase 2
    optimizes the true objective (detecting unboundedness).
    @raise Invalid_argument on a malformed problem (empty objective,
    wrong objective length, variable index out of range, or a non-finite
    coefficient/rhs). *)

val minimize : problem -> outcome
(** [maximize] on the negated objective, with the objective value
    reported in the original (minimization) sense. *)
