(** Minimal s-expression reader/printer.

    The sealed environment has no JSON/serialisation library, so the
    library carries its own tiny codec substrate: atoms and lists, with
    quoting for atoms containing whitespace or delimiters.  Used by
    {!Qnet_graph.Codec} to persist networks and solutions to disk and by
    the CLI's save/load options. *)

type t = Atom of string | List of t list

val to_string : t -> string
(** Render on one line; atoms are quoted iff they contain whitespace,
    parentheses, quotes or are empty.  Stack- and allocation-safe for
    wide documents: siblings are iterated, not mapped, so a 100k-row
    graph document renders with recursion bounded by nesting depth
    only. *)

val output : out_channel -> t -> unit
(** Stream the one-line rendering of {!to_string} straight to a
    channel without materialising the document as a string — the
    constant-memory writer checkpointing large snapshots relies on. *)

val to_string_hum : ?indent:int -> t -> string
(** Multi-line rendering with the given indent (default 2) — lists
    whose rendered width exceeds ~78 columns break across lines.  The
    fits-on-one-line test is width-measured with an early bail, not
    rendered, so the cost is linear in the output (same wide-document
    guarantee as {!to_string}). *)

val of_string : string -> (t, string) result
(** Parse one s-expression (leading/trailing whitespace allowed;
    trailing garbage is an error).  Supports double-quoted atoms with
    backslash escapes, and [;] line comments. *)

val of_string_exn : string -> t
(** @raise Failure with the parse error. *)

(** {1 Typed helpers} *)

val atom : string -> t
val list : t list -> t
val int : int -> t
val float : float -> t
(** Floats render with 17 significant digits, enough to round-trip any
    double exactly. *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result

val field : t -> string -> (t, string) result
(** [field (List [...]) name] finds the sub-list [(name v1 v2 …)] and
    returns [List [v1; …]] (unwrapped to the single element when there
    is exactly one).  Errors when absent or when [t] is an atom. *)
