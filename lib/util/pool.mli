(** Fixed-size domain pool for deterministic data parallelism.

    The pool runs index-space loops ([parallel_for]/[parallel_map])
    over a fixed set of worker domains with chunked dynamic scheduling:
    the task index space [0 .. n-1] is cut into contiguous chunks and
    idle participants claim the next unclaimed chunk.  The submitting
    domain participates too, so a pool of size [jobs] uses [jobs - 1]
    spawned domains.

    {b Determinism contract.}  Scheduling decides only {e which domain}
    runs a task, never what the task computes: task [i] must depend
    only on [i] (plus read-only captured state), and [parallel_map]
    stores result [i] at slot [i].  Derive per-task randomness up
    front with {!split_seeds} — the seeds depend only on the parent
    generator, not on [jobs] or chunking — and any run is bitwise
    reproducible at every pool size, including the serial [jobs = 1]
    fast path, which executes the tasks inline in index order without
    touching a single domain.

    Mutating shared state from tasks is a data race unless the state is
    domain-safe; telemetry is handled for you (see the region hooks and
    {!Qnet_telemetry.Metrics}' per-domain shards). *)

type t
(** A pool handle.  Not itself thread-safe: submit from one domain at a
    time (concurrent submissions raise [Invalid_argument]). *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The pool size given to {!create} (total participants, caller
    included). *)

val recommended_jobs : unit -> int
(** The runtime's recommended domain count for this host (an upper
    bound worth clamping user input to). *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent.  Using the pool
    afterwards raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f i] for every [i] in [0 .. n-1].
    [chunk] is the scheduling granularity (default: balances [8·jobs]
    chunks, at least 1); it never affects results, only load balance.
    If any task raises, one such exception is re-raised in the caller
    after all claimed tasks finish.
    @raise Invalid_argument when called from inside another parallel
    region (nested data parallelism is rejected rather than deadlocked
    or oversubscribed), or after {!shutdown}. *)

val parallel_map : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_map pool n f] is [[| f 0; …; f (n-1) |]], computed as a
    {!parallel_for}.  Result order is always index order, independent
    of scheduling. *)

val map_thunks : t -> ?chunk:int -> (unit -> 'a) array -> 'a array
(** [map_thunks pool thunks] runs every thunk as one parallel batch and
    returns their results in submission order.  The batch-of-thunks
    form of {!parallel_map}, for heterogeneous task sets where each
    task already owns its inputs (e.g. one speculative routing solve
    per queued request).  Same determinism contract and nested-region
    restriction as {!parallel_for}. *)

val in_parallel_region : unit -> bool
(** Whether the calling domain is currently executing inside a parallel
    region of {e any} pool.  Submitting from inside a region raises
    [Invalid_argument ("Pool: nested parallel region")]; callers that
    would rather degrade than die — the batched serving engine falls
    back to its serial path — query this first. *)

val split_seeds : Prng.t -> int -> Prng.t array
(** [split_seeds rng n] draws [n] independent SplitMix64 generators
    from [rng] sequentially (advancing it), for use as per-task seeds.
    Seed [i] depends only on [rng]'s state and [i] — never on the pool
    size — which is what makes randomized parallel loops bitwise
    reproducible at any [jobs] level. *)

val add_region_hooks : enter:(unit -> unit) -> leave:(unit -> unit) -> unit
(** Register callbacks run by {e every} participating domain (workers
    and the caller) around its share of a parallel region: [enter]
    before claiming the first chunk, [leave] after the last.  Used by
    {!Qnet_telemetry.Metrics} to install and then fold per-domain
    metric shards.  Hooks do not run on the serial [jobs = 1] path.
    Registration is not thread-safe; register at module-init time. *)
