type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix s }

(* Top 53 bits give a uniform float in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t bound =
  if not (bound > 0. && Float.is_finite bound) then
    invalid_arg "Prng.float: bound must be positive and finite";
  unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.(compare (sub (add (sub raw v) bound64) 1L) 0L) < 0 then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in_range t ~min ~max =
  if max < min then invalid_arg "Prng.int_in_range: max < min";
  min + int t (max - min + 1)

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

let bernoulli t p =
  if p >= 1. then true else if p <= 0. then false else unit_float t < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let module IS = Set.Make (Int) in
  let chosen = ref IS.empty in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if IS.mem r !chosen then chosen := IS.add j !chosen
    else chosen := IS.add r !chosen
  done;
  IS.elements !chosen

let exponential t lambda =
  if lambda <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  -.log (1. -. unit_float t) /. lambda

let bounded_pareto t ~alpha ~lo ~hi =
  if not (alpha > 0. && Float.is_finite alpha) then
    invalid_arg "Prng.bounded_pareto: alpha must be positive";
  if not (lo > 0. && Float.is_finite lo) then
    invalid_arg "Prng.bounded_pareto: lo must be positive";
  if not (hi >= lo && Float.is_finite hi) then
    invalid_arg "Prng.bounded_pareto: hi must be >= lo";
  if lo = hi then lo
  else begin
    (* Inverse CDF of the bounded (truncated) Pareto distribution:
       F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha) on [lo, hi].
       u = 0 maps to lo, u -> 1 approaches hi; the clamp absorbs the
       last-ulp excursions of the float powers. *)
    let u = unit_float t in
    let ratio = (lo /. hi) ** alpha in
    let x = lo /. ((1. -. (u *. (1. -. ratio))) ** (1. /. alpha)) in
    Float.min hi (Float.max lo x)
  end
