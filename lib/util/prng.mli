(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    topology, workload and Monte-Carlo run is reproducible from a single
    integer seed.  The generator is SplitMix64 (Steele, Lea & Flood,
    OOPSLA 2014): a 64-bit counter-based generator with strong avalanche
    behaviour, trivially splittable, and independent of the OCaml runtime's
    [Random] state. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal
    seeds produce equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator duplicating [t]'s current
    state; advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    The derived stream is statistically independent of the parent's
    subsequent output.  Used to give subsystems isolated randomness. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val int_in_range : t -> min:int -> max:int -> int
(** [int_in_range t ~min ~max] is uniform in [\[min, max\]] inclusive.
    @raise Invalid_argument if [max < min]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be
    positive and finite. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a Fisher–Yates shuffle to [a]. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of [a].
    @raise Invalid_argument on an empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] is [k] distinct integers drawn
    uniformly from [\[0, n)], in no particular order.
    @raise Invalid_argument if [k > n] or [k < 0]. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples an exponential variate with rate
    [lambda] via inverse transform. *)

val bounded_pareto : t -> alpha:float -> lo:float -> hi:float -> float
(** [bounded_pareto t ~alpha ~lo ~hi] samples the bounded (truncated)
    Pareto distribution on [\[lo, hi\]] with tail index [alpha] via
    inverse transform — the heavy-tailed variate overload experiments
    use for bursty inter-arrival gaps and group sizes.  Smaller [alpha]
    means heavier tail (more mass near [hi]).  Always within
    [\[lo, hi\]].  @raise Invalid_argument unless [alpha > 0],
    [lo > 0] and [hi >= lo]. *)
