(* Two-phase dense-tableau primal simplex with Bland's rule.

   Determinism note: every loop below walks arrays in index order and
   breaks ties by smallest index (Bland), so the pivot sequence — and
   therefore the exact floating-point result — is a pure function of
   the problem. *)

type sense = Le | Ge | Eq

type constr = { coeffs : (int * float) list; sense : sense; rhs : float }

type problem = {
  n_vars : int;
  objective : float array;
  constraints : constr list;
}

type solution = { objective_value : float; x : float array; pivots : int }

type outcome = Optimal of solution | Unbounded | Infeasible

let eps = 1e-9

let validate p =
  if p.n_vars <= 0 then invalid_arg "Simplex: n_vars must be positive";
  if Array.length p.objective <> p.n_vars then
    invalid_arg "Simplex: objective length differs from n_vars";
  Array.iter
    (fun c ->
      if not (Float.is_finite c) then
        invalid_arg "Simplex: non-finite objective coefficient")
    p.objective;
  List.iter
    (fun { coeffs; rhs; _ } ->
      if not (Float.is_finite rhs) then invalid_arg "Simplex: non-finite rhs";
      List.iter
        (fun (j, c) ->
          if j < 0 || j >= p.n_vars then
            invalid_arg "Simplex: variable index out of range";
          if not (Float.is_finite c) then
            invalid_arg "Simplex: non-finite constraint coefficient")
        coeffs)
    p.constraints

(* The tableau has one row per constraint plus an objective row kept
   separately; columns are [structural | slack/surplus | artificial |
   rhs].  Rows are normalised to rhs >= 0 before slacks are added, so
   phase 1 can start from the all-artificial basis. *)

type tableau = {
  rows : float array array;  (* m rows, each of length n_total + 1 *)
  basis : int array;  (* column currently basic in each row *)
  n_total : int;  (* columns excluding rhs *)
  mutable pivots : int;
}

let pivot_at t ~row ~col =
  let m = Array.length t.rows in
  let r = t.rows.(row) in
  let p = r.(col) in
  for j = 0 to t.n_total do
    r.(j) <- r.(j) /. p
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let ri = t.rows.(i) in
      let f = ri.(col) in
      if Float.abs f > 0.0 then
        for j = 0 to t.n_total do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done
    end
  done;
  t.basis.(row) <- col;
  t.pivots <- t.pivots + 1

(* Optimize [minimize cost . x] over the tableau with Bland's rule.
   [cost] has length n_total.  Returns [`Optimal] or [`Unbounded]; the
   reduced-cost row is recomputed from scratch each iteration — an
   O(m·n) cost that buys simplicity and keeps round-off from
   accumulating in a separate objective row. *)
let optimize t ~cost ~eligible =
  let m = Array.length t.rows in
  let reduced = Array.make t.n_total 0.0 in
  let rec loop () =
    (* reduced_j = cost_j - sum_i cost_{basis_i} * a_{ij} *)
    Array.blit cost 0 reduced 0 t.n_total;
    for i = 0 to m - 1 do
      let cb = cost.(t.basis.(i)) in
      if Float.abs cb > 0.0 then begin
        let ri = t.rows.(i) in
        for j = 0 to t.n_total - 1 do
          reduced.(j) <- reduced.(j) -. (cb *. ri.(j))
        done
      end
    done;
    (* Bland: entering column = smallest index with negative reduced
       cost among eligible columns. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.n_total - 1 do
         if eligible j && reduced.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test; ties broken by smallest basis index (Bland). *)
      let row = ref (-1) and best = ref infinity in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if a > eps then begin
          let ratio = t.rows.(i).(t.n_total) /. a in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps
                && (!row < 0 || t.basis.(i) < t.basis.(!row)))
          then begin
            best := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        pivot_at t ~row:!row ~col;
        loop ()
      end
    end
  in
  loop ()

let maximize p =
  validate p;
  let constraints = Array.of_list p.constraints in
  let m = Array.length constraints in
  if m = 0 then
    (* No constraints: any positive-objective variable is unbounded. *)
    if Array.exists (fun c -> c > eps) p.objective then Unbounded
    else Optimal { objective_value = 0.0; x = Array.make p.n_vars 0.0; pivots = 0 }
  else begin
    let n = p.n_vars in
    (* Normalise rows so rhs >= 0 (flipping sense as needed), then
       count slack columns: Le rows get +slack, Ge rows get -surplus,
       and Ge/Eq rows additionally get an artificial variable.  Le rows
       with the slack coefficient +1 start basic; all others start with
       their artificial basic. *)
    let normalised =
      Array.map
        (fun c ->
          if c.rhs < 0.0 then
            let flipped =
              match c.sense with Le -> Ge | Ge -> Le | Eq -> Eq
            in
            {
              coeffs = List.map (fun (j, v) -> (j, -.v)) c.coeffs;
              sense = flipped;
              rhs = -.c.rhs;
            }
          else c)
        constraints
    in
    let n_slack =
      Array.fold_left
        (fun acc c -> match c.sense with Le | Ge -> acc + 1 | Eq -> acc)
        0 normalised
    in
    let n_art =
      Array.fold_left
        (fun acc c -> match c.sense with Ge | Eq -> acc + 1 | Le -> acc)
        0 normalised
    in
    let n_total = n + n_slack + n_art in
    let rows = Array.init m (fun _ -> Array.make (n_total + 1) 0.0) in
    let basis = Array.make m (-1) in
    let slack_next = ref n and art_next = ref (n + n_slack) in
    Array.iteri
      (fun i c ->
        let r = rows.(i) in
        List.iter (fun (j, v) -> r.(j) <- r.(j) +. v) c.coeffs;
        r.(n_total) <- c.rhs;
        (match c.sense with
        | Le ->
            r.(!slack_next) <- 1.0;
            basis.(i) <- !slack_next;
            incr slack_next
        | Ge ->
            r.(!slack_next) <- -1.0;
            incr slack_next
        | Eq -> ());
        match c.sense with
        | Ge | Eq ->
            r.(!art_next) <- 1.0;
            basis.(i) <- !art_next;
            incr art_next
        | Le -> ())
      normalised;
    let t = { rows; basis; n_total; pivots = 0 } in
    let art_lo = n + n_slack in
    (* Phase 1: minimise the sum of artificial variables. *)
    (if n_art > 0 then begin
       let cost = Array.make n_total 0.0 in
       for j = art_lo to n_total - 1 do
         cost.(j) <- 1.0
       done;
       match optimize t ~cost ~eligible:(fun _ -> true) with
       | `Unbounded ->
           (* Cannot happen: the phase-1 objective is bounded below by
              0, but keep the branch total. *)
           assert false
       | `Optimal -> ()
     end);
    let phase1_value =
      let v = ref 0.0 in
      for i = 0 to m - 1 do
        if t.basis.(i) >= art_lo then v := !v +. t.rows.(i).(n_total)
      done;
      !v
    in
    if n_art > 0 && phase1_value > eps *. float_of_int (m + 1) then Infeasible
    else begin
      (* Drive any degenerate basic artificials out of the basis so
         phase 2 can freeze the artificial columns entirely. *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= art_lo then begin
          let col = ref (-1) in
          (try
             for j = 0 to art_lo - 1 do
               if Float.abs t.rows.(i).(j) > eps then begin
                 col := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !col >= 0 then pivot_at t ~row:i ~col:!col
          (* else: the row is all-zero over real columns — a redundant
             constraint; the artificial stays basic at value 0 and the
             eligibility filter below keeps it out of play. *)
        end
      done;
      (* Phase 2: minimise -objective over real + slack columns. *)
      let cost = Array.make n_total 0.0 in
      for j = 0 to n - 1 do
        cost.(j) <- -.p.objective.(j)
      done;
      match optimize t ~cost ~eligible:(fun j -> j < art_lo) with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let x = Array.make n 0.0 in
          for i = 0 to m - 1 do
            if t.basis.(i) < n then x.(t.basis.(i)) <- t.rows.(i).(n_total)
          done;
          let objective_value =
            let v = ref 0.0 in
            for j = 0 to n - 1 do
              v := !v +. (p.objective.(j) *. x.(j))
            done;
            !v
          in
          Optimal { objective_value; x; pivots = t.pivots }
    end
  end

let minimize p =
  let flipped = { p with objective = Array.map (fun c -> -.c) p.objective } in
  match maximize flipped with
  | Optimal s -> Optimal { s with objective_value = -.s.objective_value }
  | (Unbounded | Infeasible) as o -> o
