type t = Atom of string | List of t list

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then quote s else s

(* Printing is Buffer-based and iterates siblings with constant stack —
   a 100k-row graph document is a long flat list, so the old
   [String.concat (List.map ...)] rendering allocated the whole
   document once per nesting level and leaned on non-tail [List.map].
   Recursion depth here is the s-expression's nesting depth only
   (codec documents nest 3 deep, never with the row count). *)
let rec add_to_buffer buf = function
  | Atom s -> Buffer.add_string buf (atom_to_string s)
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          add_to_buffer buf item)
        items;
      Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  add_to_buffer buf t;
  Buffer.contents buf

(* Same traversal, straight into the (stdlib-buffered) channel: the
   document is never materialised as one string, so writing a
   100k-switch snapshot costs the channel buffer, not the document. *)
let rec output oc = function
  | Atom s -> output_string oc (atom_to_string s)
  | List items ->
      output_char oc '(';
      List.iteri
        (fun i item ->
          if i > 0 then output_char oc ' ';
          output oc item)
        items;
      output_char oc ')'

(* Flat rendered width, capped: bails as soon as it exceeds [limit], so
   the hum printer's fits-on-this-line test is O(line width) per node
   instead of rendering the node's whole subtree to a throwaway
   string. *)
let width_within t ~limit =
  let rec go acc t =
    if acc > limit then acc
    else
      match t with
      | Atom s -> acc + String.length (atom_to_string s)
      | List items ->
          let acc = acc + 2 in
          let rec items_go acc first = function
            | [] -> acc
            | item :: rest ->
                if acc > limit then acc
                else
                  items_go
                    (go (if first then acc else acc + 1) item)
                    false rest
          in
          items_go acc true items
  in
  go 0 t

let to_string_hum ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let rec render prefix t =
    if prefix + width_within t ~limit:(78 - prefix) <= 78 then
      add_to_buffer buf t
    else
      match t with
      | Atom s -> Buffer.add_string buf (atom_to_string s)
      | List [] -> Buffer.add_string buf "()"
      | List (head :: rest) ->
          Buffer.add_char buf '(';
          render (prefix + 1) head;
          List.iter
            (fun item ->
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make (prefix + indent) ' ');
              render (prefix + indent) item)
            rest;
          Buffer.add_char buf ')'
  in
  render 0 t;
  Buffer.contents buf

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        (* Line comment. *)
        while !pos < n && input.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let parse_quoted () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated quoted atom")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Parse_error "dangling escape"));
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    let finished () =
      match peek () with
      | None | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') ->
          true
      | Some _ -> false
    in
    while not (finished ()) do
      advance ()
    done;
    Atom (String.sub input start (!pos - start))
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          match peek () with
          | None -> raise (Parse_error "unterminated list")
          | Some ')' -> advance ()
          | Some _ ->
              items := parse_one () :: !items;
              items_loop ()
        in
        items_loop ();
        List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> parse_quoted ()
    | Some _ -> parse_bare ()
  in
  match
    let t = parse_one () in
    skip_ws ();
    if !pos <> n then raise (Parse_error "trailing garbage");
    t
  with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> failwith ("Sexp: " ^ msg)

let atom s = Atom s
let list items = List items
let int i = Atom (string_of_int i)
let float f = Atom (Printf.sprintf "%.17g" f)

let to_int = function
  | Atom s -> (
      match int_of_string_opt s with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "not an int: %S" s))
  | List _ -> Error "expected an int atom, got a list"

let to_float = function
  | Atom s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "not a float: %S" s))
  | List _ -> Error "expected a float atom, got a list"

let field t name =
  match t with
  | Atom _ -> Error "field lookup on an atom"
  | List items -> (
      let found =
        List.find_opt
          (function
            | List (Atom head :: _) -> head = name
            | Atom _ | List _ -> false)
          items
      in
      match found with
      | Some (List [ _; single ]) -> Ok single
      | Some (List (_ :: rest)) -> Ok (List rest)
      | Some _ | None -> Error (Printf.sprintf "missing field %S" name))
