type kind =
  | Waxman of Waxman.params
  | Watts_strogatz of Watts_strogatz.params
  | Volchenkov of Volchenkov.params
  | Grid
  | Continent of Continent.params

let waxman = Waxman Waxman.default_params
let watts_strogatz = Watts_strogatz Watts_strogatz.default_params
let volchenkov = Volchenkov Volchenkov.default_params
let grid = Grid
let continent = Continent Continent.default_params

let name = function
  | Waxman _ -> "waxman"
  | Watts_strogatz _ -> "watts-strogatz"
  | Volchenkov _ -> "volchenkov"
  | Grid -> "grid"
  | Continent _ -> "continent"

let all_paper_kinds =
  [
    ("Waxman", waxman);
    ("Watts-Strogatz", watts_strogatz);
    ("Volchenkov", volchenkov);
  ]

let of_name = function
  | "waxman" -> Some waxman
  | "watts-strogatz" | "watts_strogatz" | "ws" -> Some watts_strogatz
  | "volchenkov" | "power-law" | "powerlaw" -> Some volchenkov
  | "grid" | "lattice" -> Some grid
  | "continent" -> Some continent
  | _ -> None

let run kind rng spec =
  match kind with
  | Waxman params -> Waxman.generate ~params rng spec
  | Watts_strogatz params -> Watts_strogatz.generate ~params rng spec
  | Volchenkov params -> Volchenkov.generate ~params rng spec
  | Grid -> Grid.generate rng spec
  | Continent params -> Continent.generate ~params rng spec
