module Prng = Qnet_util.Prng
module Graph = Qnet_graph.Graph

type params = {
  regions : int;
  inter_fibers : int;
  boundary_band : int;
  alpha_w : float;
}

let default_params =
  { regions = 8; inter_fibers = 2; boundary_band = 48; alpha_w = 0.15 }

(* Even split of [total] across [regions]; the first [total mod regions]
   tiles get one extra. *)
let share total regions r = (total / regions) + if r < total mod regions then 1 else 0

(* Weighted Waxman edge sample inside one region of [k] vertices, local
   indices.  Mirrors Waxman.generate (Efraimidis–Spirakis keys, fixed
   edge budget from the average degree) but works on a vertex slice, so
   the quadratic pair scan stays bounded by the region size. *)
let region_edges rng ~alpha_w ~area ~avg_degree (points : Layout.point array) =
  let k = Array.length points in
  if k < 2 then []
  else begin
    let scale = alpha_w *. Layout.max_distance ~area in
    let m = k * (k - 1) / 2 in
    let keyed = Array.make m (0., 0) in
    let idx = ref 0 in
    for u = 0 to k - 1 do
      for v = u + 1 to k - 1 do
        let d = Layout.distance points.(u) points.(v) in
        let w = exp (-.d /. scale) in
        let u01 = Float.max 1e-300 (Prng.float rng 1.) in
        keyed.(!idx) <- (log u01 /. w, (u * k) + v);
        incr idx
      done
    done;
    Array.sort (fun (k1, _) (k2, _) -> Float.compare k2 k1) keyed;
    let wanted =
      int_of_float (Float.round (avg_degree *. float_of_int k /. 2.))
    in
    let budget = max (k - 1) (min wanted m) in
    let edges = ref [] in
    for i = budget - 1 downto 0 do
      let _, code = keyed.(i) in
      edges := (code / k, code mod k) :: !edges
    done;
    !edges
  end

(* Squared-up tile grid: regions laid out row-major in [cols] columns. *)
let grid_shape regions =
  let cols = int_of_float (ceil (sqrt (float_of_int regions))) in
  let rows = (regions + cols - 1) / cols in
  (cols, rows)

let generate_labeled ?(params = default_params) rng (spec : Spec.t) =
  Spec.validate spec;
  if params.regions < 1 then
    invalid_arg "Continent.generate: regions must be >= 1";
  if params.inter_fibers < 1 then
    invalid_arg "Continent.generate: inter_fibers must be >= 1";
  if params.boundary_band < 1 then
    invalid_arg "Continent.generate: boundary_band must be >= 1";
  if not (params.alpha_w > 0.) then
    invalid_arg "Continent.generate: alpha_w must be positive";
  if spec.Spec.n_switches < params.regions then
    invalid_arg "Continent.generate: need at least one switch per region";
  let regions = params.regions in
  let cols, _rows = grid_shape regions in
  let n = Spec.vertex_count spec in
  let b = Graph.Builder.create () in
  let labels = Array.make n 0 in
  let points = Array.make n { Layout.x = 0.; y = 0. } in
  let offsets = Array.make (regions + 1) 0 in
  (* Per-region switch lists (global ids) for the long-haul wiring. *)
  let region_switches = Array.make regions [] in
  for r = 0 to regions - 1 do
    let users_r = share spec.Spec.n_users regions r in
    let switches_r = share spec.Spec.n_switches regions r in
    let k = users_r + switches_r in
    let off = offsets.(r) in
    offsets.(r + 1) <- off + k;
    let ox = float_of_int (r mod cols) *. spec.Spec.area in
    let oy = float_of_int (r / cols) *. spec.Spec.area in
    let local = Layout.random_points rng ~area:spec.Spec.area k in
    let roles =
      Array.init k (fun i -> if i < users_r then Graph.User else Graph.Switch)
    in
    Prng.shuffle_in_place rng roles;
    for i = 0 to k - 1 do
      let p = { Layout.x = ox +. local.(i).Layout.x; y = oy +. local.(i).Layout.y } in
      let qubits =
        match roles.(i) with
        | Graph.User -> spec.Spec.user_qubits
        | Graph.Switch -> spec.Spec.qubits_per_switch
      in
      let id = Graph.Builder.add_vertex b ~kind:roles.(i) ~qubits ~x:p.x ~y:p.y in
      labels.(id) <- r;
      points.(id) <- p;
      if roles.(i) = Graph.Switch then
        region_switches.(r) <- id :: region_switches.(r)
    done;
    region_switches.(r) <- List.rev region_switches.(r);
    let add_local (u, v) =
      let gu = off + u and gv = off + v in
      if gu <> gv && not (Graph.Builder.has_edge b gu gv) then begin
        let d = Float.max 1e-9 (Layout.distance points.(gu) points.(gv)) in
        ignore (Graph.Builder.add_edge b gu gv d)
      end
    in
    let local_edges =
      region_edges rng ~alpha_w:params.alpha_w ~area:spec.Spec.area
        ~avg_degree:spec.Spec.avg_degree local
    in
    List.iter add_local local_edges;
    (* Local connectivity repair: the component merge stays O(k²), not
       O(n²), because it only ever sees this region's slice. *)
    List.iter add_local (Assemble.connect_components local local_edges)
  done;
  (* Long-haul fibers between adjacent tiles.  Candidates are the
     [boundary_band] switches nearest the shared boundary on each side;
     among the cross pairs we take the [inter_fibers] shortest,
     preferring endpoint-disjoint pairs so one switch outage cannot
     sever a whole border. *)
  let nearest_boundary ~dist_to_boundary switches =
    let arr = Array.of_list switches in
    let keyed =
      Array.map (fun v -> (dist_to_boundary points.(v), v)) arr
    in
    Array.sort compare keyed;
    let take = min params.boundary_band (Array.length keyed) in
    Array.init take (fun i -> snd keyed.(i))
  in
  let wire_tiles r1 r2 ~dist_to_boundary =
    let s1 = nearest_boundary ~dist_to_boundary region_switches.(r1) in
    let s2 = nearest_boundary ~dist_to_boundary region_switches.(r2) in
    let pairs = ref [] in
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            pairs := (Layout.distance points.(u) points.(v), u, v) :: !pairs)
          s2)
      s1;
    let sorted = List.sort compare !pairs in
    let used = Hashtbl.create 8 in
    let added = ref 0 in
    let add (d, u, v) =
      if !added < params.inter_fibers && not (Graph.Builder.has_edge b u v)
      then begin
        ignore (Graph.Builder.add_edge b u v (Float.max 1e-9 d));
        Hashtbl.replace used u ();
        Hashtbl.replace used v ();
        incr added
      end
    in
    (* First pass: endpoint-disjoint pairs only; second pass fills any
       shortfall (e.g. single-switch regions). *)
    List.iter
      (fun ((_, u, v) as p) ->
        if not (Hashtbl.mem used u || Hashtbl.mem used v) then add p)
      sorted;
    List.iter add sorted
  in
  for r = 0 to regions - 1 do
    let col = r mod cols in
    (* Right neighbour shares the vertical line x = (col+1)·area. *)
    if col + 1 < cols && r + 1 < regions && (r + 1) mod cols <> 0 then begin
      let bx = float_of_int (col + 1) *. spec.Spec.area in
      wire_tiles r (r + 1) ~dist_to_boundary:(fun (p : Layout.point) ->
          Float.abs (p.x -. bx))
    end;
    (* Down neighbour shares the horizontal line y = (row+1)·area. *)
    if r + cols < regions then begin
      let by = float_of_int ((r / cols) + 1) *. spec.Spec.area in
      wire_tiles r (r + cols) ~dist_to_boundary:(fun (p : Layout.point) ->
          Float.abs (p.y -. by))
    end
  done;
  (Graph.Builder.freeze b, labels)

let generate ?params rng spec = fst (generate_labeled ?params rng spec)
