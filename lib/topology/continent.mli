(** Continent-of-Waxmans — the internet-scale topology generator.

    The paper's Waxman instances top out at thousands of switches
    because every generator (and every flat solve) is quadratic in the
    vertex count.  Real continental networks are not one uniform cloud:
    they are dense metropolitan regions stitched together by a handful
    of long-haul fibers.  This generator reproduces that shape — [N]
    independent Waxman regions, each laid out in its own tile of a
    near-square grid, wired to each adjacent tile by a few short
    boundary-crossing fibers — and is the reference workload for the
    hierarchical router in [Qnet_hier]: the tile index of every vertex
    is returned as an explicit region map, so partitioning the result
    is exact and free.

    Generation cost is O(Σ k_r²) over per-region vertex counts k_r
    rather than O(n²) over the whole network, which is what makes
    100k-switch instances practical. *)

type params = {
  regions : int;  (** Number of Waxman tiles (≥ 1). *)
  inter_fibers : int;
      (** Long-haul fibers per adjacent tile pair (≥ 1).  Endpoints are
          switches; the pairs chosen are the shortest boundary-crossing
          ones, preferring disjoint endpoints for fault tolerance. *)
  boundary_band : int;
      (** How many switches nearest the shared boundary are considered
          on each side when picking inter-region fibers — bounds the
          cross-pair scan at O(band²) per tile pair. *)
  alpha_w : float;
      (** Waxman locality parameter for the intra-region wiring, as in
          {!Waxman.params}. *)
}

val default_params : params
(** [{ regions = 8; inter_fibers = 2; boundary_band = 48;
      alpha_w = 0.15 }]. *)

val generate_labeled :
  ?params:params ->
  Qnet_util.Prng.t ->
  Spec.t ->
  Qnet_graph.Graph.t * int array
(** [generate_labeled rng spec] builds the network and its region map
    ([labels.(v)] is the tile index of vertex [v], in
    [\[0, params.regions)]).  [spec.n_users] and [spec.n_switches] are
    totals, spread as evenly as possible across regions; [spec.area] is
    the side of {e one} tile so each region matches the paper's
    geometry.  Every region is internally connected and holds at least
    one switch, and adjacent tiles are always wired, so the whole
    network is connected.
    @raise Invalid_argument if the spec is invalid, [params.regions < 1],
    [params.inter_fibers < 1], [params.boundary_band < 1], or
    [spec.n_switches < params.regions] (each tile needs a switch to
    anchor its long-haul fibers). *)

val generate :
  ?params:params -> Qnet_util.Prng.t -> Spec.t -> Qnet_graph.Graph.t
(** {!generate_labeled} without the region map. *)
