(** Generator dispatch — one entry point over all topology families. *)

type kind =
  | Waxman of Waxman.params
  | Watts_strogatz of Watts_strogatz.params
  | Volchenkov of Volchenkov.params
  | Grid
  | Continent of Continent.params

val waxman : kind
(** [Waxman Waxman.default_params] — the paper's default generator. *)

val watts_strogatz : kind
val volchenkov : kind
val grid : kind

val continent : kind
(** [Continent Continent.default_params] — the internet-scale
    continent-of-Waxmans family (see {!Continent}); the reference
    workload for hierarchical routing. *)

val all_paper_kinds : (string * kind) list
(** The three generators of Fig. 5 with their display names. *)

val name : kind -> string
(** Display name ("waxman", "watts-strogatz", "volchenkov", "grid",
    "continent"). *)

val of_name : string -> kind option
(** Inverse of {!name} with default parameters; [None] on unknown
    names. *)

val run : kind -> Qnet_util.Prng.t -> Spec.t -> Qnet_graph.Graph.t
(** Generate a network of the requested family.  All families return
    connected graphs. *)
