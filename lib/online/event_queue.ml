(* Array-backed binary min-heap on (time, seq) keys.  seq is a
   monotonically increasing insertion counter, so equal-time events pop
   in push order. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  hint : int;
}

(* The backing array is allocated on first push (an empty array needs
   no dummy element); [capacity] sizes that first allocation. *)
let create ?(capacity = 16) () =
  { data = [||]; size = 0; next_seq = 0; hint = max capacity 1 }

let length q = q.size
let is_empty q = q.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity q entry =
  if q.size = Array.length q.data then begin
    let cap = max q.hint (2 * Array.length q.data) in
    let data = Array.make cap entry in
    Array.blit q.data 0 data 0 q.size;
    q.data <- data
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.data.(i) q.data.(parent) then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(parent);
      q.data.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && lt q.data.(l) q.data.(!smallest) then smallest := l;
  if r < q.size && lt q.data.(r) q.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.data.(i) in
    q.data.(i) <- q.data.(!smallest);
    q.data.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN timestamp";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  ensure_capacity q entry;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.data.(0).time

let peek_key q =
  if q.size = 0 then None else Some (q.data.(0).time, q.data.(0).seq)

(* Pop every event with [time <= upto], in (time, seq) order — the exact
   sequence a pop loop would have produced, packaged as one batch (with
   each event's insertion seq) so the engine can speculate over it and
   still commit in the serial total order. *)
let drain_until q ~upto =
  if Float.is_nan upto then invalid_arg "Event_queue.drain_until: NaN bound";
  let rec collect acc =
    match peek_key q with
    | Some (t, seq) when t <= upto -> (
        match pop q with
        | Some (_, payload) -> collect ((t, seq, payload) :: acc)
        | None -> List.rev acc)
    | _ -> List.rev acc
  in
  collect []

(* All events sharing the earliest timestamp, FIFO among them; the
   same-instant batch the slotless engine serves in one round. *)
let pop_batch q =
  match peek_time q with None -> [] | Some t -> drain_until q ~upto:t

let clear q = q.size <- 0

(* Snapshot support: dump every pending entry with its insertion seq,
   sorted in (time, seq) pop order so the dump is canonical, plus the
   queue's next_seq counter.  [of_entries] rebuilds a queue that pops
   the same sequence AND assigns the same seqs to future pushes — both
   are needed for a restored run to replay byte-identically. *)
let entries q =
  let live = Array.sub q.data 0 q.size in
  Array.sort (fun a b -> if lt a b then -1 else if lt b a then 1 else 0) live;
  Array.to_list (Array.map (fun e -> (e.time, e.seq, e.payload)) live)

let next_seq q = q.next_seq

let load q ~next_seq items =
  if next_seq < 0 then invalid_arg "Event_queue.load: negative next_seq";
  q.size <- 0;
  List.iter
    (fun (time, seq, payload) ->
      if Float.is_nan time then invalid_arg "Event_queue.load: NaN timestamp";
      if seq < 0 || seq >= next_seq then
        invalid_arg "Event_queue.load: seq out of range";
      let entry = { time; seq; payload } in
      ensure_capacity q entry;
      q.data.(q.size) <- entry;
      q.size <- q.size + 1;
      sift_up q (q.size - 1))
    items;
  q.next_seq <- next_seq

let of_entries ~next_seq items =
  let q = create ~capacity:(max 16 (List.length items)) () in
  load q ~next_seq items;
  q
