module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng

type arrivals =
  | Poisson of float
  | Batched of { period : float; size : int }
  | Pareto of { alpha : float; lo : float; hi : float }

type group_size =
  | Fixed of int
  | Uniform of int * int
  | Pareto_group of { alpha : float; lo : int; hi : int }

(* Long-horizon rate modulation, layered over any base arrival process
   by deterministic time-warping: each inter-arrival gap is divided by
   the instantaneous intensity, so a 2x intensity window packs arrivals
   twice as densely without touching the base process's draw sequence
   (the same PRNG stream yields the flat and the modulated workload). *)
type modulator =
  | Flat
  | Diurnal of { period : float; amplitude : float }
  | Flash of { at : float; width : float; boost : float }

type spec = {
  requests : int;
  arrivals : arrivals;
  group_size : group_size;
  duration : float * float;
  patience : float * float;
  modulation : modulator;
}

let check_range name (lo, hi) =
  if lo < 0. || hi < lo || not (Float.is_finite hi) then
    invalid_arg (Printf.sprintf "Workload.spec: bad %s range" name)

let spec ?(requests = 100) ?(arrivals = Poisson 0.5)
    ?(group_size = Uniform (2, 4)) ?(duration = (3., 8.))
    ?(patience = (0., 10.)) ?(modulation = Flat) () =
  if requests < 0 then invalid_arg "Workload.spec: negative request count";
  (match arrivals with
  | Poisson rate ->
      if rate <= 0. || not (Float.is_finite rate) then
        invalid_arg "Workload.spec: Poisson rate must be positive"
  | Batched { period; size } ->
      if period <= 0. || not (Float.is_finite period) then
        invalid_arg "Workload.spec: batch period must be positive";
      if size < 1 then invalid_arg "Workload.spec: batch size < 1"
  | Pareto { alpha; lo; hi } ->
      if alpha <= 0. || not (Float.is_finite alpha) then
        invalid_arg "Workload.spec: Pareto alpha must be positive";
      if lo <= 0. || not (Float.is_finite lo) then
        invalid_arg "Workload.spec: Pareto min gap must be positive";
      if hi < lo || not (Float.is_finite hi) then
        invalid_arg "Workload.spec: inverted Pareto gap range");
  (match group_size with
  | Fixed k -> if k < 2 then invalid_arg "Workload.spec: group size < 2"
  | Uniform (lo, hi) ->
      if lo < 2 then invalid_arg "Workload.spec: group size < 2";
      if hi < lo then invalid_arg "Workload.spec: inverted group range"
  | Pareto_group { alpha; lo; hi } ->
      if alpha <= 0. || not (Float.is_finite alpha) then
        invalid_arg "Workload.spec: Pareto alpha must be positive";
      if lo < 2 then invalid_arg "Workload.spec: group size < 2";
      if hi < lo then invalid_arg "Workload.spec: inverted group range");
  check_range "duration" duration;
  (if fst duration <= 0. then
     invalid_arg "Workload.spec: duration must be positive");
  check_range "patience" patience;
  (match modulation with
  | Flat -> ()
  | Diurnal { period; amplitude } ->
      if period <= 0. || not (Float.is_finite period) then
        invalid_arg "Workload.spec: diurnal period must be positive";
      if amplitude < 0. || amplitude >= 1. then
        invalid_arg "Workload.spec: diurnal amplitude must be in [0, 1)"
  | Flash { at; width; boost } ->
      if at < 0. || not (Float.is_finite at) then
        invalid_arg "Workload.spec: flash start must be non-negative";
      if width <= 0. || not (Float.is_finite width) then
        invalid_arg "Workload.spec: flash width must be positive";
      if boost <= 0. || not (Float.is_finite boost) then
        invalid_arg "Workload.spec: flash boost must be positive");
  { requests; arrivals; group_size; duration; patience; modulation }

let default = spec ()

type request = {
  id : int;
  users : int list;
  arrival : float;
  duration : float;
  deadline : float;
}

let uniform_float rng (lo, hi) =
  if hi <= lo then lo else lo +. Prng.float rng (hi -. lo)

let max_group = function
  | Fixed k -> k
  | Uniform (_, hi) -> hi
  | Pareto_group { hi; _ } -> hi

let sample_group rng spec =
  match spec.group_size with
  | Fixed k -> k
  | Uniform (lo, hi) -> Prng.int_in_range rng ~min:lo ~max:hi
  | Pareto_group { alpha; lo; hi } ->
      (* Sample the continuous bounded Pareto on [lo, hi + 1) and
         floor, so each integer k gets the probability mass of
         [k, k + 1) — keeping the heavy upper tail while never
         exceeding [hi]. *)
      let x =
        Prng.bounded_pareto rng ~alpha ~lo:(float_of_int lo)
          ~hi:(float_of_int (hi + 1))
      in
      min hi (int_of_float x)

let intensity m t =
  match m with
  | Flat -> 1.
  | Diurnal { period; amplitude } ->
      1. +. (amplitude *. sin (2. *. Float.pi *. t /. period))
  | Flash { at; width; boost } ->
      if t >= at && t < at +. width then boost else 1.

let generate rng g spec =
  let users = Array.of_list (Graph.users g) in
  let population = Array.length users in
  if max_group spec.group_size > population then
    invalid_arg "Workload.generate: group size exceeds user population";
  let arrival = ref 0. in
  (* Base-process clock, used only under modulation: Batched sets
     absolute times, so its gaps come from differencing this clock. *)
  let base = ref 0. in
  let requests =
    List.init spec.requests (fun id ->
        (match (spec.arrivals, spec.modulation) with
        (* The unmodulated paths keep their original float arithmetic
           exactly — existing seeded workloads must not shift by a
           single ulp. *)
        | Poisson rate, Flat ->
            if id > 0 then arrival := !arrival +. Prng.exponential rng rate
        | Batched { period; size }, Flat ->
            arrival := float_of_int (id / size) *. period
        | Pareto { alpha; lo; hi }, Flat ->
            if id > 0 then
              arrival := !arrival +. Prng.bounded_pareto rng ~alpha ~lo ~hi
        | _, m ->
            let gap =
              match spec.arrivals with
              | Poisson rate -> if id > 0 then Prng.exponential rng rate else 0.
              | Batched { period; size } ->
                  let abs = float_of_int (id / size) *. period in
                  let g = abs -. !base in
                  base := abs;
                  g
              | Pareto { alpha; lo; hi } ->
                  if id > 0 then Prng.bounded_pareto rng ~alpha ~lo ~hi else 0.
            in
            (* First-order warp: divide the gap by the intensity at the
               previous arrival.  Deterministic, order-preserving, and
               composes with any base process (the PRNG stream is
               untouched). *)
            arrival := !arrival +. (gap /. intensity m !arrival));
        let size = sample_group rng spec in
        let members =
          Prng.sample_without_replacement rng size population
          |> List.map (fun i -> users.(i))
          |> List.sort compare
        in
        let duration = uniform_float rng spec.duration in
        let patience = uniform_float rng spec.patience in
        {
          id;
          users = members;
          arrival = !arrival;
          duration;
          deadline = !arrival +. patience;
        })
  in
  List.sort (fun a b -> compare (a.arrival, a.id) (b.arrival, b.id)) requests

let pp_spec fmt spec =
  let arrivals =
    match spec.arrivals with
    | Poisson rate -> Printf.sprintf "poisson %g/t" rate
    | Batched { period; size } ->
        Printf.sprintf "batches of %d every %gt" size period
    | Pareto { alpha; lo; hi } ->
        Printf.sprintf "pareto gaps a=%g in %g-%gt" alpha lo hi
  in
  let groups =
    match spec.group_size with
    | Fixed k -> string_of_int k
    | Uniform (lo, hi) -> Printf.sprintf "%d-%d" lo hi
    | Pareto_group { alpha; lo; hi } ->
        Printf.sprintf "pareto a=%g in %d-%d" alpha lo hi
  in
  let modulation =
    match spec.modulation with
    | Flat -> ""
    | Diurnal { period; amplitude } ->
        Printf.sprintf ", diurnal period=%gt amp=%g" period amplitude
    | Flash { at; width; boost } ->
        Printf.sprintf ", flash at=%gt width=%gt x%g" at width boost
  in
  Format.fprintf fmt
    "%d requests, %s%s, groups %s, lease %g-%gt, patience %g-%gt" spec.requests
    arrivals modulation groups (fst spec.duration) (snd spec.duration)
    (fst spec.patience) (snd spec.patience)
