(** Live topology reconfiguration events.

    Operator-driven changes the engine applies mid-run, without
    draining traffic: switches joining/leaving service, links
    added/removed, and qubit re-provisioning.  The network graph itself
    is immutable, so membership changes are modelled as administrative
    availability transitions over {e existing} elements — a leave is
    operationally a drain (the element stops carrying new channels and
    in-flight leases crossing it are recovered), a join re-admits it.
    [Provision] moves the {!Qnet_core.Capacity} quota of a switch;
    shrinking below current usage forces the engine to recover enough
    leases through the switch to fit the new budget.

    Leaves/removals and joins/additions reuse the fault subsystem's
    {!Qnet_faults.Health} availability state, so recovery, routing
    exclusion, and cache invalidation behave identically whether an
    element went away by failure or by administration. *)

type change =
  | Switch_leave of int  (** Vertex id drains out of service. *)
  | Switch_join of int  (** Vertex id re-enters service. *)
  | Link_remove of int  (** Edge id taken down. *)
  | Link_add of int  (** Edge id brought (back) up. *)
  | Provision of { switch : int; qubits : int }
      (** Move the switch's qubit quota to [qubits]. *)

type event = { time : float; change : change }

val version : string
(** The document tag, [muerp-reconfig/1]. *)

val change_target : change -> [ `Switch of int | `Link of int ]

val validate :
  Qnet_graph.Graph.t -> event list -> (unit, string) result
(** Check every event against the graph: ids in range, switch targets
    are switches, provisioned qubits non-negative, times finite and
    non-negative.  The error message names the offending event (1-based)
    and reason. *)

val to_sexp : event list -> Qnet_util.Sexp.t
(** [(muerp-reconfig/1 (at T CHANGE) ...)]. *)

val of_sexp : Qnet_util.Sexp.t -> (event list, string) result
(** Inverse of {!to_sexp}; rejects unknown versions and malformed
    events with a human-readable reason. *)

val change_to_sexp : change -> Qnet_util.Sexp.t
val change_of_sexp : Qnet_util.Sexp.t -> (change, string) result
val pp_change : Format.formatter -> change -> unit
