(** The online traffic engine: serve a dynamic request workload over a
    shared quantum network.

    A deterministic discrete-event simulation.  Three event kinds drive
    it, ordered by a binary-heap {!Event_queue} (FIFO among equal
    timestamps):

    - {e arrival} — a {!Workload.request} appears and is routed by the
      configured {!Policy} against the live residual capacity;
    - {e retry} — a queued request re-attempts routing after an
      exponential-backoff delay (and expires at its deadline);
    - {e lease expiry} — a served request's lease ends; its switch
      qubits return to the pool ({!Qnet_sim.Scheduler.Lease.release},
      which asserts the capacity invariant), and the waiting queue is
      re-scanned in FIFO order (work conservation).

    Admission control bounds the waiting queue: an unroutable arrival is
    rejected outright ({!Reject}) or queued up to a maximum queue length
    ({!Queue}).  Every request ends in exactly one of three states —
    served, rejected (admission), or expired (deadline) — and the
    engine's SLA accounting (waiting times, service rates, utilization)
    is mirrored into the [online.engine.*] telemetry metrics. *)

type admission =
  | Reject  (** Drop unroutable arrivals immediately. *)
  | Queue of int
      (** Queue unroutable arrivals, rejecting new ones while the
          queue already holds this many requests ([>= 1]). *)

type config = {
  policy : Policy.t;
  admission : admission;
  retry_base : float;  (** First backoff delay after a failed attempt. *)
  retry_max : float;  (** Backoff growth cap (doubling saturates here). *)
}

val config :
  ?admission:admission ->
  ?retry_base:float ->
  ?retry_max:float ->
  Policy.t ->
  config
(** Defaults: [Queue 32], [retry_base = 0.5], [retry_max = 8.].
    @raise Invalid_argument on a non-positive backoff, [retry_max <
    retry_base] or [Queue n] with [n < 1]. *)

type resolution =
  | Served of {
      start : float;  (** Admission time ([>= arrival]). *)
      finish : float;  (** Lease expiry ([start + duration]). *)
      tree : Qnet_core.Ent_tree.t;  (** The entanglement tree served. *)
      rate : float;  (** Eq. (2) rate of the served tree. *)
      attempts : int;  (** Routing attempts including the final one. *)
    }
  | Rejected of { at : float; queue_full : bool }
      (** Turned away at arrival: unroutable under {!Reject}, or the
          bounded queue was full. *)
  | Expired of { at : float; attempts : int }
      (** Queued but not served before its deadline. *)

type outcome = { request : Workload.request; resolution : resolution }

type report = {
  arrived : int;
  served : int;
  rejected : int;
  expired : int;
  acceptance_ratio : float;  (** served / arrived; [0.] when empty. *)
  mean_wait : float;  (** Mean admission wait over served requests. *)
  p95_wait : float;
  mean_rate : float;  (** Mean Eq. (2) rate over served requests. *)
  throughput : float;  (** Served requests per time unit of makespan. *)
  makespan : float;  (** Last event time (final lease expiry). *)
  peak_qubits_in_use : int;
  peak_queue_depth : int;
  retries : int;  (** Total re-routing attempts beyond first tries. *)
  mean_utilization : float;
      (** Time-averaged leased fraction of all switch qubits over the
          makespan, in [\[0, 1\]]. *)
}

val run :
  ?config:config ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  requests:Workload.request list ->
  report * outcome list
(** Serve the workload to completion (default config: {!Policy.prim}
    with the {!config} defaults).  Outcomes are returned in request-id
    order.  Deterministic: identical inputs give identical reports and
    outcomes.  @raise Invalid_argument on malformed requests (non-user
    members, fewer than 2 users, duplicate ids, negative times, deadline
    before arrival). *)

val report_table : report -> Qnet_util.Table.t
(** Two-column (metric, value) rendering of the SLA summary — the
    reproducible artifact [muerp traffic] prints. *)
