(** The online traffic engine: serve a dynamic request workload over a
    shared quantum network.

    A deterministic discrete-event simulation.  Four event kinds drive
    it, ordered by a binary-heap {!Event_queue} (FIFO among equal
    timestamps):

    - {e arrival} — a {!Workload.request} appears and is routed by the
      configured {!Policy} against the live residual capacity;
    - {e retry} — a queued request re-attempts routing after an
      exponential-backoff delay (and expires at its deadline);
    - {e lease expiry} — a served request's lease ends; its switch
      qubits return to the pool ({!Qnet_sim.Scheduler.Lease.release},
      which asserts the capacity invariant), and the waiting queue is
      re-scanned in FIFO order (work conservation);
    - {e fault/repair} — an infrastructure element (fiber or switch)
      fails or comes back, per a pre-materialised
      {!Qnet_faults.Schedule}.  A failure that lands on an in-service
      lease triggers the configured {!recovery} policy; a repair
      re-scans the waiting queue, since connectivity just improved.

    Admission control bounds the waiting queue: an unroutable arrival is
    rejected outright ({!Reject}) or queued up to a maximum queue length
    ({!Queue}).  Every request ends in exactly one of five states —
    served, rejected (admission), shed (overload control), expired
    (deadline), or interrupted (fault with no recovery) — and the
    engine's SLA accounting is mirrored into the [online.engine.*],
    [online.faults.*] and [online.overload.*] telemetry metrics.

    {b Overload control.}  An optional {!Qnet_overload.Admission.t}
    bounds the run three ways: a token-bucket rate limit sheds
    over-rate arrivals before any routing, an in-flight lease cap
    blocks new serves while the network is saturated, and a queue-depth
    limit sheds the {e cheapest-to-refuse} waiter (largest group, then
    loosest deadline, then id) instead of letting the backlog grow.
    [budget] meters every policy invocation with a fresh
    {!Qnet_overload.Budget} so a pathological instance exhausts fuel
    (counted, treated as a failed attempt) instead of stalling the run;
    a {!Policy.tiered} policy plugs in through [tier_stats] so the
    report can attribute each served request to its degradation tier.

    {b Determinism.}  Events commit in one total order — (time, push
    seq), with lease ids assigned at commit — and the fault schedule is
    materialised before the run from the fault model's own seed.  With a
    pool, batches of same-window events are {e speculatively} solved in
    parallel against capacity snapshots, but commit re-validates every
    speculation against the live state in that same serial order
    (snapshot/solve/commit; see {!run}).  A fixed (workload, fault)
    seed therefore reproduces the report bit-for-bit at every [--jobs]
    level and every [slot] window.

    {b Self-checking.}  Every repaired or rerouted tree passes
    {!Qnet_core.Verify.check_exn} before re-entering service, every
    served tree is re-validated after the run, and the engine fails loud
    if any switch shows residual consumption once all leases are gone
    (a refund bug, not a routing outcome). *)

type admission =
  | Reject  (** Drop unroutable arrivals immediately. *)
  | Queue of int
      (** Queue unroutable arrivals, rejecting new ones while the
          queue already holds this many requests ([>= 1]). *)

(** What to do when a fault kills a channel of an in-service lease. *)
type recovery =
  | Abort  (** Release the lease, refund everything, end the request. *)
  | Repair
      (** Refund only the dead channels and re-route each between its
          own endpoints over the residual graph minus the failed
          elements ({!Qnet_core.Routing.best_channel} with exclusion);
          falls back to [Abort] when any replacement is infeasible. *)
  | Reroute
      (** Release the whole lease and route the user group from scratch
          with the policy (excluding failed elements); falls back to
          [Abort] when no tree is found. *)

val recovery_of_string : string -> (recovery, string) result
(** Parses ["abort" | "repair" | "reroute"] (the CLI vocabulary). *)

val recovery_to_string : recovery -> string

type config = {
  policy : Policy.t;
  admission : admission;
  retry_base : float;  (** First backoff delay after a failed attempt. *)
  retry_max : float;  (** Backoff growth cap (doubling saturates here). *)
  recovery : recovery;  (** Mid-lease fault response. *)
  overload : Qnet_overload.Admission.t;
      (** Admission limits; {!Qnet_overload.Admission.none} (the
          default) reproduces the unlimited engine exactly. *)
  budget : int option;
      (** Fuel per policy invocation; [None] (default) = unmetered.
          Ignored by {!Policy.tiered} policies, which own their own
          per-tier budgets. *)
  tier_stats : Policy.tier_stats option;
      (** The stats handle returned by {!Policy.tiered} when [policy]
          is a tiered stack — lets the engine label each served request
          with its serving tier and fold breaker/exhaustion counts into
          the report. *)
}

val config :
  ?admission:admission ->
  ?retry_base:float ->
  ?retry_max:float ->
  ?recovery:recovery ->
  ?overload:Qnet_overload.Admission.t ->
  ?budget:int ->
  ?tier_stats:Policy.tier_stats ->
  Policy.t ->
  config
(** Defaults: [Queue 32], [retry_base = 0.5], [retry_max = 8.],
    [recovery = Repair], no overload limits, no budget.
    @raise Invalid_argument on a non-positive backoff,
    [retry_max < retry_base], [Queue n] with [n < 1] or a non-positive
    budget. *)

type shed_reason =
  | Rate_limit  (** The token bucket was empty at arrival. *)
  | Queue_pressure
      (** The queue-depth limit was hit and this request ranked
          cheapest-to-refuse. *)

type resolution =
  | Served of {
      start : float;  (** Admission time ([>= arrival]). *)
      finish : float;  (** Lease expiry ([start + duration]). *)
      tree : Qnet_core.Ent_tree.t;
          (** The tree in service at completion — after any mid-lease
              repairs, so it can differ from the tree admitted. *)
      rate : float;  (** Eq. (2) rate of the final tree. *)
      attempts : int;  (** Routing attempts including the final one. *)
      recoveries : int;  (** Mid-lease fault recoveries survived. *)
      tier : int;
          (** Index of the {!Policy.tiered} tier that produced the tree
              in service ([0] = primary), or [-1] under an untiered
              policy. *)
    }
  | Rejected of { at : float; queue_full : bool }
      (** Turned away at arrival: unroutable under {!Reject}, or the
          bounded queue was full. *)
  | Shed of { at : float; reason : shed_reason }
      (** Refused by overload control — deliberately, before consuming
          solver time, unlike [Rejected] which records capacity
          pressure. *)
  | Expired of { at : float; attempts : int }
      (** Queued but not served before its deadline. *)
  | Interrupted of {
      start : float;  (** When the lease had started. *)
      at : float;  (** When the fault ended it. *)
      attempts : int;
      recoveries : int;  (** Recoveries survived before the fatal one. *)
    }
      (** In service when a fault killed a channel and recovery failed
          (or was configured off): the lease was refunded and the
          request ended unserved. *)

type outcome = { request : Workload.request; resolution : resolution }

(** One service-affecting fault hit, as seen by [?on_incident]. *)
type incident = {
  at : float;
  request_id : int;
  element : Qnet_faults.Schedule.element;  (** What failed. *)
  before : Qnet_core.Ent_tree.t;  (** Tree in service when it failed. *)
  after : Qnet_core.Ent_tree.t option;
      (** The repaired/rerouted tree, or [None] when aborted. *)
}

type report = {
  arrived : int;
  served : int;
  rejected : int;
  expired : int;
  acceptance_ratio : float;  (** served / arrived; [0.] when empty. *)
  mean_wait : float;  (** Mean admission wait over served requests. *)
  p95_wait : float;
  mean_rate : float;  (** Mean Eq. (2) rate over served requests. *)
  throughput : float;  (** Served requests per time unit of makespan. *)
  makespan : float;
      (** Last consequential event time; infrastructure churn after the
          final request resolution does not extend it. *)
  peak_qubits_in_use : int;
  peak_queue_depth : int;
  retries : int;  (** Total re-routing attempts beyond first tries. *)
  mean_utilization : float;
      (** Time-averaged leased fraction of all switch qubits over the
          makespan, in [\[0, 1\]]. *)
  faults_injected : int;
      (** Element down-transitions applied during the run. *)
  faults_repaired : int;  (** Element up-transitions applied. *)
  leases_interrupted : int;
      (** Fault hits on in-service leases (one lease can be hit more
          than once); equals [leases_recovered + leases_aborted]. *)
  leases_recovered : int;  (** Hits survived via repair/reroute. *)
  leases_aborted : int;  (** Hits that ended the request unserved. *)
  mean_time_to_repair : float;
      (** Observed mean element downtime over completed repairs. *)
  mean_lost_service : float;
      (** Mean unserved lease remainder over aborted leases. *)
  shed : int;  (** Requests refused by overload control. *)
  gate_rejected : int;
      (** Arrivals rejected by the provable-infeasibility oracle
          ({!Qnet_overload.Admission.t.infeasible}) before any routing
          work; a subset of [rejected]. *)
  degraded : int;
      (** Served requests whose final tree came from a fallback tier
          (tier index > 0). *)
  tier_served : (string * int) list;
      (** Served-request count per tier, in tier order; [\[\]] under an
          untiered policy. *)
  budget_exhaustions : int;
      (** Policy invocations aborted by fuel exhaustion (engine-level
          budget plus all tier budgets). *)
  breaker_opens : int;  (** Circuit-breaker trips across all tiers. *)
  p99_wait : float;
  reconfig_applied : int;
      (** Administrative topology changes that took effect (a join of an
          already-up element, or a leave of an already-down one, is a
          no-op and not counted). *)
  reconfig_recovered : int;
      (** Lease recoveries forced by administrative changes (drains and
          quota shrinks), a subset of [leases_recovered] +
          [leases_aborted] attribution. *)
}

(** {1 Checkpoint snapshots}

    A {!snapshot} is a pure-data image of the complete engine state at
    an event-loop boundary: pending events with their FIFO seqs, every
    request's progress, active leases as channel vertex-paths, settled
    outcomes, capacity quota/residual deltas, and the mutable state of
    the limiter, element health, tiered-policy breakers, policy-owned
    caches ({!Policy.state_hooks}) and telemetry registry.  Restoring
    it into {!run} (with the {e same} graph, params, workload, and
    flags) continues the run to a report byte-identical to the
    uninterrupted one, at every [--jobs] level and [slot] window.

    The record and its component types are concrete so the incremental-
    checkpoint delta codec ({!Qnet_resilience.Delta}) can diff
    consecutive snapshots field by field; treat them as read-only data
    — a hand-built snapshot that lies about capacity accounting is
    rejected at restore time, not silently trusted.

    Snapshots serialise to a versioned s-expression
    ([muerp-engine-snapshot/2]); {!snapshot_of_sexp} is a pure parse —
    graph/workload consistency is validated inside {!run} at restore
    time, which raises [Invalid_argument] with a reason naming the
    mismatch (wrong workload, wrong network, different flags, corrupt
    capacity accounting). *)

(** A pending event, with request/lease bodies referenced by id (a
    restore replays the original workload, so ids resolve against the
    [~requests] the caller passes back in). *)
type s_event =
  | SE_arrival of int
  | SE_retry of int
  | SE_expiry of int
  | SE_fault of Qnet_faults.Schedule.event
  | SE_reconf of Reconfig.event

(** A settled outcome, trees flattened to channel vertex-paths. *)
type s_resolution =
  | SR_served of {
      r_start : float;
      r_finish : float;
      r_paths : int list list;
      r_rate : float;
      r_attempts : int;
      r_recoveries : int;
      r_tier : int;
    }
  | SR_rejected of { r_at : float; r_queue_full : bool }
  | SR_shed of { r_at : float; r_reason : shed_reason }
  | SR_expired of { r_at : float; r_attempts : int }
  | SR_interrupted of {
      r_start : float;
      r_at : float;
      r_attempts : int;
      r_recoveries : int;
    }

type s_state = {
  ss_id : int;
  ss_attempts : int;
  ss_backoff : float;
  ss_waiting : bool;
  ss_resolved : bool;
}

type s_active = {
  sa_lid : int;
  sa_id : int;
  sa_paths : int list list;
  sa_started : float;
  sa_finish : float;
  sa_recoveries : int;
  sa_tier : int;
}

type s_tier = {
  st_serves : int array;
  st_exhaustions : int array;
  st_verify_rejects : int array;
  st_breaker_skips : int array;
  st_breakers : (Qnet_overload.Breaker.state * int * int * int) array;
  st_last : int;
}

type snapshot = {
  s_at : float;
  s_next_ckpt : float;
  s_events : (float * int * s_event) list;
  s_next_seq : int;
  s_states : s_state list;
  s_queue : int list;
  s_active : s_active list;
  s_outcomes : (int * s_resolution) list;  (** newest first, as accrued *)
  s_next_lease : int;
  s_quota : (int * int) list;
  s_residual : (int * int) list;
  s_shed_total : int;
  s_gate_rejected : int;
  s_budget_exhaustions : int;
  s_peak_qubits : int;
  s_peak_queue : int;
  s_retries : int;
  s_util_integral : float;
  s_last_time : float;
  s_makespan : float;
  s_faults_injected : int;
  s_faults_repaired : int;
  s_leases_interrupted : int;
  s_leases_recovered : int;
  s_leases_aborted : int;
  s_lost_service : float;
  s_reconfig_applied : int;
  s_reconfig_recovered : int;
  s_limiter : (float * float) option;
  s_health : Qnet_faults.Health.snapshot option;
  s_tier : s_tier option;
  s_policy : Qnet_util.Sexp.t option;
      (** Opaque policy-owned state from {!Policy.state_hooks.save};
          restore refuses a snapshot whose presence disagrees with the
          configured policy. *)
  s_metrics : (string * Qnet_telemetry.Metrics.dumped) list option;
}

val snapshot_at : snapshot -> float
(** The simulation instant the snapshot was cut at. *)

val snapshot_version : string
(** The serialisation tag, [muerp-engine-snapshot/2]. *)

val snapshot_to_sexp : snapshot -> Qnet_util.Sexp.t

val snapshot_of_sexp : Qnet_util.Sexp.t -> (snapshot, string) result
(** Structural parse; rejects unknown versions and malformed documents
    with a human-readable reason. *)

(** {2 Element codecs}

    The per-element serialisers behind {!snapshot_to_sexp}, exported so
    the incremental-checkpoint delta codec renders exactly the same
    bytes for the entries it carries. *)

val s_event_to_sexp : s_event -> Qnet_util.Sexp.t
val s_event_of_sexp : Qnet_util.Sexp.t -> (s_event, string) result
val s_resolution_to_sexp : s_resolution -> Qnet_util.Sexp.t
val s_resolution_of_sexp : Qnet_util.Sexp.t -> (s_resolution, string) result

val dumped_to_sexp :
  string * Qnet_telemetry.Metrics.dumped -> Qnet_util.Sexp.t

val dumped_of_sexp :
  Qnet_util.Sexp.t -> (string * Qnet_telemetry.Metrics.dumped, string) result

val health_to_sexp : Qnet_faults.Health.snapshot -> Qnet_util.Sexp.t

val health_of_sexp :
  Qnet_util.Sexp.t -> (Qnet_faults.Health.snapshot, string) result

val tier_to_sexp : s_tier -> Qnet_util.Sexp.t
val tier_of_sexp : Qnet_util.Sexp.t -> (s_tier, string) result

(** {1 Committed transitions}

    The write-ahead journal's vocabulary: one entry per durable engine
    mutation, emitted through [?on_transition] at the exact commit
    point, in commit order.  Because the engine is deterministic, a run
    restored from a checkpoint cut re-emits the same stream from that
    cut onward — which is what lets a journal tail be verified by
    re-execution instead of trusted. *)
type transition =
  | T_admit of { at : float; lid : int; request : int }
      (** A lease was committed ([lid] assigned) for [request]. *)
  | T_release of { at : float; lid : int }
      (** The lease expired normally; its qubits were refunded. *)
  | T_recover of { at : float; lid : int }
      (** A fault or admin change hit the lease and recovery kept it in
          service (repaired or rerouted). *)
  | T_abort of { at : float; lid : int }
      (** A hit ended the lease unserved (refund + interruption). *)
  | T_fault of { at : float; link : bool; element : int; up : bool }
      (** An element availability transition was applied ([link]
          selects edge vs switch id space). *)
  | T_reconfig of { at : float; link : bool; element : int; up : bool }
      (** Same, but operator-driven (leave/join/remove/add). *)
  | T_provision of { at : float; switch : int; qubits : int }
      (** A quota re-provision took effect. *)

val run :
  ?config:config ->
  ?faults:Qnet_faults.Model.t ->
  ?fault_schedule:Qnet_faults.Schedule.event list ->
  ?on_incident:(incident -> unit) ->
  ?on_health:(Qnet_faults.Health.t -> unit) ->
  ?on_transition:(transition -> unit) ->
  ?pool:Qnet_util.Pool.t ->
  ?slot:float ->
  ?checkpoint:float * (float -> snapshot -> unit) ->
  ?reconfig:Reconfig.event list ->
  ?restore_from:snapshot ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  requests:Workload.request list ->
  report * outcome list
(** Serve the workload to completion (default config: {!Policy.prim}
    with the {!config} defaults).  [faults] enables fault injection: the
    schedule is generated over the horizon no request can outlive.
    [fault_schedule] replays an explicit (arbitrary, even adversarial)
    transition list instead — it is sorted with
    {!Qnet_faults.Schedule.compare_event} and overrides [faults]; the
    chaos tests use it to pin failures to exact instants.
    [on_incident] observes every service-affecting hit as it happens
    (chaos tests reconstruct per-lease tree timelines from it).
    [on_health] receives the live {!Qnet_faults.Health.t} once, before
    the first event — the hook callers use to register
    {!Qnet_faults.Health.on_transition} observers (e.g. eager cache
    invalidation in the hierarchical router); it is not called when no
    fault source is configured.  [on_transition] observes every
    committed {!transition} in commit order — the write-ahead journal's
    feed; it fires only for mutations the run itself commits (a
    restored run starts emitting at its cut, exactly where the original
    run's journal left off).

    [pool] enables the {e batched concurrent serving} path: at each
    round the engine drains the batch of same-timestamp events ([slot]
    widens the window to [\[t, t + slot\]], default [0.]), solves every
    routable request of the batch concurrently against zero-copy
    {!Qnet_core.Capacity.overlay} snapshots of the residual state, then
    commits in the exact serial event order, re-validating each
    speculative tree against the live residual
    ({!Qnet_sim.Scheduler.Lease.commit}) and re-solving live whenever
    the state moved since the snapshot (any capacity mutation or fault
    transition).  Speculation requires the policy to declare
    {!Policy.t.concurrent_safe}; otherwise — and when called from
    inside a parallel region — the pool is used only for the read-only
    final verification pass.  Either way the resolution stream, lease
    ids, report and [online.*] counters are byte-identical to the
    serial engine at every pool size and every [slot]; parallelism and
    batching are pure go-faster knobs.  Outcomes are returned in
    request-id order.  Deterministic: identical inputs give identical
    reports and outcomes at every pool size.

    [checkpoint = (every, sink)] cuts a {!snapshot} at each multiple of
    [every] (simulation time), calling [sink instant snapshot] at the
    first event-loop boundary at or past the instant — so a snapshot
    reflects exactly the events before it.  Instants after the last
    event never fire (the run is already complete).  [restore_from]
    resumes a run from a snapshot instead of a fresh start: pass the
    {e same} graph, params, [~requests] and flags as the original run;
    the continuation's report, outcomes and [online.*] counters are
    byte-identical to the uninterrupted run's.  A restored run with
    [checkpoint] resumes the original cadence.  Both require a policy
    with {!Policy.t.checkpoint_safe} (memoising wrappers keep hidden
    cache state a snapshot cannot carry).

    [reconfig] applies live topology changes mid-run without draining
    traffic: leaves/removals recover affected leases through the
    configured {!recovery} policy and exclude the element from routing
    (exactly as a fault would, including
    {!Qnet_faults.Health.on_transition} observer notification);
    joins/additions re-admit elements and re-scan the waiting queue; a
    {!Reconfig.Provision} moves a switch's {!Qnet_core.Capacity} quota,
    recovering crossing leases oldest-first when shrunk below current
    usage.  At a shared instant, arrivals fire before faults, and
    faults before reconfigurations.
    @raise Invalid_argument on malformed requests (non-user members,
    fewer than 2 users, duplicate ids, negative times, deadline before
    arrival), a negative/non-finite [slot], a non-positive checkpoint
    interval, an invalid [reconfig] list ({!Reconfig.validate}), a
    checkpoint/restore request under a non-[checkpoint_safe] policy, or
    a [restore_from] snapshot inconsistent with this run's graph,
    workload or flags.
    @raise Qnet_core.Verify.Violations if a repaired or served tree
    fails independent re-validation (a routing bug, never a workload
    property). *)

val report_table : report -> Qnet_util.Table.t
(** Two-column (metric, value) rendering of the SLA summary — the
    reproducible artifact [muerp traffic] prints.  Overload rows (shed,
    degraded, budget exhaustions, breaker trips, p99 wait, per-tier
    serve counts) are appended only when overload control actually did
    something, so limits-disabled runs print the historical table
    byte-for-byte; reconfiguration rows likewise only when an admin
    change was applied. *)
