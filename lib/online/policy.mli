(** Pluggable per-request routing policies for the traffic engine.

    A policy answers one question: given the live residual capacity,
    find an entanglement tree for this user group — and, on success,
    consume the tree's switch qubits from that capacity (the engine
    releases them when the lease expires, via
    {!Qnet_sim.Scheduler.Lease}).  The contract makes oversubscription
    impossible by construction: a policy may only return a tree whose
    qubits it successfully consumed.

    Three families are provided:

    - {!prim}: the native per-request kernel,
      {!Qnet_core.Multi_group.prim_for_users} (Algorithm 4 generalised
      to a user subset under external capacity);
    - adapters ({!of_algorithm}, {!eqcast}) that run any whole-network
      solver on a {e residual view} of the network — a copy where the
      request's users are the only user vertices and every switch's
      budget is its current residual — then re-validate and consume the
      resulting tree against the true capacity state;
    - {!cached}, a memoising wrapper: trees are remembered per user
      group and replayed without re-running the solver while they still
      fit the residual capacity, invalidating lazily when they no
      longer do. *)

(** Hooks a stateful-but-checkpoint-safe policy exposes so the engine
    can carry its hidden state across a snapshot/restore cycle:
    [save] captures the state as a pure sexp document (stored in the
    engine snapshot's policy-state section), [load] rebuilds it against
    the restoring run's graph and params — for {!cached}, every
    memoised tree is reconstructed channel-by-channel, the same
    bit-identical rebuild active leases get. *)
type state_hooks = {
  save : unit -> Qnet_util.Sexp.t;
  load :
    Qnet_graph.Graph.t ->
    Qnet_core.Params.t ->
    Qnet_util.Sexp.t ->
    (unit, string) result;
}

type t = {
  name : string;
  concurrent_safe : bool;
      (** Whether [route] is safe to call from several domains at once
          (against {e distinct} capacity states, e.g.
          {!Qnet_core.Capacity.overlay} views) and is a deterministic
          function of its arguments alone.  True for the stateless
          built-ins and the flow policy (its rounding seed is a pure
          function of the user group); false for anything holding
          shared mutable state between calls ({!cached}'s memo table,
          {!tiered}'s breakers, the hierarchical oracle's segment
          cache).  The batched engine only speculates concurrently on
          policies that declare this; others keep the serial path
          (results are byte-identical either way — this flag only
          gates the optimisation). *)
  checkpoint_safe : bool;
      (** Whether a run under this policy can be checkpointed and
          restored byte-identically.  True for the stateless built-ins,
          the flow policy, {!tiered} (its breakers and stats ride in
          the engine snapshot), and — via {!state_hooks} — {!cached}
          and the hierarchical policy, whose memo/segment caches are
          serialised into the snapshot's policy-state section and
          rebuilt exactly on restore (a cold cache would diverge: the
          uninterrupted run replays trees computed under earlier
          residual states).  The CLI refuses
          [--checkpoint-every]/[--restore] under an unsafe policy
          rather than silently produce diverging reports. *)
  state : state_hooks option;
      (** Present exactly when the policy keeps restorable hidden
          state; the engine calls [save] at each checkpoint cut and
          [load] on restore, and refuses a snapshot whose policy-state
          section disagrees with the configured policy. *)
  route :
    exclude:Qnet_core.Routing.exclusion ->
    budget:Qnet_overload.Budget.t option ->
    Qnet_graph.Graph.t ->
    Qnet_core.Params.t ->
    capacity:Qnet_core.Capacity.t ->
    users:int list ->
    Qnet_core.Ent_tree.t option;
      (** [None] = no feasible tree right now (capacity state
          untouched).  [Some tree] ⇒ the tree's qubits have been
          consumed from [capacity], and no channel of the tree crosses
          an element ruled out by [exclude] (the fault-awareness
          contract: a policy may never put a dead switch or fiber back
          in service).  [budget], when given, meters the underlying
          Dijkstra expansions; a policy must propagate
          {!Qnet_overload.Budget.Exhausted} with the capacity state
          rolled back — fuel exhaustion, like [None], never leaks
          consumption. *)
}

val route :
  t ->
  ?exclude:Qnet_core.Routing.exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  capacity:Qnet_core.Capacity.t ->
  users:int list ->
  Qnet_core.Ent_tree.t option
(** [route p] is [p.route] with [exclude] defaulting to
    {!Qnet_core.Routing.no_exclusion} and no fuel budget — the
    convenient call form for fault-free, unmetered contexts. *)

val try_consume : Qnet_core.Capacity.t -> Qnet_core.Ent_tree.t -> bool
(** Atomically consume the tree's aggregate switch-qubit demand if every
    switch can afford it; [false] leaves the capacity state unchanged.
    The admission primitive the adapters and cache replay use. *)

val prim : t
(** ["prim"] — Algorithm 4 on the live residual state; consumes
    directly. *)

val of_algorithm : Qnet_core.Muerp.algorithm -> t
(** Run one of the paper's solvers on the residual view.  Algorithm 2 is
    capacity-oblivious, so its trees can fail the final admission check
    (then the request is simply not served this attempt) — the engine
    still never oversubscribes. *)

val eqcast : t
(** ["eqcast"] — the E-Q-CAST chaining baseline on the residual view. *)

val cached : t -> t
(** [cached p] memoises [p]'s trees per (sorted) user group.  A cache
    hit replays the stored tree if it survives the current exclusion
    (no channel through a failed element) and {!try_consume} accepts it
    under the current residual capacity; otherwise the entry is
    invalidated and [p] re-routes.  Checkpoint-safe (when [p] is): the
    memo table is carried across snapshot/restore through
    {!state_hooks}, serialised as (users, vertex-paths) entries.
    Counters: [online.policy.cache.{hits,misses,invalidations}]. *)

val all : unit -> (string * t) list
(** Fresh instances of every selectable policy, cached variants included
    (["cached-prim"], …), keyed by {!of_name}-compatible names.  A new
    list per call so no memo table is shared between runs. *)

val of_name : string -> t option
(** ["prim"], ["alg2"], ["alg3"], ["eqcast"], any {!register}ed name,
    or any of them prefixed with ["cached-"] (a fresh cache per
    call). *)

val register : string -> (unit -> t) -> unit
(** [register name mk] adds an externally provided policy constructor
    to the selectable roster: {!of_name} and {!all} instantiate it on
    demand (a fresh instance per call, like the built-ins), and
    ["cached-" ^ name] works too.  This is how subsystems that sit
    above this library — the flow optimizer, hierarchical routing —
    become CLI-selectable without a dependency cycle.  Re-registering a
    name replaces the previous constructor.
    @raise Invalid_argument on an empty or built-in name. *)

(** {2 Tiered graceful degradation}

    Under overload a single expensive policy either answers slowly or
    not at all.  {!tiered} stacks policies from expensive to cheap:
    each tier runs under a fresh fuel budget and behind its own
    {!Qnet_overload.Breaker}; budget exhaustion or a structural
    {!Qnet_core.Verify} failure trips the tier's breaker and falls
    through to the next tier, and the final tier (typically {!prim})
    runs unmetered so the stack degrades to cheap routing before it
    ever rejects. *)

type tier_stats = {
  names : string array;  (** Tier policy names, outermost first. *)
  serves : int array;  (** Requests served by each tier. *)
  exhaustions : int array;  (** Budget exhaustions per tier. *)
  verify_rejects : int array;
      (** Trees discarded by the structural verification gate. *)
  breaker_skips : int array;
      (** Attempts skipped because the tier's breaker was open. *)
  breakers : Qnet_overload.Breaker.t array;
  mutable last : int;
      (** Index of the tier that produced the most recent successful
          route, [-1] if the last call served nothing.  The engine
          samples this immediately after each [route] call to label the
          request with its serving tier. *)
}

val tiered :
  ?fuel:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:int ->
  t list ->
  t * tier_stats
(** [tiered policies] composes the given tiers (ordered expensive to
    cheap) into one policy plus its live stats.  Every tier except the
    last gets a fresh [fuel]-unit budget per attempt (default 4096);
    the last tier runs unmetered.  [breaker_threshold] /
    [breaker_cooldown] forward to {!Qnet_overload.Breaker.create}.  A
    tier returning [None] (honest infeasibility) falls through without
    penalising its breaker.  Counters:
    [online.overload.{budget_exhausted,verify_rejected,breaker_skips,breaker_opens}].
    @raise Invalid_argument on an empty tier list or non-positive
    fuel. *)
