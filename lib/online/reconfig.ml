module Graph = Qnet_graph.Graph
module Sexp = Qnet_util.Sexp

(* Operator-driven topology changes applied mid-run.  The engine's
   graph is immutable, so membership changes are modelled as
   administrative availability transitions over existing elements
   (exactly how a drained switch behaves operationally), and capacity
   changes move the Capacity quota.  A "join" therefore re-admits an
   element that previously left (or was provisioned in the topology but
   started administratively down). *)

type change =
  | Switch_leave of int
  | Switch_join of int
  | Link_remove of int
  | Link_add of int
  | Provision of { switch : int; qubits : int }

type event = { time : float; change : change }

let version = "muerp-reconfig/1"

let change_target = function
  | Switch_leave v | Switch_join v -> `Switch v
  | Link_remove e | Link_add e -> `Link e
  | Provision { switch; _ } -> `Switch switch

let validate g events =
  let problem i msg =
    Error (Printf.sprintf "reconfig event %d: %s" (i + 1) msg)
  in
  let rec check i = function
    | [] -> Ok ()
    | { time; change } :: rest ->
        if not (Float.is_finite time) || time < 0. then
          problem i "time must be a finite non-negative number"
        else begin
          match change_target change with
          | `Switch v ->
              if v < 0 || v >= Graph.vertex_count g then
                problem i (Printf.sprintf "switch %d out of range" v)
              else if not (Graph.is_switch g v) then
                problem i (Printf.sprintf "vertex %d is a user, not a switch" v)
              else begin
                match change with
                | Provision { qubits; _ } when qubits < 0 ->
                    problem i "provisioned qubits must be non-negative"
                | _ -> check (i + 1) rest
              end
          | `Link e ->
              if e < 0 || e >= Graph.edge_count g then
                problem i (Printf.sprintf "link %d out of range" e)
              else check (i + 1) rest
        end
  in
  check 0 events

(* ------------------------------------------------------------------ *)
(* Sexp codec: [(muerp-reconfig/1 (at T CHANGE) ...)] with CHANGE one
   of (switch-leave V) (switch-join V) (link-remove E) (link-add E)
   (provision V Q). *)

let change_to_sexp = function
  | Switch_leave v -> Sexp.list [ Sexp.atom "switch-leave"; Sexp.int v ]
  | Switch_join v -> Sexp.list [ Sexp.atom "switch-join"; Sexp.int v ]
  | Link_remove e -> Sexp.list [ Sexp.atom "link-remove"; Sexp.int e ]
  | Link_add e -> Sexp.list [ Sexp.atom "link-add"; Sexp.int e ]
  | Provision { switch; qubits } ->
      Sexp.list [ Sexp.atom "provision"; Sexp.int switch; Sexp.int qubits ]

let event_to_sexp { time; change } =
  Sexp.list [ Sexp.atom "at"; Sexp.float time; change_to_sexp change ]

let to_sexp events =
  Sexp.list (Sexp.atom version :: List.map event_to_sexp events)

let ( let* ) = Result.bind

let change_of_sexp s =
  match s with
  | Sexp.List [ Sexp.Atom tag; a ] -> (
      let* v = Sexp.to_int a in
      match tag with
      | "switch-leave" -> Ok (Switch_leave v)
      | "switch-join" -> Ok (Switch_join v)
      | "link-remove" -> Ok (Link_remove v)
      | "link-add" -> Ok (Link_add v)
      | _ -> Error ("unknown reconfig change: " ^ tag))
  | Sexp.List [ Sexp.Atom "provision"; a; b ] ->
      let* switch = Sexp.to_int a in
      let* qubits = Sexp.to_int b in
      Ok (Provision { switch; qubits })
  | _ -> Error "malformed reconfig change"

let event_of_sexp s =
  match s with
  | Sexp.List [ Sexp.Atom "at"; t; c ] ->
      let* time = Sexp.to_float t in
      let* change = change_of_sexp c in
      Ok { time; change }
  | _ -> Error "malformed reconfig event (expected (at TIME CHANGE))"

let of_sexp s =
  match s with
  | Sexp.List (Sexp.Atom v :: events) when v = version ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
            let* ev = event_of_sexp e in
            go (ev :: acc) rest
      in
      go [] events
  | Sexp.List (Sexp.Atom v :: _) when String.length v > 14
                                      && String.sub v 0 14 = "muerp-reconfig"
    ->
      Error
        (Printf.sprintf "unsupported reconfig version %s (this build reads %s)"
           v version)
  | _ ->
      Error ("malformed reconfig document (expected (" ^ version ^ " ...))")

let pp_change ppf = function
  | Switch_leave v -> Format.fprintf ppf "switch %d leaves" v
  | Switch_join v -> Format.fprintf ppf "switch %d joins" v
  | Link_remove e -> Format.fprintf ppf "link %d removed" e
  | Link_add e -> Format.fprintf ppf "link %d added" e
  | Provision { switch; qubits } ->
      Format.fprintf ppf "switch %d re-provisioned to %d qubits" switch qubits
