(** Multi-user entanglement-request workload generation.

    Where {!Qnet_sim.Scheduler.random_requests} produces a slotted batch
    for the offline admission controller, this module generates the
    continuous-time workloads the online traffic engine serves: requests
    arrive via a Poisson process (or in periodic batches, the regime of
    Shi & Qian's time-slotted protocol model), name a user group drawn
    from a configurable size distribution, hold their lease for a random
    service duration, and abandon the system if not served before a
    per-request deadline.

    All randomness flows through {!Qnet_util.Prng} — a workload is a
    pure function of [(seed, graph, spec)]. *)

type arrivals =
  | Poisson of float
      (** Memoryless arrivals at the given mean rate (requests per time
          unit); inter-arrival gaps are exponential. *)
  | Batched of { period : float; size : int }
      (** [size] simultaneous requests every [period] time units —
          synchronised demand spikes, the adversarial case for
          admission control. *)
  | Pareto of { alpha : float; lo : float; hi : float }
      (** Heavy-tailed inter-arrival gaps from the bounded Pareto
          distribution on [\[lo, hi\]] with tail index [alpha] (see
          {!Qnet_util.Prng.bounded_pareto}): most gaps hug [lo]
          (bursts), a heavy tail of long lulls reaches [hi] — the
          overload-control stress regime. *)

type group_size =
  | Fixed of int  (** Every request names exactly this many users. *)
  | Uniform of int * int  (** Uniform over [\[min, max\]] inclusive. *)
  | Pareto_group of { alpha : float; lo : int; hi : int }
      (** Heavy-tailed sizes: the continuous bounded Pareto on
          [\[lo, hi + 1)] floored to an integer, clamped to
          [\[lo, hi\]] — mostly small groups with rare large ones. *)

(** Long-horizon rate modulation over any base arrival process, by
    deterministic time-warping: each inter-arrival gap is divided by
    the instantaneous intensity at the previous arrival, so high-
    intensity windows pack arrivals densely without disturbing the base
    process's PRNG stream — the same seed yields the flat and the
    modulated workload with identical group/duration draws. *)
type modulator =
  | Flat  (** No modulation — intensity 1 everywhere. *)
  | Diurnal of { period : float; amplitude : float }
      (** Sinusoidal intensity [1 + amplitude·sin(2πt/period)] —
          day/night load curves.  [amplitude] in [\[0, 1)] keeps the
          intensity positive. *)
  | Flash of { at : float; width : float; boost : float }
      (** Flash crowd: intensity [boost] on [\[at, at + width)], 1
          elsewhere — a sudden regional demand spike. *)

type spec = {
  requests : int;  (** Number of requests to generate. *)
  arrivals : arrivals;
  group_size : group_size;
  duration : float * float;
      (** Uniform lease length [(lo, hi)] once admitted. *)
  patience : float * float;
      (** Uniform deadline slack [(lo, hi)]: a request not served within
          [arrival + patience] abandons (expires). *)
  modulation : modulator;
}

val spec :
  ?requests:int ->
  ?arrivals:arrivals ->
  ?group_size:group_size ->
  ?duration:float * float ->
  ?patience:float * float ->
  ?modulation:modulator ->
  unit ->
  spec
(** Defaults: 100 requests, [Poisson 0.5], [Uniform (2, 4)] users,
    durations [(3., 8.)], patience [(0., 10.)], no modulation.
    @raise Invalid_argument on non-positive rates/periods/sizes, a group
    size below 2, inverted ranges, negative durations/patience, a
    diurnal amplitude outside [\[0, 1)], or a non-positive flash
    width/boost. *)

val intensity : modulator -> float -> float
(** Instantaneous arrival-rate multiplier at time [t] — exposed for
    tests and documentation plots. *)

val default : spec

type request = {
  id : int;  (** Dense index in generation order. *)
  users : int list;  (** Distinct user vertices, [>= 2] of them. *)
  arrival : float;
  duration : float;  (** Lease length once admitted ([> 0]). *)
  deadline : float;  (** Absolute abandon time ([>= arrival]). *)
}

val generate : Qnet_util.Prng.t -> Qnet_graph.Graph.t -> spec -> request list
(** Sample a workload on the graph's user population, sorted by
    (arrival, id).  Deterministic for a given generator state.
    @raise Invalid_argument when the group-size distribution can exceed
    the graph's user count. *)

val pp_spec : Format.formatter -> spec -> unit
(** One-line human summary ("100 requests, poisson 0.5/t, groups 2-4,
    ..."). *)
