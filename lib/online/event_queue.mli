(** Deterministic discrete-event queue for the online traffic engine.

    A binary min-heap over event timestamps.  Unlike
    {!Qnet_graph.Binary_heap} (whose equal-key pop order is
    unspecified), ties are broken by insertion order — two events
    scheduled for the same instant fire in the order they were pushed.
    That FIFO guarantee is what makes an engine run a pure function of
    its inputs, which the reproducibility contract of [muerp traffic]
    (same seed ⇒ same SLA summary) depends on. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty queue.  [capacity] pre-sizes the backing array. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q time ev] schedules [ev] at [time].  @raise Invalid_argument
    on a NaN timestamp. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event (FIFO among equal timestamps), removed; [None] when
    empty. *)

val peek_time : 'a t -> float option
(** Timestamp of the next event without removing it. *)

val peek_key : 'a t -> (float * int) option
(** [(time, seq)] of the next event without removing it.  [seq] is the
    queue's insertion counter — the FIFO tiebreaker — exposed so a
    batched consumer can merge a drained batch with events pushed while
    committing it, in the exact order a pop loop would have used. *)

val drain_until : 'a t -> upto:float -> (float * int * 'a) list
(** Pop every event with [time <= upto], returned in (time, seq) order —
    exactly the sequence repeated {!pop}s would have produced, with each
    event's [seq] included.  The slot-windowed batch of the serving
    engine.  @raise Invalid_argument on a NaN bound. *)

val pop_batch : 'a t -> (float * int * 'a) list
(** All events sharing the earliest timestamp, FIFO among them (empty
    list when the queue is empty): [drain_until] with the head
    timestamp as the bound. *)

val clear : 'a t -> unit

val entries : 'a t -> (float * int * 'a) list
(** Every pending entry as [(time, seq, payload)] in (time, seq) pop
    order, without disturbing the queue — the canonical dump a
    checkpoint serialises. *)

val next_seq : 'a t -> int
(** The insertion counter the next {!push} will consume.  Serialised
    alongside {!entries} so a restored queue hands out the same seqs. *)

val load : 'a t -> next_seq:int -> (float * int * 'a) list -> unit
(** Replace the queue's contents with a dump, in place: pops the same
    [(time, seq)] sequence and resumes the insertion counter at
    [next_seq], so pushes after restore tie-break identically to the
    uninterrupted run.  @raise Invalid_argument on NaN timestamps, a
    negative [next_seq], or a seq ≥ [next_seq]. *)

val of_entries : next_seq:int -> (float * int * 'a) list -> 'a t
(** Fresh queue holding a dump: {!create} followed by {!load}. *)
