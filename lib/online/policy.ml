module Graph = Qnet_graph.Graph
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_cache_hits = Tm.counter "online.policy.cache.hits"
let c_cache_misses = Tm.counter "online.policy.cache.misses"
let c_cache_invalidations = Tm.counter "online.policy.cache.invalidations"

(* Hooks a stateful-but-checkpoint-safe policy exposes so the engine
   can carry its hidden state across a snapshot/restore cycle.  [save]
   captures the state as a pure sexp document; [load] rebuilds it (the
   graph and params are in scope so cached trees can be reconstructed
   channel-by-channel, exactly as active leases are). *)
type state_hooks = {
  save : unit -> Qnet_util.Sexp.t;
  load : Graph.t -> Params.t -> Qnet_util.Sexp.t -> (unit, string) result;
}

type t = {
  name : string;
  concurrent_safe : bool;
  checkpoint_safe : bool;
  state : state_hooks option;
  route :
    exclude:Routing.exclusion ->
    budget:Qnet_overload.Budget.t option ->
    Graph.t ->
    Params.t ->
    capacity:Capacity.t ->
    users:int list ->
    Ent_tree.t option;
}

let route p ?(exclude = Routing.no_exclusion) ?budget g params ~capacity
    ~users =
  p.route ~exclude ~budget g params ~capacity ~users

let try_consume capacity (tree : Ent_tree.t) =
  let usage = Ent_tree.qubit_usage tree in
  if
    List.for_all (fun (v, q) -> Capacity.remaining capacity v >= q) usage
  then begin
    List.iter
      (fun (c : Channel.t) -> Capacity.consume_channel capacity c.path)
      tree.Ent_tree.channels;
    true
  end
  else false

let prim =
  {
    name = "prim";
    concurrent_safe = true;
    checkpoint_safe = true;
    state = None;
    route =
      (fun ~exclude ~budget g params ~capacity ~users ->
        Multi_group.prim_for_users ~exclude ?budget g params ~capacity ~users);
  }

(* A residual view of the network for whole-network solvers: the
   request's users are the only user vertices, every other vertex is a
   switch whose budget is its current residual (idle users become
   0-qubit switches — they could not relay as users either, since
   channel interiors must be switches).  Vertices are re-added in id
   order, so view ids coincide with real ids and paths translate back
   verbatim. *)
let residual_view ~exclude g ~capacity ~users =
  let member = Array.make (Graph.vertex_count g) false in
  List.iter (fun u -> member.(u) <- true) users;
  let b = Graph.Builder.create () in
  Graph.iter_vertices g (fun v ->
      let kind, qubits =
        if member.(v.Graph.id) then (Graph.User, 0)
        else if Graph.is_switch g v.Graph.id then
          ( Graph.Switch,
            (* A failed switch routes nothing, whatever its residual. *)
            if exclude.Routing.vertex_ok v.Graph.id then
              Capacity.remaining capacity v.Graph.id
            else 0 )
        else (Graph.Switch, 0)
      in
      ignore
        (Graph.Builder.add_vertex b ~kind ~qubits ~x:v.Graph.x ~y:v.Graph.y));
  Graph.iter_edges g (fun e ->
      (* Failed fibers simply do not exist in the view.  View edge ids
         shift, but channels translate back by vertex path, never by
         edge id. *)
      if exclude.Routing.edge_ok e.Graph.eid then
        ignore (Graph.Builder.add_edge b e.Graph.a e.Graph.b e.Graph.length));
  Graph.Builder.freeze b

(* Rebuild a view tree's channels on the real graph (re-validating
   every path), then admit it against the true capacity state.  The
   exclusion re-check matters for capacity-oblivious solvers (Alg. 2
   ignores the zeroed budget of a failed switch in the view), and keeps
   admission sound even if a view and the exclusion ever disagree. *)
let admit_view_tree ~exclude g params ~capacity (tree : Ent_tree.t) =
  let channels =
    List.fold_left
      (fun acc (c : Channel.t) ->
        match acc with
        | None -> None
        | Some cs ->
            if not (Routing.path_ok g exclude c.Channel.path) then None
            else (
              match Channel.make g params c.Channel.path with
              | Ok c -> Some (c :: cs)
              | Error _ -> None))
      (Some []) tree.Ent_tree.channels
  in
  match channels with
  | None -> None
  | Some cs ->
      let tree = Ent_tree.of_channels (List.rev cs) in
      if try_consume capacity tree then Some tree else None

let of_algorithm alg =
  let name =
    match alg with
    | Muerp.Optimal -> "alg2"
    | Muerp.Conflict_free -> "alg3"
    | Muerp.Prim_based -> "alg4"
    | Muerp.Exhaustive -> "exhaustive"
  in
  {
    name;
    concurrent_safe = true;
    checkpoint_safe = true;
    state = None;
    route =
      (fun ~exclude ~budget g params ~capacity ~users ->
        let view = residual_view ~exclude g ~capacity ~users in
        let outcome = Muerp.solve ?budget alg (Muerp.instance ~params view) in
        match outcome.Muerp.tree with
        | None -> None
        | Some tree -> admit_view_tree ~exclude g params ~capacity tree);
  }

let eqcast =
  {
    name = "eqcast";
    concurrent_safe = true;
    checkpoint_safe = true;
    state = None;
    route =
      (fun ~exclude ~budget g params ~capacity ~users ->
        let view = residual_view ~exclude g ~capacity ~users in
        match Qnet_baselines.Eqcast.solve ?budget view params with
        | None -> None
        | Some tree -> admit_view_tree ~exclude g params ~capacity tree);
  }

let tree_alive g exclude (tree : Ent_tree.t) =
  List.for_all
    (fun (c : Channel.t) -> Routing.path_ok g exclude c.Channel.path)
    tree.Ent_tree.channels

(* The memo table serialises as (users, channel vertex-paths) entries,
   sorted by key; [load] rebuilds every tree channel-by-channel against
   the restoring run's graph, the same bit-identical reconstruction
   active leases use.  A cold cache would NOT be equivalent: the
   uninterrupted run replays memoised trees computed under earlier
   residual states, so byte-identity requires restoring the exact
   contents, not re-deriving them. *)
let cached_state table =
  let module Sexp = Qnet_util.Sexp in
  let save () =
    Hashtbl.fold (fun k tree acc -> (k, tree) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (users, (tree : Ent_tree.t)) ->
           Sexp.list
             [
               Sexp.list (List.map Sexp.int users);
               Sexp.list
                 (List.map
                    (fun (c : Channel.t) ->
                      Sexp.list (List.map Sexp.int c.Channel.path))
                    tree.Ent_tree.channels);
             ])
    |> fun entries -> Sexp.list (Sexp.atom "memo" :: entries)
  in
  let load g params doc =
    let ( let* ) = Result.bind in
    let int_list l =
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* i = Sexp.to_int x in
          Ok (i :: acc))
        (Ok []) l
      |> Result.map List.rev
    in
    let entry = function
      | Sexp.List [ Sexp.List users; Sexp.List paths ] ->
          let* users = int_list users in
          let* channels =
            List.fold_left
              (fun acc p ->
                let* acc = acc in
                let* path =
                  match p with
                  | Sexp.List vs -> int_list vs
                  | Sexp.Atom _ -> Error "memo path must be a list"
                in
                let* c =
                  Result.map_error
                    (fun r -> "memoised channel invalid on this network: " ^ r)
                    (Channel.make g params path)
                in
                Ok (c :: acc))
              (Ok []) paths
            |> Result.map List.rev
          in
          Ok (users, Ent_tree.of_channels channels)
      | _ -> Error "malformed memo entry"
    in
    match doc with
    | Sexp.List (Sexp.Atom "memo" :: entries) ->
        let* parsed =
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* kv = entry e in
              Ok (kv :: acc))
            (Ok []) entries
        in
        Hashtbl.reset table;
        List.iter (fun (k, v) -> Hashtbl.replace table k v) parsed;
        Ok ()
    | _ -> Error "malformed memo table document"
  in
  { save; load }

let cached inner =
  let table : (int list, Ent_tree.t) Hashtbl.t = Hashtbl.create 64 in
  {
    name = "cached-" ^ inner.name;
    (* The memo table is shared mutable state touched on every call, so
       speculation stays off; checkpointing is fine — the state hooks
       above carry the exact table contents across a restore. *)
    concurrent_safe = false;
    (* Wrapping a policy that carries its own restorable state would
       need composed hooks; no roster policy does, so the wrapper only
       claims safety when the inner policy is stateless. *)
    checkpoint_safe = inner.checkpoint_safe && Option.is_none inner.state;
    state = Some (cached_state table);
    route =
      (fun ~exclude ~budget g params ~capacity ~users ->
        let key = List.sort compare users in
        match Hashtbl.find_opt table key with
        | Some tree when tree_alive g exclude tree && try_consume capacity tree
          ->
            Tm.Counter.incr c_cache_hits;
            Some tree
        | found -> (
            if found <> None then begin
              (* The memoised tree no longer fits the residual state —
                 or now crosses a failed element: drop it and route
                 afresh. *)
              Tm.Counter.incr c_cache_invalidations;
              Hashtbl.remove table key
            end;
            Tm.Counter.incr c_cache_misses;
            match inner.route ~exclude ~budget g params ~capacity ~users with
            | None -> None
            | Some tree ->
                Hashtbl.replace table key tree;
                Some tree));
  }

let base =
  [
    prim;
    of_algorithm Muerp.Conflict_free;
    of_algorithm Muerp.Optimal;
    eqcast;
  ]

(* External policies (e.g. the flow optimizer in [Qnet_flow]) plug into
   the roster here instead of this module depending on them.  The
   registry stores constructors, not instances, for the same freshness
   reason as [all] below. *)
let registry : (string, unit -> t) Hashtbl.t = Hashtbl.create 8

let register name mk =
  if name = "" then invalid_arg "Policy.register: empty name";
  if List.exists (fun p -> p.name = name) base then
    invalid_arg ("Policy.register: " ^ name ^ " is a built-in policy");
  Hashtbl.replace registry name mk

let registered () =
  Hashtbl.fold (fun name mk acc -> (name, mk) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Fresh instances on every call: a cached policy owns a memo table, and
   sharing one across engine runs would let an earlier run's trees leak
   into a later one. *)
let all () =
  let roster = base @ List.map (fun (_, mk) -> mk ()) (registered ()) in
  List.map (fun p -> (p.name, p)) roster
  @ List.map
      (fun p ->
        let c = cached p in
        (c.name, c))
      roster

let of_name name =
  let lookup name =
    match List.find_opt (fun p -> p.name = name) base with
    | Some p -> Some p
    | None -> Option.map (fun mk -> mk ()) (Hashtbl.find_opt registry name)
  in
  match lookup name with
  | Some p -> Some p
  | None ->
      let prefix = "cached-" in
      let n = String.length prefix in
      if String.length name > n && String.sub name 0 n = prefix then
        lookup (String.sub name n (String.length name - n))
        |> Option.map cached
      else None

(* -------------------------------------------------------------------- *)
(* Tiered graceful degradation.                                          *)

module Budget = Qnet_overload.Budget
module Breaker = Qnet_overload.Breaker

let c_tier_exhaustions = Tm.counter "online.overload.budget_exhausted"
let c_tier_verify_rejects = Tm.counter "online.overload.verify_rejected"
let c_tier_breaker_skips = Tm.counter "online.overload.breaker_skips"
let c_tier_breaker_opens = Tm.counter "online.overload.breaker_opens"

type tier_stats = {
  names : string array;
  serves : int array;
  exhaustions : int array;
  verify_rejects : int array;
  breaker_skips : int array;
  breakers : Breaker.t array;
  mutable last : int;
}

let tier_stats_make names breakers =
  let n = Array.length names in
  {
    names;
    serves = Array.make n 0;
    exhaustions = Array.make n 0;
    verify_rejects = Array.make n 0;
    breaker_skips = Array.make n 0;
    breakers;
    last = -1;
  }

let release_tree capacity (tree : Ent_tree.t) =
  List.iter
    (fun (c : Channel.t) -> Capacity.release_channel capacity c.path)
    tree.Ent_tree.channels

let tiered ?(fuel = 4096) ?breaker_threshold ?breaker_cooldown tiers =
  if tiers = [] then invalid_arg "Policy.tiered: no tiers";
  if fuel <= 0 then invalid_arg "Policy.tiered: fuel must be positive";
  let tiers = Array.of_list tiers in
  let n = Array.length tiers in
  let breakers =
    Array.init n (fun _ ->
        Breaker.create ?failure_threshold:breaker_threshold
          ?cooldown:breaker_cooldown ())
  in
  let stats = tier_stats_make (Array.map (fun p -> p.name) tiers) breakers in
  let name =
    "tiered("
    ^ String.concat ">" (Array.to_list (Array.map (fun p -> p.name) tiers))
    ^ ")"
  in
  let route ~exclude ~budget:_ g params ~capacity ~users =
    (* The combinator owns fuel policy: every tier but the floor gets a
       fresh budget, the floor runs unmetered so overload degrades to
       cheap routing instead of blanket rejection. *)
    let breaker_failure i =
      let br = breakers.(i) in
      let before = Breaker.opens br in
      Breaker.failure br;
      if Breaker.opens br > before then Tm.Counter.incr c_tier_breaker_opens
    in
    let rec attempt i =
      if i >= n then None
      else if not (Breaker.allow breakers.(i)) then begin
        stats.breaker_skips.(i) <- stats.breaker_skips.(i) + 1;
        Tm.Counter.incr c_tier_breaker_skips;
        attempt (i + 1)
      end
      else begin
        let budget = if i = n - 1 then None else Some (Budget.create ~fuel) in
        match tiers.(i).route ~exclude ~budget g params ~capacity ~users with
        | exception Budget.Exhausted _ ->
            stats.exhaustions.(i) <- stats.exhaustions.(i) + 1;
            Tm.Counter.incr c_tier_exhaustions;
            breaker_failure i;
            attempt (i + 1)
        | None ->
            (* Infeasibility under the residual state is an honest
               answer, not a tier fault: leave the breaker alone and let
               a cheaper tier (different search order) try. *)
            attempt (i + 1)
        | Some tree ->
            let structural =
              Verify.check g params ~users tree
              |> List.filter (function
                   | Verify.Capacity_exceeded _ ->
                       (* The policy contract already consumed the tree
                          from the shared residual state, so cumulative
                          capacity holds; a single tree can never exceed
                          total budgets on its own. *)
                       false
                   | Verify.Bad_channel _ | Verify.Not_a_spanning_tree
                   | Verify.Rate_mismatch _ ->
                       true)
            in
            if structural <> [] then begin
              release_tree capacity tree;
              stats.verify_rejects.(i) <- stats.verify_rejects.(i) + 1;
              Tm.Counter.incr c_tier_verify_rejects;
              breaker_failure i;
              attempt (i + 1)
            end
            else begin
              Breaker.success breakers.(i);
              stats.serves.(i) <- stats.serves.(i) + 1;
              stats.last <- i;
              Some tree
            end
      end
    in
    stats.last <- -1;
    attempt 0
  in
  (* Breakers and tier stats are shared mutable state, and [stats.last]
     is sampled right after each call — serial only.  Checkpointing is
     fine: the engine snapshot carries breaker and tier-stat state. *)
  ( { name; concurrent_safe = false; checkpoint_safe = true; state = None;
      route },
    stats )
