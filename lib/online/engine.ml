module Graph = Qnet_graph.Graph
module Lease = Qnet_sim.Scheduler.Lease
module Tm = Qnet_telemetry.Metrics
module Fmodel = Qnet_faults.Model
module Fsched = Qnet_faults.Schedule
module Fhealth = Qnet_faults.Health
module Admission_ctl = Qnet_overload.Admission
module Limiter = Qnet_overload.Limiter
module Budget = Qnet_overload.Budget
module Breaker = Qnet_overload.Breaker
open Qnet_core

let c_arrivals = Tm.counter "online.engine.arrivals"
let c_served = Tm.counter "online.engine.served"
let c_rejected = Tm.counter "online.engine.rejected"
let c_expired = Tm.counter "online.engine.expired"
let c_retries = Tm.counter "online.engine.retries"
let g_peak_qubits = Tm.gauge "online.engine.peak_qubits_in_use"
let g_peak_queue = Tm.gauge "online.engine.peak_queue_depth"
let g_utilization = Tm.gauge "online.engine.mean_utilization"
let h_wait = Tm.histogram "online.engine.wait_time"
let h_rate = Tm.histogram "online.engine.served_rate"
let c_faults_injected = Tm.counter "online.faults.injected"
let c_faults_repaired = Tm.counter "online.faults.repaired"
let c_leases_interrupted = Tm.counter "online.faults.interrupted"
let c_leases_recovered = Tm.counter "online.faults.recovered"
let c_leases_aborted = Tm.counter "online.faults.aborted"
let h_recovery = Tm.histogram "online.faults.recovery_seconds"
let c_shed = Tm.counter "online.overload.shed"
let c_shed_rate = Tm.counter "online.overload.shed_rate_limited"
let c_shed_queue = Tm.counter "online.overload.shed_queue_pressure"
let c_inflight_blocked = Tm.counter "online.overload.inflight_blocked"
let c_budget_exhausted = Tm.counter "online.overload.budget_exhausted"
let c_degraded = Tm.counter "online.overload.degraded"
let c_gate_rejected = Tm.counter "online.flow.gate_rejected"
let g_queue_limit = Tm.gauge "online.overload.max_queue"

type admission = Reject | Queue of int
type recovery = Abort | Repair | Reroute

let recovery_of_string = function
  | "abort" -> Ok Abort
  | "repair" -> Ok Repair
  | "reroute" -> Ok Reroute
  | s ->
      Error
        (Printf.sprintf "unknown recovery policy %S (expected abort|repair|reroute)" s)

let recovery_to_string = function
  | Abort -> "abort"
  | Repair -> "repair"
  | Reroute -> "reroute"

type config = {
  policy : Policy.t;
  admission : admission;
  retry_base : float;
  retry_max : float;
  recovery : recovery;
  overload : Admission_ctl.t;
  budget : int option;
  tier_stats : Policy.tier_stats option;
}

let config ?(admission = Queue 32) ?(retry_base = 0.5) ?(retry_max = 8.)
    ?(recovery = Repair) ?(overload = Admission_ctl.none) ?budget ?tier_stats
    policy =
  (match admission with
  | Reject -> ()
  | Queue n -> if n < 1 then invalid_arg "Engine.config: queue bound < 1");
  if retry_base <= 0. || not (Float.is_finite retry_base) then
    invalid_arg "Engine.config: retry_base must be positive";
  if retry_max < retry_base then
    invalid_arg "Engine.config: retry_max < retry_base";
  (match budget with
  | Some f when f <= 0 -> invalid_arg "Engine.config: budget must be positive"
  | _ -> ());
  { policy; admission; retry_base; retry_max; recovery; overload; budget;
    tier_stats }

type shed_reason = Rate_limit | Queue_pressure

type resolution =
  | Served of {
      start : float;
      finish : float;
      tree : Ent_tree.t;
      rate : float;
      attempts : int;
      recoveries : int;
      tier : int;
    }
  | Rejected of { at : float; queue_full : bool }
  | Shed of { at : float; reason : shed_reason }
  | Expired of { at : float; attempts : int }
  | Interrupted of {
      start : float;
      at : float;
      attempts : int;
      recoveries : int;
    }

type outcome = { request : Workload.request; resolution : resolution }

type incident = {
  at : float;
  request_id : int;
  element : Fsched.element;
  before : Ent_tree.t;
  after : Ent_tree.t option;
}

type report = {
  arrived : int;
  served : int;
  rejected : int;
  expired : int;
  acceptance_ratio : float;
  mean_wait : float;
  p95_wait : float;
  mean_rate : float;
  throughput : float;
  makespan : float;
  peak_qubits_in_use : int;
  peak_queue_depth : int;
  retries : int;
  mean_utilization : float;
  faults_injected : int;
  faults_repaired : int;
  leases_interrupted : int;
  leases_recovered : int;
  leases_aborted : int;
  mean_time_to_repair : float;
  mean_lost_service : float;
  shed : int;
  gate_rejected : int;
  degraded : int;
  tier_served : (string * int) list;
  budget_exhaustions : int;
  breaker_opens : int;
  p99_wait : float;
}

type event =
  | Arrival of Workload.request
  | Retry of int
  | Expiry of int
  | Fault of Fsched.event

(* Outcome of one speculative routing solve against a capacity
   snapshot.  [Spec_none] and [Spec_exhausted] are verdicts the commit
   loop can reuse directly (a request the policy could not serve on the
   snapshot cannot be served on the identical live state); a
   [Spec_tree] is re-validated against the live residual at commit. *)
type speculation =
  | Spec_tree of Ent_tree.t
  | Spec_none
  | Spec_exhausted

type req_state = {
  req : Workload.request;
  mutable attempts : int;
  mutable backoff : float;
  mutable waiting : bool;
  mutable resolved : bool;
}

(* A lease in service, with everything a mid-lease fault needs to
   repair or settle it. *)
type active = {
  lid : int;
  st : req_state;
  mutable lease : Lease.t;
  mutable tree : Ent_tree.t;
  started : float;
  finish : float;
  mutable recoveries : int;
  mutable tier : int;
}

let validate g requests =
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (r : Workload.request) ->
      if Hashtbl.mem ids r.Workload.id then
        invalid_arg "Engine.run: duplicate request id";
      Hashtbl.replace ids r.Workload.id ();
      if r.Workload.arrival < 0. || not (Float.is_finite r.Workload.arrival)
      then invalid_arg "Engine.run: bad arrival time";
      if r.Workload.duration <= 0. || not (Float.is_finite r.Workload.duration)
      then invalid_arg "Engine.run: duration must be positive";
      if r.Workload.deadline < r.Workload.arrival then
        invalid_arg "Engine.run: deadline before arrival";
      if List.length r.Workload.users < 2 then
        invalid_arg "Engine.run: request needs >= 2 users";
      if
        List.length (List.sort_uniq compare r.Workload.users)
        <> List.length r.Workload.users
      then invalid_arg "Engine.run: duplicate users in request";
      List.iter
        (fun u ->
          if not (Graph.is_user g u) then
            invalid_arg "Engine.run: request member is not a user")
        r.Workload.users)
    requests

let total_switch_qubits g =
  List.fold_left (fun acc s -> acc + Graph.qubits g s) 0 (Graph.switches g)

(* Nothing after [max (arrival, deadline) + duration] of any request can
   affect an outcome, so the fault schedule needs no more horizon. *)
let fault_horizon requests =
  List.fold_left
    (fun acc (r : Workload.request) ->
      Float.max acc
        (Float.max r.Workload.arrival r.Workload.deadline
        +. r.Workload.duration))
    0. requests

let validate_schedule g schedule =
  List.iter
    (fun (fe : Fsched.event) ->
      if Float.is_nan fe.time || fe.time < 0. then
        invalid_arg "Engine.run: fault event with bad timestamp";
      match fe.element with
      | Fsched.Link eid ->
          if eid < 0 || eid >= Graph.edge_count g then
            invalid_arg "Engine.run: fault event on unknown edge"
      | Fsched.Switch vid ->
          if vid < 0 || vid >= Graph.vertex_count g then
            invalid_arg "Engine.run: fault event on unknown vertex")
    schedule

let run ?config:(cfg = config Policy.prim) ?faults ?fault_schedule ?on_incident
    ?on_health ?pool ?(slot = 0.) g params ~requests =
  validate g requests;
  Option.iter (validate_schedule g) fault_schedule;
  if slot < 0. || not (Float.is_finite slot) then
    invalid_arg "Engine.run: slot must be finite and >= 0";
  (* Called from inside a parallel region (a policy or harness that is
     itself running on a pool), nested submission would raise deep in
     the loop: degrade to the serial path instead. *)
  let pool =
    match pool with
    | Some _ when Qnet_util.Pool.in_parallel_region () -> None
    | p -> p
  in
  let capacity = Capacity.of_graph g in
  let health =
    match (faults, fault_schedule) with
    | None, None -> None
    | _ -> Some (Fhealth.create g)
  in
  (match (health, on_health) with
  | Some h, Some f -> f h
  | _ -> ());
  let exclude =
    match health with
    | None -> Routing.no_exclusion
    | Some h -> Fhealth.exclusion h
  in
  let events : event Event_queue.t = Event_queue.create () in
  let states : (int, req_state) Hashtbl.t = Hashtbl.create 64 in
  let active : (int, active) Hashtbl.t = Hashtbl.create 64 in
  let limiter = Admission_ctl.limiter cfg.overload in
  (match cfg.overload.Admission_ctl.max_queue with
  | Some q -> Tm.Gauge.set_max g_queue_limit (float_of_int q)
  | None -> ());
  let fresh_budget () =
    Option.map (fun fuel -> Budget.create ~fuel) cfg.budget
  in
  let shed_total = ref 0 in
  let gate_rejected = ref 0 in
  let budget_exhaustions = ref 0 in
  let next_lease = ref 0 in
  let queue = ref [] in
  (* waiting request ids, FIFO (head = oldest) *)
  let outcomes = ref [] in
  let unresolved = ref (List.length requests) in
  let in_use = ref 0 in
  let peak_qubits = ref 0 in
  let peak_queue = ref 0 in
  let retries = ref 0 in
  let util_integral = ref 0. in
  let last_time = ref 0. in
  let makespan = ref 0. in
  let faults_injected = ref 0 in
  let faults_repaired = ref 0 in
  let leases_interrupted = ref 0 in
  let leases_recovered = ref 0 in
  let leases_aborted = ref 0 in
  let lost_service = ref 0. in
  let resolve st resolution =
    st.resolved <- true;
    st.waiting <- false;
    decr unresolved;
    outcomes := { request = st.req; resolution } :: !outcomes
  in
  (* One routing attempt for [st] at time [t]; on success the lease is
     registered and its expiry scheduled — resolution waits for the
     lease to complete (it may yet be interrupted by a fault). *)
  let inflight_full () =
    match cfg.overload.Admission_ctl.max_inflight with
    | None -> false
    | Some m ->
        let full = Hashtbl.length active >= m in
        if full then Tm.Counter.incr c_inflight_blocked;
        full
  in
  (* One policy invocation under the configured fuel budget; exhaustion
     counts as a failed attempt (capacity already rolled back by the
     solver layer), never as an engine error. *)
  let route_once users =
    match
      Qnet_telemetry.Span.with_span "online.route" (fun () ->
          cfg.policy.Policy.route ~exclude ~budget:(fresh_budget ()) g params
            ~capacity ~users)
    with
    | tree -> tree
    | exception Budget.Exhausted _ ->
        incr budget_exhaustions;
        Tm.Counter.incr c_budget_exhausted;
        None
  in
  let served_tier () =
    match cfg.tier_stats with
    | None -> -1
    | Some stats -> stats.Policy.last
  in
  (* [spec], when present, is a still-valid speculative solve for this
     request against a snapshot equal to the current live state: a
     non-tree verdict is reused as-is, a tree is admitted through
     [Lease.commit] (and, defensively, re-solved live if the commit is
     refused — unreachable while the validity check holds, but it keeps
     admission sound regardless). *)
  let try_serve ?spec t st =
    let r = st.req in
    st.attempts <- st.attempts + 1;
    if inflight_full () then false
    else
      let live_solve () =
        match route_once r.Workload.users with
        | None -> None
        | Some tree -> Some (tree, Lease.acquire tree)
      in
      let admitted =
        match spec with
        | None -> live_solve ()
        | Some (Spec_tree tree) -> (
            match Lease.commit capacity tree with
            | Some lease -> Some (tree, lease)
            | None -> live_solve ())
        | Some Spec_none -> None
        | Some Spec_exhausted ->
            incr budget_exhaustions;
            Tm.Counter.incr c_budget_exhausted;
            None
      in
      match admitted with
      | None -> false
      | Some (tree, lease) ->
          let lid = !next_lease in
          incr next_lease;
          Hashtbl.replace active lid
            {
              lid;
              st;
              lease;
              tree;
              started = t;
              finish = t +. r.Workload.duration;
              recoveries = 0;
              tier = served_tier ();
            };
          Event_queue.push events (t +. r.Workload.duration) (Expiry lid);
          in_use := !in_use + Lease.qubits lease;
          peak_qubits := max !peak_qubits !in_use;
          st.waiting <- false;
          Tm.Histogram.observe h_wait (t -. r.Workload.arrival);
          true
  in
  let schedule_retry t st =
    let rt = min (t +. st.backoff) st.req.Workload.deadline in
    st.backoff <- min (2. *. st.backoff) cfg.retry_max;
    Event_queue.push events rt (Retry st.req.Workload.id)
  in
  let expire t st =
    Tm.Counter.incr c_expired;
    queue := List.filter (fun id -> id <> st.req.Workload.id) !queue;
    resolve st (Expired { at = t; attempts = st.attempts })
  in
  let shed t st reason =
    incr shed_total;
    Tm.Counter.incr c_shed;
    (match reason with
    | Rate_limit -> Tm.Counter.incr c_shed_rate
    | Queue_pressure -> Tm.Counter.incr c_shed_queue);
    queue := List.filter (fun id -> id <> st.req.Workload.id) !queue;
    resolve st (Shed { at = t; reason })
  in
  let victim_of t (st : req_state) =
    {
      Admission_ctl.id = st.req.Workload.id;
      group = List.length st.req.Workload.users;
      slack = st.req.Workload.deadline -. t;
    }
  in
  (* Queue-pressure shedding: with the depth limit hit, refuse the
     cheapest-to-refuse request among the waiters and the newcomer
     (largest group, then loosest deadline, then id).  Returns [true]
     when the newcomer survived and may be enqueued. *)
  let shed_for_room t (newcomer : req_state) =
    match cfg.overload.Admission_ctl.max_queue with
    | None -> true
    | Some limit ->
        if List.length !queue < limit then true
        else begin
          let candidates =
            victim_of t newcomer
            :: List.map (fun id -> victim_of t (Hashtbl.find states id)) !queue
          in
          match Admission_ctl.pick_victim candidates with
          | None -> true
          | Some v ->
              if v.Admission_ctl.id = newcomer.req.Workload.id then begin
                shed t newcomer Queue_pressure;
                false
              end
              else begin
                shed t (Hashtbl.find states v.Admission_ctl.id) Queue_pressure;
                true
              end
        end
  in
  let on_arrival ?spec t (r : Workload.request) =
    Tm.Counter.incr c_arrivals;
    let st =
      {
        req = r;
        attempts = 0;
        backoff = cfg.retry_base;
        waiting = false;
        resolved = false;
      }
    in
    Hashtbl.replace states r.Workload.id st;
    let over_rate =
      match limiter with
      | None -> false
      | Some lim -> not (Limiter.try_take lim ~now:t)
    in
    let gate_infeasible =
      (* Provable-infeasibility gate: a group the oracle condemns can
         never be served, so reject before any routing work (and before
         it can occupy queue space other requests could use). *)
      (not over_rate)
      &&
      match cfg.overload.Admission_ctl.infeasible with
      | Some oracle -> oracle r.Workload.users
      | None -> false
    in
    if over_rate then shed t st Rate_limit
    else if gate_infeasible then begin
      incr gate_rejected;
      Tm.Counter.incr c_gate_rejected;
      Tm.Counter.incr c_rejected;
      resolve st (Rejected { at = t; queue_full = false })
    end
    else if not (try_serve ?spec t st) then
      match cfg.admission with
      | Reject ->
          Tm.Counter.incr c_rejected;
          resolve st (Rejected { at = t; queue_full = false })
      | Queue bound ->
          if r.Workload.deadline <= t then expire t st
          else if not (shed_for_room t st) then ()
          else if List.length !queue >= bound then begin
            Tm.Counter.incr c_rejected;
            resolve st (Rejected { at = t; queue_full = true })
          end
          else begin
            st.waiting <- true;
            queue := !queue @ [ r.Workload.id ];
            peak_queue := max !peak_queue (List.length !queue);
            schedule_retry t st
          end
  in
  let on_retry ?spec t id =
    let st = Hashtbl.find states id in
    if st.waiting then
      if t >= st.req.Workload.deadline then
        (* Patience ran out while queued: settle as expired without a
           futile final routing attempt (the serve window is
           [arrival, deadline) once waiting). *)
        expire t st
      else begin
        incr retries;
        Tm.Counter.incr c_retries;
        if try_serve ?spec t st then
          queue := List.filter (fun i -> i <> id) !queue
        else schedule_retry t st
      end
  in
  (* Work conservation: whenever capacity or connectivity improves
     (lease expiry, fault abort, element repair), offer it to the
     longest-waiting requests first, without waiting out their backoff
     timers. *)
  let rescan_queue t =
    queue :=
      List.filter
        (fun id ->
          let st = Hashtbl.find states id in
          if st.req.Workload.deadline <= t then begin
            (* Lapsed while waiting for its own retry event; settle it
               now so the freed capacity is not offered to a request
               that has already abandoned. *)
            resolve st
              (Expired
                 { at = st.req.Workload.deadline; attempts = st.attempts });
            Tm.Counter.incr c_expired;
            false
          end
          else begin
            incr retries;
            Tm.Counter.incr c_retries;
            not (try_serve t st)
          end)
        !queue
  in
  let on_expiry t lid =
    match Hashtbl.find_opt active lid with
    | None -> () (* aborted mid-lease; stale expiry *)
    | Some a ->
        Hashtbl.remove active lid;
        in_use := !in_use - Lease.qubits a.lease;
        Lease.release capacity a.lease;
        let rate = Ent_tree.rate_prob a.tree in
        Tm.Counter.incr c_served;
        Tm.Histogram.observe h_rate rate;
        if a.tier > 0 then Tm.Counter.incr c_degraded;
        resolve a.st
          (Served
             {
               start = a.started;
               finish = t;
               tree = a.tree;
               rate;
               attempts = a.st.attempts;
               recoveries = a.recoveries;
               tier = a.tier;
             });
        rescan_queue t
  in
  let dead_path path = not (Routing.path_ok g exclude path) in
  let tree_dead (tree : Ent_tree.t) =
    List.exists
      (fun (c : Channel.t) -> dead_path c.Channel.path)
      tree.Ent_tree.channels
  in
  (* Channel-level repair: refund only the dead channels, then find a
     replacement channel between the same endpoints over the residual
     graph minus the failed elements. *)
  let repair a =
    let live, dead_cs =
      List.partition
        (fun (c : Channel.t) -> not (dead_path c.Channel.path))
        a.tree.Ent_tree.channels
    in
    let remainder, _dead_paths =
      Lease.release_where capacity a.lease ~dead:dead_path
    in
    let rec replace acc = function
      | [] -> Some (List.rev acc)
      | (c : Channel.t) :: rest -> (
          match
            Routing.best_channel ~exclude g params ~capacity ~src:c.src
              ~dst:c.dst
          with
          | Some (repl : Channel.t) ->
              Capacity.consume_channel capacity repl.Channel.path;
              replace (repl :: acc) rest
          | None ->
              List.iter
                (fun (r : Channel.t) ->
                  Capacity.release_channel capacity r.Channel.path)
                acc;
              None)
    in
    match replace [] dead_cs with
    | None ->
        Option.iter (fun rem -> Lease.release capacity rem) remainder;
        None
    | Some repls ->
        let tree' = Ent_tree.of_channels (live @ repls) in
        Verify.check_exn ~context:"fault repair" g params
          ~users:a.st.req.Workload.users tree';
        a.tree <- tree';
        a.lease <- Lease.acquire tree';
        Some tree'
  in
  let reroute a =
    Lease.release capacity a.lease;
    match
      cfg.policy.Policy.route ~exclude ~budget:(fresh_budget ()) g params
        ~capacity ~users:a.st.req.Workload.users
    with
    | exception Budget.Exhausted _ ->
        incr budget_exhaustions;
        Tm.Counter.incr c_budget_exhausted;
        None
    | None -> None
    | Some tree' ->
        Verify.check_exn ~context:"fault reroute" g params
          ~users:a.st.req.Workload.users tree';
        a.tree <- tree';
        a.lease <- Lease.acquire tree';
        a.tier <- served_tier ();
        Some tree'
  in
  let recover t element a =
    incr leases_interrupted;
    Tm.Counter.incr c_leases_interrupted;
    let before = a.tree in
    let t0 = Qnet_telemetry.Clock.now_s () in
    in_use := !in_use - Lease.qubits a.lease;
    let after =
      Qnet_telemetry.Span.with_span "online.recover" (fun () ->
          match cfg.recovery with
          | Abort ->
              Lease.release capacity a.lease;
              None
          | Repair -> repair a
          | Reroute -> reroute a)
    in
    (match after with
    | Some _ ->
        in_use := !in_use + Lease.qubits a.lease;
        peak_qubits := max !peak_qubits !in_use;
        a.recoveries <- a.recoveries + 1;
        incr leases_recovered;
        Tm.Counter.incr c_leases_recovered;
        Tm.Histogram.observe h_recovery (Qnet_telemetry.Clock.elapsed_since t0)
    | None ->
        (* Abort-and-refund: the capacity is already back in the pool;
           the request ends here, with the unserved remainder of its
           lease recorded as lost service. *)
        incr leases_aborted;
        Tm.Counter.incr c_leases_aborted;
        lost_service := !lost_service +. Float.max 0. (a.finish -. t);
        Hashtbl.remove active a.lid;
        resolve a.st
          (Interrupted
             {
               start = a.started;
               at = t;
               attempts = a.st.attempts;
               recoveries = a.recoveries;
             }));
    match on_incident with
    | None -> ()
    | Some f ->
        f { at = t; request_id = a.st.req.Workload.id; element; before; after }
  in
  (* A fault transition invalidates every outstanding speculation even
     when no capacity moved: exclusion state steers routing, so a
     snapshot from before the transition no longer predicts what the
     live solve would return. *)
  let batch_dirty = ref false in
  let on_fault t (fe : Fsched.event) =
    match health with
    | None -> ()
    | Some h -> (
        match Fhealth.apply h fe with
        | Fhealth.No_change -> ()
        | Fhealth.Went_down ->
            batch_dirty := true;
            incr faults_injected;
            Tm.Counter.incr c_faults_injected;
            (* Active trees are all healthy between fault events, so the
               dead ones now are exactly those crossing the failed
               element.  Lease-id order keeps multi-victim recovery
               deterministic. *)
            let affected =
              Hashtbl.fold
                (fun _ a acc -> if tree_dead a.tree then a :: acc else acc)
                active []
              |> List.sort (fun (x : active) y -> compare x.lid y.lid)
            in
            List.iter (recover t fe.element) affected;
            if affected <> [] then rescan_queue t
        | Fhealth.Came_up ->
            batch_dirty := true;
            incr faults_repaired;
            Tm.Counter.incr c_faults_repaired;
            (* Connectivity improved: queued requests that were blocked
               by the failed element may route now. *)
            rescan_queue t)
  in
  List.iter
    (fun (r : Workload.request) ->
      Event_queue.push events r.Workload.arrival (Arrival r))
    requests;
  let schedule =
    match fault_schedule with
    | Some s -> List.sort Fsched.compare_event s
    | None -> (
        match faults with
        | None -> []
        | Some model -> Fsched.generate model g ~horizon:(fault_horizon requests))
  in
  List.iter
    (fun (fe : Fsched.event) -> Event_queue.push events fe.time (Fault fe))
    schedule;
  (* An event that can no longer change any outcome must not stretch the
     makespan or the utilization window. *)
  let inert = function
    | Fault _ -> !unresolved = 0
    | Expiry lid -> not (Hashtbl.mem active lid)
    | Arrival _ | Retry _ -> false
  in
  let dispatch ?spec t ev =
    if not (inert ev) then begin
      util_integral :=
        !util_integral +. ((t -. !last_time) *. float_of_int !in_use);
      last_time := t;
      makespan := max !makespan t;
      match ev with
      | Arrival r -> on_arrival ?spec t r
      | Retry id -> on_retry ?spec t id
      | Expiry lid -> on_expiry t lid
      | Fault fe -> on_fault t fe
    end
  in
  (* Speculation: solve every routable request of a drained batch
     concurrently against a zero-copy snapshot of the residual state.
     Each task gets its own [Capacity.overlay] view, so the live state
     is read-only for the whole parallel region; results keyed by
     request id, tagged with the capacity version they were solved
     under.  Which requests to solve is a prediction, not a commitment:
     a dry-run copy of the rate limiter skips arrivals the live limiter
     will shed, and retries are screened by their queue/deadline state
     at drain time — over- or under-speculation only wastes or forgoes
     work, never changes a result. *)
  let speculate batch =
    match pool with
    | Some p
      when cfg.policy.Policy.concurrent_safe && Qnet_util.Pool.jobs p > 1 -> (
        let lim = Option.map Limiter.copy limiter in
        let seen = Hashtbl.create 16 in
        let cands = ref [] in
        List.iter
          (fun (t, _, ev) ->
            match ev with
            | Arrival r ->
                let admitted =
                  match lim with
                  | None -> true
                  | Some l -> Limiter.try_take l ~now:t
                in
                if admitted && not (Hashtbl.mem seen r.Workload.id) then begin
                  Hashtbl.replace seen r.Workload.id ();
                  cands := (r.Workload.id, r.Workload.users) :: !cands
                end
            | Retry id -> (
                match Hashtbl.find_opt states id with
                | Some st
                  when st.waiting
                       && t < st.req.Workload.deadline
                       && not (Hashtbl.mem seen id) ->
                    Hashtbl.replace seen id ();
                    cands := (id, st.req.Workload.users) :: !cands
                | _ -> ())
            | Expiry _ | Fault _ -> ())
          batch;
        let cands = Array.of_list (List.rev !cands) in
        if Array.length cands < 2 then None
        else begin
          let solve users () =
            match
              Qnet_telemetry.Span.with_span "online.route" (fun () ->
                  cfg.policy.Policy.route ~exclude ~budget:(fresh_budget ())
                    g params
                    ~capacity:(Capacity.overlay capacity)
                    ~users)
            with
            | Some tree -> Spec_tree tree
            | None -> Spec_none
            | exception Budget.Exhausted _ -> Spec_exhausted
          in
          let results =
            Qnet_util.Pool.map_thunks p
              (Array.map (fun (_, users) -> solve users) cands)
          in
          let specs = Hashtbl.create (Array.length cands) in
          Array.iteri
            (fun i r -> Hashtbl.replace specs (fst cands.(i)) r)
            results;
          Some (specs, Capacity.version capacity)
        end)
    | _ -> None
  in
  (* Commit: replay the drained batch in its exact (time, seq) order,
     merged with any events pushed while committing (their seqs are
     larger, so the comparison reproduces the serial pop order).  A
     speculation is honoured only while the live state still equals its
     snapshot — any capacity mutation or fault transition since then
     invalidates the whole batch's remaining specs, and those requests
     re-solve on the live residual exactly as the serial path would. *)
  let commit_batch specs batch =
    let spec_of ev =
      match specs with
      | None -> None
      | Some (tbl, snap_version) ->
          if !batch_dirty || Capacity.version capacity <> snap_version then
            None
          else (
            match ev with
            | Arrival r -> Hashtbl.find_opt tbl r.Workload.id
            | Retry id -> Hashtbl.find_opt tbl id
            | Expiry _ | Fault _ -> None)
    in
    let rec go = function
      | [] -> ()
      | (bt, bseq, ev) :: rest as pending -> (
          match Event_queue.peek_key events with
          | Some (qt, qseq) when qt < bt || (qt = bt && qseq < bseq) ->
              (match Event_queue.pop events with
              | Some (t, ev') -> dispatch t ev'
              | None -> ());
              go pending
          | _ ->
              dispatch ?spec:(spec_of ev) bt ev;
              go rest)
    in
    go batch
  in
  let rec drain () =
    match Event_queue.peek_time events with
    | None -> ()
    | Some t0 ->
        let upto = if slot > 0. then t0 +. slot else t0 in
        let batch = Event_queue.drain_until events ~upto in
        batch_dirty := false;
        commit_batch (speculate batch) batch;
        drain ()
  in
  drain ();
  (* Every lease has completed or been aborted; any residual consumption
     now is a refund bug, caught here rather than as silent
     over-capacity in the next run. *)
  List.iter
    (fun s ->
      if Capacity.used capacity s <> 0 then
        failwith "Engine.run: internal capacity leak (unreleased qubits)")
    (Graph.switches g);
  let outcomes =
    List.sort
      (fun a b -> compare a.request.Workload.id b.request.Workload.id)
      !outcomes
  in
  (* Watchdog pass: independently re-validate every tree that was put in
     service, including repaired and rerouted ones.  Read-only, so the
     optional pool parallelises it without affecting determinism. *)
  let served_trees =
    List.filter_map
      (fun o ->
        match o.resolution with
        | Served { tree; _ } -> Some (o.request.Workload.users, tree)
        | _ -> None)
      outcomes
    |> Array.of_list
  in
  let verify_one i =
    let users, tree = served_trees.(i) in
    Verify.check_exn ~context:"served tree" g params ~users tree
  in
  (match pool with
  | Some p ->
      Qnet_util.Pool.parallel_for p (Array.length served_trees) verify_one
  | None ->
      for i = 0 to Array.length served_trees - 1 do
        verify_one i
      done);
  let waits, rates =
    List.fold_left
      (fun (ws, rs) o ->
        match o.resolution with
        | Served { start; rate; _ } ->
            ((start -. o.request.Workload.arrival) :: ws, rate :: rs)
        | Rejected _ | Shed _ | Expired _ | Interrupted _ -> (ws, rs))
      ([], []) outcomes
  in
  let count pred = List.length (List.filter pred outcomes) in
  let served = List.length waits in
  let rejected =
    count (fun o -> match o.resolution with Rejected _ -> true | _ -> false)
  in
  let expired =
    count (fun o -> match o.resolution with Expired _ -> true | _ -> false)
  in
  let arrived = List.length requests in
  let mean = function
    | [] -> 0.
    | l -> Qnet_util.Stats.mean (Array.of_list l)
  in
  let p95 = function
    | [] -> 0.
    | l -> Qnet_util.Stats.percentile (Array.of_list l) 95.
  in
  let p99 = function
    | [] -> 0.
    | l -> Qnet_util.Stats.percentile (Array.of_list l) 99.
  in
  let degraded =
    count (fun o ->
        match o.resolution with Served { tier; _ } -> tier > 0 | _ -> false)
  in
  let tier_served =
    match cfg.tier_stats with
    | None -> []
    | Some stats ->
        let counts = Array.make (Array.length stats.Policy.names) 0 in
        List.iter
          (fun o ->
            match o.resolution with
            | Served { tier; _ }
              when tier >= 0 && tier < Array.length counts ->
                counts.(tier) <- counts.(tier) + 1
            | _ -> ())
          outcomes;
        Array.to_list
          (Array.mapi (fun i n -> (stats.Policy.names.(i), n)) counts)
  in
  let budget_exhaustions =
    !budget_exhaustions
    + (match cfg.tier_stats with
      | None -> 0
      | Some stats -> Array.fold_left ( + ) 0 stats.Policy.exhaustions)
  in
  let breaker_opens =
    match cfg.tier_stats with
    | None -> 0
    | Some stats ->
        Array.fold_left
          (fun acc b -> acc + Breaker.opens b)
          0 stats.Policy.breakers
  in
  let budget = total_switch_qubits g in
  let mean_utilization =
    if !makespan > 0. && budget > 0 then
      !util_integral /. (!makespan *. float_of_int budget)
    else 0.
  in
  Tm.Gauge.set_max g_peak_qubits (float_of_int !peak_qubits);
  Tm.Gauge.set_max g_peak_queue (float_of_int !peak_queue);
  Tm.Gauge.set g_utilization mean_utilization;
  ( {
      arrived;
      served;
      rejected;
      expired;
      acceptance_ratio =
        (if arrived = 0 then 0.
         else float_of_int served /. float_of_int arrived);
      mean_wait = mean waits;
      p95_wait = p95 waits;
      mean_rate = mean rates;
      throughput =
        (if !makespan > 0. then float_of_int served /. !makespan else 0.);
      makespan = !makespan;
      peak_qubits_in_use = !peak_qubits;
      peak_queue_depth = !peak_queue;
      retries = !retries;
      mean_utilization;
      faults_injected = !faults_injected;
      faults_repaired = !faults_repaired;
      leases_interrupted = !leases_interrupted;
      leases_recovered = !leases_recovered;
      leases_aborted = !leases_aborted;
      mean_time_to_repair =
        (match health with None -> 0. | Some h -> Fhealth.observed_mttr h);
      mean_lost_service =
        (if !leases_aborted = 0 then 0.
         else !lost_service /. float_of_int !leases_aborted);
      shed = !shed_total;
      gate_rejected = !gate_rejected;
      degraded;
      tier_served;
      budget_exhaustions;
      breaker_opens;
      p99_wait = p99 waits;
    },
    outcomes )

let report_table r =
  let t = Qnet_util.Table.create [ "metric"; "value" ] in
  let int name v = (name, string_of_int v) in
  let flt name v = (name, Qnet_util.Table.float_cell v) in
  List.fold_left
    (fun t (name, v) -> Qnet_util.Table.add_row t [ name; v ])
    t
    [
      int "arrived" r.arrived;
      int "served" r.served;
      int "rejected" r.rejected;
      int "expired" r.expired;
      flt "acceptance_ratio" r.acceptance_ratio;
      flt "mean_wait" r.mean_wait;
      flt "p95_wait" r.p95_wait;
      flt "mean_rate" r.mean_rate;
      flt "throughput" r.throughput;
      flt "makespan" r.makespan;
      int "peak_qubits_in_use" r.peak_qubits_in_use;
      int "peak_queue_depth" r.peak_queue_depth;
      int "retries" r.retries;
      flt "mean_utilization" r.mean_utilization;
      int "faults_injected" r.faults_injected;
      int "faults_repaired" r.faults_repaired;
      int "leases_interrupted" r.leases_interrupted;
      int "leases_recovered" r.leases_recovered;
      int "leases_aborted" r.leases_aborted;
      flt "mean_time_to_repair" r.mean_time_to_repair;
      flt "mean_lost_service" r.mean_lost_service;
    ]
  |> fun t ->
  (* Overload rows appear only when overload control did something, so
     a limits-disabled run prints the exact PR-4 era table. *)
  if
    r.shed = 0 && r.degraded = 0 && r.budget_exhaustions = 0
    && r.breaker_opens = 0 && r.gate_rejected = 0
    && r.tier_served = []
  then t
  else
    List.fold_left
      (fun t (name, v) -> Qnet_util.Table.add_row t [ name; v ])
      t
      ([
         int "shed" r.shed;
         int "gate_rejected" r.gate_rejected;
         int "degraded" r.degraded;
         int "budget_exhaustions" r.budget_exhaustions;
         int "breaker_opens" r.breaker_opens;
         flt "p99_wait" r.p99_wait;
       ]
      @ List.map
          (fun (name, n) -> int ("tier_served:" ^ name) n)
          r.tier_served)
