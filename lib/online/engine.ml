module Graph = Qnet_graph.Graph
module Lease = Qnet_sim.Scheduler.Lease
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_arrivals = Tm.counter "online.engine.arrivals"
let c_served = Tm.counter "online.engine.served"
let c_rejected = Tm.counter "online.engine.rejected"
let c_expired = Tm.counter "online.engine.expired"
let c_retries = Tm.counter "online.engine.retries"
let g_peak_qubits = Tm.gauge "online.engine.peak_qubits_in_use"
let g_peak_queue = Tm.gauge "online.engine.peak_queue_depth"
let g_utilization = Tm.gauge "online.engine.mean_utilization"
let h_wait = Tm.histogram "online.engine.wait_time"
let h_rate = Tm.histogram "online.engine.served_rate"

type admission = Reject | Queue of int

type config = {
  policy : Policy.t;
  admission : admission;
  retry_base : float;
  retry_max : float;
}

let config ?(admission = Queue 32) ?(retry_base = 0.5) ?(retry_max = 8.)
    policy =
  (match admission with
  | Reject -> ()
  | Queue n -> if n < 1 then invalid_arg "Engine.config: queue bound < 1");
  if retry_base <= 0. || not (Float.is_finite retry_base) then
    invalid_arg "Engine.config: retry_base must be positive";
  if retry_max < retry_base then
    invalid_arg "Engine.config: retry_max < retry_base";
  { policy; admission; retry_base; retry_max }

type resolution =
  | Served of {
      start : float;
      finish : float;
      tree : Ent_tree.t;
      rate : float;
      attempts : int;
    }
  | Rejected of { at : float; queue_full : bool }
  | Expired of { at : float; attempts : int }

type outcome = { request : Workload.request; resolution : resolution }

type report = {
  arrived : int;
  served : int;
  rejected : int;
  expired : int;
  acceptance_ratio : float;
  mean_wait : float;
  p95_wait : float;
  mean_rate : float;
  throughput : float;
  makespan : float;
  peak_qubits_in_use : int;
  peak_queue_depth : int;
  retries : int;
  mean_utilization : float;
}

type event = Arrival of Workload.request | Retry of int | Expiry of int

type req_state = {
  req : Workload.request;
  mutable attempts : int;
  mutable backoff : float;
  mutable waiting : bool;
  mutable resolved : bool;
}

let validate g requests =
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (r : Workload.request) ->
      if Hashtbl.mem ids r.Workload.id then
        invalid_arg "Engine.run: duplicate request id";
      Hashtbl.replace ids r.Workload.id ();
      if r.Workload.arrival < 0. || not (Float.is_finite r.Workload.arrival)
      then invalid_arg "Engine.run: bad arrival time";
      if r.Workload.duration <= 0. || not (Float.is_finite r.Workload.duration)
      then invalid_arg "Engine.run: duration must be positive";
      if r.Workload.deadline < r.Workload.arrival then
        invalid_arg "Engine.run: deadline before arrival";
      if List.length r.Workload.users < 2 then
        invalid_arg "Engine.run: request needs >= 2 users";
      if
        List.length (List.sort_uniq compare r.Workload.users)
        <> List.length r.Workload.users
      then invalid_arg "Engine.run: duplicate users in request";
      List.iter
        (fun u ->
          if not (Graph.is_user g u) then
            invalid_arg "Engine.run: request member is not a user")
        r.Workload.users)
    requests

let total_switch_qubits g =
  List.fold_left (fun acc s -> acc + Graph.qubits g s) 0 (Graph.switches g)

let run ?config:(cfg = config Policy.prim) g params ~requests =
  validate g requests;
  let capacity = Capacity.of_graph g in
  let events : event Event_queue.t = Event_queue.create () in
  let states : (int, req_state) Hashtbl.t = Hashtbl.create 64 in
  let leases : (int, Lease.t) Hashtbl.t = Hashtbl.create 64 in
  let next_lease = ref 0 in
  let queue = ref [] in
  (* waiting request ids, FIFO (head = oldest) *)
  let outcomes = ref [] in
  let in_use = ref 0 in
  let peak_qubits = ref 0 in
  let peak_queue = ref 0 in
  let retries = ref 0 in
  let util_integral = ref 0. in
  let last_time = ref 0. in
  let makespan = ref 0. in
  let resolve st resolution =
    st.resolved <- true;
    st.waiting <- false;
    outcomes := { request = st.req; resolution } :: !outcomes
  in
  (* One routing attempt for [st] at time [t]; on success the lease is
     registered and its expiry scheduled. *)
  let try_serve t st =
    let r = st.req in
    st.attempts <- st.attempts + 1;
    match
      Qnet_telemetry.Span.with_span "online.route" (fun () ->
          cfg.policy.Policy.route g params ~capacity ~users:r.Workload.users)
    with
    | None -> false
    | Some tree ->
        let lease = Lease.acquire tree in
        let lid = !next_lease in
        incr next_lease;
        Hashtbl.replace leases lid lease;
        Event_queue.push events (t +. r.Workload.duration) (Expiry lid);
        in_use := !in_use + Lease.qubits lease;
        peak_qubits := max !peak_qubits !in_use;
        let rate = Ent_tree.rate_prob tree in
        Tm.Counter.incr c_served;
        Tm.Histogram.observe h_wait (t -. r.Workload.arrival);
        Tm.Histogram.observe h_rate rate;
        resolve st
          (Served
             {
               start = t;
               finish = t +. r.Workload.duration;
               tree;
               rate;
               attempts = st.attempts;
             });
        true
  in
  let schedule_retry t st =
    let rt = min (t +. st.backoff) st.req.Workload.deadline in
    st.backoff <- min (2. *. st.backoff) cfg.retry_max;
    Event_queue.push events rt (Retry st.req.Workload.id)
  in
  let expire t st =
    Tm.Counter.incr c_expired;
    queue := List.filter (fun id -> id <> st.req.Workload.id) !queue;
    resolve st (Expired { at = t; attempts = st.attempts })
  in
  let on_arrival t (r : Workload.request) =
    Tm.Counter.incr c_arrivals;
    let st =
      {
        req = r;
        attempts = 0;
        backoff = cfg.retry_base;
        waiting = false;
        resolved = false;
      }
    in
    Hashtbl.replace states r.Workload.id st;
    if not (try_serve t st) then
      match cfg.admission with
      | Reject ->
          Tm.Counter.incr c_rejected;
          resolve st (Rejected { at = t; queue_full = false })
      | Queue bound ->
          if r.Workload.deadline <= t then expire t st
          else if List.length !queue >= bound then begin
            Tm.Counter.incr c_rejected;
            resolve st (Rejected { at = t; queue_full = true })
          end
          else begin
            st.waiting <- true;
            queue := !queue @ [ r.Workload.id ];
            peak_queue := max !peak_queue (List.length !queue);
            schedule_retry t st
          end
  in
  let on_retry t id =
    let st = Hashtbl.find states id in
    if st.waiting then begin
      incr retries;
      Tm.Counter.incr c_retries;
      if try_serve t st then
        queue := List.filter (fun i -> i <> id) !queue
      else if t >= st.req.Workload.deadline then expire t st
      else schedule_retry t st
    end
  in
  let on_expiry t lid =
    let lease = Hashtbl.find leases lid in
    Hashtbl.remove leases lid;
    in_use := !in_use - Lease.qubits lease;
    Lease.release capacity lease;
    (* Work conservation: freed qubits go to the longest-waiting
       requests first, without waiting out their backoff timers. *)
    queue :=
      List.filter
        (fun id ->
          let st = Hashtbl.find states id in
          if st.req.Workload.deadline < t then begin
            (* Lapsed while waiting for its own retry event; settle it
               now so the freed capacity is not offered to a request
               that has already abandoned. *)
            resolve st (Expired { at = st.req.Workload.deadline; attempts = st.attempts });
            Tm.Counter.incr c_expired;
            false
          end
          else begin
            incr retries;
            Tm.Counter.incr c_retries;
            not (try_serve t st)
          end)
        !queue
  in
  List.iter
    (fun (r : Workload.request) ->
      Event_queue.push events r.Workload.arrival (Arrival r))
    requests;
  let rec drain () =
    match Event_queue.pop events with
    | None -> ()
    | Some (t, ev) ->
        util_integral := !util_integral +. ((t -. !last_time) *. float_of_int !in_use);
        last_time := t;
        makespan := max !makespan t;
        (match ev with
        | Arrival r -> on_arrival t r
        | Retry id -> on_retry t id
        | Expiry lid -> on_expiry t lid);
        drain ()
  in
  drain ();
  let outcomes =
    List.sort
      (fun a b -> compare a.request.Workload.id b.request.Workload.id)
      !outcomes
  in
  let waits, rates =
    List.fold_left
      (fun (ws, rs) o ->
        match o.resolution with
        | Served { start; rate; _ } ->
            ((start -. o.request.Workload.arrival) :: ws, rate :: rs)
        | Rejected _ | Expired _ -> (ws, rs))
      ([], []) outcomes
  in
  let count pred = List.length (List.filter pred outcomes) in
  let served = List.length waits in
  let rejected =
    count (fun o -> match o.resolution with Rejected _ -> true | _ -> false)
  in
  let expired =
    count (fun o -> match o.resolution with Expired _ -> true | _ -> false)
  in
  let arrived = List.length requests in
  let mean = function
    | [] -> 0.
    | l -> Qnet_util.Stats.mean (Array.of_list l)
  in
  let p95 = function
    | [] -> 0.
    | l -> Qnet_util.Stats.percentile (Array.of_list l) 95.
  in
  let budget = total_switch_qubits g in
  let mean_utilization =
    if !makespan > 0. && budget > 0 then
      !util_integral /. (!makespan *. float_of_int budget)
    else 0.
  in
  Tm.Gauge.set_max g_peak_qubits (float_of_int !peak_qubits);
  Tm.Gauge.set_max g_peak_queue (float_of_int !peak_queue);
  Tm.Gauge.set g_utilization mean_utilization;
  ( {
      arrived;
      served;
      rejected;
      expired;
      acceptance_ratio =
        (if arrived = 0 then 0.
         else float_of_int served /. float_of_int arrived);
      mean_wait = mean waits;
      p95_wait = p95 waits;
      mean_rate = mean rates;
      throughput =
        (if !makespan > 0. then float_of_int served /. !makespan else 0.);
      makespan = !makespan;
      peak_qubits_in_use = !peak_qubits;
      peak_queue_depth = !peak_queue;
      retries = !retries;
      mean_utilization;
    },
    outcomes )

let report_table r =
  let t = Qnet_util.Table.create [ "metric"; "value" ] in
  let int name v = (name, string_of_int v) in
  let flt name v = (name, Qnet_util.Table.float_cell v) in
  List.fold_left
    (fun t (name, v) -> Qnet_util.Table.add_row t [ name; v ])
    t
    [
      int "arrived" r.arrived;
      int "served" r.served;
      int "rejected" r.rejected;
      int "expired" r.expired;
      flt "acceptance_ratio" r.acceptance_ratio;
      flt "mean_wait" r.mean_wait;
      flt "p95_wait" r.p95_wait;
      flt "mean_rate" r.mean_rate;
      flt "throughput" r.throughput;
      flt "makespan" r.makespan;
      int "peak_qubits_in_use" r.peak_qubits_in_use;
      int "peak_queue_depth" r.peak_queue_depth;
      int "retries" r.retries;
      flt "mean_utilization" r.mean_utilization;
    ]
