module Graph = Qnet_graph.Graph
module Lease = Qnet_sim.Scheduler.Lease
module Tm = Qnet_telemetry.Metrics
module Fmodel = Qnet_faults.Model
module Fsched = Qnet_faults.Schedule
module Fhealth = Qnet_faults.Health
module Admission_ctl = Qnet_overload.Admission
module Limiter = Qnet_overload.Limiter
module Budget = Qnet_overload.Budget
module Breaker = Qnet_overload.Breaker
open Qnet_core

let c_arrivals = Tm.counter "online.engine.arrivals"
let c_served = Tm.counter "online.engine.served"
let c_rejected = Tm.counter "online.engine.rejected"
let c_expired = Tm.counter "online.engine.expired"
let c_retries = Tm.counter "online.engine.retries"
let g_peak_qubits = Tm.gauge "online.engine.peak_qubits_in_use"
let g_peak_queue = Tm.gauge "online.engine.peak_queue_depth"
let g_utilization = Tm.gauge "online.engine.mean_utilization"
let h_wait = Tm.histogram "online.engine.wait_time"
let h_rate = Tm.histogram "online.engine.served_rate"
let c_faults_injected = Tm.counter "online.faults.injected"
let c_faults_repaired = Tm.counter "online.faults.repaired"
let c_leases_interrupted = Tm.counter "online.faults.interrupted"
let c_leases_recovered = Tm.counter "online.faults.recovered"
let c_leases_aborted = Tm.counter "online.faults.aborted"
let h_recovery = Tm.histogram "online.faults.recovery_seconds"
let c_shed = Tm.counter "online.overload.shed"
let c_shed_rate = Tm.counter "online.overload.shed_rate_limited"
let c_shed_queue = Tm.counter "online.overload.shed_queue_pressure"
let c_inflight_blocked = Tm.counter "online.overload.inflight_blocked"
let c_budget_exhausted = Tm.counter "online.overload.budget_exhausted"
let c_degraded = Tm.counter "online.overload.degraded"
let c_gate_rejected = Tm.counter "online.flow.gate_rejected"
let g_queue_limit = Tm.gauge "online.overload.max_queue"
let c_reconfig_applied = Tm.counter "online.reconfig.applied"
let c_reconfig_recovered = Tm.counter "online.reconfig.recovered"

type admission = Reject | Queue of int
type recovery = Abort | Repair | Reroute

let recovery_of_string = function
  | "abort" -> Ok Abort
  | "repair" -> Ok Repair
  | "reroute" -> Ok Reroute
  | s ->
      Error
        (Printf.sprintf "unknown recovery policy %S (expected abort|repair|reroute)" s)

let recovery_to_string = function
  | Abort -> "abort"
  | Repair -> "repair"
  | Reroute -> "reroute"

type config = {
  policy : Policy.t;
  admission : admission;
  retry_base : float;
  retry_max : float;
  recovery : recovery;
  overload : Admission_ctl.t;
  budget : int option;
  tier_stats : Policy.tier_stats option;
}

let config ?(admission = Queue 32) ?(retry_base = 0.5) ?(retry_max = 8.)
    ?(recovery = Repair) ?(overload = Admission_ctl.none) ?budget ?tier_stats
    policy =
  (match admission with
  | Reject -> ()
  | Queue n -> if n < 1 then invalid_arg "Engine.config: queue bound < 1");
  if retry_base <= 0. || not (Float.is_finite retry_base) then
    invalid_arg "Engine.config: retry_base must be positive";
  if retry_max < retry_base then
    invalid_arg "Engine.config: retry_max < retry_base";
  (match budget with
  | Some f when f <= 0 -> invalid_arg "Engine.config: budget must be positive"
  | _ -> ());
  { policy; admission; retry_base; retry_max; recovery; overload; budget;
    tier_stats }

type shed_reason = Rate_limit | Queue_pressure

type resolution =
  | Served of {
      start : float;
      finish : float;
      tree : Ent_tree.t;
      rate : float;
      attempts : int;
      recoveries : int;
      tier : int;
    }
  | Rejected of { at : float; queue_full : bool }
  | Shed of { at : float; reason : shed_reason }
  | Expired of { at : float; attempts : int }
  | Interrupted of {
      start : float;
      at : float;
      attempts : int;
      recoveries : int;
    }

type outcome = { request : Workload.request; resolution : resolution }

type incident = {
  at : float;
  request_id : int;
  element : Fsched.element;
  before : Ent_tree.t;
  after : Ent_tree.t option;
}

type report = {
  arrived : int;
  served : int;
  rejected : int;
  expired : int;
  acceptance_ratio : float;
  mean_wait : float;
  p95_wait : float;
  mean_rate : float;
  throughput : float;
  makespan : float;
  peak_qubits_in_use : int;
  peak_queue_depth : int;
  retries : int;
  mean_utilization : float;
  faults_injected : int;
  faults_repaired : int;
  leases_interrupted : int;
  leases_recovered : int;
  leases_aborted : int;
  mean_time_to_repair : float;
  mean_lost_service : float;
  shed : int;
  gate_rejected : int;
  degraded : int;
  tier_served : (string * int) list;
  budget_exhaustions : int;
  breaker_opens : int;
  p99_wait : float;
  reconfig_applied : int;
  reconfig_recovered : int;
}

type event =
  | Arrival of Workload.request
  | Retry of int
  | Expiry of int
  | Fault of Fsched.event
  | Reconf of Reconfig.event

(* Outcome of one speculative routing solve against a capacity
   snapshot.  [Spec_none] and [Spec_exhausted] are verdicts the commit
   loop can reuse directly (a request the policy could not serve on the
   snapshot cannot be served on the identical live state); a
   [Spec_tree] is re-validated against the live residual at commit. *)
type speculation =
  | Spec_tree of Ent_tree.t
  | Spec_none
  | Spec_exhausted

type req_state = {
  req : Workload.request;
  mutable attempts : int;
  mutable backoff : float;
  mutable waiting : bool;
  mutable resolved : bool;
}

(* A lease in service, with everything a mid-lease fault needs to
   repair or settle it. *)
type active = {
  lid : int;
  st : req_state;
  mutable lease : Lease.t;
  mutable tree : Ent_tree.t;
  started : float;
  finish : float;
  mutable recoveries : int;
  mutable tier : int;
}

(* ------------------------------------------------------------------ *)
(* Checkpoint snapshots.

   A snapshot is a pure-data image of the complete engine state at an
   event-loop boundary: every pending event (with its heap seq, so the
   FIFO tiebreaker survives the round-trip), per-request progress, the
   active leases as channel vertex-paths (trees are rebuilt against the
   restoring run's graph, which re-validates them), settled outcomes,
   capacity quota/residual deltas, and the mutable state of every
   collaborating subsystem (limiter, health, tiered-policy breakers,
   telemetry registry).  Requests themselves are referenced by id — a
   restore replays the original workload, so the ids resolve against
   the [~requests] the caller passes back in. *)

type s_event =
  | SE_arrival of int
  | SE_retry of int
  | SE_expiry of int
  | SE_fault of Fsched.event
  | SE_reconf of Reconfig.event

type s_resolution =
  | SR_served of {
      r_start : float;
      r_finish : float;
      r_paths : int list list;
      r_rate : float;
      r_attempts : int;
      r_recoveries : int;
      r_tier : int;
    }
  | SR_rejected of { r_at : float; r_queue_full : bool }
  | SR_shed of { r_at : float; r_reason : shed_reason }
  | SR_expired of { r_at : float; r_attempts : int }
  | SR_interrupted of {
      r_start : float;
      r_at : float;
      r_attempts : int;
      r_recoveries : int;
    }

type s_state = {
  ss_id : int;
  ss_attempts : int;
  ss_backoff : float;
  ss_waiting : bool;
  ss_resolved : bool;
}

type s_active = {
  sa_lid : int;
  sa_id : int;
  sa_paths : int list list;
  sa_started : float;
  sa_finish : float;
  sa_recoveries : int;
  sa_tier : int;
}

type s_tier = {
  st_serves : int array;
  st_exhaustions : int array;
  st_verify_rejects : int array;
  st_breaker_skips : int array;
  st_breakers : (Breaker.state * int * int * int) array;
  st_last : int;
}

type snapshot = {
  s_at : float;
  s_next_ckpt : float;
      (* the uninterrupted run's next checkpoint instant, so a restored
         continuation emits its own checkpoints at the same instants *)
  s_events : (float * int * s_event) list;
  s_next_seq : int;
  s_states : s_state list;
  s_queue : int list;
  s_active : s_active list;
  s_outcomes : (int * s_resolution) list;  (* newest first, as accrued *)
  s_next_lease : int;
  s_quota : (int * int) list;  (* switches re-provisioned off the graph *)
  s_residual : (int * int) list;  (* switches with qubits in use *)
  s_shed_total : int;
  s_gate_rejected : int;
  s_budget_exhaustions : int;
  s_peak_qubits : int;
  s_peak_queue : int;
  s_retries : int;
  s_util_integral : float;
  s_last_time : float;
  s_makespan : float;
  s_faults_injected : int;
  s_faults_repaired : int;
  s_leases_interrupted : int;
  s_leases_recovered : int;
  s_leases_aborted : int;
  s_lost_service : float;
  s_reconfig_applied : int;
  s_reconfig_recovered : int;
  s_limiter : (float * float) option;
  s_health : Fhealth.snapshot option;
  s_tier : s_tier option;
  s_policy : Qnet_util.Sexp.t option;
      (* opaque policy-owned state (Policy.state_hooks) *)
  s_metrics : (string * Tm.dumped) list option;
}

(* Committed state transitions, in commit order — the write-ahead
   journal's vocabulary.  Every entry is emitted at the exact point the
   engine mutates durable state (lease table, health, capacity quota),
   so a restored run re-emits the same stream from its cut onward and a
   journal tail can be verified against the deterministic
   re-execution. *)
type transition =
  | T_admit of { at : float; lid : int; request : int }
  | T_release of { at : float; lid : int }
  | T_recover of { at : float; lid : int }
  | T_abort of { at : float; lid : int }
  | T_fault of { at : float; link : bool; element : int; up : bool }
  | T_reconfig of { at : float; link : bool; element : int; up : bool }
  | T_provision of { at : float; switch : int; qubits : int }

let snapshot_at s = s.s_at
let snapshot_version = "muerp-engine-snapshot/2"

module Sexp = Qnet_util.Sexp

let sx_bool b = Sexp.atom (if b then "true" else "false")
let sx_paths paths =
  Sexp.list (List.map (fun p -> Sexp.list (List.map Sexp.int p)) paths)

let s_event_to_sexp = function
  | SE_arrival id -> Sexp.list [ Sexp.atom "arrival"; Sexp.int id ]
  | SE_retry id -> Sexp.list [ Sexp.atom "retry"; Sexp.int id ]
  | SE_expiry lid -> Sexp.list [ Sexp.atom "expiry"; Sexp.int lid ]
  | SE_fault fe ->
      let el =
        match fe.Fsched.element with
        | Fsched.Link e -> Sexp.list [ Sexp.atom "link"; Sexp.int e ]
        | Fsched.Switch v -> Sexp.list [ Sexp.atom "switch"; Sexp.int v ]
      in
      Sexp.list
        [ Sexp.atom "fault"; Sexp.float fe.Fsched.time; el;
          sx_bool fe.Fsched.up ]
  | SE_reconf re ->
      Sexp.list
        [ Sexp.atom "reconfig"; Sexp.float re.Reconfig.time;
          Reconfig.change_to_sexp re.Reconfig.change ]

let s_resolution_to_sexp = function
  | SR_served r ->
      Sexp.list
        [ Sexp.atom "served"; Sexp.float r.r_start; Sexp.float r.r_finish;
          Sexp.float r.r_rate; Sexp.int r.r_attempts; Sexp.int r.r_recoveries;
          Sexp.int r.r_tier; sx_paths r.r_paths ]
  | SR_rejected r ->
      Sexp.list
        [ Sexp.atom "rejected"; Sexp.float r.r_at; sx_bool r.r_queue_full ]
  | SR_shed r ->
      Sexp.list
        [ Sexp.atom "shed"; Sexp.float r.r_at;
          Sexp.atom
            (match r.r_reason with
            | Rate_limit -> "rate"
            | Queue_pressure -> "queue") ]
  | SR_expired r ->
      Sexp.list [ Sexp.atom "expired"; Sexp.float r.r_at; Sexp.int r.r_attempts ]
  | SR_interrupted r ->
      Sexp.list
        [ Sexp.atom "interrupted"; Sexp.float r.r_start; Sexp.float r.r_at;
          Sexp.int r.r_attempts; Sexp.int r.r_recoveries ]

let breaker_state_str = function
  | Breaker.Closed -> "closed"
  | Breaker.Open -> "open"
  | Breaker.Half_open -> "half-open"

let dumped_to_sexp (name, d) =
  match d with
  | Tm.D_counter n -> Sexp.list [ Sexp.atom name; Sexp.atom "counter"; Sexp.int n ]
  | Tm.D_gauge v -> Sexp.list [ Sexp.atom name; Sexp.atom "gauge"; Sexp.float v ]
  | Tm.D_histogram h ->
      Sexp.list
        [ Sexp.atom name; Sexp.atom "hist"; Sexp.int h.Tm.d_n;
          Sexp.float h.Tm.d_sum; Sexp.float h.Tm.d_vmin; Sexp.float h.Tm.d_vmax;
          Sexp.list (List.map Sexp.int (Array.to_list h.Tm.d_counts)) ]

let fld name elts = Sexp.list (Sexp.atom name :: elts)

(* Health and tier state serialise through shared field lists so the
   incremental-checkpoint delta codec renders exactly the bytes the
   full snapshot would. *)
let health_fields h =
  let ints l = List.map Sexp.int l in
  let floats l = List.map Sexp.float l in
  [
    fld "link-down" (ints (Array.to_list h.Fhealth.s_link_down));
    fld "switch-down" (ints (Array.to_list h.Fhealth.s_switch_down));
    fld "link-since" (floats (Array.to_list h.Fhealth.s_link_since));
    fld "switch-since" (floats (Array.to_list h.Fhealth.s_switch_since));
    fld "repairs" [ Sexp.int h.Fhealth.s_repairs ];
    fld "downtime" [ Sexp.float h.Fhealth.s_total_downtime ];
  ]

let health_to_sexp h = Sexp.list (health_fields h)

let tier_fields st =
  let ints l = List.map Sexp.int l in
  [
    fld "serves" (ints (Array.to_list st.st_serves));
    fld "exhaustions" (ints (Array.to_list st.st_exhaustions));
    fld "verify-rejects" (ints (Array.to_list st.st_verify_rejects));
    fld "breaker-skips" (ints (Array.to_list st.st_breaker_skips));
    fld "breakers"
      (List.map
         (fun (bs, cf, cd, op) ->
           Sexp.list
             [ Sexp.atom (breaker_state_str bs); Sexp.int cf; Sexp.int cd;
               Sexp.int op ])
         (Array.to_list st.st_breakers));
    fld "last" [ Sexp.int st.st_last ];
  ]

let tier_to_sexp st = Sexp.list (tier_fields st)

let snapshot_to_sexp s =
  let pair (a, b) = Sexp.list [ Sexp.int a; Sexp.int b ] in
  let ints l = List.map Sexp.int l in
  Sexp.list
    [
      Sexp.atom snapshot_version;
      fld "at" [ Sexp.float s.s_at ];
      fld "next-ckpt" [ Sexp.float s.s_next_ckpt ];
      fld "next-seq" [ Sexp.int s.s_next_seq ];
      fld "next-lease" [ Sexp.int s.s_next_lease ];
      fld "events"
        (List.map
           (fun (t, seq, ev) ->
             Sexp.list [ Sexp.float t; Sexp.int seq; s_event_to_sexp ev ])
           s.s_events);
      fld "states"
        (List.map
           (fun ss ->
             Sexp.list
               [ Sexp.int ss.ss_id; Sexp.int ss.ss_attempts;
                 Sexp.float ss.ss_backoff; sx_bool ss.ss_waiting;
                 sx_bool ss.ss_resolved ])
           s.s_states);
      fld "queue" (ints s.s_queue);
      fld "active"
        (List.map
           (fun sa ->
             Sexp.list
               [ Sexp.int sa.sa_lid; Sexp.int sa.sa_id;
                 Sexp.float sa.sa_started; Sexp.float sa.sa_finish;
                 Sexp.int sa.sa_recoveries; Sexp.int sa.sa_tier;
                 sx_paths sa.sa_paths ])
           s.s_active);
      fld "outcomes"
        (List.map
           (fun (id, res) ->
             Sexp.list [ Sexp.int id; s_resolution_to_sexp res ])
           s.s_outcomes);
      fld "quota" (List.map pair s.s_quota);
      fld "residual" (List.map pair s.s_residual);
      fld "shed" [ Sexp.int s.s_shed_total ];
      fld "gate-rejected" [ Sexp.int s.s_gate_rejected ];
      fld "budget-exhaustions" [ Sexp.int s.s_budget_exhaustions ];
      fld "peak-qubits" [ Sexp.int s.s_peak_qubits ];
      fld "peak-queue" [ Sexp.int s.s_peak_queue ];
      fld "retries" [ Sexp.int s.s_retries ];
      fld "util-integral" [ Sexp.float s.s_util_integral ];
      fld "last-time" [ Sexp.float s.s_last_time ];
      fld "makespan" [ Sexp.float s.s_makespan ];
      fld "faults-injected" [ Sexp.int s.s_faults_injected ];
      fld "faults-repaired" [ Sexp.int s.s_faults_repaired ];
      fld "interrupted" [ Sexp.int s.s_leases_interrupted ];
      fld "recovered" [ Sexp.int s.s_leases_recovered ];
      fld "aborted" [ Sexp.int s.s_leases_aborted ];
      fld "lost-service" [ Sexp.float s.s_lost_service ];
      fld "reconfig-applied" [ Sexp.int s.s_reconfig_applied ];
      fld "reconfig-recovered" [ Sexp.int s.s_reconfig_recovered ];
      fld "limiter"
        (match s.s_limiter with
        | None -> []
        | Some (tokens, last) -> [ Sexp.float tokens; Sexp.float last ]);
      fld "health"
        (match s.s_health with None -> [] | Some h -> health_fields h);
      fld "tier" (match s.s_tier with None -> [] | Some st -> tier_fields st);
      fld "policy" (match s.s_policy with None -> [] | Some doc -> [ doc ]);
      fld "metrics"
        (match s.s_metrics with
        | None -> []
        | Some d -> List.map dumped_to_sexp d);
    ]

(* --- snapshot parsing (pure: graph/workload validation happens at
   restore time inside [run], where both are in scope) --------------- *)

let ( let* ) = Result.bind

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let sx_to_bool = function
  | Sexp.Atom "true" -> Ok true
  | Sexp.Atom "false" -> Ok false
  | _ -> Error "expected true or false"

let sx_to_paths = function
  | Sexp.List paths ->
      map_result
        (function
          | Sexp.List vs -> map_result Sexp.to_int vs
          | Sexp.Atom _ -> Error "expected a vertex path (list)")
        paths
  | Sexp.Atom _ -> Error "expected a path list"

(* Field access by name over the document's element list.  Unlike
   {!Sexp.field} this never unwraps single-element payloads, so list
   fields with one entry stay lists. *)
let sx_assoc fields name =
  let rec find = function
    | [] -> Error (Printf.sprintf "snapshot: missing field %s" name)
    | Sexp.List (Sexp.Atom n :: rest) :: _ when n = name -> Ok rest
    | _ :: tl -> find tl
  in
  find fields

let sx_field1 fields name =
  let* l = sx_assoc fields name in
  match l with
  | [ x ] -> Ok x
  | _ -> Error (Printf.sprintf "snapshot: field %s expects one value" name)

let sx_int_field fields name =
  let* x = sx_field1 fields name in
  Sexp.to_int x

let sx_float_field fields name =
  let* x = sx_field1 fields name in
  Sexp.to_float x

let sx_int_list l = map_result Sexp.to_int l
let sx_float_list l = map_result Sexp.to_float l

let sx_pair = function
  | Sexp.List [ a; b ] ->
      let* a = Sexp.to_int a in
      let* b = Sexp.to_int b in
      Ok (a, b)
  | _ -> Error "expected an (int int) pair"

let s_event_of_sexp = function
  | Sexp.List [ Sexp.Atom "arrival"; id ] ->
      let* id = Sexp.to_int id in
      Ok (SE_arrival id)
  | Sexp.List [ Sexp.Atom "retry"; id ] ->
      let* id = Sexp.to_int id in
      Ok (SE_retry id)
  | Sexp.List [ Sexp.Atom "expiry"; lid ] ->
      let* lid = Sexp.to_int lid in
      Ok (SE_expiry lid)
  | Sexp.List [ Sexp.Atom "fault"; t; el; up ] ->
      let* time = Sexp.to_float t in
      let* element =
        match el with
        | Sexp.List [ Sexp.Atom "link"; e ] ->
            let* e = Sexp.to_int e in
            Ok (Fsched.Link e)
        | Sexp.List [ Sexp.Atom "switch"; v ] ->
            let* v = Sexp.to_int v in
            Ok (Fsched.Switch v)
        | _ -> Error "malformed fault element"
      in
      let* up = sx_to_bool up in
      Ok (SE_fault { Fsched.time; element; up })
  | Sexp.List [ Sexp.Atom "reconfig"; t; c ] ->
      let* time = Sexp.to_float t in
      let* change = Reconfig.change_of_sexp c in
      Ok (SE_reconf { Reconfig.time; change })
  | _ -> Error "malformed pending event"

let s_resolution_of_sexp = function
  | Sexp.List
      [ Sexp.Atom "served"; start; finish; rate; attempts; recoveries; tier;
        paths ] ->
      let* r_start = Sexp.to_float start in
      let* r_finish = Sexp.to_float finish in
      let* r_rate = Sexp.to_float rate in
      let* r_attempts = Sexp.to_int attempts in
      let* r_recoveries = Sexp.to_int recoveries in
      let* r_tier = Sexp.to_int tier in
      let* r_paths = sx_to_paths paths in
      Ok
        (SR_served
           { r_start; r_finish; r_paths; r_rate; r_attempts; r_recoveries;
             r_tier })
  | Sexp.List [ Sexp.Atom "rejected"; at; qf ] ->
      let* r_at = Sexp.to_float at in
      let* r_queue_full = sx_to_bool qf in
      Ok (SR_rejected { r_at; r_queue_full })
  | Sexp.List [ Sexp.Atom "shed"; at; reason ] ->
      let* r_at = Sexp.to_float at in
      let* r_reason =
        match reason with
        | Sexp.Atom "rate" -> Ok Rate_limit
        | Sexp.Atom "queue" -> Ok Queue_pressure
        | _ -> Error "unknown shed reason"
      in
      Ok (SR_shed { r_at; r_reason })
  | Sexp.List [ Sexp.Atom "expired"; at; attempts ] ->
      let* r_at = Sexp.to_float at in
      let* r_attempts = Sexp.to_int attempts in
      Ok (SR_expired { r_at; r_attempts })
  | Sexp.List [ Sexp.Atom "interrupted"; start; at; attempts; recoveries ] ->
      let* r_start = Sexp.to_float start in
      let* r_at = Sexp.to_float at in
      let* r_attempts = Sexp.to_int attempts in
      let* r_recoveries = Sexp.to_int recoveries in
      Ok (SR_interrupted { r_start; r_at; r_attempts; r_recoveries })
  | _ -> Error "malformed outcome resolution"

let breaker_state_of_str = function
  | "closed" -> Ok Breaker.Closed
  | "open" -> Ok Breaker.Open
  | "half-open" -> Ok Breaker.Half_open
  | s -> Error ("unknown breaker state: " ^ s)

let dumped_of_sexp = function
  | Sexp.List [ Sexp.Atom name; Sexp.Atom "counter"; n ] ->
      let* n = Sexp.to_int n in
      Ok (name, Tm.D_counter n)
  | Sexp.List [ Sexp.Atom name; Sexp.Atom "gauge"; v ] ->
      let* v = Sexp.to_float v in
      Ok (name, Tm.D_gauge v)
  | Sexp.List
      [ Sexp.Atom name; Sexp.Atom "hist"; n; sum; vmin; vmax;
        Sexp.List counts ] ->
      let* d_n = Sexp.to_int n in
      let* d_sum = Sexp.to_float sum in
      let* d_vmin = Sexp.to_float vmin in
      let* d_vmax = Sexp.to_float vmax in
      let* counts = sx_int_list counts in
      Ok
        ( name,
          Tm.D_histogram
            { Tm.d_n; d_sum; d_vmin; d_vmax; d_counts = Array.of_list counts }
        )
  | _ -> Error "malformed metric dump entry"

let health_of_fields hf =
  let* ld = sx_assoc hf "link-down" in
  let* s_link_down = sx_int_list ld in
  let* sd = sx_assoc hf "switch-down" in
  let* s_switch_down = sx_int_list sd in
  let* ls = sx_assoc hf "link-since" in
  let* s_link_since = sx_float_list ls in
  let* ss = sx_assoc hf "switch-since" in
  let* s_switch_since = sx_float_list ss in
  let* s_repairs = sx_int_field hf "repairs" in
  let* s_total_downtime = sx_float_field hf "downtime" in
  Ok
    {
      Fhealth.s_link_down = Array.of_list s_link_down;
      s_switch_down = Array.of_list s_switch_down;
      s_link_since = Array.of_list s_link_since;
      s_switch_since = Array.of_list s_switch_since;
      s_repairs;
      s_total_downtime;
    }

let health_of_sexp = function
  | Sexp.List hf -> health_of_fields hf
  | Sexp.Atom _ -> Error "malformed health state"

let tier_of_fields tf =
  let* serves = sx_assoc tf "serves" in
  let* st_serves = sx_int_list serves in
  let* exhaustions = sx_assoc tf "exhaustions" in
  let* st_exhaustions = sx_int_list exhaustions in
  let* vr = sx_assoc tf "verify-rejects" in
  let* st_verify_rejects = sx_int_list vr in
  let* bsk = sx_assoc tf "breaker-skips" in
  let* st_breaker_skips = sx_int_list bsk in
  let* breakers = sx_assoc tf "breakers" in
  let* st_breakers =
    map_result
      (function
        | Sexp.List [ Sexp.Atom state; cf; cd; op ] ->
            let* bs = breaker_state_of_str state in
            let* cf = Sexp.to_int cf in
            let* cd = Sexp.to_int cd in
            let* op = Sexp.to_int op in
            Ok (bs, cf, cd, op)
        | _ -> Error "malformed breaker state")
      breakers
  in
  let* st_last = sx_int_field tf "last" in
  Ok
    {
      st_serves = Array.of_list st_serves;
      st_exhaustions = Array.of_list st_exhaustions;
      st_verify_rejects = Array.of_list st_verify_rejects;
      st_breaker_skips = Array.of_list st_breaker_skips;
      st_breakers = Array.of_list st_breakers;
      st_last;
    }

let tier_of_sexp = function
  | Sexp.List tf -> tier_of_fields tf
  | Sexp.Atom _ -> Error "malformed tier state"

let snapshot_of_sexp doc =
  match doc with
  | Sexp.List (Sexp.Atom v :: fields) when v = snapshot_version ->
      let* s_at = sx_float_field fields "at" in
      let* s_next_ckpt = sx_float_field fields "next-ckpt" in
      let* s_next_seq = sx_int_field fields "next-seq" in
      let* s_next_lease = sx_int_field fields "next-lease" in
      let* events = sx_assoc fields "events" in
      let* s_events =
        map_result
          (function
            | Sexp.List [ t; seq; ev ] ->
                let* t = Sexp.to_float t in
                let* seq = Sexp.to_int seq in
                let* ev = s_event_of_sexp ev in
                Ok (t, seq, ev)
            | _ -> Error "malformed pending-event entry")
          events
      in
      let* states = sx_assoc fields "states" in
      let* s_states =
        map_result
          (function
            | Sexp.List [ id; attempts; backoff; waiting; resolved ] ->
                let* ss_id = Sexp.to_int id in
                let* ss_attempts = Sexp.to_int attempts in
                let* ss_backoff = Sexp.to_float backoff in
                let* ss_waiting = sx_to_bool waiting in
                let* ss_resolved = sx_to_bool resolved in
                Ok { ss_id; ss_attempts; ss_backoff; ss_waiting; ss_resolved }
            | _ -> Error "malformed request-state entry")
          states
      in
      let* queue = sx_assoc fields "queue" in
      let* s_queue = sx_int_list queue in
      let* active = sx_assoc fields "active" in
      let* s_active =
        map_result
          (function
            | Sexp.List
                [ lid; id; started; finish; recoveries; tier; paths ] ->
                let* sa_lid = Sexp.to_int lid in
                let* sa_id = Sexp.to_int id in
                let* sa_started = Sexp.to_float started in
                let* sa_finish = Sexp.to_float finish in
                let* sa_recoveries = Sexp.to_int recoveries in
                let* sa_tier = Sexp.to_int tier in
                let* sa_paths = sx_to_paths paths in
                Ok
                  { sa_lid; sa_id; sa_paths; sa_started; sa_finish;
                    sa_recoveries; sa_tier }
            | _ -> Error "malformed active-lease entry")
          active
      in
      let* outcomes = sx_assoc fields "outcomes" in
      let* s_outcomes =
        map_result
          (function
            | Sexp.List [ id; res ] ->
                let* id = Sexp.to_int id in
                let* res = s_resolution_of_sexp res in
                Ok (id, res)
            | _ -> Error "malformed outcome entry")
          outcomes
      in
      let* quota = sx_assoc fields "quota" in
      let* s_quota = map_result sx_pair quota in
      let* residual = sx_assoc fields "residual" in
      let* s_residual = map_result sx_pair residual in
      let* s_shed_total = sx_int_field fields "shed" in
      let* s_gate_rejected = sx_int_field fields "gate-rejected" in
      let* s_budget_exhaustions = sx_int_field fields "budget-exhaustions" in
      let* s_peak_qubits = sx_int_field fields "peak-qubits" in
      let* s_peak_queue = sx_int_field fields "peak-queue" in
      let* s_retries = sx_int_field fields "retries" in
      let* s_util_integral = sx_float_field fields "util-integral" in
      let* s_last_time = sx_float_field fields "last-time" in
      let* s_makespan = sx_float_field fields "makespan" in
      let* s_faults_injected = sx_int_field fields "faults-injected" in
      let* s_faults_repaired = sx_int_field fields "faults-repaired" in
      let* s_leases_interrupted = sx_int_field fields "interrupted" in
      let* s_leases_recovered = sx_int_field fields "recovered" in
      let* s_leases_aborted = sx_int_field fields "aborted" in
      let* s_lost_service = sx_float_field fields "lost-service" in
      let* s_reconfig_applied = sx_int_field fields "reconfig-applied" in
      let* s_reconfig_recovered = sx_int_field fields "reconfig-recovered" in
      let* limiter = sx_assoc fields "limiter" in
      let* s_limiter =
        match limiter with
        | [] -> Ok None
        | [ tokens; last ] ->
            let* tokens = Sexp.to_float tokens in
            let* last = Sexp.to_float last in
            Ok (Some (tokens, last))
        | _ -> Error "malformed limiter state"
      in
      let* health = sx_assoc fields "health" in
      let* s_health =
        match health with
        | [] -> Ok None
        | hf ->
            let* h = health_of_fields hf in
            Ok (Some h)
      in
      let* tier = sx_assoc fields "tier" in
      let* s_tier =
        match tier with
        | [] -> Ok None
        | tf ->
            let* t = tier_of_fields tf in
            Ok (Some t)
      in
      let* policy = sx_assoc fields "policy" in
      let* s_policy =
        match policy with
        | [] -> Ok None
        | [ doc ] -> Ok (Some doc)
        | _ -> Error "malformed policy-state section"
      in
      let* metrics = sx_assoc fields "metrics" in
      let* s_metrics =
        match metrics with
        | [] -> Ok None
        | entries ->
            let* d = map_result dumped_of_sexp entries in
            Ok (Some d)
      in
      Ok
        {
          s_at; s_next_ckpt; s_events; s_next_seq; s_states; s_queue;
          s_active; s_outcomes; s_next_lease; s_quota; s_residual;
          s_shed_total; s_gate_rejected; s_budget_exhaustions; s_peak_qubits;
          s_peak_queue; s_retries; s_util_integral; s_last_time; s_makespan;
          s_faults_injected; s_faults_repaired; s_leases_interrupted;
          s_leases_recovered; s_leases_aborted; s_lost_service;
          s_reconfig_applied; s_reconfig_recovered; s_limiter; s_health;
          s_tier; s_policy; s_metrics;
        }
  | Sexp.List (Sexp.Atom v :: _)
    when String.length v > 20 && String.sub v 0 20 = "muerp-engine-snapsho" ->
      Error
        (Printf.sprintf "unsupported snapshot version %s (this build reads %s)"
           v snapshot_version)
  | _ ->
      Error
        ("malformed snapshot document (expected (" ^ snapshot_version
       ^ " ...))")

(* ------------------------------------------------------------------ *)

let validate g requests =
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (r : Workload.request) ->
      if Hashtbl.mem ids r.Workload.id then
        invalid_arg "Engine.run: duplicate request id";
      Hashtbl.replace ids r.Workload.id ();
      if r.Workload.arrival < 0. || not (Float.is_finite r.Workload.arrival)
      then invalid_arg "Engine.run: bad arrival time";
      if r.Workload.duration <= 0. || not (Float.is_finite r.Workload.duration)
      then invalid_arg "Engine.run: duration must be positive";
      if r.Workload.deadline < r.Workload.arrival then
        invalid_arg "Engine.run: deadline before arrival";
      if List.length r.Workload.users < 2 then
        invalid_arg "Engine.run: request needs >= 2 users";
      if
        List.length (List.sort_uniq compare r.Workload.users)
        <> List.length r.Workload.users
      then invalid_arg "Engine.run: duplicate users in request";
      List.iter
        (fun u ->
          if not (Graph.is_user g u) then
            invalid_arg "Engine.run: request member is not a user")
        r.Workload.users)
    requests

(* Vertices strictly between a channel path's endpoints — the switches
   whose qubits the channel consumes (Capacity keeps the same helper
   private). *)
let interior_of_path = function
  | [] | [ _ ] -> []
  | _ :: rest ->
      let rec drop_last = function
        | [] | [ _ ] -> []
        | x :: tl -> x :: drop_last tl
      in
      drop_last rest

let total_switch_qubits g =
  List.fold_left (fun acc s -> acc + Graph.qubits g s) 0 (Graph.switches g)

(* Nothing after [max (arrival, deadline) + duration] of any request can
   affect an outcome, so the fault schedule needs no more horizon. *)
let fault_horizon requests =
  List.fold_left
    (fun acc (r : Workload.request) ->
      Float.max acc
        (Float.max r.Workload.arrival r.Workload.deadline
        +. r.Workload.duration))
    0. requests

let validate_schedule g schedule =
  List.iter
    (fun (fe : Fsched.event) ->
      if Float.is_nan fe.time || fe.time < 0. then
        invalid_arg "Engine.run: fault event with bad timestamp";
      match fe.element with
      | Fsched.Link eid ->
          if eid < 0 || eid >= Graph.edge_count g then
            invalid_arg "Engine.run: fault event on unknown edge"
      | Fsched.Switch vid ->
          if vid < 0 || vid >= Graph.vertex_count g then
            invalid_arg "Engine.run: fault event on unknown vertex")
    schedule

let run ?config:(cfg = config Policy.prim) ?faults ?fault_schedule ?on_incident
    ?on_health ?on_transition ?pool ?(slot = 0.) ?checkpoint ?(reconfig = [])
    ?restore_from g params ~requests =
  validate g requests;
  Option.iter (validate_schedule g) fault_schedule;
  if slot < 0. || not (Float.is_finite slot) then
    invalid_arg "Engine.run: slot must be finite and >= 0";
  (if (checkpoint <> None || restore_from <> None)
      && not cfg.policy.Policy.checkpoint_safe
   then
     invalid_arg
       (Printf.sprintf
          "Engine.run: policy %s keeps hidden mutable state and cannot be \
           checkpointed or restored"
          cfg.policy.Policy.name));
  (match checkpoint with
  | Some (every, _) ->
      if every <= 0. || not (Float.is_finite every) then
        invalid_arg "Engine.run: checkpoint interval must be positive"
  | None -> ());
  (match Reconfig.validate g reconfig with
  | Ok () -> ()
  | Error e -> invalid_arg ("Engine.run: " ^ e));
  (* Called from inside a parallel region (a policy or harness that is
     itself running on a pool), nested submission would raise deep in
     the loop: degrade to the serial path instead. *)
  let pool =
    match pool with
    | Some _ when Qnet_util.Pool.in_parallel_region () -> None
    | p -> p
  in
  let capacity = Capacity.of_graph g in
  let health =
    (* Reconfiguration rides on the same availability state as faults:
       an administrative leave excludes the element from routing exactly
       as a failure would, so recovery and cache invalidation behave
       identically for both. *)
    match (faults, fault_schedule) with
    | None, None -> if reconfig = [] then None else Some (Fhealth.create g)
    | _ -> Some (Fhealth.create g)
  in
  (match (health, on_health) with
  | Some h, Some f -> f h
  | _ -> ());
  let exclude =
    match health with
    | None -> Routing.no_exclusion
    | Some h -> Fhealth.exclusion h
  in
  let events : event Event_queue.t = Event_queue.create () in
  let states : (int, req_state) Hashtbl.t = Hashtbl.create 64 in
  let active : (int, active) Hashtbl.t = Hashtbl.create 64 in
  let limiter = Admission_ctl.limiter cfg.overload in
  (match cfg.overload.Admission_ctl.max_queue with
  | Some q -> Tm.Gauge.set_max g_queue_limit (float_of_int q)
  | None -> ());
  let fresh_budget () =
    Option.map (fun fuel -> Budget.create ~fuel) cfg.budget
  in
  let shed_total = ref 0 in
  let gate_rejected = ref 0 in
  let budget_exhaustions = ref 0 in
  let next_lease = ref 0 in
  let queue = ref [] in
  (* waiting request ids, FIFO (head = oldest) *)
  let outcomes = ref [] in
  let unresolved = ref (List.length requests) in
  let in_use = ref 0 in
  let peak_qubits = ref 0 in
  let peak_queue = ref 0 in
  let retries = ref 0 in
  let util_integral = ref 0. in
  let last_time = ref 0. in
  let makespan = ref 0. in
  let faults_injected = ref 0 in
  let faults_repaired = ref 0 in
  let leases_interrupted = ref 0 in
  let leases_recovered = ref 0 in
  let leases_aborted = ref 0 in
  let lost_service = ref 0. in
  let reconfig_applied = ref 0 in
  let reconfig_recovered = ref 0 in
  let emit tr =
    match on_transition with None -> () | Some f -> f tr
  in
  let element_parts = function
    | Fsched.Link e -> (true, e)
    | Fsched.Switch v -> (false, v)
  in
  let resolve st resolution =
    st.resolved <- true;
    st.waiting <- false;
    decr unresolved;
    outcomes := { request = st.req; resolution } :: !outcomes
  in
  (* One routing attempt for [st] at time [t]; on success the lease is
     registered and its expiry scheduled — resolution waits for the
     lease to complete (it may yet be interrupted by a fault). *)
  let inflight_full () =
    match cfg.overload.Admission_ctl.max_inflight with
    | None -> false
    | Some m ->
        let full = Hashtbl.length active >= m in
        if full then Tm.Counter.incr c_inflight_blocked;
        full
  in
  (* One policy invocation under the configured fuel budget; exhaustion
     counts as a failed attempt (capacity already rolled back by the
     solver layer), never as an engine error. *)
  let route_once users =
    match
      Qnet_telemetry.Span.with_span "online.route" (fun () ->
          cfg.policy.Policy.route ~exclude ~budget:(fresh_budget ()) g params
            ~capacity ~users)
    with
    | tree -> tree
    | exception Budget.Exhausted _ ->
        incr budget_exhaustions;
        Tm.Counter.incr c_budget_exhausted;
        None
  in
  let served_tier () =
    match cfg.tier_stats with
    | None -> -1
    | Some stats -> stats.Policy.last
  in
  (* [spec], when present, is a still-valid speculative solve for this
     request against a snapshot equal to the current live state: a
     non-tree verdict is reused as-is, a tree is admitted through
     [Lease.commit] (and, defensively, re-solved live if the commit is
     refused — unreachable while the validity check holds, but it keeps
     admission sound regardless). *)
  let try_serve ?spec t st =
    let r = st.req in
    st.attempts <- st.attempts + 1;
    if inflight_full () then false
    else
      let live_solve () =
        match route_once r.Workload.users with
        | None -> None
        | Some tree -> Some (tree, Lease.acquire tree)
      in
      let admitted =
        match spec with
        | None -> live_solve ()
        | Some (Spec_tree tree) -> (
            match Lease.commit capacity tree with
            | Some lease -> Some (tree, lease)
            | None -> live_solve ())
        | Some Spec_none -> None
        | Some Spec_exhausted ->
            incr budget_exhaustions;
            Tm.Counter.incr c_budget_exhausted;
            None
      in
      match admitted with
      | None -> false
      | Some (tree, lease) ->
          let lid = !next_lease in
          incr next_lease;
          Hashtbl.replace active lid
            {
              lid;
              st;
              lease;
              tree;
              started = t;
              finish = t +. r.Workload.duration;
              recoveries = 0;
              tier = served_tier ();
            };
          emit (T_admit { at = t; lid; request = r.Workload.id });
          Event_queue.push events (t +. r.Workload.duration) (Expiry lid);
          in_use := !in_use + Lease.qubits lease;
          peak_qubits := max !peak_qubits !in_use;
          st.waiting <- false;
          Tm.Histogram.observe h_wait (t -. r.Workload.arrival);
          true
  in
  let schedule_retry t st =
    let rt = min (t +. st.backoff) st.req.Workload.deadline in
    st.backoff <- min (2. *. st.backoff) cfg.retry_max;
    Event_queue.push events rt (Retry st.req.Workload.id)
  in
  let expire t st =
    Tm.Counter.incr c_expired;
    queue := List.filter (fun id -> id <> st.req.Workload.id) !queue;
    resolve st (Expired { at = t; attempts = st.attempts })
  in
  let shed t st reason =
    incr shed_total;
    Tm.Counter.incr c_shed;
    (match reason with
    | Rate_limit -> Tm.Counter.incr c_shed_rate
    | Queue_pressure -> Tm.Counter.incr c_shed_queue);
    queue := List.filter (fun id -> id <> st.req.Workload.id) !queue;
    resolve st (Shed { at = t; reason })
  in
  let victim_of t (st : req_state) =
    {
      Admission_ctl.id = st.req.Workload.id;
      group = List.length st.req.Workload.users;
      slack = st.req.Workload.deadline -. t;
    }
  in
  (* Queue-pressure shedding: with the depth limit hit, refuse the
     cheapest-to-refuse request among the waiters and the newcomer
     (largest group, then loosest deadline, then id).  Returns [true]
     when the newcomer survived and may be enqueued. *)
  let shed_for_room t (newcomer : req_state) =
    match cfg.overload.Admission_ctl.max_queue with
    | None -> true
    | Some limit ->
        if List.length !queue < limit then true
        else begin
          let candidates =
            victim_of t newcomer
            :: List.map (fun id -> victim_of t (Hashtbl.find states id)) !queue
          in
          match Admission_ctl.pick_victim candidates with
          | None -> true
          | Some v ->
              if v.Admission_ctl.id = newcomer.req.Workload.id then begin
                shed t newcomer Queue_pressure;
                false
              end
              else begin
                shed t (Hashtbl.find states v.Admission_ctl.id) Queue_pressure;
                true
              end
        end
  in
  let on_arrival ?spec t (r : Workload.request) =
    Tm.Counter.incr c_arrivals;
    let st =
      {
        req = r;
        attempts = 0;
        backoff = cfg.retry_base;
        waiting = false;
        resolved = false;
      }
    in
    Hashtbl.replace states r.Workload.id st;
    let over_rate =
      match limiter with
      | None -> false
      | Some lim -> not (Limiter.try_take lim ~now:t)
    in
    let gate_infeasible =
      (* Provable-infeasibility gate: a group the oracle condemns can
         never be served, so reject before any routing work (and before
         it can occupy queue space other requests could use). *)
      (not over_rate)
      &&
      match cfg.overload.Admission_ctl.infeasible with
      | Some oracle -> oracle r.Workload.users
      | None -> false
    in
    if over_rate then shed t st Rate_limit
    else if gate_infeasible then begin
      incr gate_rejected;
      Tm.Counter.incr c_gate_rejected;
      Tm.Counter.incr c_rejected;
      resolve st (Rejected { at = t; queue_full = false })
    end
    else if not (try_serve ?spec t st) then
      match cfg.admission with
      | Reject ->
          Tm.Counter.incr c_rejected;
          resolve st (Rejected { at = t; queue_full = false })
      | Queue bound ->
          if r.Workload.deadline <= t then expire t st
          else if not (shed_for_room t st) then ()
          else if List.length !queue >= bound then begin
            Tm.Counter.incr c_rejected;
            resolve st (Rejected { at = t; queue_full = true })
          end
          else begin
            st.waiting <- true;
            queue := !queue @ [ r.Workload.id ];
            peak_queue := max !peak_queue (List.length !queue);
            schedule_retry t st
          end
  in
  let on_retry ?spec t id =
    let st = Hashtbl.find states id in
    if st.waiting then
      if t >= st.req.Workload.deadline then
        (* Patience ran out while queued: settle as expired without a
           futile final routing attempt (the serve window is
           [arrival, deadline) once waiting). *)
        expire t st
      else begin
        incr retries;
        Tm.Counter.incr c_retries;
        if try_serve ?spec t st then
          queue := List.filter (fun i -> i <> id) !queue
        else schedule_retry t st
      end
  in
  (* Work conservation: whenever capacity or connectivity improves
     (lease expiry, fault abort, element repair), offer it to the
     longest-waiting requests first, without waiting out their backoff
     timers. *)
  let rescan_queue t =
    queue :=
      List.filter
        (fun id ->
          let st = Hashtbl.find states id in
          if st.req.Workload.deadline <= t then begin
            (* Lapsed while waiting for its own retry event; settle it
               now so the freed capacity is not offered to a request
               that has already abandoned. *)
            resolve st
              (Expired
                 { at = st.req.Workload.deadline; attempts = st.attempts });
            Tm.Counter.incr c_expired;
            false
          end
          else begin
            incr retries;
            Tm.Counter.incr c_retries;
            not (try_serve t st)
          end)
        !queue
  in
  let on_expiry t lid =
    match Hashtbl.find_opt active lid with
    | None -> () (* aborted mid-lease; stale expiry *)
    | Some a ->
        Hashtbl.remove active lid;
        in_use := !in_use - Lease.qubits a.lease;
        Lease.release capacity a.lease;
        emit (T_release { at = t; lid });
        let rate = Ent_tree.rate_prob a.tree in
        Tm.Counter.incr c_served;
        Tm.Histogram.observe h_rate rate;
        if a.tier > 0 then Tm.Counter.incr c_degraded;
        resolve a.st
          (Served
             {
               start = a.started;
               finish = t;
               tree = a.tree;
               rate;
               attempts = a.st.attempts;
               recoveries = a.recoveries;
               tier = a.tier;
             });
        rescan_queue t
  in
  let dead_path path = not (Routing.path_ok g exclude path) in
  let tree_dead (tree : Ent_tree.t) =
    List.exists
      (fun (c : Channel.t) -> dead_path c.Channel.path)
      tree.Ent_tree.channels
  in
  (* Channel-level repair: refund only the channels [dead] condemns,
     then find a replacement channel between the same endpoints over the
     residual graph minus the failed (or administratively drained)
     elements. *)
  let repair ~dead a =
    let live, dead_cs =
      List.partition
        (fun (c : Channel.t) -> not (dead c.Channel.path))
        a.tree.Ent_tree.channels
    in
    let remainder, _dead_paths = Lease.release_where capacity a.lease ~dead in
    let rec replace acc = function
      | [] -> Some (List.rev acc)
      | (c : Channel.t) :: rest -> (
          match
            Routing.best_channel ~exclude g params ~capacity ~src:c.src
              ~dst:c.dst
          with
          | Some (repl : Channel.t) ->
              Capacity.consume_channel capacity repl.Channel.path;
              replace (repl :: acc) rest
          | None ->
              List.iter
                (fun (r : Channel.t) ->
                  Capacity.release_channel capacity r.Channel.path)
                acc;
              None)
    in
    match replace [] dead_cs with
    | None ->
        Option.iter (fun rem -> Lease.release capacity rem) remainder;
        None
    | Some repls ->
        let tree' = Ent_tree.of_channels (live @ repls) in
        Verify.check_exn ~context:"fault repair" g params
          ~users:a.st.req.Workload.users tree';
        a.tree <- tree';
        a.lease <- Lease.acquire tree';
        Some tree'
  in
  let reroute a =
    Lease.release capacity a.lease;
    match
      cfg.policy.Policy.route ~exclude ~budget:(fresh_budget ()) g params
        ~capacity ~users:a.st.req.Workload.users
    with
    | exception Budget.Exhausted _ ->
        incr budget_exhaustions;
        Tm.Counter.incr c_budget_exhausted;
        None
    | None -> None
    | Some tree' ->
        Verify.check_exn ~context:"fault reroute" g params
          ~users:a.st.req.Workload.users tree';
        a.tree <- tree';
        a.lease <- Lease.acquire tree';
        a.tier <- served_tier ();
        Some tree'
  in
  (* [dead] condemns the channels the recovery must replace (defaults to
     the health exclusion); [admin] marks an operator-driven recovery so
     it lands in the reconfig counters rather than the fault ones. *)
  let recover ?(dead = dead_path) ?(admin = false) t element a =
    incr leases_interrupted;
    Tm.Counter.incr c_leases_interrupted;
    let before = a.tree in
    let t0 = Qnet_telemetry.Clock.now_s () in
    in_use := !in_use - Lease.qubits a.lease;
    let after =
      Qnet_telemetry.Span.with_span "online.recover" (fun () ->
          match cfg.recovery with
          | Abort ->
              Lease.release capacity a.lease;
              None
          | Repair -> repair ~dead a
          | Reroute -> reroute a)
    in
    (match after with
    | Some _ ->
        emit (T_recover { at = t; lid = a.lid });
        in_use := !in_use + Lease.qubits a.lease;
        peak_qubits := max !peak_qubits !in_use;
        a.recoveries <- a.recoveries + 1;
        incr leases_recovered;
        Tm.Counter.incr c_leases_recovered;
        if admin then begin
          incr reconfig_recovered;
          Tm.Counter.incr c_reconfig_recovered
        end;
        Tm.Histogram.observe h_recovery (Qnet_telemetry.Clock.elapsed_since t0)
    | None ->
        (* Abort-and-refund: the capacity is already back in the pool;
           the request ends here, with the unserved remainder of its
           lease recorded as lost service. *)
        emit (T_abort { at = t; lid = a.lid });
        incr leases_aborted;
        Tm.Counter.incr c_leases_aborted;
        lost_service := !lost_service +. Float.max 0. (a.finish -. t);
        Hashtbl.remove active a.lid;
        resolve a.st
          (Interrupted
             {
               start = a.started;
               at = t;
               attempts = a.st.attempts;
               recoveries = a.recoveries;
             }));
    match on_incident with
    | None -> ()
    | Some f ->
        f { at = t; request_id = a.st.req.Workload.id; element; before; after }
  in
  (* A fault transition invalidates every outstanding speculation even
     when no capacity moved: exclusion state steers routing, so a
     snapshot from before the transition no longer predicts what the
     live solve would return. *)
  let batch_dirty = ref false in
  let on_fault t (fe : Fsched.event) =
    match health with
    | None -> ()
    | Some h -> (
        match Fhealth.apply h fe with
        | Fhealth.No_change -> ()
        | Fhealth.Went_down ->
            batch_dirty := true;
            incr faults_injected;
            Tm.Counter.incr c_faults_injected;
            (let link, element = element_parts fe.Fsched.element in
             emit (T_fault { at = t; link; element; up = false }));
            (* Active trees are all healthy between fault events, so the
               dead ones now are exactly those crossing the failed
               element.  Lease-id order keeps multi-victim recovery
               deterministic. *)
            let affected =
              Hashtbl.fold
                (fun _ a acc -> if tree_dead a.tree then a :: acc else acc)
                active []
              |> List.sort (fun (x : active) y -> compare x.lid y.lid)
            in
            List.iter (recover t fe.element) affected;
            if affected <> [] then rescan_queue t
        | Fhealth.Came_up ->
            batch_dirty := true;
            incr faults_repaired;
            Tm.Counter.incr c_faults_repaired;
            (let link, element = element_parts fe.Fsched.element in
             emit (T_fault { at = t; link; element; up = true }));
            (* Connectivity improved: queued requests that were blocked
               by the failed element may route now. *)
            rescan_queue t)
  in
  (* Operator-driven topology changes, applied without draining traffic.
     Leaves and removals run through the same health transition as
     faults (recover affected leases, re-exclude the element); joins and
     additions re-admit it; a provision moves the switch's quota and —
     when shrunk below current usage — recovers just enough leases
     through the switch to fit the new budget, in lease-id order. *)
  let on_reconf t (re : Reconfig.event) =
    let admin_transition element up =
      match health with
      | None -> ()
      | Some h -> (
          match Fhealth.apply h { Fsched.time = t; element; up } with
          | Fhealth.No_change -> ()
          | Fhealth.Went_down ->
              batch_dirty := true;
              incr reconfig_applied;
              Tm.Counter.incr c_reconfig_applied;
              (let link, el = element_parts element in
               emit (T_reconfig { at = t; link; element = el; up = false }));
              let affected =
                Hashtbl.fold
                  (fun _ a acc -> if tree_dead a.tree then a :: acc else acc)
                  active []
                |> List.sort (fun (x : active) y -> compare x.lid y.lid)
              in
              List.iter (recover ~admin:true t element) affected;
              if affected <> [] then rescan_queue t
          | Fhealth.Came_up ->
              batch_dirty := true;
              incr reconfig_applied;
              Tm.Counter.incr c_reconfig_applied;
              (let link, el = element_parts element in
               emit (T_reconfig { at = t; link; element = el; up = true }));
              rescan_queue t)
    in
    match re.Reconfig.change with
    | Reconfig.Switch_leave v -> admin_transition (Fsched.Switch v) false
    | Reconfig.Switch_join v -> admin_transition (Fsched.Switch v) true
    | Reconfig.Link_remove e -> admin_transition (Fsched.Link e) false
    | Reconfig.Link_add e -> admin_transition (Fsched.Link e) true
    | Reconfig.Provision { switch = v; qubits = q } ->
        batch_dirty := true;
        incr reconfig_applied;
        Tm.Counter.incr c_reconfig_applied;
        emit (T_provision { at = t; switch = v; qubits = q });
        Capacity.provision capacity v q;
        (if Capacity.remaining capacity v < 0 then begin
           (* Shrunk below current usage: recover leases crossing the
              switch, oldest first, until the deficit clears.  Each
              recovery either replaces the crossing channels (the
              replacement cannot re-enter [v] — its residual is
              negative, so it cannot relay) or aborts and refunds, so
              the loop provably terminates with residual >= 0 once no
              crossing lease remains. *)
           let through path = List.mem v (interior_of_path path) in
           let crossing =
             Hashtbl.fold
               (fun _ a acc ->
                 if
                   List.exists
                     (fun (c : Channel.t) -> through c.Channel.path)
                     a.tree.Ent_tree.channels
                 then a :: acc
                 else acc)
               active []
             |> List.sort (fun (x : active) y -> compare x.lid y.lid)
           in
           List.iter
             (fun a ->
               if Capacity.remaining capacity v < 0 then
                 recover ~dead:through ~admin:true t (Fsched.Switch v) a)
             crossing
         end);
        rescan_queue t
  in
  (* Rebuild the complete engine state from a snapshot.  Trees are
     reconstructed channel-by-channel against this run's graph (which
     re-validates every path), their capacity re-consumed, and the
     recorded residuals cross-checked — a snapshot that disagrees with
     the graph or flags it is restored under fails loudly here rather
     than mis-accounting silently. *)
  let restore_state (snap : snapshot) =
    let fail msg = invalid_arg ("Engine.run: restore: " ^ msg) in
    let req_by_id = Hashtbl.create (max 16 (List.length requests)) in
    List.iter
      (fun (r : Workload.request) -> Hashtbl.replace req_by_id r.Workload.id r)
      requests;
    let req_of id =
      match Hashtbl.find_opt req_by_id id with
      | Some r -> r
      | None ->
          fail
            (Printf.sprintf
               "snapshot references request %d, absent from this workload \
                (restore must replay the original seed and flags)"
               id)
    in
    let tree_of_paths paths =
      let channels =
        List.map
          (fun path ->
            match Channel.make g params path with
            | Ok c -> c
            | Error reason ->
                fail ("snapshot channel invalid on this network: " ^ reason))
          paths
      in
      Ent_tree.of_channels channels
    in
    let des_event = function
      | SE_arrival id -> Arrival (req_of id)
      | SE_retry id -> Retry id
      | SE_expiry lid -> Expiry lid
      | SE_fault fe -> Fault fe
      | SE_reconf re -> Reconf re
    in
    let des_resolution = function
      | SR_served r ->
          Served
            {
              start = r.r_start;
              finish = r.r_finish;
              tree = tree_of_paths r.r_paths;
              rate = r.r_rate;
              attempts = r.r_attempts;
              recoveries = r.r_recoveries;
              tier = r.r_tier;
            }
      | SR_rejected r -> Rejected { at = r.r_at; queue_full = r.r_queue_full }
      | SR_shed r -> Shed { at = r.r_at; reason = r.r_reason }
      | SR_expired r -> Expired { at = r.r_at; attempts = r.r_attempts }
      | SR_interrupted r ->
          Interrupted
            {
              start = r.r_start;
              at = r.r_at;
              attempts = r.r_attempts;
              recoveries = r.r_recoveries;
            }
    in
    List.iter
      (fun (v, q) ->
        if v < 0 || v >= Graph.vertex_count g || not (Graph.is_switch g v)
        then fail "quota entry names a non-switch vertex";
        if q < 0 then fail "negative quota in snapshot";
        Capacity.provision capacity v q)
      snap.s_quota;
    List.iter
      (fun ss ->
        Hashtbl.replace states ss.ss_id
          {
            req = req_of ss.ss_id;
            attempts = ss.ss_attempts;
            backoff = ss.ss_backoff;
            waiting = ss.ss_waiting;
            resolved = ss.ss_resolved;
          })
      snap.s_states;
    List.iter
      (fun id ->
        if not (Hashtbl.mem states id) then
          fail "queued request id has no recorded state")
      snap.s_queue;
    queue := snap.s_queue;
    List.iter
      (fun sa ->
        let st =
          match Hashtbl.find_opt states sa.sa_id with
          | Some st -> st
          | None -> fail "active lease names an unknown request"
        in
        let tree = tree_of_paths sa.sa_paths in
        (try
           List.iter
             (fun (c : Channel.t) ->
               Capacity.consume_channel capacity c.Channel.path)
             tree.Ent_tree.channels
         with Invalid_argument _ ->
           fail "active leases exceed switch capacity (corrupt snapshot)");
        let lease = Lease.acquire tree in
        Hashtbl.replace active sa.sa_lid
          {
            lid = sa.sa_lid;
            st;
            lease;
            tree;
            started = sa.sa_started;
            finish = sa.sa_finish;
            recoveries = sa.sa_recoveries;
            tier = sa.sa_tier;
          };
        in_use := !in_use + Lease.qubits lease)
      snap.s_active;
    List.iter
      (fun v ->
        let expect =
          match List.assoc_opt v snap.s_residual with
          | Some r -> r
          | None -> Capacity.quota capacity v
        in
        if Capacity.remaining capacity v <> expect then
          fail
            "capacity residuals disagree with the snapshot (corrupt \
             snapshot, or a different network or flags)")
      (Graph.switches g);
    outcomes :=
      List.map
        (fun (id, res) -> { request = req_of id; resolution = des_resolution res })
        snap.s_outcomes;
    unresolved := List.length requests - List.length !outcomes;
    if !unresolved < 0 then
      fail "snapshot settles more requests than this workload contains";
    next_lease := snap.s_next_lease;
    shed_total := snap.s_shed_total;
    gate_rejected := snap.s_gate_rejected;
    budget_exhaustions := snap.s_budget_exhaustions;
    peak_qubits := snap.s_peak_qubits;
    peak_queue := snap.s_peak_queue;
    retries := snap.s_retries;
    util_integral := snap.s_util_integral;
    last_time := snap.s_last_time;
    makespan := snap.s_makespan;
    faults_injected := snap.s_faults_injected;
    faults_repaired := snap.s_faults_repaired;
    leases_interrupted := snap.s_leases_interrupted;
    leases_recovered := snap.s_leases_recovered;
    leases_aborted := snap.s_leases_aborted;
    lost_service := snap.s_lost_service;
    reconfig_applied := snap.s_reconfig_applied;
    reconfig_recovered := snap.s_reconfig_recovered;
    (match (snap.s_limiter, limiter) with
    | Some st, Some lim -> Limiter.restore lim st
    | None, None -> ()
    | Some _, None ->
        fail
          "snapshot carries rate-limiter state but this run has no rate \
           limit (flags differ)"
    | None, Some _ ->
        fail
          "this run has a rate limiter but the snapshot has none (flags \
           differ)");
    (match (snap.s_health, health) with
    | Some sh, Some h -> (
        try Fhealth.restore h sh with Invalid_argument m -> fail m)
    | None, None -> ()
    | Some _, None ->
        fail
          "snapshot tracks element health but this run has no faults or \
           reconfiguration configured (flags differ)"
    | None, Some _ ->
        fail
          "this run tracks element health but the snapshot has none (flags \
           differ)");
    (match (snap.s_tier, cfg.tier_stats) with
    | Some st, Some (stats : Policy.tier_stats) ->
        let n = Array.length stats.Policy.names in
        if
          Array.length st.st_serves <> n
          || Array.length st.st_exhaustions <> n
          || Array.length st.st_verify_rejects <> n
          || Array.length st.st_breaker_skips <> n
          || Array.length st.st_breakers
             <> Array.length stats.Policy.breakers
        then fail "tiered-policy state has the wrong number of tiers";
        Array.blit st.st_serves 0 stats.Policy.serves 0 n;
        Array.blit st.st_exhaustions 0 stats.Policy.exhaustions 0 n;
        Array.blit st.st_verify_rejects 0 stats.Policy.verify_rejects 0 n;
        Array.blit st.st_breaker_skips 0 stats.Policy.breaker_skips 0 n;
        Array.iteri
          (fun i bs -> Breaker.restore stats.Policy.breakers.(i) bs)
          st.st_breakers;
        stats.Policy.last <- st.st_last
    | None, None -> ()
    | Some _, None ->
        fail "snapshot carries tiered-policy state but this run is untiered"
    | None, Some _ ->
        fail "this run is tiered but the snapshot has no tier state");
    (match (snap.s_policy, cfg.policy.Policy.state) with
    | Some doc, Some h -> (
        match h.Policy.load g params doc with
        | Ok () -> ()
        | Error m -> fail ("policy state: " ^ m))
    | None, None -> ()
    | Some _, None ->
        fail
          "snapshot carries policy state but this run's policy keeps none \
           (policies differ)"
    | None, Some _ ->
        fail
          "this run's policy keeps restorable state but the snapshot has \
           none (policies differ)");
    (match snap.s_metrics with
    | Some d when Tm.enabled () -> (
        try Tm.absorb d with Invalid_argument m -> fail m)
    | _ -> ());
    try
      Event_queue.load events ~next_seq:snap.s_next_seq
        (List.map (fun (t, seq, se) -> (t, seq, des_event se)) snap.s_events)
    with Invalid_argument m -> fail m
  in
  (* Populate the queue (fresh run) or rebuild the full engine state
     from a checkpoint (restore). *)
  (match restore_from with
  | Some snap -> restore_state snap
  | None ->
      List.iter
        (fun (r : Workload.request) ->
          Event_queue.push events r.Workload.arrival (Arrival r))
        requests;
      let schedule =
        match fault_schedule with
        | Some s -> List.sort Fsched.compare_event s
        | None -> (
            match faults with
            | None -> []
            | Some model ->
                Fsched.generate model g ~horizon:(fault_horizon requests))
      in
      List.iter
        (fun (fe : Fsched.event) -> Event_queue.push events fe.time (Fault fe))
        schedule;
      (* Reconfig events are pushed after arrivals and faults, so at a
         shared instant the tie-break order is arrival < fault < admin
         change — operators act on the state faults produced. *)
      List.iter
        (fun (re : Reconfig.event) ->
          Event_queue.push events re.Reconfig.time (Reconf re))
        (List.stable_sort
           (fun (a : Reconfig.event) b ->
             compare a.Reconfig.time b.Reconfig.time)
           reconfig));
  (* An event that can no longer change any outcome must not stretch the
     makespan or the utilization window. *)
  let inert = function
    | Fault _ | Reconf _ -> !unresolved = 0
    | Expiry lid -> not (Hashtbl.mem active lid)
    | Arrival _ | Retry _ -> false
  in
  let dispatch ?spec t ev =
    if not (inert ev) then begin
      util_integral :=
        !util_integral +. ((t -. !last_time) *. float_of_int !in_use);
      last_time := t;
      makespan := max !makespan t;
      match ev with
      | Arrival r -> on_arrival ?spec t r
      | Retry id -> on_retry ?spec t id
      | Expiry lid -> on_expiry t lid
      | Fault fe -> on_fault t fe
      | Reconf re -> on_reconf t re
    end
  in
  (* Checkpoint cadence.  Snapshots are cut at drain-loop boundaries —
     between batches the state is exactly "everything before the next
     event", which is what a restore replays from.  A restored run
     resumes the original cadence (the snapshot records the next
     instant), so its own checkpoints land where the uninterrupted
     run's would. *)
  let next_ckpt =
    ref
      (match (checkpoint, restore_from) with
      | None, _ -> infinity
      | Some (every, _), None -> every
      | Some (every, _), Some snap ->
          if Float.is_finite snap.s_next_ckpt && snap.s_next_ckpt > snap.s_at
          then snap.s_next_ckpt
          else begin
            let c = ref every in
            while !c <= snap.s_at do
              c := !c +. every
            done;
            !c
          end)
  in
  let make_snapshot at =
    let paths_of (tree : Ent_tree.t) =
      List.map (fun (c : Channel.t) -> c.Channel.path) tree.Ent_tree.channels
    in
    let ser_event = function
      | Arrival r -> SE_arrival r.Workload.id
      | Retry id -> SE_retry id
      | Expiry lid -> SE_expiry lid
      | Fault fe -> SE_fault fe
      | Reconf re -> SE_reconf re
    in
    let ser_resolution = function
      | Served { start; finish; tree; rate; attempts; recoveries; tier } ->
          SR_served
            {
              r_start = start;
              r_finish = finish;
              r_paths = paths_of tree;
              r_rate = rate;
              r_attempts = attempts;
              r_recoveries = recoveries;
              r_tier = tier;
            }
      | Rejected { at; queue_full } ->
          SR_rejected { r_at = at; r_queue_full = queue_full }
      | Shed { at; reason } -> SR_shed { r_at = at; r_reason = reason }
      | Expired { at; attempts } -> SR_expired { r_at = at; r_attempts = attempts }
      | Interrupted { start; at; attempts; recoveries } ->
          SR_interrupted
            {
              r_start = start;
              r_at = at;
              r_attempts = attempts;
              r_recoveries = recoveries;
            }
    in
    let sorted_by f l = List.sort (fun a b -> compare (f a) (f b)) l in
    {
      s_at = at;
      s_next_ckpt = !next_ckpt;
      s_events =
        List.map
          (fun (t, seq, ev) -> (t, seq, ser_event ev))
          (Event_queue.entries events);
      s_next_seq = Event_queue.next_seq events;
      s_states =
        Hashtbl.fold
          (fun id st acc ->
            {
              ss_id = id;
              ss_attempts = st.attempts;
              ss_backoff = st.backoff;
              ss_waiting = st.waiting;
              ss_resolved = st.resolved;
            }
            :: acc)
          states []
        |> sorted_by (fun ss -> ss.ss_id);
      s_queue = !queue;
      s_active =
        Hashtbl.fold
          (fun _ a acc ->
            {
              sa_lid = a.lid;
              sa_id = a.st.req.Workload.id;
              sa_paths = paths_of a.tree;
              sa_started = a.started;
              sa_finish = a.finish;
              sa_recoveries = a.recoveries;
              sa_tier = a.tier;
            }
            :: acc)
          active []
        |> sorted_by (fun sa -> sa.sa_lid);
      s_outcomes =
        List.map
          (fun o -> (o.request.Workload.id, ser_resolution o.resolution))
          !outcomes;
      s_next_lease = !next_lease;
      s_quota =
        List.filter_map
          (fun v ->
            let q = Capacity.quota capacity v in
            if q <> Graph.qubits g v then Some (v, q) else None)
          (Graph.switches g);
      s_residual =
        List.filter_map
          (fun v ->
            let r = Capacity.remaining capacity v in
            if r <> Capacity.quota capacity v then Some (v, r) else None)
          (Graph.switches g);
      s_shed_total = !shed_total;
      s_gate_rejected = !gate_rejected;
      s_budget_exhaustions = !budget_exhaustions;
      s_peak_qubits = !peak_qubits;
      s_peak_queue = !peak_queue;
      s_retries = !retries;
      s_util_integral = !util_integral;
      s_last_time = !last_time;
      s_makespan = !makespan;
      s_faults_injected = !faults_injected;
      s_faults_repaired = !faults_repaired;
      s_leases_interrupted = !leases_interrupted;
      s_leases_recovered = !leases_recovered;
      s_leases_aborted = !leases_aborted;
      s_lost_service = !lost_service;
      s_reconfig_applied = !reconfig_applied;
      s_reconfig_recovered = !reconfig_recovered;
      s_limiter = Option.map Limiter.snapshot limiter;
      s_health = Option.map Fhealth.snapshot health;
      s_tier =
        Option.map
          (fun (stats : Policy.tier_stats) ->
            {
              st_serves = Array.copy stats.Policy.serves;
              st_exhaustions = Array.copy stats.Policy.exhaustions;
              st_verify_rejects = Array.copy stats.Policy.verify_rejects;
              st_breaker_skips = Array.copy stats.Policy.breaker_skips;
              st_breakers = Array.map Breaker.snapshot stats.Policy.breakers;
              st_last = stats.Policy.last;
            })
          cfg.tier_stats;
      s_policy =
        Option.map
          (fun (h : Policy.state_hooks) -> h.Policy.save ())
          cfg.policy.Policy.state;
      s_metrics = (if Tm.enabled () then Some (Tm.dump ()) else None);
    }
  in
  (* Speculation: solve every routable request of a drained batch
     concurrently against a zero-copy snapshot of the residual state.
     Each task gets its own [Capacity.overlay] view, so the live state
     is read-only for the whole parallel region; results keyed by
     request id, tagged with the capacity version they were solved
     under.  Which requests to solve is a prediction, not a commitment:
     a dry-run copy of the rate limiter skips arrivals the live limiter
     will shed, and retries are screened by their queue/deadline state
     at drain time — over- or under-speculation only wastes or forgoes
     work, never changes a result. *)
  let speculate batch =
    match pool with
    | Some p
      when cfg.policy.Policy.concurrent_safe && Qnet_util.Pool.jobs p > 1 -> (
        let lim = Option.map Limiter.copy limiter in
        let seen = Hashtbl.create 16 in
        let cands = ref [] in
        List.iter
          (fun (t, _, ev) ->
            match ev with
            | Arrival r ->
                let admitted =
                  match lim with
                  | None -> true
                  | Some l -> Limiter.try_take l ~now:t
                in
                if admitted && not (Hashtbl.mem seen r.Workload.id) then begin
                  Hashtbl.replace seen r.Workload.id ();
                  cands := (r.Workload.id, r.Workload.users) :: !cands
                end
            | Retry id -> (
                match Hashtbl.find_opt states id with
                | Some st
                  when st.waiting
                       && t < st.req.Workload.deadline
                       && not (Hashtbl.mem seen id) ->
                    Hashtbl.replace seen id ();
                    cands := (id, st.req.Workload.users) :: !cands
                | _ -> ())
            | Expiry _ | Fault _ | Reconf _ -> ())
          batch;
        let cands = Array.of_list (List.rev !cands) in
        if Array.length cands < 2 then None
        else begin
          let solve users () =
            match
              Qnet_telemetry.Span.with_span "online.route" (fun () ->
                  cfg.policy.Policy.route ~exclude ~budget:(fresh_budget ())
                    g params
                    ~capacity:(Capacity.overlay capacity)
                    ~users)
            with
            | Some tree -> Spec_tree tree
            | None -> Spec_none
            | exception Budget.Exhausted _ -> Spec_exhausted
          in
          let results =
            Qnet_util.Pool.map_thunks p
              (Array.map (fun (_, users) -> solve users) cands)
          in
          let specs = Hashtbl.create (Array.length cands) in
          Array.iteri
            (fun i r -> Hashtbl.replace specs (fst cands.(i)) r)
            results;
          Some (specs, Capacity.version capacity)
        end)
    | _ -> None
  in
  (* Commit: replay the drained batch in its exact (time, seq) order,
     merged with any events pushed while committing (their seqs are
     larger, so the comparison reproduces the serial pop order).  A
     speculation is honoured only while the live state still equals its
     snapshot — any capacity mutation or fault transition since then
     invalidates the whole batch's remaining specs, and those requests
     re-solve on the live residual exactly as the serial path would. *)
  let commit_batch specs batch =
    let spec_of ev =
      match specs with
      | None -> None
      | Some (tbl, snap_version) ->
          if !batch_dirty || Capacity.version capacity <> snap_version then
            None
          else (
            match ev with
            | Arrival r -> Hashtbl.find_opt tbl r.Workload.id
            | Retry id -> Hashtbl.find_opt tbl id
            | Expiry _ | Fault _ | Reconf _ -> None)
    in
    let rec go = function
      | [] -> ()
      | (bt, bseq, ev) :: rest as pending -> (
          match Event_queue.peek_key events with
          | Some (qt, qseq) when qt < bt || (qt = bt && qseq < bseq) ->
              (match Event_queue.pop events with
              | Some (t, ev') -> dispatch t ev'
              | None -> ());
              go pending
          | _ ->
              dispatch ?spec:(spec_of ev) bt ev;
              go rest)
    in
    go batch
  in
  let rec drain () =
    match Event_queue.peek_time events with
    | None -> ()
    | Some t0 ->
        (match checkpoint with
        | Some (every, sink) ->
            (* Emit every due checkpoint before touching the batch: the
               state right now is exactly "all events before [t0]
               processed", the boundary a restore resumes from. *)
            while !next_ckpt <= t0 do
              let c = !next_ckpt in
              next_ckpt := c +. every;
              sink c (make_snapshot c)
            done
        | None -> ());
        let upto = if slot > 0. then t0 +. slot else t0 in
        let batch = Event_queue.drain_until events ~upto in
        batch_dirty := false;
        commit_batch (speculate batch) batch;
        drain ()
  in
  drain ();
  (* Every lease has completed or been aborted; any residual consumption
     now is a refund bug, caught here rather than as silent
     over-capacity in the next run. *)
  List.iter
    (fun s ->
      if Capacity.used capacity s <> 0 then
        failwith "Engine.run: internal capacity leak (unreleased qubits)")
    (Graph.switches g);
  let outcomes =
    List.sort
      (fun a b -> compare a.request.Workload.id b.request.Workload.id)
      !outcomes
  in
  (* Watchdog pass: independently re-validate every tree that was put in
     service, including repaired and rerouted ones.  Read-only, so the
     optional pool parallelises it without affecting determinism. *)
  let served_trees =
    List.filter_map
      (fun o ->
        match o.resolution with
        | Served { tree; _ } -> Some (o.request.Workload.users, tree)
        | _ -> None)
      outcomes
    |> Array.of_list
  in
  let verify_one i =
    let users, tree = served_trees.(i) in
    Verify.check_exn ~context:"served tree" g params ~users tree
  in
  (match pool with
  | Some p ->
      Qnet_util.Pool.parallel_for p (Array.length served_trees) verify_one
  | None ->
      for i = 0 to Array.length served_trees - 1 do
        verify_one i
      done);
  let waits, rates =
    List.fold_left
      (fun (ws, rs) o ->
        match o.resolution with
        | Served { start; rate; _ } ->
            ((start -. o.request.Workload.arrival) :: ws, rate :: rs)
        | Rejected _ | Shed _ | Expired _ | Interrupted _ -> (ws, rs))
      ([], []) outcomes
  in
  let count pred = List.length (List.filter pred outcomes) in
  let served = List.length waits in
  let rejected =
    count (fun o -> match o.resolution with Rejected _ -> true | _ -> false)
  in
  let expired =
    count (fun o -> match o.resolution with Expired _ -> true | _ -> false)
  in
  let arrived = List.length requests in
  let mean = function
    | [] -> 0.
    | l -> Qnet_util.Stats.mean (Array.of_list l)
  in
  let p95 = function
    | [] -> 0.
    | l -> Qnet_util.Stats.percentile (Array.of_list l) 95.
  in
  let p99 = function
    | [] -> 0.
    | l -> Qnet_util.Stats.percentile (Array.of_list l) 99.
  in
  let degraded =
    count (fun o ->
        match o.resolution with Served { tier; _ } -> tier > 0 | _ -> false)
  in
  let tier_served =
    match cfg.tier_stats with
    | None -> []
    | Some stats ->
        let counts = Array.make (Array.length stats.Policy.names) 0 in
        List.iter
          (fun o ->
            match o.resolution with
            | Served { tier; _ }
              when tier >= 0 && tier < Array.length counts ->
                counts.(tier) <- counts.(tier) + 1
            | _ -> ())
          outcomes;
        Array.to_list
          (Array.mapi (fun i n -> (stats.Policy.names.(i), n)) counts)
  in
  let budget_exhaustions =
    !budget_exhaustions
    + (match cfg.tier_stats with
      | None -> 0
      | Some stats -> Array.fold_left ( + ) 0 stats.Policy.exhaustions)
  in
  let breaker_opens =
    match cfg.tier_stats with
    | None -> 0
    | Some stats ->
        Array.fold_left
          (fun acc b -> acc + Breaker.opens b)
          0 stats.Policy.breakers
  in
  let budget = total_switch_qubits g in
  let mean_utilization =
    if !makespan > 0. && budget > 0 then
      !util_integral /. (!makespan *. float_of_int budget)
    else 0.
  in
  Tm.Gauge.set_max g_peak_qubits (float_of_int !peak_qubits);
  Tm.Gauge.set_max g_peak_queue (float_of_int !peak_queue);
  Tm.Gauge.set g_utilization mean_utilization;
  ( {
      arrived;
      served;
      rejected;
      expired;
      acceptance_ratio =
        (if arrived = 0 then 0.
         else float_of_int served /. float_of_int arrived);
      mean_wait = mean waits;
      p95_wait = p95 waits;
      mean_rate = mean rates;
      throughput =
        (if !makespan > 0. then float_of_int served /. !makespan else 0.);
      makespan = !makespan;
      peak_qubits_in_use = !peak_qubits;
      peak_queue_depth = !peak_queue;
      retries = !retries;
      mean_utilization;
      faults_injected = !faults_injected;
      faults_repaired = !faults_repaired;
      leases_interrupted = !leases_interrupted;
      leases_recovered = !leases_recovered;
      leases_aborted = !leases_aborted;
      mean_time_to_repair =
        (match health with None -> 0. | Some h -> Fhealth.observed_mttr h);
      mean_lost_service =
        (if !leases_aborted = 0 then 0.
         else !lost_service /. float_of_int !leases_aborted);
      shed = !shed_total;
      gate_rejected = !gate_rejected;
      degraded;
      tier_served;
      budget_exhaustions;
      breaker_opens;
      p99_wait = p99 waits;
      reconfig_applied = !reconfig_applied;
      reconfig_recovered = !reconfig_recovered;
    },
    outcomes )

let report_table r =
  let t = Qnet_util.Table.create [ "metric"; "value" ] in
  let int name v = (name, string_of_int v) in
  let flt name v = (name, Qnet_util.Table.float_cell v) in
  List.fold_left
    (fun t (name, v) -> Qnet_util.Table.add_row t [ name; v ])
    t
    [
      int "arrived" r.arrived;
      int "served" r.served;
      int "rejected" r.rejected;
      int "expired" r.expired;
      flt "acceptance_ratio" r.acceptance_ratio;
      flt "mean_wait" r.mean_wait;
      flt "p95_wait" r.p95_wait;
      flt "mean_rate" r.mean_rate;
      flt "throughput" r.throughput;
      flt "makespan" r.makespan;
      int "peak_qubits_in_use" r.peak_qubits_in_use;
      int "peak_queue_depth" r.peak_queue_depth;
      int "retries" r.retries;
      flt "mean_utilization" r.mean_utilization;
      int "faults_injected" r.faults_injected;
      int "faults_repaired" r.faults_repaired;
      int "leases_interrupted" r.leases_interrupted;
      int "leases_recovered" r.leases_recovered;
      int "leases_aborted" r.leases_aborted;
      flt "mean_time_to_repair" r.mean_time_to_repair;
      flt "mean_lost_service" r.mean_lost_service;
    ]
  |> fun t ->
  (* Overload rows appear only when overload control did something, so
     a limits-disabled run prints the exact PR-4 era table. *)
  (if
     r.shed = 0 && r.degraded = 0 && r.budget_exhaustions = 0
     && r.breaker_opens = 0 && r.gate_rejected = 0
     && r.tier_served = []
   then t
   else
     List.fold_left
       (fun t (name, v) -> Qnet_util.Table.add_row t [ name; v ])
       t
       ([
          int "shed" r.shed;
          int "gate_rejected" r.gate_rejected;
          int "degraded" r.degraded;
          int "budget_exhaustions" r.budget_exhaustions;
          int "breaker_opens" r.breaker_opens;
          flt "p99_wait" r.p99_wait;
        ]
       @ List.map
           (fun (name, n) -> int ("tier_served:" ^ name) n)
           r.tier_served))
  |> fun t ->
  (* Reconfiguration rows likewise appear only when an admin change was
     applied, keeping reconfig-free tables byte-identical to PR-8. *)
  if r.reconfig_applied = 0 && r.reconfig_recovered = 0 then t
  else
    List.fold_left
      (fun t (name, v) -> Qnet_util.Table.add_row t [ name; v ])
      t
      [
        int "reconfig_applied" r.reconfig_applied;
        int "reconfig_recovered" r.reconfig_recovered;
      ]
