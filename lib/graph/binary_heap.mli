(** Array-backed binary min-heap keyed by floats.

    Backs the Dijkstra variant in {!Qnet_graph.Paths} and the channel
    selection queues in the routing algorithms.  Duplicate insertions of
    an element with improved priority are handled by the caller via lazy
    deletion (checking a [visited]/[dist] array on pop), which is simpler
    and in practice as fast as decrease-key for sparse graphs.

    Storage is two parallel flat arrays (an unboxed float array of keys
    and a value array) that grow in place by doubling: a push allocates
    nothing, so tight loops like repeated SSSP runs produce no
    per-entry garbage.  {!reset} empties the heap while keeping the
    storage for reuse. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap.  [capacity] pre-sizes the backing array. *)

val length : 'a t -> int
(** Number of stored entries (including stale duplicates the caller has
    not yet popped). *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop_min : 'a t -> (float * 'a) option
(** [pop_min h] removes and returns the minimum-key entry, or [None] if
    empty.  Ties are broken arbitrarily. *)

val peek_min : 'a t -> (float * 'a) option
(** Minimum-key entry without removal. *)

val clear : 'a t -> unit
(** Remove all entries, retaining the backing storage. *)

val reset : 'a t -> unit
(** Synonym of {!clear}, named for the reuse idiom: reset and refill
    the same heap across repeated runs (e.g. one SSSP per request)
    instead of allocating a fresh one. *)
