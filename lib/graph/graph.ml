type vertex_kind = User | Switch

type vertex = {
  id : int;
  kind : vertex_kind;
  qubits : int;
  x : float;
  y : float;
}

type edge = { eid : int; a : int; b : int; length : float }

type t = {
  vertices : vertex array;
  edges : edge array;
  adjacency : (int * int) list array; (* vertex id -> (neighbor, edge id) *)
  (* CSR mirror of [adjacency] for the traversal hot paths: vertex
     [v]'s incidences are the flattened (neighbor, edge id) pairs at
     positions [csr_off.(v) .. csr_off.(v+1) - 1] of [csr_pairs],
     pair [k] living at indices [2k] (neighbor) and [2k+1] (edge id).
     Same deterministic sorted order as the lists. *)
  csr_off : int array;
  csr_pairs : int array;
  user_ids : int list;
  switch_ids : int list;
}

let edge_key u v = if u < v then (u, v) else (v, u)

module Edge_key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end

module Edge_tbl = Hashtbl.Make (Edge_key)

module Builder = struct

  type t = {
    mutable rev_vertices : vertex list;
    mutable n_vertices : int;
    mutable rev_edges : edge list;
    mutable n_edges : int;
    seen : unit Edge_tbl.t;
    mutable frozen : bool;
  }

  let create () =
    {
      rev_vertices = [];
      n_vertices = 0;
      rev_edges = [];
      n_edges = 0;
      seen = Edge_tbl.create 64;
      frozen = false;
    }

  let check_live b =
    if b.frozen then invalid_arg "Graph.Builder: builder already frozen"

  let add_vertex b ~kind ~qubits ~x ~y =
    check_live b;
    if qubits < 0 then invalid_arg "Graph.Builder.add_vertex: negative qubits";
    let id = b.n_vertices in
    b.rev_vertices <- { id; kind; qubits; x; y } :: b.rev_vertices;
    b.n_vertices <- id + 1;
    id

  let add_edge b u v length =
    check_live b;
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if u < 0 || v < 0 || u >= b.n_vertices || v >= b.n_vertices then
      invalid_arg "Graph.Builder.add_edge: vertex out of range";
    if not (length > 0. && Float.is_finite length) then
      invalid_arg "Graph.Builder.add_edge: length must be positive and finite";
    let key = edge_key u v in
    if Edge_tbl.mem b.seen key then
      invalid_arg "Graph.Builder.add_edge: parallel edge";
    Edge_tbl.add b.seen key ();
    let eid = b.n_edges in
    let a, bb = key in
    b.rev_edges <- { eid; a; b = bb; length } :: b.rev_edges;
    b.n_edges <- eid + 1;
    eid

  let has_edge b u v = Edge_tbl.mem b.seen (edge_key u v)
  let vertex_count b = b.n_vertices
  let edge_count b = b.n_edges

  let freeze b =
    check_live b;
    b.frozen <- true;
    let vertices = Array.of_list (List.rev b.rev_vertices) in
    let edges = Array.of_list (List.rev b.rev_edges) in
    let adjacency = Array.make (Array.length vertices) [] in
    Array.iter
      (fun e ->
        adjacency.(e.a) <- (e.b, e.eid) :: adjacency.(e.a);
        adjacency.(e.b) <- (e.a, e.eid) :: adjacency.(e.b))
      edges;
    (* Deterministic neighbor order regardless of insertion order. *)
    Array.iteri
      (fun i l -> adjacency.(i) <- List.sort compare l)
      adjacency;
    let n = Array.length vertices in
    let csr_off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      csr_off.(v + 1) <- csr_off.(v) + List.length adjacency.(v)
    done;
    let csr_pairs = Array.make (2 * csr_off.(n)) 0 in
    Array.iteri
      (fun v l ->
        List.iteri
          (fun j (w, eid) ->
            let k = csr_off.(v) + j in
            csr_pairs.(2 * k) <- w;
            csr_pairs.((2 * k) + 1) <- eid)
          l)
      adjacency;
    let user_ids, switch_ids =
      Array.fold_right
        (fun v (us, rs) ->
          match v.kind with
          | User -> (v.id :: us, rs)
          | Switch -> (us, v.id :: rs))
        vertices ([], [])
    in
    { vertices; edges; adjacency; csr_off; csr_pairs; user_ids; switch_ids }
end

let vertex_count g = Array.length g.vertices
let edge_count g = Array.length g.edges

let vertex g i =
  if i < 0 || i >= Array.length g.vertices then
    invalid_arg "Graph.vertex: out of range";
  g.vertices.(i)

let edge g i =
  if i < 0 || i >= Array.length g.edges then
    invalid_arg "Graph.edge: out of range";
  g.edges.(i)

let neighbors g v =
  if v < 0 || v >= Array.length g.adjacency then
    invalid_arg "Graph.neighbors: out of range";
  g.adjacency.(v)

let degree g v =
  if v < 0 || v >= Array.length g.adjacency then
    invalid_arg "Graph.degree: out of range";
  g.csr_off.(v + 1) - g.csr_off.(v)

let csr_offsets g = g.csr_off
let csr_pairs g = g.csr_pairs

let iter_adjacent g v f =
  if v < 0 || v >= Array.length g.adjacency then
    invalid_arg "Graph.iter_adjacent: out of range";
  let pairs = g.csr_pairs in
  for k = g.csr_off.(v) to g.csr_off.(v + 1) - 1 do
    f pairs.(2 * k) pairs.((2 * k) + 1)
  done

let find_edge g u v =
  let rec scan = function
    | [] -> None
    | (n, eid) :: rest -> if n = v then Some eid else scan rest
  in
  scan (neighbors g u)

let has_edge g u v = Option.is_some (find_edge g u v)

let edge_other_end g eid v =
  let e = edge g eid in
  if e.a = v then e.b
  else if e.b = v then e.a
  else invalid_arg "Graph.edge_other_end: vertex not an endpoint"

let users g = g.user_ids
let switches g = g.switch_ids
let user_count g = List.length g.user_ids
let switch_count g = List.length g.switch_ids
let is_user g v = (vertex g v).kind = User
let is_switch g v = (vertex g v).kind = Switch
let qubits g v = (vertex g v).qubits

let euclidean v1 v2 =
  let dx = v1.x -. v2.x and dy = v1.y -. v2.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let iter_edges g f = Array.iter f g.edges
let fold_edges g ~init ~f = Array.fold_left f init g.edges
let iter_vertices g f = Array.iter f g.vertices

let average_degree g =
  let n = vertex_count g in
  if n = 0 then 0. else 2. *. float_of_int (edge_count g) /. float_of_int n

let rebuild vertices edges =
  let b = Builder.create () in
  Array.iter
    (fun v ->
      ignore (Builder.add_vertex b ~kind:v.kind ~qubits:v.qubits ~x:v.x ~y:v.y))
    vertices;
  List.iter (fun e -> ignore (Builder.add_edge b e.a e.b e.length)) edges;
  Builder.freeze b

let remove_edges g eids =
  let doomed = Hashtbl.create (List.length eids) in
  List.iter
    (fun eid ->
      ignore (edge g eid);
      Hashtbl.replace doomed eid ())
    eids;
  let kept =
    fold_edges g ~init:[] ~f:(fun acc e ->
        if Hashtbl.mem doomed e.eid then acc else e :: acc)
    |> List.rev
  in
  rebuild g.vertices kept

let with_qubits g f =
  let vertices =
    Array.map
      (fun v ->
        let q = f v in
        if q < 0 then invalid_arg "Graph.with_qubits: negative qubits";
        { v with qubits = q })
      g.vertices
  in
  rebuild vertices (Array.to_list g.edges)

let pp fmt g =
  Format.fprintf fmt "graph<%d users, %d switches, %d edges, avg degree %.2f>"
    (user_count g) (switch_count g) (edge_count g) (average_degree g)
