(** The quantum-network graph [G = (U ∪ R, E)] of the paper.

    Vertices are quantum users (unbounded memory) or quantum switches
    (holding [qubits] memory qubits, i.e. a capacity of [qubits / 2]
    channels).  Edges are optical fibers with a physical length; per the
    paper's fiber model (§II-A) a fiber has enough cores that any number
    of quantum links may share it, so edges carry no capacity of their
    own — only switch qubits constrain routing.

    The structure is immutable once built; routing algorithms track
    residual switch capacity in their own arrays (see
    {!Qnet_core.Capacity}). *)

type vertex_kind = User | Switch

type vertex = {
  id : int;  (** Dense index in [0 .. vertex_count - 1]. *)
  kind : vertex_kind;
  qubits : int;  (** Memory qubits; meaningful for switches only. *)
  x : float;  (** Position in the simulation area (km units). *)
  y : float;
}

type edge = {
  eid : int;  (** Dense index in [0 .. edge_count - 1]. *)
  a : int;  (** Endpoint vertex id, [a < b]. *)
  b : int;
  length : float;  (** Fiber length; must be positive and finite. *)
}

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_vertex :
    t -> kind:vertex_kind -> qubits:int -> x:float -> y:float -> int
  (** Returns the new vertex id.  @raise Invalid_argument on negative
      [qubits]. *)

  val add_edge : t -> int -> int -> float -> int
  (** [add_edge b u v length] returns the new edge id.  Parallel edges
      and self-loops are rejected ([Invalid_argument]); the paper's
      model has at most one fiber per vertex pair and no self-loops. *)

  val has_edge : t -> int -> int -> bool
  val vertex_count : t -> int
  val edge_count : t -> int

  val freeze : t -> graph
  (** Produce the immutable graph.  The builder may not be reused
      afterwards. *)
end

(** {1 Accessors} *)

val vertex_count : t -> int
val edge_count : t -> int
val vertex : t -> int -> vertex
val edge : t -> int -> edge

val neighbors : t -> int -> (int * int) list
(** [neighbors g v] is the list of [(neighbor_id, edge_id)] pairs
    incident to [v]. *)

val degree : t -> int -> int
val has_edge : t -> int -> int -> bool

(** {2 CSR adjacency}

    A compact int-array mirror of the adjacency lists for traversal
    hot paths (Dijkstra relaxation, BFS): no list-cell chasing, no
    tuple allocation, cache-linear scans.  Order per vertex is the
    same deterministic sorted order as {!neighbors}. *)

val csr_offsets : t -> int array
(** Length [vertex_count + 1]; vertex [v]'s incident pairs occupy
    slots [csr_offsets g.(v) .. csr_offsets g.(v+1) - 1] of
    {!csr_pairs}.  The returned array is the graph's own storage —
    treat it as read-only. *)

val csr_pairs : t -> int array
(** Flattened (neighbor, edge id) pairs: pair [k] is
    [(csr_pairs g.(2*k), csr_pairs g.(2*k+1))].  Read-only, like
    {!csr_offsets}. *)

val iter_adjacent : t -> int -> (int -> int -> unit) -> unit
(** [iter_adjacent g v f] calls [f neighbor edge_id] for each incident
    edge of [v] in CSR order — allocation-free equivalent of iterating
    {!neighbors}. *)

val find_edge : t -> int -> int -> int option
(** Edge id between two vertices, if the fiber exists. *)

val edge_other_end : t -> int -> int -> int
(** [edge_other_end g eid v] is the endpoint of edge [eid] that is not
    [v].  @raise Invalid_argument if [v] is not an endpoint. *)

val users : t -> int list
(** Ids of all user vertices, ascending. *)

val switches : t -> int list
(** Ids of all switch vertices, ascending. *)

val user_count : t -> int
val switch_count : t -> int
val is_user : t -> int -> bool
val is_switch : t -> int -> bool

val qubits : t -> int -> int
(** Memory qubits of a vertex ([max_int]-like semantics for users are
    {e not} applied here; this is the raw stored value). *)

val euclidean : vertex -> vertex -> float
(** Straight-line distance between two vertices' positions. *)

val iter_edges : t -> (edge -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a
val iter_vertices : t -> (vertex -> unit) -> unit

val average_degree : t -> float
(** [2·|E| / |V|]; [0.] for the empty graph. *)

val remove_edges : t -> int list -> t
(** [remove_edges g eids] is a new graph without the listed edges
    (vertices unchanged, remaining edges renumbered densely).  Used by
    the Fig. 7(b) removed-edges experiment. *)

val with_qubits : t -> (vertex -> int) -> t
(** [with_qubits g f] re-assigns every vertex's qubit budget via [f];
    used to sweep switch capacity (Fig. 8(a)). *)

val pp : Format.formatter -> t -> unit
(** Compact summary: vertex/edge counts and composition. *)
