(** Shortest paths, traversal and connectivity over {!Graph.t}.

    The Dijkstra variant here is deliberately parameterised on both the
    edge weight and a per-vertex admission predicate, because the
    paper's Algorithm 1 needs (a) the −log-space additive weight
    [α·L − ln q] and (b) "skip any switch with fewer than 2 free
    qubits / any foreign user" filtering baked into relaxation. *)

type dijkstra_result = {
  dist : float array;  (** [dist.(v)] is the shortest distance from the
                           source, or [infinity] if unreachable. *)
  prev : int array;  (** Predecessor vertex on a shortest path, [-1] at
                         the source and for unreachable vertices. *)
}

val dijkstra :
  Graph.t ->
  source:int ->
  weight:(Graph.edge -> float) ->
  ?admit:(int -> bool) ->
  ?expand:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ?target:int ->
  ?budget:Qnet_overload.Budget.t ->
  unit ->
  dijkstra_result
(** [dijkstra g ~source ~weight ()] runs single-source shortest paths.
    [admit v] (default: always [true]) controls whether a non-source
    vertex may be {e entered} during relaxation; inadmissible vertices
    keep [dist = infinity].  [expand v] (default: always [true])
    controls whether a settled non-source vertex relaxes its own
    neighbours — with [expand] false a vertex can terminate paths but
    not relay them, which is how quantum users are kept out of channel
    interiors.  The source is always expanded.  [edge_ok eid] (default:
    always [true]) filters individual edges out of relaxation — the
    hook fault-aware routing uses to exclude failed fibers without
    rebuilding the graph.

    With [?target] the run stops as soon as [target] is settled
    (popped from the heap), turning an s-t query from settle-the-graph
    into settle-until-target.  [dist.(target)], [prev.(target)] and
    every vertex settled earlier are exactly as in the full run —
    {!extract_path} to [target] is unaffected — but vertices that were
    still on the frontier keep tentative (over-)estimates.  Omit
    [target] when the result is reused for several destinations.

    With [?budget] every heap pop charges one unit of fuel;
    {!Qnet_overload.Budget.Exhausted} aborts the run the moment the
    budget empties (the per-domain scratch heap is still returned).
    Fuel counts expansions, not time, so budgeted runs stay
    deterministic at every [--jobs] level.
    @raise Invalid_argument if any relaxed edge has negative weight.
    @raise Qnet_overload.Budget.Exhausted when the fuel runs out. *)

val extract_path : dijkstra_result -> source:int -> target:int -> int list option
(** The vertex sequence [source; …; target] along the recorded
    predecessors, or [None] if [target] was unreachable. *)

val shortest_path :
  Graph.t ->
  source:int ->
  target:int ->
  weight:(Graph.edge -> float) ->
  ?admit:(int -> bool) ->
  ?expand:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ?budget:Qnet_overload.Budget.t ->
  unit ->
  (int list * float) option
(** One-shot wrapper returning the path and its total weight. *)

val bfs_order : Graph.t -> source:int -> int list
(** Vertices reachable from [source] in breadth-first order. *)

val bfs_hops : Graph.t -> source:int -> int array
(** Hop counts from [source]; [-1] for unreachable vertices. *)

val connected_components : Graph.t -> int list list
(** All components, each sorted ascending; components ordered by their
    smallest member. *)

val is_connected : Graph.t -> bool
(** Whether the whole graph is one component ([true] for empty and
    singleton graphs). *)

val users_connected : Graph.t -> bool
(** Whether all user vertices lie in one component — the obvious
    necessary condition for any MUERP instance to be feasible. *)

val path_is_valid : Graph.t -> int list -> bool
(** [path_is_valid g p] checks that consecutive vertices of [p] are
    joined by edges and that [p] repeats no vertex. *)

val path_length : Graph.t -> int list -> float
(** Total fiber length along a vertex path.
    @raise Invalid_argument if some consecutive pair has no edge. *)

val path_edges : Graph.t -> int list -> int list
(** Edge ids along a vertex path.  @raise Invalid_argument as above. *)
