(* Array-backed binary min-heap on two parallel flat arrays: an
   unboxed float array for keys and a value array.  Unlike the obvious
   [{ key; value } array] layout this allocates nothing per push — an
   insertion is two array stores plus a hole-bubbling pass — and only
   touches the allocator when the backing arrays double.  [reset]
   keeps the storage, so the repeated SSSP runs in the routing layer
   reuse one heap instead of churning a fresh one per run. *)

type 'a t = {
  mutable keys : float array;
  mutable vals : 'a array;
  mutable len : int;
  capacity : int;
}

let create ?(capacity = 16) () =
  { keys = [||]; vals = [||]; len = 0; capacity = max capacity 1 }

let length h = h.len
let is_empty h = h.len = 0

(* The backing arrays are allocated lazily on first push so no dummy
   element of type ['a] is ever needed. *)
let ensure_room h seed =
  if Array.length h.vals = 0 then begin
    h.keys <- Array.make h.capacity 0.;
    h.vals <- Array.make h.capacity seed
  end
  else if h.len = Array.length h.vals then begin
    let n = 2 * h.len in
    let keys = Array.make n 0. in
    let vals = Array.make n h.vals.(0) in
    Array.blit h.keys 0 keys 0 h.len;
    Array.blit h.vals 0 vals 0 h.len;
    h.keys <- keys;
    h.vals <- vals
  end

let push h key value =
  ensure_room h value;
  (* Bubble a hole up from the end, writing the new entry once. *)
  let i = ref h.len in
  h.len <- h.len + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key < h.keys.(parent) then begin
      h.keys.(!i) <- h.keys.(parent);
      h.vals.(!i) <- h.vals.(parent);
      i := parent
    end
    else moving := false
  done;
  h.keys.(!i) <- key;
  h.vals.(!i) <- value

let pop_min h =
  if h.len = 0 then None
  else begin
    let top_key = h.keys.(0) and top_val = h.vals.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      (* Sift the displaced last entry down through a hole at the
         root. *)
      let key = h.keys.(h.len) and value = h.vals.(h.len) in
      let i = ref 0 in
      let moving = ref true in
      while !moving do
        let l = (2 * !i) + 1 in
        if l >= h.len then moving := false
        else begin
          let r = l + 1 in
          let c = if r < h.len && h.keys.(r) < h.keys.(l) then r else l in
          if h.keys.(c) < key then begin
            h.keys.(!i) <- h.keys.(c);
            h.vals.(!i) <- h.vals.(c);
            i := c
          end
          else moving := false
        end
      done;
      h.keys.(!i) <- key;
      h.vals.(!i) <- value
    end;
    Some (top_key, top_val)
  end

let peek_min h = if h.len = 0 then None else Some (h.keys.(0), h.vals.(0))
let clear h = h.len <- 0

let reset = clear
