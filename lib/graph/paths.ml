type dijkstra_result = { dist : float array; prev : int array }

(* Work counters for the shortest-path hot path (no-ops unless
   telemetry is enabled).  Every solver funnels through here, so these
   are the substrate-level cost measure of a routing run. *)
module Tm = Qnet_telemetry.Metrics

let c_runs = Tm.counter "graph.dijkstra.runs"
let c_pushes = Tm.counter "graph.dijkstra.heap_pushes"
let c_pops = Tm.counter "graph.dijkstra.heap_pops"
let c_relaxations = Tm.counter "graph.dijkstra.edge_relaxations"
let c_improvements = Tm.counter "graph.dijkstra.dist_improvements"

(* Each domain reuses one scratch heap across its SSSP runs (the
   routing layer performs thousands per solve — see
   [core.routing.sssp_runs]).  The take/put-back dance keeps a nested
   run, should a [weight]/[admit] callback ever trigger one, on a
   private freshly-allocated heap. *)
let scratch_heap : int Binary_heap.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_scratch_heap n f =
  let cell = Domain.DLS.get scratch_heap in
  match !cell with
  | Some heap ->
      cell := None;
      Binary_heap.reset heap;
      Fun.protect ~finally:(fun () -> cell := Some heap) (fun () -> f heap)
  | None ->
      let heap = Binary_heap.create ~capacity:(n + 1) () in
      Fun.protect ~finally:(fun () -> cell := Some heap) (fun () -> f heap)

let dijkstra g ~source ~weight ?(admit = fun _ -> true)
    ?(expand = fun _ -> true) ?(edge_ok = fun _ -> true) ?target ?budget () =
  let n = Graph.vertex_count g in
  if source < 0 || source >= n then invalid_arg "Paths.dijkstra: bad source";
  (match target with
  | Some t when t < 0 || t >= n -> invalid_arg "Paths.dijkstra: bad target"
  | _ -> ());
  (* Bind the fuel charge once so the unbudgeted hot path stays a
     single closure call away from free. *)
  let charge =
    match budget with
    | None -> Fun.id
    | Some b -> fun () -> Qnet_overload.Budget.tick b
  in
  Tm.Counter.incr c_runs;
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let done_ = Array.make n false in
  let off = Graph.csr_offsets g and pairs = Graph.csr_pairs g in
  let target = match target with Some t -> t | None -> -1 in
  with_scratch_heap n (fun heap ->
      dist.(source) <- 0.;
      Binary_heap.push heap 0. source;
      Tm.Counter.incr c_pushes;
      let running = ref true in
      while !running do
        match Binary_heap.pop_min heap with
        | None -> running := false
        | Some (d, u) ->
            charge ();
            Tm.Counter.incr c_pops;
            if not done_.(u) && d <= dist.(u) then begin
              done_.(u) <- true;
              (* The popped distance is final, so the target's settling
                 ends the s-t query — no need to drain the frontier. *)
              if u = target then running := false
              else if u = source || expand u then
                for k = off.(u) to off.(u + 1) - 1 do
                  let v = pairs.(2 * k) in
                  Tm.Counter.incr c_relaxations;
                  if
                    (not done_.(v))
                    && (v = source || admit v)
                    && edge_ok pairs.((2 * k) + 1)
                  then begin
                    let e = Graph.edge g pairs.((2 * k) + 1) in
                    let w = weight e in
                    if w < 0. then
                      invalid_arg "Paths.dijkstra: negative edge weight";
                    let cand = d +. w in
                    if cand < dist.(v) then begin
                      dist.(v) <- cand;
                      prev.(v) <- u;
                      Tm.Counter.incr c_improvements;
                      Binary_heap.push heap cand v;
                      Tm.Counter.incr c_pushes
                    end
                  end
                done
            end
      done);
  { dist; prev }

let extract_path { dist; prev } ~source ~target =
  if dist.(target) = infinity then None
  else begin
    let rec walk v acc =
      if v = source then v :: acc else walk prev.(v) (v :: acc)
    in
    Some (walk target [])
  end

let shortest_path g ~source ~target ~weight ?admit ?expand ?edge_ok ?budget () =
  let result =
    dijkstra g ~source ~weight ?admit ?expand ?edge_ok ~target ?budget ()
  in
  match extract_path result ~source ~target with
  | None -> None
  | Some path -> Some (path, result.dist.(target))

let bfs_hops g ~source =
  let n = Graph.vertex_count g in
  if source < 0 || source >= n then invalid_arg "Paths.bfs_hops: bad source";
  let hops = Array.make n (-1) in
  let off = Graph.csr_offsets g and pairs = Graph.csr_pairs g in
  let q = Queue.create () in
  hops.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for k = off.(u) to off.(u + 1) - 1 do
      let v = pairs.(2 * k) in
      if hops.(v) < 0 then begin
        hops.(v) <- hops.(u) + 1;
        Queue.add v q
      end
    done
  done;
  hops

let bfs_order g ~source =
  let n = Graph.vertex_count g in
  if source < 0 || source >= n then invalid_arg "Paths.bfs_order: bad source";
  let seen = Array.make n false in
  let off = Graph.csr_offsets g and pairs = Graph.csr_pairs g in
  let q = Queue.create () in
  let order = ref [] in
  seen.(source) <- true;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    for k = off.(u) to off.(u + 1) - 1 do
      let v = pairs.(2 * k) in
      if not seen.(v) then begin
        seen.(v) <- true;
        Queue.add v q
      end
    done
  done;
  List.rev !order

let connected_components g =
  let n = Graph.vertex_count g in
  let uf = Union_find.create n in
  Graph.iter_edges g (fun e -> ignore (Union_find.union uf e.a e.b));
  Union_find.groups uf

let is_connected g =
  let n = Graph.vertex_count g in
  n <= 1 || List.length (connected_components g) = 1

let users_connected g =
  match Graph.users g with
  | [] | [ _ ] -> true
  | first :: rest ->
      let hops = bfs_hops g ~source:first in
      List.for_all (fun u -> hops.(u) >= 0) rest

let path_is_valid g path =
  let rec distinct seen = function
    | [] -> true
    | v :: rest ->
        if List.mem v seen then false else distinct (v :: seen) rest
  in
  let rec edges_ok = function
    | [] | [ _ ] -> true
    | u :: (v :: _ as rest) -> Graph.has_edge g u v && edges_ok rest
  in
  match path with
  | [] -> false
  | _ -> distinct [] path && edges_ok path

let fold_path_edges g path ~init ~f =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | u :: (v :: _ as rest) -> begin
        match Graph.find_edge g u v with
        | None -> invalid_arg "Paths: consecutive vertices not adjacent"
        | Some eid -> go (f acc (Graph.edge g eid)) rest
      end
  in
  go init path

let path_length g path =
  fold_path_edges g path ~init:0. ~f:(fun acc e -> acc +. e.length)

let path_edges g path =
  List.rev (fold_path_edges g path ~init:[] ~f:(fun acc e -> e.eid :: acc))
