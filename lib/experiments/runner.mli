(** Execution engine: run every method on replicated random networks.

    The paper evaluates five methods — Algorithms 2/3/4 and the
    baselines E-Q-CAST and N-FUSION — on 20 random networks per
    configuration and averages the entanglement rate, counting failed
    entanglement as rate 0. *)

type method_ = Alg2 | Alg3 | Alg4 | E_q_cast | N_fusion

val all_methods : method_ list
(** In the paper's plotting order: Alg-2, Alg-3, Alg-4, N-FUSION,
    E-Q-CAST. *)

val method_name : method_ -> string
(** Display names used in the paper's legends ("Alg-2", …,
    "N-Fusion", "E-Q-CAST"). *)

type aggregate = {
  method_ : method_;
  mean_rate : float;  (** Arithmetic mean over replications, zeros
                          included — the paper's plotted metric. *)
  mean_feasible_rate : float option;
      (** Mean over feasible replications only; [None] if all failed. *)
  feasible : int;  (** Replications that produced a tree. *)
  replications : int;
  mean_elapsed_s : float;  (** Mean solver wall-clock. *)
}

val run_method :
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  rng:Qnet_util.Prng.t ->
  alg2_boost:bool ->
  method_ ->
  float
(** Entanglement rate of one method on one network ([0.] when
    infeasible).  [rng] drives Algorithm 4's random start.  With
    [alg2_boost], Alg-2 runs on a copy of the network whose switches
    hold [2·|U|] qubits (see {!Config.t.alg2_boost}). *)

val run_config : ?pool:Qnet_util.Pool.t -> Config.t -> aggregate list
(** All methods across the configured replications; replication [i]
    generates its network from seed [base_seed + i].  The same network
    is shared by all methods within a replication.  With [?pool] the
    replications run across the pool's domains; each is seeded
    independently and aggregation happens in replication order, so the
    aggregates are identical at every pool size. *)

val mean_rates : aggregate list -> (method_ * float) list
(** Convenience projection of {!run_config} output. *)
