module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Clock = Qnet_telemetry.Clock
open Qnet_core

type method_ = Alg2 | Alg3 | Alg4 | E_q_cast | N_fusion

let all_methods = [ Alg2; Alg3; Alg4; N_fusion; E_q_cast ]

let method_name = function
  | Alg2 -> "Alg-2"
  | Alg3 -> "Alg-3"
  | Alg4 -> "Alg-4"
  | E_q_cast -> "E-Q-CAST"
  | N_fusion -> "N-Fusion"

type aggregate = {
  method_ : method_;
  mean_rate : float;
  mean_feasible_rate : float option;
  feasible : int;
  replications : int;
  mean_elapsed_s : float;
}

(* Per-method wall-time histogram, one observation per replication
   (registry lookup is a hashtable hit — negligible next to a solve). *)
let wall_time_hist m =
  Qnet_telemetry.Metrics.histogram
    ("runner." ^ String.lowercase_ascii (method_name m) ^ ".seconds")

let boost_graph g =
  let bound = 2 * Graph.user_count g in
  Graph.with_qubits g (fun v ->
      match v.Graph.kind with
      | Graph.User -> v.Graph.qubits
      | Graph.Switch -> max v.Graph.qubits bound)

let run_method g params ~rng ~alg2_boost method_ =
  match method_ with
  | Alg2 ->
      let g = if alg2_boost then boost_graph g else g in
      let inst = Muerp.instance ~params g in
      (Muerp.solve Optimal inst).rate
  | Alg3 ->
      let inst = Muerp.instance ~params g in
      (Muerp.solve Conflict_free inst).rate
  | Alg4 ->
      let inst = Muerp.instance ~params g in
      (Muerp.solve ~rng Prim_based inst).rate
  | E_q_cast -> begin
      match Qnet_baselines.Eqcast.solve g params with
      | None -> 0.
      | Some tree -> Ent_tree.rate_prob tree
    end
  | N_fusion -> Qnet_baselines.Nfusion.rate (Qnet_baselines.Nfusion.solve g params)

let run_config (cfg : Config.t) =
  let per_method = Hashtbl.create 8 in
  List.iter
    (fun m -> Hashtbl.replace per_method m ([], []))
    all_methods;
  for i = 0 to cfg.replications - 1 do
    let seed = cfg.base_seed + i in
    let rng = Prng.create seed in
    let g = Qnet_topology.Generate.run cfg.kind rng cfg.spec in
    List.iter
      (fun m ->
        let rng_alg = Prng.create (seed * 7919) in
        let t0 = Clock.now_s () in
        let rate =
          Qnet_telemetry.Span.with_span
            ("runner." ^ String.lowercase_ascii (method_name m))
            (fun () ->
              run_method g cfg.params ~rng:rng_alg ~alg2_boost:cfg.alg2_boost
                m)
        in
        let dt = Clock.elapsed_since t0 in
        Qnet_telemetry.Metrics.Histogram.observe (wall_time_hist m) dt;
        let rates, times = Hashtbl.find per_method m in
        Hashtbl.replace per_method m (rate :: rates, dt :: times))
      all_methods
  done;
  List.map
    (fun m ->
      let rates, times = Hashtbl.find per_method m in
      let rates = Array.of_list rates in
      let feasible_rates = Array.of_list (List.filter (fun r -> r > 0.) (Array.to_list rates)) in
      {
        method_ = m;
        mean_rate = Qnet_util.Stats.mean rates;
        mean_feasible_rate =
          (if Array.length feasible_rates = 0 then None
           else Some (Qnet_util.Stats.mean feasible_rates));
        feasible = Array.length feasible_rates;
        replications = cfg.replications;
        mean_elapsed_s = Qnet_util.Stats.mean (Array.of_list times);
      })
    all_methods

let mean_rates aggregates =
  List.map (fun a -> (a.method_, a.mean_rate)) aggregates
