module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Clock = Qnet_telemetry.Clock
open Qnet_core

type method_ = Alg2 | Alg3 | Alg4 | E_q_cast | N_fusion

let all_methods = [ Alg2; Alg3; Alg4; N_fusion; E_q_cast ]

let method_name = function
  | Alg2 -> "Alg-2"
  | Alg3 -> "Alg-3"
  | Alg4 -> "Alg-4"
  | E_q_cast -> "E-Q-CAST"
  | N_fusion -> "N-Fusion"

type aggregate = {
  method_ : method_;
  mean_rate : float;
  mean_feasible_rate : float option;
  feasible : int;
  replications : int;
  mean_elapsed_s : float;
}

(* Per-method wall-time histogram, one observation per replication
   (registry lookup is a hashtable hit — negligible next to a solve). *)
let wall_time_hist m =
  Qnet_telemetry.Metrics.histogram
    ("runner." ^ String.lowercase_ascii (method_name m) ^ ".seconds")

let boost_graph g =
  let bound = 2 * Graph.user_count g in
  Graph.with_qubits g (fun v ->
      match v.Graph.kind with
      | Graph.User -> v.Graph.qubits
      | Graph.Switch -> max v.Graph.qubits bound)

let run_method g params ~rng ~alg2_boost method_ =
  match method_ with
  | Alg2 ->
      let g = if alg2_boost then boost_graph g else g in
      let inst = Muerp.instance ~params g in
      (Muerp.solve Optimal inst).rate
  | Alg3 ->
      let inst = Muerp.instance ~params g in
      (Muerp.solve Conflict_free inst).rate
  | Alg4 ->
      let inst = Muerp.instance ~params g in
      (Muerp.solve ~rng Prim_based inst).rate
  | E_q_cast -> begin
      match Qnet_baselines.Eqcast.solve g params with
      | None -> 0.
      | Some tree -> Ent_tree.rate_prob tree
    end
  | N_fusion -> Qnet_baselines.Nfusion.rate (Qnet_baselines.Nfusion.solve g params)

let run_config ?pool (cfg : Config.t) =
  let methods = Array.of_list all_methods in
  (* Registered up front so metric ids don't depend on which domain
     races to the first observation. *)
  let hists = Array.map wall_time_hist methods in
  (* One replication is a self-contained task: its network and
     per-method rngs derive from [base_seed + i] alone, so replications
     may run on any domain in any order.  Results land at slot [i] and
     are aggregated in index order below — identical at every pool
     size. *)
  let run_replication i =
    let seed = cfg.base_seed + i in
    let rng = Prng.create seed in
    let g = Qnet_topology.Generate.run cfg.kind rng cfg.spec in
    Array.mapi
      (fun j m ->
        let rng_alg = Prng.create (seed * 7919) in
        let t0 = Clock.now_s () in
        let rate =
          Qnet_telemetry.Span.with_span
            ("runner." ^ String.lowercase_ascii (method_name m))
            (fun () ->
              run_method g cfg.params ~rng:rng_alg ~alg2_boost:cfg.alg2_boost
                m)
        in
        let dt = Clock.elapsed_since t0 in
        Qnet_telemetry.Metrics.Histogram.observe hists.(j) dt;
        (rate, dt))
      methods
  in
  let results =
    match pool with
    | Some pool when Qnet_util.Pool.jobs pool > 1 ->
        Qnet_util.Pool.parallel_map pool ~chunk:1 cfg.replications
          run_replication
    | _ -> Array.init cfg.replications run_replication
  in
  List.mapi
    (fun j m ->
      let rates = Array.map (fun row -> fst row.(j)) results in
      let times = Array.map (fun row -> snd row.(j)) results in
      let feasible_rates =
        Array.of_list (List.filter (fun r -> r > 0.) (Array.to_list rates))
      in
      {
        method_ = m;
        mean_rate = Qnet_util.Stats.mean rates;
        mean_feasible_rate =
          (if Array.length feasible_rates = 0 then None
           else Some (Qnet_util.Stats.mean feasible_rates));
        feasible = Array.length feasible_rates;
        replications = cfg.replications;
        mean_elapsed_s = Qnet_util.Stats.mean times;
      })
    all_methods

let mean_rates aggregates =
  List.map (fun a -> (a.method_, a.mean_rate)) aggregates
