(** Per-figure experiment drivers — one function per paper artifact.

    Each returns a {!series}: the x-axis sweep and one mean-rate row per
    method, averaged over the configured replications.  Rendering to
    text tables lives in {!Report}.

    Every driver accepts [?pool] to spread its replications over a
    {!Qnet_util.Pool}; results are identical at every pool size (the
    per-replication seeding never depends on scheduling).  x points run
    sequentially so a single shared pool is never entered twice.

    Note on figure numbering: the paper's Fig. 6 sub-captions are
    swapped relative to its body text; we follow the body text (§V-B):
    Fig. 6(a) sweeps the number of {e users}, Fig. 6(b) the number of
    {e switches}. *)

type series = {
  id : string;  (** Experiment id, e.g. ["fig5"]. *)
  title : string;
  x_header : string;  (** x-axis label. *)
  x_values : string list;  (** Swept values, in order. *)
  rows : (Runner.method_ * float list) list;
      (** Mean entanglement rate per method, one value per x. *)
}

val fig5 : ?pool:Qnet_util.Pool.t -> ?cfg:Config.t -> unit -> series
(** Entanglement rate vs. network topology (Waxman / Watts–Strogatz /
    Volchenkov). *)

val fig6a :
  ?pool:Qnet_util.Pool.t -> ?cfg:Config.t -> ?user_counts:int list -> unit -> series
(** Rate vs. number of users (default sweep 4–14). *)

val fig6b :
  ?pool:Qnet_util.Pool.t ->
  ?cfg:Config.t ->
  ?switch_counts:int list ->
  unit ->
  series
(** Rate vs. number of switches (default sweep 10–50). *)

val fig7a :
  ?pool:Qnet_util.Pool.t -> ?cfg:Config.t -> ?degrees:float list -> unit -> series
(** Rate vs. average vertex degree (default sweep 4–10). *)

val fig7b :
  ?pool:Qnet_util.Pool.t ->
  ?cfg:Config.t ->
  ?edges_per_step:int ->
  ?steps:int ->
  unit ->
  series
(** Rate vs. removed-edge ratio: builds the paper's dense network
    (600 fibers via average degree 20), then removes [edges_per_step]
    uniformly random fibers per step (default 30, i.e. ratio step 0.05),
    re-running every method on each partial network.  Removals are
    cumulative within a replication and differ across replications. *)

val fig8a :
  ?pool:Qnet_util.Pool.t ->
  ?cfg:Config.t ->
  ?qubit_counts:int list ->
  unit ->
  series
(** Rate vs. qubits per switch (default sweep 2–8); Algorithm 2's
    networks keep [2·|U|] qubits per switch throughout, per the paper. *)

val fig8b :
  ?pool:Qnet_util.Pool.t ->
  ?cfg:Config.t ->
  ?swap_rates:float list ->
  unit ->
  series
(** Rate vs. BSM swap success rate [q] (default sweep 0.7–1.0). *)

val all : ?pool:Qnet_util.Pool.t -> ?cfg:Config.t -> unit -> series list
(** Every figure in order, with shared configuration. *)

type headline = {
  algorithm : Runner.method_;
  baseline : Runner.method_;
  best_improvement_pct : float;
      (** Max over all series points of
          [100 · (alg − baseline) / baseline], considering only points
          where the baseline is non-zero. *)
  at : string;  (** "series-id @ x" locating the maximising point. *)
}

val headlines : series list -> headline list
(** The §V-B headline comparisons: each of Alg-2/3/4 against each of
    N-FUSION and E-Q-CAST. *)
