module Prng = Qnet_util.Prng
module Spec = Qnet_topology.Spec
module Generate = Qnet_topology.Generate

type series = {
  id : string;
  title : string;
  x_header : string;
  x_values : string list;
  rows : (Runner.method_ * float list) list;
}

(* Run one configuration per x value and transpose into per-method
   rows.  The x points stay sequential — parallelism lives inside
   [Runner.run_config]'s replication loop, which keeps one shared pool
   busy without nesting parallel regions. *)
let sweep ?pool ~id ~title ~x_header points =
  let columns =
    List.map
      (fun (label, cfg) ->
        (label, Runner.mean_rates (Runner.run_config ?pool cfg)))
      points
  in
  let rows =
    List.map
      (fun m ->
        ( m,
          List.map (fun (_, rates) -> List.assoc m rates) columns ))
      Runner.all_methods
  in
  { id; title; x_header; x_values = List.map fst columns; rows }

let fig5 ?pool ?(cfg = Config.default) () =
  sweep ?pool ~id:"fig5" ~title:"Entanglement rate vs. network topology"
    ~x_header:"topology"
    (List.map
       (fun (name, kind) -> (name, { cfg with kind }))
       Generate.all_paper_kinds)

let fig6a ?pool ?(cfg = Config.default) ?(user_counts = [ 4; 6; 8; 10; 12; 14 ]) ()
    =
  sweep ?pool ~id:"fig6a" ~title:"Entanglement rate vs. number of users"
    ~x_header:"users"
    (List.map
       (fun n ->
         ( string_of_int n,
           { cfg with spec = { cfg.spec with Spec.n_users = n } } ))
       user_counts)

let fig6b ?pool ?(cfg = Config.default) ?(switch_counts = [ 10; 20; 30; 40; 50 ])
    () =
  sweep ?pool ~id:"fig6b" ~title:"Entanglement rate vs. number of switches"
    ~x_header:"switches"
    (List.map
       (fun n ->
         ( string_of_int n,
           { cfg with spec = { cfg.spec with Spec.n_switches = n } } ))
       switch_counts)

let fig7a ?pool ?(cfg = Config.default) ?(degrees = [ 4.; 6.; 8.; 10. ]) () =
  sweep ?pool ~id:"fig7a" ~title:"Entanglement rate vs. average degree"
    ~x_header:"avg degree"
    (List.map
       (fun d ->
         ( Printf.sprintf "%g" d,
           { cfg with spec = { cfg.spec with Spec.avg_degree = d } } ))
       degrees)

(* Fig. 7b is not a family of independent configs: within one
   replication the same network loses 30 more fibers at each step, so
   we drive the sweep manually instead of through Runner.run_config.
   Replications stay independent, though — each runs its whole removal
   trajectory as one task, and the per-step sums are folded in
   replication order afterwards, matching the serial total bit for
   bit. *)
let fig7b ?pool ?(cfg = Config.default) ?(edges_per_step = 30) ?(steps = 19)
    () =
  let spec = { cfg.spec with Spec.avg_degree = 20. } in
  let n_steps = steps in
  let methods = Array.of_list Runner.all_methods in
  let n_methods = Array.length methods in
  let total_edges = Spec.target_edges spec in
  let run_replication i =
    let seed = cfg.base_seed + i in
    let rng = Prng.create seed in
    let g = ref (Generate.run cfg.kind rng spec) in
    let rates = Array.make_matrix n_methods n_steps 0. in
    for step = 0 to n_steps - 1 do
      Array.iteri
        (fun j m ->
          let rng_alg = Prng.create ((seed * 7919) + step) in
          rates.(j).(step) <-
            Runner.run_method !g cfg.params ~rng:rng_alg
              ~alg2_boost:cfg.alg2_boost m)
        methods;
      (* Remove the next batch of random fibers for the following step. *)
      let remaining = Qnet_graph.Graph.edge_count !g in
      let batch = min edges_per_step remaining in
      if batch > 0 then begin
        let doomed = Prng.sample_without_replacement rng batch remaining in
        g := Qnet_graph.Graph.remove_edges !g doomed
      end
    done;
    rates
  in
  let per_rep =
    match pool with
    | Some pool when Qnet_util.Pool.jobs pool > 1 ->
        Qnet_util.Pool.parallel_map pool ~chunk:1 cfg.replications
          run_replication
    | _ -> Array.init cfg.replications run_replication
  in
  let n = float_of_int cfg.replications in
  {
    id = "fig7b";
    title = "Entanglement rate vs. removed-edge ratio";
    x_header = "removed ratio";
    x_values =
      List.init n_steps (fun step ->
          Printf.sprintf "%.2f"
            (float_of_int (step * edges_per_step)
            /. float_of_int total_edges));
    rows =
      List.init n_methods (fun j ->
          ( methods.(j),
            List.init n_steps (fun step ->
                Array.fold_left
                  (fun acc rates -> acc +. rates.(j).(step))
                  0. per_rep
                /. n) ));
  }

let fig8a ?pool ?(cfg = Config.default) ?(qubit_counts = [ 2; 4; 6; 8 ]) () =
  sweep ?pool ~id:"fig8a" ~title:"Entanglement rate vs. qubits per switch"
    ~x_header:"qubits"
    (List.map
       (fun q ->
         ( string_of_int q,
           { cfg with spec = { cfg.spec with Spec.qubits_per_switch = q } } ))
       qubit_counts)

let fig8b ?pool ?(cfg = Config.default) ?(swap_rates = [ 0.7; 0.8; 0.9; 1.0 ]) () =
  sweep ?pool ~id:"fig8b" ~title:"Entanglement rate vs. swap success rate"
    ~x_header:"q"
    (List.map
       (fun q ->
         ( Printf.sprintf "%g" q,
           { cfg with params = Qnet_core.Params.create ~q () } ))
       swap_rates)

let all ?pool ?(cfg = Config.default) () =
  [
    fig5 ?pool ~cfg ();
    fig6a ?pool ~cfg ();
    fig6b ?pool ~cfg ();
    fig7a ?pool ~cfg ();
    fig7b ?pool ~cfg ();
    fig8a ?pool ~cfg ();
    fig8b ?pool ~cfg ();
  ]

type headline = {
  algorithm : Runner.method_;
  baseline : Runner.method_;
  best_improvement_pct : float;
  at : string;
}

let headlines series_list =
  let algorithms = Runner.[ Alg2; Alg3; Alg4 ] in
  let baselines = Runner.[ N_fusion; E_q_cast ] in
  List.concat_map
    (fun algorithm ->
      List.map
        (fun baseline ->
          let best = ref (neg_infinity, "-") in
          List.iter
            (fun s ->
              let alg_row = List.assoc algorithm s.rows in
              let base_row = List.assoc baseline s.rows in
              List.iteri
                (fun i x ->
                  let a = List.nth alg_row i and b = List.nth base_row i in
                  if b > 0. then begin
                    let pct = 100. *. (a -. b) /. b in
                    if pct > fst !best then
                      best := (pct, Printf.sprintf "%s @ %s" s.id x)
                  end)
                s.x_values)
            series_list;
          let pct, at = !best in
          { algorithm; baseline; best_improvement_pct = pct; at })
        baselines)
    algorithms
