module Sexp = Qnet_util.Sexp
module Engine = Qnet_online.Engine
module Tm = Qnet_telemetry.Metrics
module Wire = Qnet_telemetry.Wire

(* Incremental checkpoint payloads: the field-by-field difference
   between two consecutive engine snapshots.

   Between 10-second cuts most of a snapshot is unchanged — the event
   queue churns a handful of entries, a few leases start or end, the
   metrics registry moves a few counters — while the bulky sections
   (settled outcomes, per-request states, histogram buckets) only grow
   or stay put.  The delta keys each collection section by its natural
   identity and records removals + upserts; the ~20 scalar counters are
   carried raw every time (they cost a line, not a section); and the
   metrics registry ships as a compact hex-armoured binary diff
   (Qnet_telemetry.Wire) because its sexp rendering dominates the file.

   The invariant [apply ~base (diff ~base snap) = snap] is structural
   equality over the whole snapshot record, property-tested against
   real engine runs.  Apply never trusts the delta blindly: a removal
   of a missing key, an outcome prefix that does not extend the base,
   or a corrupt metrics payload all surface as [Error] — which the
   chain walk treats exactly like a failed checksum (skip the poisoned
   suffix). *)

(* A wholesale-when-changed section. *)
type 'a refresh = Unchanged | Set of 'a

type metrics_delta =
  | M_unchanged
  | M_set of (string * Tm.dumped) list option
      (* presence changed (or base unavailable): carry the section whole *)
  | M_diff of string list * (string * Tm.dumped) list
      (* removed names + upserted entries, both sorted by name *)

type t = {
  d_at : float;
  d_next_ckpt : float;
  d_next_seq : int;
  d_next_lease : int;
  d_scalars : float array;
      (* every scalar counter, raw, in the fixed order of [scalar_order] *)
  d_events_removed : (float * int) list;  (* (time, seq) keys *)
  d_events_added : (float * int * Engine.s_event) list;
  d_states : Engine.s_state list;  (* upserts by ss_id; never removed *)
  d_queue : int list refresh;  (* order matters: whole when changed *)
  d_active_removed : int list;  (* lease ids *)
  d_active : Engine.s_active list;  (* upserts by sa_lid *)
  d_outcomes_new : (int * Engine.s_resolution) list;
      (* outcomes accrue newest-first: the new prefix *)
  d_quota_removed : int list;
  d_quota : (int * int) list;
  d_residual_removed : int list;
  d_residual : (int * int) list;
  d_limiter : (float * float) option refresh;
  d_health : Qnet_faults.Health.snapshot option refresh;
  d_tier : Engine.s_tier option refresh;
  d_policy : Sexp.t option refresh;
  d_metrics : metrics_delta;
}

let version = "muerp-snapshot-delta/1"

(* --- diff ---------------------------------------------------------- *)

let scalars_of (s : Engine.snapshot) =
  [|
    float_of_int s.Engine.s_shed_total;
    float_of_int s.Engine.s_gate_rejected;
    float_of_int s.Engine.s_budget_exhaustions;
    float_of_int s.Engine.s_peak_qubits;
    float_of_int s.Engine.s_peak_queue;
    float_of_int s.Engine.s_retries;
    s.Engine.s_util_integral;
    s.Engine.s_last_time;
    s.Engine.s_makespan;
    float_of_int s.Engine.s_faults_injected;
    float_of_int s.Engine.s_faults_repaired;
    float_of_int s.Engine.s_leases_interrupted;
    float_of_int s.Engine.s_leases_recovered;
    float_of_int s.Engine.s_leases_aborted;
    s.Engine.s_lost_service;
    float_of_int s.Engine.s_reconfig_applied;
    float_of_int s.Engine.s_reconfig_recovered;
  |]

let scalar_count = 17

(* Keyed removed/upserts diff over two sorted association lists. *)
let diff_sorted ~key ~eq base next =
  let rec go b n removed upserts =
    match (b, n) with
    | [], [] -> (List.rev removed, List.rev upserts)
    | x :: tb, [] -> go tb [] (key x :: removed) upserts
    | [], y :: tn -> go [] tn removed (y :: upserts)
    | x :: tb, y :: tn ->
        let kx = key x and ky = key y in
        if kx = ky then
          if eq x y then go tb tn removed upserts
          else go tb tn removed (y :: upserts)
        else if kx < ky then go tb n (kx :: removed) upserts
        else go b tn removed (y :: upserts)
  in
  go base next [] []

let refresh_of base next = if base = next then Unchanged else Set next

let diff ~(base : Engine.snapshot) (next : Engine.snapshot) =
  let events_removed, events_added =
    diff_sorted
      ~key:(fun (t, seq, _) -> (t, seq))
      ~eq:(fun a b -> a = b)
      base.Engine.s_events next.Engine.s_events
  in
  let _, states =
    (* states are never removed, only added or advanced *)
    diff_sorted
      ~key:(fun ss -> ss.Engine.ss_id)
      ~eq:(fun a b -> a = b)
      base.Engine.s_states next.Engine.s_states
  in
  let active_removed, active =
    diff_sorted
      ~key:(fun sa -> sa.Engine.sa_lid)
      ~eq:(fun a b -> a = b)
      base.Engine.s_active next.Engine.s_active
  in
  let outcomes_new =
    (* outcomes only accrue by prepending; the suffix must be the
       base's list, so the delta is the fresh prefix *)
    let nb = List.length base.Engine.s_outcomes
    and nn = List.length next.Engine.s_outcomes in
    if nn < nb then
      invalid_arg "Delta.diff: outcome list shrank between snapshots"
    else begin
      let rec split k l acc =
        if k = 0 then (List.rev acc, l)
        else
          match l with
          | [] -> invalid_arg "Delta.diff: outcome accounting mismatch"
          | x :: tl -> split (k - 1) tl (x :: acc)
      in
      let prefix, suffix = split (nn - nb) next.Engine.s_outcomes [] in
      if suffix <> base.Engine.s_outcomes then
        invalid_arg
          "Delta.diff: settled outcomes changed in place (engine invariant \
           violated)";
      prefix
    end
  in
  let quota_removed, quota =
    diff_sorted ~key:fst ~eq:( = ) base.Engine.s_quota next.Engine.s_quota
  in
  let residual_removed, residual =
    diff_sorted ~key:fst ~eq:( = ) base.Engine.s_residual
      next.Engine.s_residual
  in
  let d_metrics =
    match (base.Engine.s_metrics, next.Engine.s_metrics) with
    | None, None -> M_unchanged
    | Some b, Some n ->
        if b = n then M_unchanged
        else
          let removed, upserts =
            diff_sorted ~key:fst ~eq:( = ) b n
          in
          M_diff (removed, upserts)
    | _, n -> M_set n
  in
  {
    d_at = next.Engine.s_at;
    d_next_ckpt = next.Engine.s_next_ckpt;
    d_next_seq = next.Engine.s_next_seq;
    d_next_lease = next.Engine.s_next_lease;
    d_scalars = scalars_of next;
    d_events_removed = events_removed;
    d_events_added = events_added;
    d_states = states;
    d_queue = refresh_of base.Engine.s_queue next.Engine.s_queue;
    d_active_removed = active_removed;
    d_active = active;
    d_outcomes_new = outcomes_new;
    d_quota_removed = quota_removed;
    d_quota = quota;
    d_residual_removed = residual_removed;
    d_residual = residual;
    d_limiter = refresh_of base.Engine.s_limiter next.Engine.s_limiter;
    d_health = refresh_of base.Engine.s_health next.Engine.s_health;
    d_tier = refresh_of base.Engine.s_tier next.Engine.s_tier;
    d_policy = refresh_of base.Engine.s_policy next.Engine.s_policy;
    d_metrics;
  }

(* --- apply --------------------------------------------------------- *)

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Apply removals + upserts to a sorted association list, keeping it
   sorted; a removal that hits nothing means the delta does not belong
   to this base. *)
let apply_sorted ~key ~what removed upserts base =
  let removed_tbl = Hashtbl.create (max 4 (List.length removed)) in
  List.iter (fun k -> Hashtbl.replace removed_tbl k false) removed;
  let upsert_tbl = Hashtbl.create (max 4 (List.length upserts)) in
  List.iter (fun x -> Hashtbl.replace upsert_tbl (key x) x) upserts;
  let kept =
    List.filter
      (fun x ->
        let k = key x in
        if Hashtbl.mem removed_tbl k then begin
          Hashtbl.replace removed_tbl k true;
          false
        end
        else not (Hashtbl.mem upsert_tbl k))
      base
  in
  let missed = Hashtbl.fold (fun _ hit acc -> acc || not hit) removed_tbl false in
  if missed then err "delta removes a %s entry the base does not have" what
  else
    Ok
      (List.sort
         (fun a b -> compare (key a) (key b))
         (kept @ upserts))

let apply_refresh base = function Unchanged -> base | Set v -> v

let apply ~(base : Engine.snapshot) (d : t) =
  let* s_events =
    apply_sorted
      ~key:(fun (t, seq, _) -> (t, seq))
      ~what:"pending-event" d.d_events_removed d.d_events_added
      base.Engine.s_events
  in
  let* s_states =
    apply_sorted
      ~key:(fun ss -> ss.Engine.ss_id)
      ~what:"request-state" [] d.d_states base.Engine.s_states
  in
  let* s_active =
    apply_sorted
      ~key:(fun sa -> sa.Engine.sa_lid)
      ~what:"active-lease" d.d_active_removed d.d_active
      base.Engine.s_active
  in
  let* s_quota =
    apply_sorted ~key:fst ~what:"quota" d.d_quota_removed d.d_quota
      base.Engine.s_quota
  in
  let* s_residual =
    apply_sorted ~key:fst ~what:"residual" d.d_residual_removed d.d_residual
      base.Engine.s_residual
  in
  let* s_metrics =
    match d.d_metrics with
    | M_unchanged -> Ok base.Engine.s_metrics
    | M_set m -> Ok m
    | M_diff (removed, upserts) -> (
        match base.Engine.s_metrics with
        | None -> err "delta carries a metrics diff but the base has none"
        | Some b ->
            let* merged =
              apply_sorted ~key:fst ~what:"metrics" removed upserts b
            in
            Ok (Some merged))
  in
  if Array.length d.d_scalars <> scalar_count then
    err "delta carries %d scalars, expected %d" (Array.length d.d_scalars)
      scalar_count
  else
    let sc i = d.d_scalars.(i) in
    let sci i = int_of_float d.d_scalars.(i) in
    Ok
      {
        Engine.s_at = d.d_at;
        s_next_ckpt = d.d_next_ckpt;
        s_next_seq = d.d_next_seq;
        s_next_lease = d.d_next_lease;
        s_events;
        s_states;
        s_queue = apply_refresh base.Engine.s_queue d.d_queue;
        s_active;
        s_outcomes = d.d_outcomes_new @ base.Engine.s_outcomes;
        s_quota;
        s_residual;
        s_shed_total = sci 0;
        s_gate_rejected = sci 1;
        s_budget_exhaustions = sci 2;
        s_peak_qubits = sci 3;
        s_peak_queue = sci 4;
        s_retries = sci 5;
        s_util_integral = sc 6;
        s_last_time = sc 7;
        s_makespan = sc 8;
        s_faults_injected = sci 9;
        s_faults_repaired = sci 10;
        s_leases_interrupted = sci 11;
        s_leases_recovered = sci 12;
        s_leases_aborted = sci 13;
        s_lost_service = sc 14;
        s_reconfig_applied = sci 15;
        s_reconfig_recovered = sci 16;
        s_limiter = apply_refresh base.Engine.s_limiter d.d_limiter;
        s_health = apply_refresh base.Engine.s_health d.d_health;
        s_tier = apply_refresh base.Engine.s_tier d.d_tier;
        s_policy = apply_refresh base.Engine.s_policy d.d_policy;
        s_metrics;
      }

(* --- sexp codec ---------------------------------------------------- *)

let fld name elts = Sexp.list (Sexp.atom name :: elts)

let refresh_to_sexp name to_elts = function
  | Unchanged -> fld name [ Sexp.atom "unchanged" ]
  | Set v -> fld name (Sexp.atom "set" :: to_elts v)

let opt_to_elts f = function None -> [] | Some v -> [ f v ]

let metrics_entries entries =
  List.map Engine.dumped_to_sexp entries

let to_sexp (d : t) =
  Sexp.list
    [
      Sexp.atom version;
      fld "at" [ Sexp.float d.d_at ];
      fld "next-ckpt" [ Sexp.float d.d_next_ckpt ];
      fld "next-seq" [ Sexp.int d.d_next_seq ];
      fld "next-lease" [ Sexp.int d.d_next_lease ];
      fld "scalars" (List.map Sexp.float (Array.to_list d.d_scalars));
      fld "events-removed"
        (List.map
           (fun (t, seq) -> Sexp.list [ Sexp.float t; Sexp.int seq ])
           d.d_events_removed);
      fld "events-added"
        (List.map
           (fun (t, seq, ev) ->
             Sexp.list
               [ Sexp.float t; Sexp.int seq; Engine.s_event_to_sexp ev ])
           d.d_events_added);
      fld "states"
        (List.map
           (fun ss ->
             Sexp.list
               [
                 Sexp.int ss.Engine.ss_id;
                 Sexp.int ss.Engine.ss_attempts;
                 Sexp.float ss.Engine.ss_backoff;
                 Sexp.atom (if ss.Engine.ss_waiting then "true" else "false");
                 Sexp.atom (if ss.Engine.ss_resolved then "true" else "false");
               ])
           d.d_states);
      refresh_to_sexp "queue" (List.map Sexp.int) d.d_queue;
      fld "active-removed" (List.map Sexp.int d.d_active_removed);
      fld "active"
        (List.map
           (fun sa ->
             Sexp.list
               [
                 Sexp.int sa.Engine.sa_lid;
                 Sexp.int sa.Engine.sa_id;
                 Sexp.float sa.Engine.sa_started;
                 Sexp.float sa.Engine.sa_finish;
                 Sexp.int sa.Engine.sa_recoveries;
                 Sexp.int sa.Engine.sa_tier;
                 Sexp.list
                   (List.map
                      (fun p -> Sexp.list (List.map Sexp.int p))
                      sa.Engine.sa_paths);
               ])
           d.d_active);
      fld "outcomes-new"
        (List.map
           (fun (id, res) ->
             Sexp.list [ Sexp.int id; Engine.s_resolution_to_sexp res ])
           d.d_outcomes_new);
      fld "quota-removed" (List.map Sexp.int d.d_quota_removed);
      fld "quota"
        (List.map
           (fun (a, b) -> Sexp.list [ Sexp.int a; Sexp.int b ])
           d.d_quota);
      fld "residual-removed" (List.map Sexp.int d.d_residual_removed);
      fld "residual"
        (List.map
           (fun (a, b) -> Sexp.list [ Sexp.int a; Sexp.int b ])
           d.d_residual);
      refresh_to_sexp "limiter"
        (opt_to_elts (fun (tokens, last) ->
             Sexp.list [ Sexp.float tokens; Sexp.float last ]))
        d.d_limiter;
      refresh_to_sexp "health" (opt_to_elts Engine.health_to_sexp) d.d_health;
      refresh_to_sexp "tier" (opt_to_elts Engine.tier_to_sexp) d.d_tier;
      refresh_to_sexp "policy" (opt_to_elts Fun.id) d.d_policy;
      (match d.d_metrics with
      | M_unchanged -> fld "metrics" [ Sexp.atom "unchanged" ]
      | M_set None -> fld "metrics" [ Sexp.atom "none" ]
      | M_set (Some entries) ->
          fld "metrics" (Sexp.atom "set" :: metrics_entries entries)
      | M_diff (removed, upserts) ->
          (* The registry diff is the bulk of a typical delta: ship it
             as the compact binary codec, hex-armoured to stay inside
             the line-oriented file format. *)
          fld "metrics"
            [
              Sexp.atom "diff";
              Sexp.atom
                (Wire.to_hex (Wire.encode_metrics_diff ~removed ~upserts));
            ]);
    ]

(* parsing *)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let sx_assoc fields name =
  let rec find = function
    | [] -> err "delta: missing field %s" name
    | Sexp.List (Sexp.Atom n :: rest) :: _ when n = name -> Ok rest
    | _ :: tl -> find tl
  in
  find fields

let sx_field1 fields name =
  let* l = sx_assoc fields name in
  match l with
  | [ x ] -> Ok x
  | _ -> err "delta: field %s expects one value" name

let sx_bool = function
  | Sexp.Atom "true" -> Ok true
  | Sexp.Atom "false" -> Ok false
  | _ -> Error "expected true or false"

let refresh_of_sexp fields name of_elts =
  let* l = sx_assoc fields name in
  match l with
  | [ Sexp.Atom "unchanged" ] -> Ok Unchanged
  | Sexp.Atom "set" :: rest ->
      let* v = of_elts rest in
      Ok (Set v)
  | _ -> err "delta: malformed %s section" name

let opt_of_elts f = function
  | [] -> Ok None
  | [ x ] ->
      let* v = f x in
      Ok (Some v)
  | _ -> Error "expected at most one value"

let of_sexp doc =
  match doc with
  | Sexp.List (Sexp.Atom v :: fields) when v = version ->
      let* at = sx_field1 fields "at" in
      let* d_at = Sexp.to_float at in
      let* nc = sx_field1 fields "next-ckpt" in
      let* d_next_ckpt = Sexp.to_float nc in
      let* ns = sx_field1 fields "next-seq" in
      let* d_next_seq = Sexp.to_int ns in
      let* nl = sx_field1 fields "next-lease" in
      let* d_next_lease = Sexp.to_int nl in
      let* scalars = sx_assoc fields "scalars" in
      let* scalars = map_result Sexp.to_float scalars in
      let d_scalars = Array.of_list scalars in
      let* er = sx_assoc fields "events-removed" in
      let* d_events_removed =
        map_result
          (function
            | Sexp.List [ t; seq ] ->
                let* t = Sexp.to_float t in
                let* seq = Sexp.to_int seq in
                Ok (t, seq)
            | _ -> Error "malformed removed-event key")
          er
      in
      let* ea = sx_assoc fields "events-added" in
      let* d_events_added =
        map_result
          (function
            | Sexp.List [ t; seq; ev ] ->
                let* t = Sexp.to_float t in
                let* seq = Sexp.to_int seq in
                let* ev = Engine.s_event_of_sexp ev in
                Ok (t, seq, ev)
            | _ -> Error "malformed added-event entry")
          ea
      in
      let* states = sx_assoc fields "states" in
      let* d_states =
        map_result
          (function
            | Sexp.List [ id; attempts; backoff; waiting; resolved ] ->
                let* ss_id = Sexp.to_int id in
                let* ss_attempts = Sexp.to_int attempts in
                let* ss_backoff = Sexp.to_float backoff in
                let* ss_waiting = sx_bool waiting in
                let* ss_resolved = sx_bool resolved in
                Ok
                  {
                    Engine.ss_id;
                    ss_attempts;
                    ss_backoff;
                    ss_waiting;
                    ss_resolved;
                  }
            | _ -> Error "malformed request-state entry")
          states
      in
      let* d_queue = refresh_of_sexp fields "queue" (map_result Sexp.to_int) in
      let* ar = sx_assoc fields "active-removed" in
      let* d_active_removed = map_result Sexp.to_int ar in
      let* active = sx_assoc fields "active" in
      let* d_active =
        map_result
          (function
            | Sexp.List [ lid; id; started; finish; recoveries; tier; paths ]
              ->
                let* sa_lid = Sexp.to_int lid in
                let* sa_id = Sexp.to_int id in
                let* sa_started = Sexp.to_float started in
                let* sa_finish = Sexp.to_float finish in
                let* sa_recoveries = Sexp.to_int recoveries in
                let* sa_tier = Sexp.to_int tier in
                let* sa_paths =
                  match paths with
                  | Sexp.List ps ->
                      map_result
                        (function
                          | Sexp.List vs -> map_result Sexp.to_int vs
                          | Sexp.Atom _ -> Error "expected a vertex path")
                        ps
                  | Sexp.Atom _ -> Error "expected a path list"
                in
                Ok
                  {
                    Engine.sa_lid;
                    sa_id;
                    sa_paths;
                    sa_started;
                    sa_finish;
                    sa_recoveries;
                    sa_tier;
                  }
            | _ -> Error "malformed active-lease entry")
          active
      in
      let* outcomes = sx_assoc fields "outcomes-new" in
      let* d_outcomes_new =
        map_result
          (function
            | Sexp.List [ id; res ] ->
                let* id = Sexp.to_int id in
                let* res = Engine.s_resolution_of_sexp res in
                Ok (id, res)
            | _ -> Error "malformed outcome entry")
          outcomes
      in
      let pair = function
        | Sexp.List [ a; b ] ->
            let* a = Sexp.to_int a in
            let* b = Sexp.to_int b in
            Ok (a, b)
        | _ -> Error "expected an (int int) pair"
      in
      let* qr = sx_assoc fields "quota-removed" in
      let* d_quota_removed = map_result Sexp.to_int qr in
      let* quota = sx_assoc fields "quota" in
      let* d_quota = map_result pair quota in
      let* rr = sx_assoc fields "residual-removed" in
      let* d_residual_removed = map_result Sexp.to_int rr in
      let* residual = sx_assoc fields "residual" in
      let* d_residual = map_result pair residual in
      let* d_limiter =
        refresh_of_sexp fields "limiter"
          (opt_of_elts (function
            | Sexp.List [ tokens; last ] ->
                let* tokens = Sexp.to_float tokens in
                let* last = Sexp.to_float last in
                Ok (tokens, last)
            | _ -> Error "malformed limiter value"))
      in
      let* d_health =
        refresh_of_sexp fields "health" (opt_of_elts Engine.health_of_sexp)
      in
      let* d_tier =
        refresh_of_sexp fields "tier" (opt_of_elts Engine.tier_of_sexp)
      in
      let* d_policy =
        refresh_of_sexp fields "policy" (opt_of_elts (fun doc -> Ok doc))
      in
      let* metrics = sx_assoc fields "metrics" in
      let* d_metrics =
        match metrics with
        | [ Sexp.Atom "unchanged" ] -> Ok M_unchanged
        | [ Sexp.Atom "none" ] -> Ok (M_set None)
        | Sexp.Atom "set" :: entries ->
            let* entries = map_result Engine.dumped_of_sexp entries in
            Ok (M_set (Some entries))
        | [ Sexp.Atom "diff"; Sexp.Atom hex ] ->
            let* payload = Wire.of_hex hex in
            let* removed, upserts = Wire.decode_metrics_diff payload in
            Ok (M_diff (removed, upserts))
        | _ -> Error "delta: malformed metrics section"
      in
      Ok
        {
          d_at;
          d_next_ckpt;
          d_next_seq;
          d_next_lease;
          d_scalars;
          d_events_removed;
          d_events_added;
          d_states;
          d_queue;
          d_active_removed;
          d_active;
          d_outcomes_new;
          d_quota_removed;
          d_quota;
          d_residual_removed;
          d_residual;
          d_limiter;
          d_health;
          d_tier;
          d_policy;
          d_metrics;
        }
  | Sexp.List (Sexp.Atom v :: _)
    when String.length v > 19 && String.sub v 0 19 = "muerp-snapshot-delt" ->
      err "unsupported delta version %s (this build reads %s)" v version
  | _ -> err "malformed delta document (expected (%s ...))" version
