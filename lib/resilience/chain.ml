module Sexp = Qnet_util.Sexp
module Engine = Qnet_online.Engine

(* Incremental checkpoint chains.

   A chain is one full checkpoint file (the base, at the caller's
   path) plus numbered delta files beside it:

     FILE        muerp-checkpoint/1        (full snapshot)
     FILE.d1     muerp-checkpoint-delta/1  (diff vs FILE)
     FILE.d2     muerp-checkpoint-delta/1  (diff vs FILE.d1's state)
     ...
     FILE.journal muerp-journal/1          (transitions since last cut)

   Each delta body carries a chain record naming the base digest, the
   parent file's footer digest and its own index, so recovery can
   detect a file that belongs to a different chain generation (e.g. a
   crash between rewriting the base and clearing old deltas) and skip
   it rather than splice states from two runs.

   Cadence: every [every] deltas the writer emits a fresh full
   snapshot — rebasing the chain so restore cost and corruption blast
   radius stay bounded — then deletes the stale delta files.  The
   order matters: the new base is renamed into place *first*, so a
   crash mid-cleanup leaves old deltas whose [base] link no longer
   matches; recovery skips them with a warning and lands on the new
   base, never on a Frankenstein state.

   Recovery walks base -> d1 -> d2 -> ... verifying each footer and
   chain link, applying deltas in order.  The first file that fails
   (missing, torn, bit-flipped, wrong parent) poisons the suffix:
   recovery stops there, reports what it skipped, and returns the last
   state it could prove — the contract is "a valid earlier state with
   a warning", and an error only when the base itself is gone. *)

let delta_version = "muerp-checkpoint-delta/1"
let delta_path base i = Printf.sprintf "%s.d%d" base i
let journal_path base = base ^ ".journal"

let err fmt = Printf.ksprintf (fun m -> Error m) fmt
let ( let* ) = Result.bind

(* --- delta files --------------------------------------------------- *)

let write_delta ~path ~config ~base_digest ~parent ~index delta =
  Checkpoint.write_with_footer ~path (fun oc ->
      output_string oc delta_version;
      output_char oc '\n';
      Sexp.output oc (Sexp.list [ Sexp.atom "config"; Sexp.atom config ]);
      output_char oc '\n';
      Sexp.output oc
        (Sexp.list
           [
             Sexp.atom "chain";
             Sexp.list [ Sexp.atom "base"; Sexp.atom base_digest ];
             Sexp.list [ Sexp.atom "parent"; Sexp.atom parent ];
             Sexp.list [ Sexp.atom "index"; Sexp.int index ];
           ]);
      output_char oc '\n';
      Sexp.output oc (Delta.to_sexp delta);
      output_char oc '\n')

(* Parse and cross-check a delta file body against its expected place
   in the chain; any mismatch is a reason to stop the walk. *)
let parse_delta ~path ~config ~base_digest ~parent ~index body =
  match String.split_on_char '\n' body with
  | header :: config_line :: chain_line :: delta_line :: _
    when header = delta_version ->
      let* () =
        match Sexp.of_string config_line with
        | Ok (Sexp.List [ Sexp.Atom "config"; Sexp.Atom written ]) ->
            if String.equal written config then Ok ()
            else
              err
                "delta %s was written under different flags (%s) than this \
                 run (%s)"
                path written config
        | Ok _ | Error _ -> err "delta %s has a malformed config record" path
      in
      let* () =
        match Sexp.of_string chain_line with
        | Ok
            (Sexp.List
              [
                Sexp.Atom "chain";
                Sexp.List [ Sexp.Atom "base"; Sexp.Atom b ];
                Sexp.List [ Sexp.Atom "parent"; Sexp.Atom p ];
                Sexp.List [ Sexp.Atom "index"; Sexp.Atom i ];
              ]) ->
            if not (String.equal b base_digest) then
              err "delta %s belongs to a different chain generation" path
            else if not (String.equal p parent) then
              err "delta %s does not extend the previous file (parent link \
                   mismatch)"
                path
            else if int_of_string_opt i <> Some index then
              err "delta %s is out of sequence (expected index %d)" path index
            else Ok ()
        | Ok _ | Error _ -> err "delta %s has a malformed chain record" path
      in
      let* doc =
        match Sexp.of_string delta_line with
        | Ok doc -> Ok doc
        | Error m -> err "delta %s: unreadable delta document: %s" path m
      in
      Result.map_error (fun m -> Printf.sprintf "delta %s: %s" path m)
        (Delta.of_sexp doc)
  | header :: _
    when String.length header >= 21
         && String.sub header 0 21 = "muerp-checkpoint-delt" ->
      err "delta %s uses unsupported version %s (this build reads %s)" path
        header delta_version
  | header :: _ when header = Checkpoint.version ->
      err "%s is a full checkpoint where a delta was expected" path
  | _ -> err "%s is not a muerp checkpoint delta file" path

let clear_deltas base =
  let rec go i =
    let p = delta_path base i in
    if Sys.file_exists p then begin
      (try Sys.remove p with Sys_error _ -> ());
      go (i + 1)
    end
  in
  go 1

(* --- writer -------------------------------------------------------- *)

type cut_info = {
  c_kind : [ `Full | `Delta ];
  c_path : string;
  c_digest : string;
  c_bytes : int;
}

type writer = {
  w_base : string;
  w_config : string;
  w_every : int;
  w_journal_path : string option;
  mutable w_prev : Engine.snapshot option;
  mutable w_prev_digest : string;
  mutable w_base_digest : string;
  mutable w_index : int;
  mutable w_journal : Journal.writer option;
}

let create ~path ~config ~every ?journal () =
  if every < 1 then invalid_arg "Chain.create: cadence must be >= 1";
  {
    w_base = path;
    w_config = config;
    w_every = every;
    w_journal_path = journal;
    w_prev = None;
    w_prev_digest = "";
    w_base_digest = "";
    w_index = 0;
    w_journal = None;
  }

let file_bytes path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* After every successful cut the journal restarts, chained to the
   file just written — its records are exactly the transitions
   committed past the newest durable state. *)
let restart_journal w ~digest =
  match w.w_journal_path with
  | None -> Ok ()
  | Some path ->
      (match w.w_journal with
      | Some jw -> ignore (Journal.close jw)
      | None -> ());
      w.w_journal <- None;
      let* jw =
        Journal.create ~path ~config:w.w_config ~head:digest ~index:w.w_index
      in
      w.w_journal <- Some jw;
      Ok ()

let cut w (snap : Engine.snapshot) =
  let full = w.w_prev = None || w.w_index >= w.w_every in
  if full then begin
    let* digest = Checkpoint.save ~path:w.w_base ~config:w.w_config snap in
    clear_deltas w.w_base;
    w.w_prev <- Some snap;
    w.w_prev_digest <- digest;
    w.w_base_digest <- digest;
    w.w_index <- 0;
    let* () = restart_journal w ~digest in
    Ok
      {
        c_kind = `Full;
        c_path = w.w_base;
        c_digest = digest;
        c_bytes = file_bytes w.w_base;
      }
  end
  else begin
    let base = Option.get w.w_prev in
    let delta = Delta.diff ~base snap in
    let index = w.w_index + 1 in
    let path = delta_path w.w_base index in
    let* digest =
      write_delta ~path ~config:w.w_config ~base_digest:w.w_base_digest
        ~parent:w.w_prev_digest ~index delta
    in
    w.w_prev <- Some snap;
    w.w_prev_digest <- digest;
    w.w_index <- index;
    let* () = restart_journal w ~digest in
    Ok { c_kind = `Delta; c_path = path; c_digest = digest; c_bytes = file_bytes path }
  end

let on_transition w tr =
  match w.w_journal with None -> () | Some jw -> Journal.append jw tr

let close w =
  match w.w_journal with
  | None -> ()
  | Some jw ->
      ignore (Journal.close jw);
      w.w_journal <- None

(* --- recovery ------------------------------------------------------ *)

type recovered = {
  r_snapshot : Engine.snapshot;
  r_head : string;
  r_index : int;
  r_deltas_applied : int;
  r_warnings : string list;
  r_journal : Engine.transition list;
}

let recover ~path ~config ?journal () =
  let* base_snap, base_digest = Checkpoint.load_verified ~path ~config in
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt
  in
  (* Walk the delta chain; the first bad file poisons the suffix. *)
  let rec walk snap parent index applied =
    let i = index + 1 in
    let p = delta_path path i in
    if not (Sys.file_exists p) then (snap, parent, index, applied)
    else
      let step =
        let* body, digest = Checkpoint.read_with_footer ~path:p in
        let* delta =
          parse_delta ~path:p ~config ~base_digest ~parent ~index:i body
        in
        let* snap = Delta.apply ~base:snap delta in
        Ok (snap, digest)
      in
      match step with
      | Ok (snap, digest) -> walk snap digest i (applied + 1)
      | Error m ->
          warn "%s — restoring the last good state before it" m;
          (snap, parent, index, applied)
  in
  let r_snapshot, r_head, r_index, r_deltas_applied =
    walk base_snap base_digest 0 0
  in
  (* The journal is only usable when it extends exactly the state we
     recovered; anything else is stale, and stale means ignore, not
     fail. *)
  let r_journal =
    match journal with
    | None -> []
    | Some jpath ->
        if not (Sys.file_exists jpath) then []
        else begin
          match Journal.read ~path:jpath with
          | Error m ->
              warn "%s — ignoring the journal" m;
              []
          | Ok c ->
              if not (String.equal c.Journal.j_config config) then begin
                warn
                  "journal %s was written under different flags — ignoring it"
                  jpath;
                []
              end
              else if
                (not (String.equal c.Journal.j_head r_head))
                || c.Journal.j_index <> r_index
              then begin
                warn
                  "journal %s does not extend the recovered checkpoint \
                   (stale or from a skipped chain suffix) — ignoring it"
                  jpath;
                []
              end
              else begin
                (match c.Journal.j_torn with
                | Some m -> warn "%s" m
                | None -> ());
                c.Journal.j_records
              end
        end
  in
  Ok
    {
      r_snapshot;
      r_head;
      r_index;
      r_deltas_applied;
      r_warnings = List.rev !warnings;
      r_journal;
    }
