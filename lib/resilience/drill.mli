(** Long-horizon crash-recovery drills.

    {!crash_restore} runs a workload to completion while cutting
    checkpoints every [every] time units, then simulates a crash at
    {e every} checkpoint instant: the snapshot is serialised, parsed
    back (a real crash leaves only bytes), restored into a fresh
    {!Qnet_online.Engine.run}, and the continuation's report table and
    outcome list are compared against the uninterrupted run's.  Any
    divergence — a report that is not byte-identical, an outcome list
    that is not structurally equal, a snapshot that fails to re-parse,
    a restore the engine refuses — is recorded with its instant. *)

type t = {
  checkpoints : int;  (** Snapshots cut by the uninterrupted run. *)
  mismatches : (float * string) list;
      (** [(instant, reason)] for every diverging restore; empty means
          the drill passed. *)
}

val passed : t -> bool

val crash_restore :
  ?config:Qnet_online.Engine.config ->
  ?faults:Qnet_faults.Model.t ->
  ?fault_schedule:Qnet_faults.Schedule.event list ->
  ?reconfig:Qnet_online.Reconfig.event list ->
  ?pool:Qnet_util.Pool.t ->
  ?slot:float ->
  every:float ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  requests:Qnet_online.Workload.request list ->
  t
(** The optional arguments mirror {!Qnet_online.Engine.run} and are
    passed to both the uninterrupted run and every restored
    continuation, so the drill exercises exactly the configuration the
    caller will run in production — including faults, live
    reconfiguration, overload control and the concurrent serving
    path. *)

val pp : Format.formatter -> t -> unit
(** One-line pass summary, or the list of diverging instants. *)

(** {1 Incremental-chain drills}

    {!chain_restore} exercises the full durability stack: the run cuts
    through a real {!Chain} writer (base, deltas and write-ahead
    journal on disk in [dir]), the drill captures the byte-exact file
    set after every cut plus once at run end (when the journal carries
    the tail), and each capture is crashed into — recovered with
    {!Chain.recover} and re-run to completion under the journal
    {!Journal.verifier}.

    Determinism gives one pass criterion that survives corruption:
    recovery from {e any} valid state completes to the same final
    report.  So with an {!injection}, every crash point must either
    produce a byte-identical completion (journal fully re-emitted) or
    degrade to a friendly [Error] — an exception anywhere fails the
    drill. *)

type injection =
  | Torn_write of int
      (** Truncate the newest file of each capture by N bytes — the
          mid-write crash. *)
  | Bit_flip of int
      (** Flip bit N of the middle file — silent media corruption. *)

type chain_t = {
  chain_cuts : int;  (** Cuts performed by the uninterrupted run. *)
  chain_captures : int;  (** Crash points exercised. *)
  chain_errors : (int * string) list;
      (** [(capture, reason)] for every failure; empty means passed. *)
  chain_degraded : int;
      (** Injected captures that recovered to an earlier state or a
          friendly error — expected under injection. *)
}

val chain_passed : chain_t -> bool

val chain_restore :
  ?config:Qnet_online.Engine.config ->
  ?faults:Qnet_faults.Model.t ->
  ?fault_schedule:Qnet_faults.Schedule.event list ->
  ?reconfig:Qnet_online.Reconfig.event list ->
  ?pool:Qnet_util.Pool.t ->
  ?slot:float ->
  ?inject:injection ->
  every:float ->
  cadence:int ->
  dir:string ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  requests:Qnet_online.Workload.request list ->
  chain_t
(** [cadence] is the {!Chain.create} rebase period (deltas per full
    snapshot); [dir] must be a writable scratch directory — the drill
    cleans its chain files up on exit. *)

val pp_chain : Format.formatter -> chain_t -> unit
