(** Long-horizon crash-recovery drills.

    {!crash_restore} runs a workload to completion while cutting
    checkpoints every [every] time units, then simulates a crash at
    {e every} checkpoint instant: the snapshot is serialised, parsed
    back (a real crash leaves only bytes), restored into a fresh
    {!Qnet_online.Engine.run}, and the continuation's report table and
    outcome list are compared against the uninterrupted run's.  Any
    divergence — a report that is not byte-identical, an outcome list
    that is not structurally equal, a snapshot that fails to re-parse,
    a restore the engine refuses — is recorded with its instant. *)

type t = {
  checkpoints : int;  (** Snapshots cut by the uninterrupted run. *)
  mismatches : (float * string) list;
      (** [(instant, reason)] for every diverging restore; empty means
          the drill passed. *)
}

val passed : t -> bool

val crash_restore :
  ?config:Qnet_online.Engine.config ->
  ?faults:Qnet_faults.Model.t ->
  ?fault_schedule:Qnet_faults.Schedule.event list ->
  ?reconfig:Qnet_online.Reconfig.event list ->
  ?pool:Qnet_util.Pool.t ->
  ?slot:float ->
  every:float ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  requests:Qnet_online.Workload.request list ->
  t
(** The optional arguments mirror {!Qnet_online.Engine.run} and are
    passed to both the uninterrupted run and every restored
    continuation, so the drill exercises exactly the configuration the
    caller will run in production — including faults, live
    reconfiguration, overload control and the concurrent serving
    path. *)

val pp : Format.formatter -> t -> unit
(** One-line pass summary, or the list of diverging instants. *)
