(** Write-ahead event journal for the online engine.

    An append-only, fsync-batched record of every committed engine
    transition ({!Qnet_online.Engine.transition}) since the last
    checkpoint cut.  Restore replays the engine from that cut and
    {e verifies} the run re-emits exactly the recorded stream — the
    journal attests that the recovered state equals the state that
    crashed, it is never an alternative source of truth (the engine is
    deterministic; the replay is).

    File layout ([muerp-journal/1]): three header text lines (version,
    config fingerprint, the chain head digest + delta index the journal
    extends), then binary records framed as
    [varint length][payload][4-byte truncated MD5].  The per-record
    checksum pins the torn-tail case to an exact record boundary: a
    crash mid-append loses only the in-flight record, and {!read}
    reports the tail as torn (a warning) rather than corrupt (an
    error). *)

val version : string
(** The file-format tag, [muerp-journal/1]. *)

val fsync_every : int
(** Records per fsync batch.  Bounds replay-unverifiable loss after a
    power cut without paying a disk round-trip per admission. *)

(** {1 Writing} *)

type writer

val create :
  path:string ->
  config:string ->
  head:string ->
  index:int ->
  (writer, string) result
(** Start a journal at [path] (truncating any previous one), chained to
    the checkpoint whose footer digest is [head] at delta [index].  The
    header is fsynced before returning. *)

val append : writer -> Qnet_online.Engine.transition -> unit
(** Append one committed transition; fsyncs every {!fsync_every}
    records.  @raise Invalid_argument after {!close}. *)

val close : writer -> int
(** Flush, fsync and close; returns the number of records written.
    Idempotent. *)

(** {1 Reading} *)

type contents = {
  j_config : string;
  j_head : string;  (** Footer digest of the chain file this extends. *)
  j_index : int;  (** Delta index of that file. *)
  j_records : Qnet_online.Engine.transition list;  (** Commit order. *)
  j_torn : string option;
      (** Warning when the tail was cut mid-record; the records before
          it are intact and usable. *)
}

val read : path:string -> (contents, string) result
(** Read and frame-check a journal.  [Error] for unreadable, empty,
    version-mismatched or header-corrupt files; a torn {e tail} is not
    an error (see {!type:contents}). *)

(** {1 Replay verification} *)

type verifier

val verifier : Qnet_online.Engine.transition list -> verifier
(** A checker expecting exactly [records] in order; feed it to the
    engine as [?on_transition:(observe v)]. *)

val observe : verifier -> Qnet_online.Engine.transition -> unit
(** Compare the next committed transition against the journal.  A run
    that outlives the journal is fine (the tail was torn or lost
    between fsyncs); a {e divergence} is recorded and reported by
    {!finish}. *)

val finish : verifier -> (int, string) result
(** [Ok matched] when the full journal was re-emitted in order; [Error]
    describing the first divergence or the unconsumed remainder. *)

val describe : Qnet_online.Engine.transition -> string
(** One-line human rendering, used in verifier diagnostics. *)
