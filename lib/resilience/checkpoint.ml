module Sexp = Qnet_util.Sexp
module Engine = Qnet_online.Engine

(* On-disk checkpoint format, version muerp-checkpoint/1:

     muerp-checkpoint/1
     (config "<fingerprint>")
     (muerp-engine-snapshot/2 ...)
     integrity <md5-hex> <byte-length>

   The integrity footer covers every byte before it, so a torn or
   truncated write (the crash cases a checkpoint exists to survive) is
   detected before any parsing.  Writes go to [path ^ ".tmp"] and
   rename into place, so the published file is always complete — the
   footer guards against out-of-band corruption and copies of a file
   that was still being written.

   The config fingerprint is an opaque caller-chosen string (the CLI
   folds its run-shaping flags into it); a restore under different
   flags fails here with a message naming both, rather than deep inside
   the engine.

   The footer digest doubles as the file's identity: incremental
   checkpoint chains (Chain) link each delta to its parent by quoting
   the parent's footer digest, which is why [save] and
   [write_with_footer] return it. *)

let version = "muerp-checkpoint/1"

(* Write [emit]'s output to [path] atomically, with the integrity
   footer appended.  The body is streamed — written to the tmp file,
   then digested by re-reading it through [Digest.channel] — so a
   snapshot of a 100k-switch network never has to exist as one
   in-memory string (Stdlib.Digest has no incremental feed API). *)
let write_with_footer ~path emit =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try emit oc
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    let ic = open_in_bin tmp in
    let len = in_channel_length ic in
    let digest = Digest.to_hex (Digest.channel ic len) in
    close_in ic;
    let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 tmp in
    Printf.fprintf oc "integrity %s %d\n" digest len;
    close_out oc;
    Sys.rename tmp path;
    Ok digest
  with Sys_error m -> Error (Printf.sprintf "cannot write checkpoint: %s" m)

let save ~path ~config snap =
  write_with_footer ~path (fun oc ->
      output_string oc version;
      output_char oc '\n';
      Sexp.output oc (Sexp.list [ Sexp.atom "config"; Sexp.atom config ]);
      output_char oc '\n';
      Sexp.output oc (Engine.snapshot_to_sexp snap);
      output_char oc '\n')

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    Ok data
  with
  | Sys_error m -> Error (Printf.sprintf "cannot read checkpoint: %s" m)
  | End_of_file -> Error (Printf.sprintf "cannot read checkpoint %s" path)

(* Split off the trailing "integrity <hex> <len>\n" footer and verify
   it against the preceding bytes; returns the body and its digest. *)
let verified_body path data =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = String.length data in
  if n = 0 then err "checkpoint %s is empty" path
  else if data.[n - 1] <> '\n' then
    err "checkpoint %s is truncated (no final newline)" path
  else
    let line_start =
      match String.rindex_from_opt data (n - 2) '\n' with
      | Some i -> i + 1
      | None -> 0
    in
    let footer = String.sub data line_start (n - 1 - line_start) in
    match String.split_on_char ' ' footer with
    | [ "integrity"; hex; len ] -> (
        match int_of_string_opt len with
        | None -> err "checkpoint %s has a malformed integrity footer" path
        | Some len ->
            let body = String.sub data 0 line_start in
            if String.length body <> len then
              err
                "checkpoint %s is torn or truncated (expected %d bytes, \
                 found %d)"
                path len (String.length body)
            else if not (String.equal (Digest.to_hex (Digest.string body)) hex)
            then err "checkpoint %s fails its checksum (corrupt file)" path
            else Ok (body, hex))
    | _ ->
        err "checkpoint %s has no integrity footer (torn or truncated write)"
          path

let ( let* ) = Result.bind

let magic = "muerp-checkpoint"

let read_with_footer ~path =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* data = read_file path in
  (* Identify the file before integrity-checking it: a random file that
     merely lacks a footer should be called what it is, not "torn". *)
  let* () =
    if
      String.length data >= String.length magic
      && String.sub data 0 (String.length magic) = magic
    then Ok ()
    else if String.length data = 0 then err "checkpoint %s is empty" path
    else err "%s is not a muerp checkpoint file" path
  in
  verified_body path data

let load_verified ~path ~config =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* body, digest = read_with_footer ~path in
  match String.split_on_char '\n' body with
  | header :: config_line :: snapshot_line :: _ when header = version ->
      let* () =
        match Sexp.of_string config_line with
        | Ok (Sexp.List [ Sexp.Atom "config"; Sexp.Atom written ]) ->
            if String.equal written config then Ok ()
            else
              err
                "checkpoint %s was written under different flags (%s) than \
                 this run (%s)"
                path written config
        | Ok _ | Error _ ->
            err "checkpoint %s has a malformed config record" path
      in
      let* doc =
        match Sexp.of_string snapshot_line with
        | Ok doc -> Ok doc
        | Error m -> err "checkpoint %s: unreadable snapshot: %s" path m
      in
      let* snap =
        Result.map_error
          (fun m -> Printf.sprintf "checkpoint %s: %s" path m)
          (Engine.snapshot_of_sexp doc)
      in
      Ok (snap, digest)
  | header :: _
    when String.length header >= 16
         && String.sub header 0 16 = "muerp-checkpoint" ->
      err "checkpoint %s uses unsupported version %s (this build reads %s)"
        path header version
  | _ -> err "%s is not a muerp checkpoint file" path

let load ~path ~config = Result.map fst (load_verified ~path ~config)
