module Engine = Qnet_online.Engine
module Table = Qnet_util.Table

(* Crash-recovery drill: run a workload to completion while cutting
   checkpoints, then simulate a crash at every checkpoint instant —
   serialise the snapshot, parse it back (the restored process only
   ever has the bytes), restore, and finish the run.  Every restored
   continuation must reproduce the uninterrupted run's report table
   byte-for-byte and its outcome list structurally; anything else is a
   determinism bug worth failing loudly over. *)

type t = {
  checkpoints : int;  (* snapshots cut by the uninterrupted run *)
  mismatches : (float * string) list;
      (* (instant, reason) for every restore that diverged *)
}

let passed d = d.mismatches = []

let crash_restore ?config ?faults ?fault_schedule ?reconfig ?pool ?slot ~every
    g params ~requests =
  let snaps = ref [] in
  let sink at snap = snaps := (at, snap) :: !snaps in
  let base_report, base_outcomes =
    Engine.run ?config ?faults ?fault_schedule ?reconfig ?pool ?slot
      ~checkpoint:(every, sink) g params ~requests
  in
  let base_table = Table.to_string (Engine.report_table base_report) in
  let mismatches =
    List.filter_map
      (fun (at, snap) ->
        (* Round-trip through the serialised form: a crash leaves only
           bytes behind, so the drill must restore from a parse, not
           from the in-memory snapshot. *)
        match Engine.snapshot_of_sexp (Engine.snapshot_to_sexp snap) with
        | Error m -> Some (at, "snapshot does not re-parse: " ^ m)
        | Ok snap -> (
            match
              Engine.run ?config ?faults ?fault_schedule ?reconfig ?pool ?slot
                ~restore_from:snap g params ~requests
            with
            | exception Invalid_argument m ->
                Some (at, "restore refused: " ^ m)
            | report, outcomes ->
                if
                  not
                    (String.equal
                       (Table.to_string (Engine.report_table report))
                       base_table)
                then Some (at, "restored report differs")
                else if compare outcomes base_outcomes <> 0 then
                  Some (at, "restored outcomes differ")
                else None))
      (List.rev !snaps)
  in
  { checkpoints = List.length !snaps; mismatches }

(* --- incremental-chain drill --------------------------------------- *)

(* The chain drill exercises the full durability stack: the run cuts
   through a real Chain writer (base + deltas + journal on disk), the
   drill captures the byte-exact file set after every cut (and once at
   run end, when the journal holds the tail), and each capture is
   "crashed into" — files written back, recovered via Chain.recover,
   the continuation re-run under the journal verifier.

   Determinism gives the drill a single pass criterion that survives
   corruption: a restore from ANY valid state — the newest, or an
   earlier one recovery fell back to after skipping a poisoned suffix —
   completes to the same final report.  So for every capture, injected
   or not: recovery must either produce a byte-identical completion
   (with the journal fully re-emitted), or degrade to a friendly
   [Error].  An exception anywhere is a failure. *)

type injection =
  | Torn_write of int
      (* truncate the newest file of the capture by N bytes — the
         mid-write crash *)
  | Bit_flip of int
      (* flip bit N of the middle file — silent media corruption *)

type chain_t = {
  chain_cuts : int;  (* cuts performed by the uninterrupted run *)
  chain_captures : int;  (* crash points exercised *)
  chain_errors : (int * string) list;  (* (capture, reason) failures *)
  chain_degraded : int;
      (* injected captures that recovered to an earlier state or a
         friendly error instead of the newest state — expected under
         injection, counted for reporting *)
}

let chain_passed d = d.chain_errors = []

let read_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let write_bytes path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* Every on-disk artefact of the chain rooted at [root], in chain
   order: base, d1..dN, journal. *)
let capture_chain root =
  let files = ref [] in
  if Sys.file_exists root then files := [ (root, read_bytes root) ];
  let rec deltas i =
    let p = Chain.delta_path root i in
    if Sys.file_exists p then begin
      files := (p, read_bytes p) :: !files;
      deltas (i + 1)
    end
  in
  deltas 1;
  let j = Chain.journal_path root in
  if Sys.file_exists j then files := (j, read_bytes j) :: !files;
  List.rev !files

let clear_chain root =
  let dir = Filename.dirname root and stem = Filename.basename root in
  Array.iter
    (fun name ->
      if
        String.length name >= String.length stem
        && String.sub name 0 (String.length stem) = stem
      then try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

let inject_into files = function
  | None -> files
  | Some (Torn_write n) -> (
      match List.rev files with
      | [] -> files
      | (path, data) :: older ->
          let keep = max 0 (String.length data - n) in
          List.rev ((path, String.sub data 0 keep) :: older))
  | Some (Bit_flip bit) -> (
      match files with
      | [] -> files
      | _ ->
          let target = List.length files / 2 in
          List.mapi
            (fun i ((path, data) as f) ->
              if i <> target || String.length data = 0 then f
              else begin
                let b = Bytes.of_string data in
                let bit = bit mod (8 * Bytes.length b) in
                let byte = bit / 8 and shift = bit mod 8 in
                Bytes.set b byte
                  (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl shift)));
                (path, Bytes.to_string b)
              end)
            files)

let chain_restore ?config ?faults ?fault_schedule ?reconfig ?pool ?slot
    ?inject ~every ~cadence ~dir g params ~requests =
  let root = Filename.concat dir "chain.ckpt" in
  let jpath = Chain.journal_path root in
  let fingerprint = "drill" in
  clear_chain root;
  let writer =
    Chain.create ~path:root ~config:fingerprint ~every:cadence ~journal:jpath
      ()
  in
  let captures = ref [] in
  let cut_errors = ref [] in
  let cuts = ref 0 in
  let sink _at snap =
    incr cuts;
    match Chain.cut writer snap with
    | Error m -> cut_errors := (!cuts, "cut failed: " ^ m) :: !cut_errors
    | Ok _ -> captures := capture_chain root :: !captures
  in
  let base_report, base_outcomes =
    Engine.run ?config ?faults ?fault_schedule ?reconfig ?pool ?slot
      ~on_transition:(Chain.on_transition writer) ~checkpoint:(every, sink) g
      params ~requests
  in
  Chain.close writer;
  (* One more crash point at run end, where the journal carries every
     transition since the last cut. *)
  captures := capture_chain root :: !captures;
  let captures = List.rev !captures in
  let base_table = Table.to_string (Engine.report_table base_report) in
  let degraded = ref 0 in
  let errors = ref (List.rev !cut_errors) in
  List.iteri
    (fun i files ->
      let fail reason = errors := !errors @ [ (i + 1, reason) ] in
      clear_chain root;
      List.iter (fun (path, data) -> write_bytes path data) (inject_into files inject);
      match Chain.recover ~path:root ~config:fingerprint ~journal:jpath () with
      | exception e ->
          fail ("recovery raised " ^ Printexc.to_string e
               ^ " (must degrade to an error, never a backtrace)")
      | Error m ->
          if inject = None then fail ("recovery failed on a clean chain: " ^ m)
          else if String.trim m = "" then fail "recovery error has no message"
          else incr degraded
      | Ok r -> (
          if inject <> None && (r.Chain.r_warnings <> [] || r.Chain.r_index = 0)
          then incr degraded;
          let v = Journal.verifier r.Chain.r_journal in
          match
            Engine.run ?config ?faults ?fault_schedule ?reconfig ?pool ?slot
              ~on_transition:(Journal.observe v)
              ~restore_from:r.Chain.r_snapshot g params ~requests
          with
          | exception Invalid_argument m -> fail ("restore refused: " ^ m)
          | report, outcomes -> (
              if
                not
                  (String.equal
                     (Table.to_string (Engine.report_table report))
                     base_table)
              then fail "restored report differs"
              else if compare outcomes base_outcomes <> 0 then
                fail "restored outcomes differ"
              else
                match Journal.finish v with
                | Ok _ -> ()
                | Error m -> fail ("journal replay: " ^ m))))
    captures;
  clear_chain root;
  {
    chain_cuts = !cuts;
    chain_captures = List.length captures;
    chain_errors = !errors;
    chain_degraded = !degraded;
  }

let pp_chain ppf d =
  if chain_passed d then
    Format.fprintf ppf
      "chain drill passed: %d cut(s), %d crash point(s), %d degraded \
       gracefully"
      d.chain_cuts d.chain_captures d.chain_degraded
  else begin
    Format.fprintf ppf "chain drill FAILED: %d of %d crash point(s) diverged"
      (List.length d.chain_errors)
      d.chain_captures;
    List.iter
      (fun (i, reason) -> Format.fprintf ppf "@.  capture %d: %s" i reason)
      d.chain_errors
  end

let pp ppf d =
  if passed d then
    Format.fprintf ppf "drill passed: %d checkpoint(s), all restores identical"
      d.checkpoints
  else begin
    Format.fprintf ppf "drill FAILED: %d of %d restore(s) diverged"
      (List.length d.mismatches) d.checkpoints;
    List.iter
      (fun (at, reason) -> Format.fprintf ppf "@.  t=%g: %s" at reason)
      d.mismatches
  end
