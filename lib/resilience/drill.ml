module Engine = Qnet_online.Engine
module Table = Qnet_util.Table

(* Crash-recovery drill: run a workload to completion while cutting
   checkpoints, then simulate a crash at every checkpoint instant —
   serialise the snapshot, parse it back (the restored process only
   ever has the bytes), restore, and finish the run.  Every restored
   continuation must reproduce the uninterrupted run's report table
   byte-for-byte and its outcome list structurally; anything else is a
   determinism bug worth failing loudly over. *)

type t = {
  checkpoints : int;  (* snapshots cut by the uninterrupted run *)
  mismatches : (float * string) list;
      (* (instant, reason) for every restore that diverged *)
}

let passed d = d.mismatches = []

let crash_restore ?config ?faults ?fault_schedule ?reconfig ?pool ?slot ~every
    g params ~requests =
  let snaps = ref [] in
  let sink at snap = snaps := (at, snap) :: !snaps in
  let base_report, base_outcomes =
    Engine.run ?config ?faults ?fault_schedule ?reconfig ?pool ?slot
      ~checkpoint:(every, sink) g params ~requests
  in
  let base_table = Table.to_string (Engine.report_table base_report) in
  let mismatches =
    List.filter_map
      (fun (at, snap) ->
        (* Round-trip through the serialised form: a crash leaves only
           bytes behind, so the drill must restore from a parse, not
           from the in-memory snapshot. *)
        match Engine.snapshot_of_sexp (Engine.snapshot_to_sexp snap) with
        | Error m -> Some (at, "snapshot does not re-parse: " ^ m)
        | Ok snap -> (
            match
              Engine.run ?config ?faults ?fault_schedule ?reconfig ?pool ?slot
                ~restore_from:snap g params ~requests
            with
            | exception Invalid_argument m ->
                Some (at, "restore refused: " ^ m)
            | report, outcomes ->
                if
                  not
                    (String.equal
                       (Table.to_string (Engine.report_table report))
                       base_table)
                then Some (at, "restored report differs")
                else if compare outcomes base_outcomes <> 0 then
                  Some (at, "restored outcomes differ")
                else None))
      (List.rev !snaps)
  in
  { checkpoints = List.length !snaps; mismatches }

let pp ppf d =
  if passed d then
    Format.fprintf ppf "drill passed: %d checkpoint(s), all restores identical"
      d.checkpoints
  else begin
    Format.fprintf ppf "drill FAILED: %d of %d restore(s) diverged"
      (List.length d.mismatches) d.checkpoints;
    List.iter
      (fun (at, reason) -> Format.fprintf ppf "@.  t=%g: %s" at reason)
      d.mismatches
  end
