(** Incremental checkpoint chains: a full base snapshot plus numbered
    delta files, with corruption-tolerant recovery.

    On disk, a chain rooted at [FILE] is [FILE] (a
    {!Checkpoint.version} full snapshot), [FILE.d1] … [FILE.dN]
    ([muerp-checkpoint-delta/1] files, each carrying a {!Delta.t} and a
    chain record naming the base digest, the parent file's footer
    digest and its own index), and optionally [FILE.journal] (the
    {!Journal} of transitions committed since the last cut).

    The writer rebases every [every] deltas — a fresh full snapshot
    replaces the base and the stale deltas are deleted — so restore
    cost and corruption blast radius stay bounded.  The base is renamed
    into place before the old deltas are cleared; a crash in between
    leaves deltas whose base link no longer matches, which recovery
    detects and skips.

    {!recover} walks base → d1 → … verifying each integrity footer and
    chain link.  The first bad file (missing, torn, bit-flipped, wrong
    parent, wrong config) poisons the suffix: the walk stops, reports
    what it skipped as warnings, and returns the last state it could
    prove.  The only hard error is a base that cannot itself be
    loaded. *)

val delta_version : string
(** The delta-file format tag, [muerp-checkpoint-delta/1]. *)

val delta_path : string -> int -> string
(** [delta_path base i] is the on-disk name of delta [i] ([base.d<i>]),
    exported for drills and tests that corrupt specific links. *)

val journal_path : string -> string
(** Default journal location beside a chain ([base.journal]). *)

(** {1 Writing} *)

type cut_info = {
  c_kind : [ `Full | `Delta ];
  c_path : string;
  c_digest : string;  (** Integrity-footer MD5, the file's identity. *)
  c_bytes : int;  (** File size — what the bench bills per cut. *)
}

type writer

val create :
  path:string ->
  config:string ->
  every:int ->
  ?journal:string ->
  unit ->
  writer
(** A chain writer rooted at [path].  [every] is the cadence: deltas
    per full-snapshot rebase (1 = every cut is full).  [journal]
    enables write-ahead journaling at the given path; the journal is
    restarted after every cut, chained to the file just written.
    @raise Invalid_argument when [every < 1]. *)

val cut : writer -> Qnet_online.Engine.snapshot -> (cut_info, string) result
(** Persist one checkpoint cut: the first cut and every [every]-th
    thereafter writes a full snapshot (and clears stale deltas), the
    rest write deltas against the previous cut. *)

val on_transition : writer -> Qnet_online.Engine.transition -> unit
(** Feed for [Engine.run ?on_transition]: appends to the live journal.
    A no-op without [journal], and before the first cut (there is no
    durable state to extend yet). *)

val close : writer -> unit
(** Flush and close the journal, if any.  Chain files are already
    durable (each {!cut} publishes atomically). *)

(** {1 Recovery} *)

type recovered = {
  r_snapshot : Qnet_online.Engine.snapshot;
      (** The newest state the chain could prove. *)
  r_head : string;  (** Footer digest of the last file applied. *)
  r_index : int;  (** Its delta index (0 = the base itself). *)
  r_deltas_applied : int;
  r_warnings : string list;
      (** One per skipped/ignored artefact — poisoned chain suffixes,
          stale or torn journals.  Callers print these; they are never
          fatal. *)
  r_journal : Qnet_online.Engine.transition list;
      (** Journal records extending [r_snapshot], for replay
          verification; empty when absent, stale or unusable. *)
}

val recover :
  path:string ->
  config:string ->
  ?journal:string ->
  unit ->
  (recovered, string) result
(** Load the chain rooted at [path], applying every delta that
    verifies.  [Error] only when the base itself is unreadable,
    corrupt, or was written under different flags — every downstream
    problem degrades to an earlier state plus warnings. *)
