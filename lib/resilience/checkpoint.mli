(** Durable checkpoint files for the online traffic engine.

    Wraps {!Qnet_online.Engine.snapshot_to_sexp} in a crash-safe file
    format: a version header, the caller's config fingerprint, the
    snapshot document, and an integrity footer (MD5 + byte length) over
    everything before it.  Writes are atomic (tmp file + rename), so a
    published checkpoint is always complete; the footer catches the
    remaining corruption cases — torn copies, truncation, bit rot —
    before any parsing, and {!load} turns every failure mode into a
    human-readable error naming the file and the reason (never a
    backtrace). *)

val version : string
(** The file-format tag, [muerp-checkpoint/1]. *)

val save :
  path:string ->
  config:string ->
  Qnet_online.Engine.snapshot ->
  (unit, string) result
(** Write the snapshot to [path] atomically.  [config] is an opaque
    fingerprint of the run-shaping flags (seed, policy, workload…);
    {!load} refuses a file whose fingerprint differs, because a restore
    only reproduces the uninterrupted run under identical inputs. *)

val load :
  path:string -> config:string -> (Qnet_online.Engine.snapshot, string) result
(** Read, verify and parse a checkpoint.  Errors (all naming [path]):
    unreadable file, empty/truncated/torn contents, checksum mismatch,
    unsupported format version, config fingerprint mismatch, malformed
    snapshot document. *)
