(** Durable checkpoint files for the online traffic engine.

    Wraps {!Qnet_online.Engine.snapshot_to_sexp} in a crash-safe file
    format: a version header, the caller's config fingerprint, the
    snapshot document, and an integrity footer (MD5 + byte length) over
    everything before it.  Writes are atomic (tmp file + rename) and
    {e streamed} — the snapshot is rendered straight to the file and
    digested by re-reading it, so a checkpoint of a 100k-switch network
    never materialises as one in-memory string.  The footer catches the
    corruption cases atomic publishing cannot — torn copies,
    truncation, bit rot — before any parsing, and {!load} turns every
    failure mode into a human-readable error naming the file and the
    reason (never a backtrace).

    The footer digest is also the file's {e identity}: the incremental
    checkpoint chain ({!Chain}) links each delta file to its parent by
    quoting the parent's digest, which is why the writers return it. *)

val version : string
(** The file-format tag, [muerp-checkpoint/1]. *)

val save :
  path:string ->
  config:string ->
  Qnet_online.Engine.snapshot ->
  (string, string) result
(** Write the snapshot to [path] atomically; [Ok digest] is the
    integrity-footer MD5 (the file's chain identity).  [config] is an
    opaque fingerprint of the run-shaping flags (seed, policy,
    workload…); {!load} refuses a file whose fingerprint differs,
    because a restore only reproduces the uninterrupted run under
    identical inputs. *)

val load :
  path:string -> config:string -> (Qnet_online.Engine.snapshot, string) result
(** Read, verify and parse a checkpoint.  Errors (all naming [path]):
    unreadable file, empty/truncated/torn contents, checksum mismatch,
    unsupported format version, config fingerprint mismatch, malformed
    snapshot document. *)

val load_verified :
  path:string ->
  config:string ->
  (Qnet_online.Engine.snapshot * string, string) result
(** {!load}, also returning the verified footer digest — what a chain
    walk compares against the next delta's [parent] link. *)

(** {1 Footer-framed files}

    The shared substrate for every chain file kind (full checkpoints,
    deltas): a text body followed by the [integrity <md5> <len>]
    footer, written atomically via tmp + rename. *)

val write_with_footer :
  path:string -> (out_channel -> unit) -> (string, string) result
(** Stream a body to [path] (tmp + rename), appending the integrity
    footer; [Ok digest] on success.  The body must end with a newline
    so the footer starts a fresh line. *)

val read_with_footer : path:string -> (string * string, string) result
(** Read [path] and verify its footer; [Ok (body, digest)].  Rejects
    files that do not start with the [muerp-checkpoint] magic, so a
    random file is named for what it is rather than called torn. *)
