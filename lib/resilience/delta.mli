(** Incremental checkpoint payloads: typed diffs between consecutive
    engine snapshots.

    A full {!Qnet_online.Engine.snapshot} of a busy run is dominated by
    sections that barely move between 10-second cuts: the settled
    outcomes only grow, the per-request states only advance, and the
    metrics registry changes a handful of entries.  {!diff} captures
    exactly the movement — removals and upserts keyed by each section's
    natural identity, the fresh outcome prefix, whole-value refreshes
    for order-sensitive small sections — and {!apply} reconstructs the
    next snapshot from the base, restoring each section's canonical
    sort so the result is {e structurally equal} to the original
    (identical float bits included).

    The sexp codec renders the metrics-registry diff through the
    compact binary {!Qnet_telemetry.Wire} codec (hex-armoured to stay
    inside the line-oriented chain-file format); everything else reuses
    the engine's own element serialisers, so a delta never invents a
    second encoding for the same data.

    {!apply} validates as it goes — a removal the base does not have, a
    metrics diff against an absent registry, a malformed payload — and
    returns [Error] with the reason; the chain walk ({!Chain}) treats
    that exactly like a failed checksum and skips the poisoned
    suffix. *)

type 'a refresh = Unchanged | Set of 'a
(** A section carried wholesale when it changed at all (used where
    order or small size makes keyed diffing pointless). *)

type metrics_delta =
  | M_unchanged
  | M_set of (string * Qnet_telemetry.Metrics.dumped) list option
      (** Presence flipped (registry appeared/disappeared): carried
          whole. *)
  | M_diff of string list * (string * Qnet_telemetry.Metrics.dumped) list
      (** Removed names and upserted entries, both sorted by name —
          shipped as the binary wire codec. *)

type t = {
  d_at : float;
  d_next_ckpt : float;
  d_next_seq : int;
  d_next_lease : int;
  d_scalars : float array;
      (** Every scalar counter of the snapshot, raw, in a fixed order —
          cheaper to carry than to diff. *)
  d_events_removed : (float * int) list;  (** (time, seq) keys. *)
  d_events_added : (float * int * Qnet_online.Engine.s_event) list;
  d_states : Qnet_online.Engine.s_state list;
      (** Upserts by [ss_id]; request states are never removed. *)
  d_queue : int list refresh;
  d_active_removed : int list;  (** Lease ids. *)
  d_active : Qnet_online.Engine.s_active list;  (** Upserts by [sa_lid]. *)
  d_outcomes_new : (int * Qnet_online.Engine.s_resolution) list;
      (** Outcomes accrue newest-first; this is the new prefix. *)
  d_quota_removed : int list;
  d_quota : (int * int) list;
  d_residual_removed : int list;
  d_residual : (int * int) list;
  d_limiter : (float * float) option refresh;
  d_health : Qnet_faults.Health.snapshot option refresh;
  d_tier : Qnet_online.Engine.s_tier option refresh;
  d_policy : Qnet_util.Sexp.t option refresh;
  d_metrics : metrics_delta;
}

val version : string
(** The delta-document tag, [muerp-snapshot-delta/1]. *)

val diff :
  base:Qnet_online.Engine.snapshot -> Qnet_online.Engine.snapshot -> t
(** [diff ~base next] is the delta reconstructing [next] from [base].
    @raise Invalid_argument if the snapshots violate the engine's
    accrual invariants (settled outcomes shrank or changed in place) —
    a programming error, not a file-corruption case. *)

val apply :
  base:Qnet_online.Engine.snapshot ->
  t ->
  (Qnet_online.Engine.snapshot, string) result
(** Reconstruct the next snapshot.  [apply ~base (diff ~base next)] is
    structurally equal to [next].  [Error] when the delta does not
    belong to this base (phantom removals, metrics diff against an
    absent registry) or carries a corrupt payload. *)

val to_sexp : t -> Qnet_util.Sexp.t

val of_sexp : Qnet_util.Sexp.t -> (t, string) result
(** Parse a delta document; errors name the malformed section and
    distinguish an unsupported future version from garbage. *)
