module Engine = Qnet_online.Engine
module Wire = Qnet_telemetry.Wire

(* Write-ahead event journal: an append-only record of every committed
   engine transition since the last checkpoint cut.

   File layout (version muerp-journal/1):

     muerp-journal/1
     (config "<fingerprint>")
     (chain (head <md5>) (index N))
     <binary records...>

   The header names the checkpoint the journal extends — the footer
   digest of the last chain file written ([head]) and that file's delta
   index — so recovery can tell a journal that belongs to the restored
   state from a stale one left by an earlier run.

   Each record is [varint length][payload][4-byte truncated MD5 of the
   payload].  The per-record checksum makes the torn-tail case (the
   crash happened mid-append) detectable at the exact record boundary:
   replay keeps everything before the first bad frame and reports the
   tail as torn, never as an error — losing the final in-flight record
   to a crash is the expected physics of a write-ahead log, not
   corruption.

   Appends are batched: records accumulate in the OS buffer and an
   fsync is issued every [fsync_every] records (and on close), bounding
   the replay-verified work lost to a power cut without paying a disk
   round-trip per admission.

   The journal is never *trusted*: because the engine is deterministic,
   restore re-executes from the checkpoint cut and checks that the run
   re-emits exactly the recorded stream ([verifier]).  The journal's
   value is attestation — proof that the state recovered equals the
   state that crashed — not an alternative source of truth. *)

let version = "muerp-journal/1"
let fsync_every = 32
let crc_len = 4

(* --- transition codec ---------------------------------------------- *)

let put_transition enc (tr : Engine.transition) =
  let bool b = Wire.put_byte enc (if b then 1 else 0) in
  match tr with
  | Engine.T_admit { at; lid; request } ->
      Wire.put_byte enc 0;
      Wire.put_float enc at;
      Wire.put_uint enc lid;
      Wire.put_int enc request
  | Engine.T_release { at; lid } ->
      Wire.put_byte enc 1;
      Wire.put_float enc at;
      Wire.put_uint enc lid
  | Engine.T_recover { at; lid } ->
      Wire.put_byte enc 2;
      Wire.put_float enc at;
      Wire.put_uint enc lid
  | Engine.T_abort { at; lid } ->
      Wire.put_byte enc 3;
      Wire.put_float enc at;
      Wire.put_uint enc lid
  | Engine.T_fault { at; link; element; up } ->
      Wire.put_byte enc 4;
      Wire.put_float enc at;
      bool link;
      Wire.put_uint enc element;
      bool up
  | Engine.T_reconfig { at; link; element; up } ->
      Wire.put_byte enc 5;
      Wire.put_float enc at;
      bool link;
      Wire.put_uint enc element;
      bool up
  | Engine.T_provision { at; switch; qubits } ->
      Wire.put_byte enc 6;
      Wire.put_float enc at;
      Wire.put_uint enc switch;
      Wire.put_int enc qubits

let get_transition dec : Engine.transition =
  let bool () =
    match Wire.get_byte dec with
    | 0 -> false
    | 1 -> true
    | b -> raise (Wire.Corrupt (Printf.sprintf "bad boolean byte %d" b))
  in
  match Wire.get_byte dec with
  | 0 ->
      let at = Wire.get_float dec in
      let lid = Wire.get_uint dec in
      let request = Wire.get_int dec in
      Engine.T_admit { at; lid; request }
  | 1 ->
      let at = Wire.get_float dec in
      let lid = Wire.get_uint dec in
      Engine.T_release { at; lid }
  | 2 ->
      let at = Wire.get_float dec in
      let lid = Wire.get_uint dec in
      Engine.T_recover { at; lid }
  | 3 ->
      let at = Wire.get_float dec in
      let lid = Wire.get_uint dec in
      Engine.T_abort { at; lid }
  | 4 ->
      let at = Wire.get_float dec in
      let link = bool () in
      let element = Wire.get_uint dec in
      let up = bool () in
      Engine.T_fault { at; link; element; up }
  | 5 ->
      let at = Wire.get_float dec in
      let link = bool () in
      let element = Wire.get_uint dec in
      let up = bool () in
      Engine.T_reconfig { at; link; element; up }
  | 6 ->
      let at = Wire.get_float dec in
      let switch = Wire.get_uint dec in
      let qubits = Wire.get_int dec in
      Engine.T_provision { at; switch; qubits }
  | tag -> raise (Wire.Corrupt (Printf.sprintf "unknown transition tag %d" tag))

let describe (tr : Engine.transition) =
  match tr with
  | Engine.T_admit { at; lid; request } ->
      Printf.sprintf "admit lease %d for request %d at t=%g" lid request at
  | Engine.T_release { at; lid } ->
      Printf.sprintf "release lease %d at t=%g" lid at
  | Engine.T_recover { at; lid } ->
      Printf.sprintf "recover lease %d at t=%g" lid at
  | Engine.T_abort { at; lid } -> Printf.sprintf "abort lease %d at t=%g" lid at
  | Engine.T_fault { at; link; element; up } ->
      Printf.sprintf "fault %s %d %s at t=%g"
        (if link then "link" else "switch")
        element
        (if up then "up" else "down")
        at
  | Engine.T_reconfig { at; link; element; up } ->
      Printf.sprintf "reconfig %s %d %s at t=%g"
        (if link then "link" else "switch")
        element
        (if up then "up" else "down")
        at
  | Engine.T_provision { at; switch; qubits } ->
      Printf.sprintf "provision switch %d to %d qubits at t=%g" switch qubits
        at

(* --- writer -------------------------------------------------------- *)

type writer = {
  w_oc : out_channel;
  w_fd : Unix.file_descr;
  mutable w_pending : int;  (* records since last fsync *)
  mutable w_count : int;
  mutable w_closed : bool;
}

let varint_bytes n =
  let buf = Buffer.create 4 in
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n;
  Buffer.contents buf

let record_crc payload = String.sub (Digest.string payload) 0 crc_len

let create ~path ~config ~head ~index =
  try
    let oc = open_out_bin path in
    Printf.fprintf oc "%s\n(config \"%s\")\n(chain (head %s) (index %d))\n"
      version (String.escaped config) head index;
    flush oc;
    let fd = Unix.descr_of_out_channel oc in
    Unix.fsync fd;
    Ok { w_oc = oc; w_fd = fd; w_pending = 0; w_count = 0; w_closed = false }
  with
  | Sys_error m -> Error (Printf.sprintf "cannot write journal: %s" m)
  | Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot write journal %s: %s" path
               (Unix.error_message e))

let append w (tr : Engine.transition) =
  if w.w_closed then invalid_arg "Journal.append: writer is closed";
  let enc = Wire.encoder () in
  put_transition enc tr;
  let payload = Wire.contents enc in
  output_string w.w_oc (varint_bytes (String.length payload));
  output_string w.w_oc payload;
  output_string w.w_oc (record_crc payload);
  w.w_count <- w.w_count + 1;
  w.w_pending <- w.w_pending + 1;
  if w.w_pending >= fsync_every then begin
    flush w.w_oc;
    Unix.fsync w.w_fd;
    w.w_pending <- 0
  end

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    flush w.w_oc;
    (try Unix.fsync w.w_fd with Unix.Unix_error _ -> ());
    close_out_noerr w.w_oc
  end;
  w.w_count

(* --- reader -------------------------------------------------------- *)

type contents = {
  j_config : string;
  j_head : string;
  j_index : int;
  j_records : Engine.transition list;  (* commit order *)
  j_torn : string option;
      (* a warning when the tail was cut mid-record: everything before
         it is intact and usable *)
}

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Split the three header lines off the raw file. *)
let split_header path data =
  let next_line pos =
    match String.index_from_opt data pos '\n' with
    | Some i -> Some (String.sub data pos (i - pos), i + 1)
    | None -> None
  in
  match next_line 0 with
  | Some (v, p1) when v = version -> (
      match next_line p1 with
      | Some (config_line, p2) -> (
          match next_line p2 with
          | Some (chain_line, p3) -> Ok (config_line, chain_line, p3)
          | None -> err "journal %s is truncated inside its header" path)
      | None -> err "journal %s is truncated inside its header" path)
  | Some (v, _)
    when String.length v >= 13 && String.sub v 0 13 = "muerp-journal" ->
      err "journal %s uses unsupported version %s (this build reads %s)" path v
        version
  | Some _ -> err "%s is not a muerp journal file" path
  | None ->
      if String.length data = 0 then err "journal %s is empty" path
      else err "%s is not a muerp journal file" path

let parse_header path config_line chain_line =
  let module Sexp = Qnet_util.Sexp in
  let ( let* ) = Result.bind in
  let* j_config =
    match Sexp.of_string config_line with
    | Ok (Sexp.List [ Sexp.Atom "config"; Sexp.Atom c ]) -> Ok c
    | Ok _ | Error _ -> err "journal %s has a malformed config record" path
  in
  let* j_head, j_index =
    match Sexp.of_string chain_line with
    | Ok
        (Sexp.List
          [
            Sexp.Atom "chain";
            Sexp.List [ Sexp.Atom "head"; Sexp.Atom head ];
            Sexp.List [ Sexp.Atom "index"; Sexp.Atom index ];
          ]) -> (
        match int_of_string_opt index with
        | Some i -> Ok (head, i)
        | None -> err "journal %s has a malformed chain record" path)
    | Ok _ | Error _ -> err "journal %s has a malformed chain record" path
  in
  Ok (j_config, j_head, j_index)

(* Decode records until the data runs out; a frame cut short or failing
   its checksum ends the stream with a torn-tail warning. *)
let decode_records path data pos =
  let n = String.length data in
  let torn idx what =
    Some
      (Printf.sprintf
         "journal %s: record %d is torn (%s); replaying the %d intact \
          record(s) before it"
         path (idx + 1) what idx)
  in
  let read_varint pos =
    (* None = clean EOF at a record boundary; Corrupt = cut mid-varint *)
    if pos >= n then None
    else
      let rec go pos shift acc =
        if pos >= n then raise (Wire.Corrupt "length cut short")
        else
          let b = Char.code data.[pos] in
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if b < 0x80 then Some (acc, pos + 1) else go (pos + 1) (shift + 7) acc
      in
      go pos 0 0
  in
  let rec go pos idx acc =
    match read_varint pos with
    | None -> (List.rev acc, None)
    | Some (len, pos) ->
        if pos + len + crc_len > n then (List.rev acc, torn idx "cut short")
        else
          let payload = String.sub data pos len in
          let crc = String.sub data (pos + len) crc_len in
          if not (String.equal crc (record_crc payload)) then
            (List.rev acc, torn idx "checksum mismatch")
          else begin
            let dec = Wire.decoder payload in
            match
              let tr = get_transition dec in
              if Wire.remaining dec <> 0 then
                raise (Wire.Corrupt "trailing bytes in record");
              tr
            with
            | tr -> go (pos + len + crc_len) (idx + 1) (tr :: acc)
            | exception Wire.Corrupt what -> (List.rev acc, torn idx what)
          end
    | exception Wire.Corrupt what -> (List.rev acc, torn idx what)
  in
  go pos 0 []

let read ~path =
  let ( let* ) = Result.bind in
  let* data =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      close_in ic;
      Ok data
    with
    | Sys_error m -> Error (Printf.sprintf "cannot read journal: %s" m)
    | End_of_file -> Error (Printf.sprintf "cannot read journal %s" path)
  in
  let* config_line, chain_line, body_pos = split_header path data in
  let* j_config, j_head, j_index = parse_header path config_line chain_line in
  let j_records, j_torn = decode_records path data body_pos in
  Ok { j_config; j_head; j_index; j_records; j_torn }

(* --- replay verifier ----------------------------------------------- *)

type verifier = {
  mutable v_expected : Engine.transition list;
  mutable v_matched : int;
  mutable v_error : string option;
}

let verifier records = { v_expected = records; v_matched = 0; v_error = None }

let observe v (tr : Engine.transition) =
  match v.v_error with
  | Some _ -> ()
  | None -> (
      match v.v_expected with
      | [] ->
          (* The run outlived the journal: expected when the journal's
             tail was torn or the crash happened between fsyncs — the
             replay simply re-commits past the recorded horizon. *)
          ()
      | expected :: rest ->
          if tr = expected then begin
            v.v_expected <- rest;
            v.v_matched <- v.v_matched + 1
          end
          else
            v.v_error <-
              Some
                (Printf.sprintf
                   "replay diverged from the journal at record %d: journal \
                    says [%s], replay committed [%s]"
                   (v.v_matched + 1) (describe expected) (describe tr)))

let finish v =
  match v.v_error with
  | Some m -> Error m
  | None -> (
      match v.v_expected with
      | [] -> Ok v.v_matched
      | remaining ->
          Error
            (Printf.sprintf
               "replay ended with %d journal record(s) unconsumed (first: \
                %s) — the journal does not belong to this state"
               (List.length remaining)
               (describe (List.hd remaining))))
