(* Renderers for the metrics registry: human table, machine CSV and
   s-expression.  By default metrics still at their reset state are
   hidden so a report shows only what the run actually exercised. *)

module Table = Qnet_util.Table
module Sexp = Qnet_util.Sexp

let select ~all () =
  let snap = Metrics.snapshot () in
  if all then snap else List.filter (fun (_, v) -> Metrics.touched v) snap

let compact x =
  if Float.is_nan x then "-"
  else if Float.abs x >= 0.01 && Float.abs x < 10000. then
    Printf.sprintf "%.4g" x
  else if x = 0. then "0"
  else Printf.sprintf "%.3e" x

let to_table ?(all = false) () =
  let t =
    Table.create
      [ "metric"; "kind"; "count"; "value"; "mean"; "p50"; "p95"; "max" ]
  in
  List.fold_left
    (fun t (name, v) ->
      let row =
        match v with
        | Metrics.Counter_v n ->
            [ name; "counter"; string_of_int n; "-"; "-"; "-"; "-"; "-" ]
        | Metrics.Gauge_v x ->
            [ name; "gauge"; "-"; compact x; "-"; "-"; "-"; "-" ]
        | Metrics.Histogram_v s ->
            [
              name; "histogram";
              string_of_int s.Metrics.Histogram.count;
              "-";
              compact s.Metrics.Histogram.mean;
              compact s.Metrics.Histogram.p50;
              compact s.Metrics.Histogram.p95;
              compact s.Metrics.Histogram.max;
            ]
      in
      Table.add_row t row)
    t (select ~all ())

(* Full-precision float for the machine formats; "-" marks a field
   that does not apply to the metric kind. *)
let exact x = if Float.is_nan x then "nan" else Printf.sprintf "%.17g" x

let to_csv ?(all = false) () =
  let line (name, v) =
    let cells =
      match v with
      | Metrics.Counter_v n ->
          [ name; "counter"; string_of_int n; ""; ""; ""; ""; ""; ""; ""; "" ]
      | Metrics.Gauge_v x ->
          [ name; "gauge"; ""; exact x; ""; ""; ""; ""; ""; ""; "" ]
      | Metrics.Histogram_v s ->
          let open Metrics.Histogram in
          [
            name; "histogram"; string_of_int s.count; ""; exact s.sum;
            exact s.min; exact s.max; exact s.mean; exact s.p50; exact s.p90;
            exact s.p95;
          ]
    in
    String.concat "," cells
  in
  String.concat "\n"
    ("metric,kind,value,gauge,sum,min,max,mean,p50,p90,p95"
    :: List.map line (select ~all ()))

let to_sexp ?(all = false) () =
  let entry (name, v) =
    let fields =
      match v with
      | Metrics.Counter_v n ->
          [
            Sexp.list [ Sexp.atom "kind"; Sexp.atom "counter" ];
            Sexp.list [ Sexp.atom "value"; Sexp.int n ];
          ]
      | Metrics.Gauge_v x ->
          [
            Sexp.list [ Sexp.atom "kind"; Sexp.atom "gauge" ];
            Sexp.list [ Sexp.atom "value"; Sexp.float x ];
          ]
      | Metrics.Histogram_v s ->
          let open Metrics.Histogram in
          let f name x = Sexp.list [ Sexp.atom name; Sexp.float x ] in
          [
            Sexp.list [ Sexp.atom "kind"; Sexp.atom "histogram" ];
            Sexp.list [ Sexp.atom "count"; Sexp.int s.count ];
            f "sum" s.sum; f "min" s.min; f "max" s.max; f "mean" s.mean;
            f "p50" s.p50; f "p90" s.p90; f "p95" s.p95; f "p99" s.p99;
          ]
    in
    Sexp.list (Sexp.atom name :: fields)
  in
  Sexp.list (List.map entry (select ~all ()))
