(** Renderers for the metrics registry.

    All three renderers read {!Metrics.snapshot} and by default skip
    metrics still at their reset state ([?all:true] includes them), so
    a report shows only what the run exercised. *)

val to_table : ?all:bool -> unit -> Qnet_util.Table.t
(** Human-readable table: one row per metric with count/value, mean and
    p50/p95/max for histograms (compact float formatting). *)

val to_csv : ?all:bool -> unit -> string
(** CSV with header
    [metric,kind,value,gauge,sum,min,max,mean,p50,p90,p95]; fields not
    applicable to a metric kind are left empty.  Floats are printed at
    full precision ([%.17g]) so the export round-trips. *)

val to_sexp : ?all:bool -> unit -> Qnet_util.Sexp.t
(** S-expression: a list of [(name (kind ...) (field value) ...)]
    entries compatible with {!Qnet_util.Sexp.field} lookup. *)
