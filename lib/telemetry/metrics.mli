(** Process-wide metrics: counters, gauges and log-bucketed latency
    histograms.

    Metrics live in a global registry keyed by a dotted name
    ([graph.dijkstra.heap_pushes]).  Handles are cheap records bound
    once (typically at module initialisation); every mutation first
    checks a single process-wide enable flag, so instrumentation on hot
    paths costs one load-and-branch while telemetry is disabled — the
    default.  Enable with {!set_enabled} (the CLI's [--metrics] flag and
    [bench/main.exe snapshot] do), then read the registry back with
    {!snapshot} or the renderers in {!Export}.

    {b Domains.}  Handles are owned by the main domain.  Inside a
    {!Qnet_util.Pool} parallel region each participating domain
    mutates a private shard instead (installed and folded back by the
    pool's region hooks — see {!Shard}), so instrumented code needs no
    changes to run under the pool.  Shard folding uses commutative
    merges: counters add, gauges keep the maximum, histograms add
    bucket-wise.  Counter totals are therefore exact and identical at
    every pool size; histogram [sum]s can differ in the last few ulps
    from the serial run because float addition re-associates. *)

val set_enabled : bool -> unit
(** Turn recording on or off process-wide.  Off by default. *)

val enabled : unit -> bool

(** Monotone event counters. *)
module Counter : sig
  type t

  val make : unit -> t
  (** A standalone counter not attached to the registry (tests,
      scratch aggregation).  Registry counters come from {!counter}. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Last-value (or running) float gauges. *)
module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit

  val set_max : t -> float -> unit
  (** Keep the running maximum of the values offered. *)

  val value : t -> float
  val reset : t -> unit
end

(** Latency histograms with logarithmic (power-of-two) buckets.

    Bucket [i] covers [(2^(i-31), 2^(i-30)]] seconds for
    [i = 0 .. 41]; values outside the covered range clamp into the
    first or last bucket but remain exact through [min]/[max]. *)
module Histogram : sig
  type t

  val make : unit -> t
  (** A standalone histogram (tests, pure merging).  Registry
      histograms come from {!histogram}. *)

  val observe : t -> float -> unit
  (** Record one observation (seconds).  No-op while disabled. *)

  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** Smallest observation; [infinity] when empty. *)

  val max_value : t -> float
  (** Largest observation; [neg_infinity] when empty. *)

  val bucket_of : float -> int
  (** Index of the bucket an observation falls into. *)

  val upper_bound : int -> float
  (** Inclusive upper bound of bucket [i], i.e. [2^(i - 30)]. *)

  val bucket_count : int

  val nonzero_buckets : t -> (float * int) list
  (** [(upper_bound, count)] for every populated bucket, ascending. *)

  val merge : t -> t -> t
  (** Pure combination of two histograms (e.g. across shards).  Bucket
      counts, [count], [min] and [max] merge exactly, so [merge] is
      commutative and associative on them; only [sum] is subject to
      floating-point re-association error. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [[0, 1]]: rank-based estimate using
      geometric interpolation inside the target bucket, clamped to the
      observed [[min, max]] range.  Monotone in [q]; [nan] when
      empty. *)

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p90 : float;
    p95 : float;
    p99 : float;
  }

  val summarize : t -> summary

  val reset : t -> unit
end

(** Per-domain metric shards.  {!Qnet_util.Pool} drives this module
    automatically through its region hooks; call it directly only when
    parallelising with raw [Domain]s. *)
module Shard : sig
  val active : unit -> bool
  (** Whether the calling domain currently records into a shard. *)

  val enter : unit -> unit
  (** Install a fresh empty shard for the calling domain: subsequent
      metric mutations on this domain go to private cells.
      @raise Invalid_argument if a shard is already active here. *)

  val leave : unit -> unit
  (** Fold the calling domain's shard into the owning handles (under
      the registry lock) and uninstall it.  No-op without a shard. *)
end

val counter : string -> Counter.t
(** Find or create the registry counter of that name.
    @raise Invalid_argument if the name is registered as another
    kind. *)

val gauge : string -> Gauge.t
val histogram : string -> Histogram.t

val reset : unit -> unit
(** Zero every registered metric, keeping registrations (handles bound
    at module initialisation stay valid). *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.summary

val snapshot : unit -> (string * value) list
(** Current value of every registered metric, sorted by name. *)

val touched : value -> bool
(** [false] for metrics still at their reset state (zero counter/gauge,
    empty histogram) — used to hide idle metrics in reports. *)

(** {2 Checkpointing}

    Unlike {!snapshot} (lossy histogram summaries, for reporting),
    {!dump}/{!absorb} round-trip the {e raw} metric state — exact
    bucket counts included — so a restored process continues
    accumulating from precisely the checkpointed totals. *)

type hist_dump = {
  d_n : int;
  d_sum : float;
  d_vmin : float;
  d_vmax : float;
  d_counts : int array;
}

type dumped = D_counter of int | D_gauge of float | D_histogram of hist_dump

val dump : unit -> (string * dumped) list
(** Raw state of every registered metric, sorted by name. *)

val absorb : (string * dumped) list -> unit
(** Overwrite the live registry with a {!dump}, registering any metric
    this process has not seen yet.  @raise Invalid_argument on a
    histogram bucket-count mismatch (dump from an incompatible
    build). *)
