(* Lightweight nested span tracing.  Each completed span feeds a
   per-name duration histogram and call counter in the registry; a
   domain-local stack tracks nesting so instrumented code can ask for
   its current depth/path — spans opened by pool workers nest within
   that worker only, and their histogram observations go through the
   worker's metric shard like any other mutation.  When telemetry is
   disabled a span is just a direct call of the wrapped thunk. *)

type frame = { name : string; start : float }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let depth () = List.length !(stack ())

let path () =
  match !(stack ()) with
  | [] -> ""
  | frames -> String.concat "/" (List.rev_map (fun f -> f.name) frames)

let with_span name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let start = Clock.now_s () in
    let stack = stack () in
    stack := { name; start } :: !stack;
    let finish () =
      (match !stack with
      | _ :: rest -> stack := rest
      | [] -> ());
      let dt = Clock.elapsed_since start in
      Metrics.Histogram.observe
        (Metrics.histogram ("trace." ^ name ^ ".seconds"))
        dt;
      Metrics.Counter.incr (Metrics.counter ("trace." ^ name ^ ".calls"))
    in
    Fun.protect ~finally:finish f
  end
