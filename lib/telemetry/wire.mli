(** Compact binary codec for telemetry state (and journal records).

    The incremental-checkpoint path ships the metrics registry on every
    delta, where the sexp rendering (17-digit floats, 64 spelled-out
    bucket counts per histogram) dominates the file.  This codec packs
    the same data as LEB128 varints (zigzag-mapped when signed), raw
    IEEE-754 float bits and length-prefixed strings, typically 5-10x
    smaller.  The primitives are public because the write-ahead journal
    reuses them for its own records.

    Decoding raises {!Corrupt} internally; the top-level entry points
    ({!decode_metrics_diff}, callers' own wrappers) convert it to a
    [result], so a truncated or bit-flipped payload surfaces as a
    human-readable error, never an exception escaping the file layer. *)

exception Corrupt of string
(** Raised by [get_*] on truncated or malformed input.  Catch at the
    record boundary and turn into a friendly error. *)

(** {1 Encoding} *)

type enc

val encoder : unit -> enc
val contents : enc -> string
val put_byte : enc -> int -> unit
val put_uint : enc -> int -> unit
(** Unsigned LEB128.  @raise Invalid_argument on a negative value. *)

val put_int : enc -> int -> unit
(** Zigzag-mapped signed varint. *)

val put_float : enc -> float -> unit
(** Eight raw little-endian IEEE-754 bytes; round-trips every double
    (including infinities and NaN) exactly. *)

val put_string : enc -> string -> unit

(** {1 Decoding} *)

type dec

val decoder : string -> dec
val remaining : dec -> int
val get_byte : dec -> int
val get_uint : dec -> int
val get_int : dec -> int
val get_float : dec -> float
val get_string : dec -> string

val get_list : dec -> (dec -> 'a) -> 'a list
(** Length-prefixed list, decoded strictly left to right; a count
    larger than the remaining bytes is rejected before allocation. *)

(** {1 Hex armour}

    Binary payloads ride inside line-oriented checkpoint files, so they
    are hex-encoded: the file stays line-splittable and its integrity
    footer stays a trailing text line. *)

val to_hex : string -> string
val of_hex : string -> (string, string) result

(** {1 Metrics registry deltas} *)

val put_dumped : enc -> Metrics.dumped -> unit
val get_dumped : dec -> Metrics.dumped

val encode_metrics_diff :
  removed:string list -> upserts:(string * Metrics.dumped) list -> string
(** Serialise a registry delta: entry names that disappeared plus
    entries added or changed, both in caller order (the delta codec
    reconstructs {!Metrics.dump}'s sorted output by ordered merge). *)

val decode_metrics_diff :
  string -> (string list * (string * Metrics.dumped) list, string) result
