(* Process-wide metrics registry: counters, gauges and log-bucketed
   latency histograms.  Every mutation is guarded by a single [on]
   flag so instrumented hot paths cost one load-and-branch when
   telemetry is disabled (the default).

   Domain safety: handles are plain mutable records owned by the main
   domain.  Inside a {!Qnet_util.Pool} parallel region every
   participating domain (the submitting one included) installs a
   domain-local shard — a table of private cells keyed by handle id —
   so hot-path mutations stay unsynchronised; when the domain finishes
   its share of the region the shard is folded into the owning records
   under a lock using the commutative merges (counters add, gauges
   max, histograms bucket-wise add).  Outside a region the
   domain-local lookup finds no shard and mutations hit the handle
   directly, exactly as before. *)

let on = ref false
let set_enabled v = on := v
let enabled () = !on

(* One lock serialises the rare slow paths: handle-id assignment,
   registry registration and shard folding.  Hot-path mutations never
   take it. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Dense ids shared by all metric kinds; they index shard tables. *)
let next_id = ref 0

let fresh_id () =
  with_lock (fun () ->
      let id = !next_id in
      next_id := id + 1;
      id)

type counter = { c_id : int; mutable c_count : int }
type gauge = { g_id : int; mutable g_value : float }

(* Log2-bucketed histogram.  Bucket [i] holds observations [v] with
   [upper (i-1) < v <= upper i] where [upper i = 2^(i + min_exp)].
   The range 2^-30 s (~1 ns) .. 2^11 s (~34 min) covers every
   latency this codebase produces; out-of-range values clamp into
   the first/last bucket and stay exact through [min]/[max]. *)
let hist_min_exp = -30
let hist_buckets = 42

type hist = {
  h_id : int;
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_vmin : float;
  mutable h_vmax : float;
  h_counts : int array;
}

(* ------------------------------------------------------------------ *)
(* Per-domain shards                                                   *)

type slot =
  | S_counter of counter * counter  (* owner handle, local cell *)
  | S_gauge of gauge * gauge
  | S_hist of hist * hist

type shard = { mutable slots : slot option array }

let shard_key : shard option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let slot_for shard id make =
  let len = Array.length shard.slots in
  if id >= len then begin
    let grown = Array.make (max (id + 1) (2 * max 1 len)) None in
    Array.blit shard.slots 0 grown 0 len;
    shard.slots <- grown
  end;
  match shard.slots.(id) with
  | Some s -> s
  | None ->
      let s = make () in
      shard.slots.(id) <- Some s;
      s

(* The cell a mutation should hit: the handle itself outside parallel
   regions, the domain-local twin inside one. *)

let live_counter (c : counter) =
  match Domain.DLS.get shard_key with
  | None -> c
  | Some sh -> (
      match
        slot_for sh c.c_id (fun () ->
            S_counter (c, { c_id = c.c_id; c_count = 0 }))
      with
      | S_counter (_, local) -> local
      | _ -> assert false)

let live_gauge (g : gauge) =
  match Domain.DLS.get shard_key with
  | None -> g
  | Some sh -> (
      match
        slot_for sh g.g_id (fun () ->
            S_gauge (g, { g_id = g.g_id; g_value = 0. }))
      with
      | S_gauge (_, local) -> local
      | _ -> assert false)

let make_hist id =
  {
    h_id = id;
    h_n = 0;
    h_sum = 0.;
    h_vmin = infinity;
    h_vmax = neg_infinity;
    h_counts = Array.make hist_buckets 0;
  }

let live_hist (h : hist) =
  match Domain.DLS.get shard_key with
  | None -> h
  | Some sh -> (
      match slot_for sh h.h_id (fun () -> S_hist (h, make_hist h.h_id)) with
      | S_hist (_, local) -> local
      | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Metric kinds                                                        *)

module Counter = struct
  type t = counter

  let make () = { c_id = fresh_id (); c_count = 0 }

  let incr c =
    if !on then begin
      let c = live_counter c in
      c.c_count <- c.c_count + 1
    end

  let add c n =
    if !on then begin
      let c = live_counter c in
      c.c_count <- c.c_count + n
    end

  let value c = c.c_count
  let reset c = c.c_count <- 0
end

module Gauge = struct
  type t = gauge

  let make () = { g_id = fresh_id (); g_value = 0. }

  let set g v =
    if !on then begin
      let g = live_gauge g in
      g.g_value <- v
    end

  let add g v =
    if !on then begin
      let g = live_gauge g in
      g.g_value <- g.g_value +. v
    end

  let set_max g v =
    if !on then begin
      let g = live_gauge g in
      if v > g.g_value then g.g_value <- v
    end

  let value g = g.g_value
  let reset g = g.g_value <- 0.
end

module Histogram = struct
  type t = hist

  let min_exp = hist_min_exp
  let bucket_count = hist_buckets
  let make () = make_hist (fresh_id ())
  let upper_bound i = Float.ldexp 1.0 (i + min_exp)

  let bucket_of v =
    if v <= 0. then 0
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with 0.5 <= m < 1, so ceil(log2 v) is e except
         exactly at powers of two where it is e - 1. *)
      let ceil_log2 = if m = 0.5 then e - 1 else e in
      let i = ceil_log2 - min_exp in
      if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i
    end

  let observe h v =
    if !on then begin
      let h = live_hist h in
      h.h_n <- h.h_n + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_vmin then h.h_vmin <- v;
      if v > h.h_vmax then h.h_vmax <- v;
      let i = bucket_of v in
      h.h_counts.(i) <- h.h_counts.(i) + 1
    end

  let count h = h.h_n
  let sum h = h.h_sum
  let min_value h = h.h_vmin
  let max_value h = h.h_vmax

  let reset h =
    h.h_n <- 0;
    h.h_sum <- 0.;
    h.h_vmin <- infinity;
    h.h_vmax <- neg_infinity;
    Array.fill h.h_counts 0 bucket_count 0

  let nonzero_buckets h =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.h_counts.(i) > 0 then acc := (upper_bound i, h.h_counts.(i)) :: !acc
    done;
    !acc

  (* Merging is pure and unguarded: it combines recorded data rather
     than recording new data.  Bucket counts and extrema merge
     exactly, so merge is commutative; only [sum] is subject to
     floating-point rounding under re-association. *)
  let merge a b =
    {
      h_id = fresh_id ();
      h_n = a.h_n + b.h_n;
      h_sum = a.h_sum +. b.h_sum;
      h_vmin = Float.min a.h_vmin b.h_vmin;
      h_vmax = Float.max a.h_vmax b.h_vmax;
      h_counts =
        Array.init bucket_count (fun i -> a.h_counts.(i) + b.h_counts.(i));
    }

  (* In-place variant used when folding a shard into its owner. *)
  let merge_into ~src ~dst =
    dst.h_n <- dst.h_n + src.h_n;
    dst.h_sum <- dst.h_sum +. src.h_sum;
    if src.h_vmin < dst.h_vmin then dst.h_vmin <- src.h_vmin;
    if src.h_vmax > dst.h_vmax then dst.h_vmax <- src.h_vmax;
    for i = 0 to bucket_count - 1 do
      dst.h_counts.(i) <- dst.h_counts.(i) + src.h_counts.(i)
    done

  let quantile h q =
    if h.h_n = 0 then nan
    else if q <= 0. then h.h_vmin
    else if q >= 1. then h.h_vmax
    else begin
      let rank = q *. float_of_int h.h_n in
      let rec find i before =
        let c = h.h_counts.(i) in
        if float_of_int (before + c) >= rank || i = bucket_count - 1 then
          (i, before, c)
        else find (i + 1) (before + c)
      in
      let b, before, c = find 0 0 in
      let hi = upper_bound b in
      (* Geometric interpolation inside the bucket, then clamped to the
         observed range so estimates never exceed real extrema. *)
      let f =
        if c = 0 then 1.
        else (rank -. float_of_int before) /. float_of_int c
      in
      let est = hi /. 2. *. (2. ** f) in
      Float.max h.h_vmin (Float.min h.h_vmax est)
    end

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p90 : float;
    p95 : float;
    p99 : float;
  }

  let summarize h =
    {
      count = h.h_n;
      sum = h.h_sum;
      min = h.h_vmin;
      max = h.h_vmax;
      mean = (if h.h_n = 0 then nan else h.h_sum /. float_of_int h.h_n);
      p50 = quantile h 0.5;
      p90 = quantile h 0.9;
      p95 = quantile h 0.95;
      p99 = quantile h 0.99;
    }
end

(* ------------------------------------------------------------------ *)
(* Shard lifecycle                                                     *)

module Shard = struct
  let active () = Domain.DLS.get shard_key <> None

  let enter () =
    if active () then invalid_arg "Metrics.Shard.enter: shard already active";
    Domain.DLS.set shard_key (Some { slots = Array.make 128 None })

  let leave () =
    match Domain.DLS.get shard_key with
    | None -> ()
    | Some sh ->
        Domain.DLS.set shard_key None;
        with_lock (fun () ->
            Array.iter
              (function
                | None -> ()
                | Some (S_counter (owner, local)) ->
                    owner.c_count <- owner.c_count + local.c_count
                | Some (S_gauge (owner, local)) ->
                    if local.g_value > owner.g_value then
                      owner.g_value <- local.g_value
                | Some (S_hist (owner, local)) ->
                    Histogram.merge_into ~src:local ~dst:owner)
              sh.slots)
end

(* Fold shards around every Pool region so parallel loops aggregate
   telemetry exactly like their serial counterparts. *)
let () =
  Qnet_util.Pool.add_region_hooks ~enter:Shard.enter ~leave:Shard.leave

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

(* Registration takes the lock: solver modules register at
   initialisation, but per-name lookups (spans, per-method histograms)
   also happen inside parallel regions. *)
let register name wrap make unwrap =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> begin
          match unwrap m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s" name
                   (kind_name m))
        end
      | None ->
          let v = make () in
          Hashtbl.replace registry name (wrap v);
          v)

(* [make] functions take the lock for their id, so build them outside
   [register]'s critical section via the unlocked primitives. *)
let counter name =
  register name
    (fun c -> Counter_m c)
    (fun () ->
      let id = !next_id in
      next_id := id + 1;
      { c_id = id; c_count = 0 })
    (function Counter_m c -> Some c | _ -> None)

let gauge name =
  register name
    (fun g -> Gauge_m g)
    (fun () ->
      let id = !next_id in
      next_id := id + 1;
      { g_id = id; g_value = 0. })
    (function Gauge_m g -> Some g | _ -> None)

let histogram name =
  register name
    (fun h -> Histogram_m h)
    (fun () ->
      let id = !next_id in
      next_id := id + 1;
      make_hist id)
    (function Histogram_m h -> Some h | _ -> None)

(* Zero every registered metric but keep the registrations: metric
   handles are bound at module initialisation and must stay valid. *)
let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter_m c -> Counter.reset c
          | Gauge_m g -> Gauge.reset g
          | Histogram_m h -> Histogram.reset h)
        registry)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.summary

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | Counter_m c -> Counter_v (Counter.value c)
            | Gauge_m g -> Gauge_v (Gauge.value g)
            | Histogram_m h -> Histogram_v (Histogram.summarize h)
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let touched = function
  | Counter_v 0 -> false
  | Gauge_v 0. -> false
  | Histogram_v s -> s.Histogram.count > 0
  | Counter_v _ | Gauge_v _ -> true

(* ------------------------------------------------------------------ *)
(* Full-fidelity dump/absorb for checkpointing.  [snapshot] above
   returns histogram summaries (quantile estimates) — lossy, fine for
   reporting but useless for resuming a run.  [dump] captures the raw
   state (exact bucket counts) and [absorb] overwrites the live
   registry with it, registering any metric the current process has
   not touched yet, so a restored process continues accumulating from
   exactly the checkpointed totals. *)

type hist_dump = {
  d_n : int;
  d_sum : float;
  d_vmin : float;
  d_vmax : float;
  d_counts : int array;
}

type dumped =
  | D_counter of int
  | D_gauge of float
  | D_histogram of hist_dump

let dump () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | Counter_m c -> D_counter c.c_count
            | Gauge_m g -> D_gauge g.g_value
            | Histogram_m h ->
                D_histogram
                  {
                    d_n = h.h_n;
                    d_sum = h.h_sum;
                    d_vmin = h.h_vmin;
                    d_vmax = h.h_vmax;
                    d_counts = Array.copy h.h_counts;
                  }
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let absorb entries =
  List.iter
    (fun (name, v) ->
      match v with
      | D_counter n ->
          let c = counter name in
          c.c_count <- n
      | D_gauge x ->
          let g = gauge name in
          g.g_value <- x
      | D_histogram d ->
          let h = histogram name in
          if Array.length d.d_counts <> hist_buckets then
            invalid_arg "Metrics.absorb: histogram bucket-count mismatch";
          h.h_n <- d.d_n;
          h.h_sum <- d.d_sum;
          h.h_vmin <- d.d_vmin;
          h.h_vmax <- d.d_vmax;
          Array.blit d.d_counts 0 h.h_counts 0 hist_buckets)
    entries
