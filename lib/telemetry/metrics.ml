(* Process-wide metrics registry: counters, gauges and log-bucketed
   latency histograms.  Every mutation is guarded by a single [on]
   flag so instrumented hot paths cost one load-and-branch when
   telemetry is disabled (the default). *)

let on = ref false
let set_enabled v = on := v
let enabled () = !on

module Counter = struct
  type t = { mutable count : int }

  let make () = { count = 0 }
  let incr c = if !on then c.count <- c.count + 1
  let add c n = if !on then c.count <- c.count + n
  let value c = c.count
  let reset c = c.count <- 0
end

module Gauge = struct
  type t = { mutable value : float }

  let make () = { value = 0. }
  let set g v = if !on then g.value <- v
  let add g v = if !on then g.value <- g.value +. v
  let set_max g v = if !on && v > g.value then g.value <- v
  let value g = g.value
  let reset g = g.value <- 0.
end

module Histogram = struct
  (* Log2-bucketed.  Bucket [i] holds observations [v] with
     [upper (i-1) < v <= upper i] where [upper i = 2^(i + min_exp)].
     The range 2^-30 s (~1 ns) .. 2^11 s (~34 min) covers every
     latency this codebase produces; out-of-range values clamp into
     the first/last bucket and stay exact through [min]/[max]. *)
  let min_exp = -30
  let bucket_count = 42

  type t = {
    mutable n : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    buckets : int array;
  }

  let make () =
    {
      n = 0;
      sum = 0.;
      vmin = infinity;
      vmax = neg_infinity;
      buckets = Array.make bucket_count 0;
    }

  let upper_bound i = Float.ldexp 1.0 (i + min_exp)

  let bucket_of v =
    if v <= 0. then 0
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with 0.5 <= m < 1, so ceil(log2 v) is e except
         exactly at powers of two where it is e - 1. *)
      let ceil_log2 = if m = 0.5 then e - 1 else e in
      let i = ceil_log2 - min_exp in
      if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i
    end

  let observe h v =
    if !on then begin
      h.n <- h.n + 1;
      h.sum <- h.sum +. v;
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v;
      let i = bucket_of v in
      h.buckets.(i) <- h.buckets.(i) + 1
    end

  let count h = h.n
  let sum h = h.sum
  let min_value h = h.vmin
  let max_value h = h.vmax

  let reset h =
    h.n <- 0;
    h.sum <- 0.;
    h.vmin <- infinity;
    h.vmax <- neg_infinity;
    Array.fill h.buckets 0 bucket_count 0

  let nonzero_buckets h =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.buckets.(i) > 0 then acc := (upper_bound i, h.buckets.(i)) :: !acc
    done;
    !acc

  (* Merging is pure and unguarded: it combines recorded data rather
     than recording new data.  Bucket counts and extrema merge
     exactly, so merge is commutative; only [sum] is subject to
     floating-point rounding under re-association. *)
  let merge a b =
    {
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      vmin = Float.min a.vmin b.vmin;
      vmax = Float.max a.vmax b.vmax;
      buckets = Array.init bucket_count (fun i -> a.buckets.(i) + b.buckets.(i));
    }

  let quantile h q =
    if h.n = 0 then nan
    else if q <= 0. then h.vmin
    else if q >= 1. then h.vmax
    else begin
      let rank = q *. float_of_int h.n in
      let rec find i before =
        let c = h.buckets.(i) in
        if float_of_int (before + c) >= rank || i = bucket_count - 1 then
          (i, before, c)
        else find (i + 1) (before + c)
      in
      let b, before, c = find 0 0 in
      let hi = upper_bound b in
      (* Geometric interpolation inside the bucket, then clamped to the
         observed range so estimates never exceed real extrema. *)
      let f =
        if c = 0 then 1.
        else (rank -. float_of_int before) /. float_of_int c
      in
      let est = hi /. 2. *. (2. ** f) in
      Float.max h.vmin (Float.min h.vmax est)
    end

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p90 : float;
    p95 : float;
    p99 : float;
  }

  let summarize h =
    {
      count = h.n;
      sum = h.sum;
      min = h.vmin;
      max = h.vmax;
      mean = (if h.n = 0 then nan else h.sum /. float_of_int h.n);
      p50 = quantile h 0.5;
      p90 = quantile h 0.9;
      p95 = quantile h 0.95;
      p99 = quantile h 0.99;
    }
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

let register name wrap make unwrap =
  match Hashtbl.find_opt registry name with
  | Some m -> begin
      match unwrap m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name m))
    end
  | None ->
      let v = make () in
      Hashtbl.replace registry name (wrap v);
      v

let counter name =
  register name
    (fun c -> Counter_m c)
    Counter.make
    (function Counter_m c -> Some c | _ -> None)

let gauge name =
  register name
    (fun g -> Gauge_m g)
    Gauge.make
    (function Gauge_m g -> Some g | _ -> None)

let histogram name =
  register name
    (fun h -> Histogram_m h)
    Histogram.make
    (function Histogram_m h -> Some h | _ -> None)

(* Zero every registered metric but keep the registrations: metric
   handles are bound at module initialisation and must stay valid. *)
let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter_m c -> Counter.reset c
      | Gauge_m g -> Gauge.reset g
      | Histogram_m h -> Histogram.reset h)
    registry

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.summary

let snapshot () =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Counter_m c -> Counter_v (Counter.value c)
        | Gauge_m g -> Gauge_v (Gauge.value g)
        | Histogram_m h -> Histogram_v (Histogram.summarize h)
      in
      (name, v) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let touched = function
  | Counter_v 0 -> false
  | Gauge_v 0. -> false
  | Histogram_v s -> s.Histogram.count > 0
  | Counter_v _ | Gauge_v _ -> true
