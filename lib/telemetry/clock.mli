(** Monotone process clock for solver timings.

    Readings are guaranteed non-decreasing within the process, so
    durations computed from two readings are never negative even if the
    system wall clock is stepped backwards mid-run (NTP adjustment,
    manual reset).  Implemented as a clamped wall clock because the
    sealed environment has no CLOCK_MONOTONIC binding: during a
    backwards step the clock freezes rather than rewinding. *)

val now_s : unit -> float
(** Current reading in seconds.  Monotone non-decreasing. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [now_s () -. t0]; non-negative whenever [t0]
    came from a previous {!now_s} in this process. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    seconds. *)
