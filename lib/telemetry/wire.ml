(* Compact binary codec for telemetry registry state.

   Checkpoint deltas carry the metrics registry on every cut, and the
   sexp rendering of a histogram (64 bucket counts, four 17-digit
   floats) is the single largest section of a snapshot.  This codec
   packs the same data as LEB128 varints (zigzag for signed values),
   raw IEEE-754 bits for floats, and length-prefixed strings — a
   registry delta typically shrinks 5-10x versus its sexp form.

   The primitives are exposed because the resilience journal reuses
   them for its own records; the [metrics_diff] pair is the codec the
   incremental checkpoints ship. *)

exception Corrupt of string

(* --- encoder ------------------------------------------------------ *)

type enc = Buffer.t

let encoder () = Buffer.create 256
let contents = Buffer.contents

let put_byte b n = Buffer.add_char b (Char.chr (n land 0xff))

(* LEB128 over the raw word bits: [n] is read as an unsigned
   [Sys.int_size]-bit pattern (logical shifts), so the zigzag of
   [min_int] — whose pattern has the top bit set — still encodes. *)
let put_word_bits b n =
  let rec go n =
    if n land lnot 0x7f = 0 then put_byte b n
    else begin
      put_byte b (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

(* Unsigned LEB128. *)
let put_uint b n =
  if n < 0 then invalid_arg "Wire.put_uint: negative";
  put_word_bits b n

(* Zigzag-mapped signed varint: small magnitudes of either sign stay
   one byte. *)
let put_int b n = put_word_bits b ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let put_float b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    put_byte b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
  done

let put_string b s =
  put_uint b (String.length s);
  Buffer.add_string b s

(* --- decoder ------------------------------------------------------ *)

type dec = { data : string; mutable pos : int }

let decoder data = { data; pos = 0 }
let remaining d = String.length d.data - d.pos
let corrupt msg = raise (Corrupt msg)

let get_byte d =
  if d.pos >= String.length d.data then corrupt "truncated record";
  let c = Char.code d.data.[d.pos] in
  d.pos <- d.pos + 1;
  c

let get_uint d =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint overflow";
    let byte = get_byte d in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_int d =
  let z = get_uint d in
  (z lsr 1) lxor (-(z land 1))

let get_float d =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits (Int64.shift_left (Int64.of_int (get_byte d)) (8 * i))
  done;
  Int64.float_of_bits !bits

let get_string d =
  let n = get_uint d in
  (* A crafted varint can decode to a negative word; reject it here so
     corruption surfaces as [Corrupt], never [Invalid_argument]. *)
  if n < 0 || n > remaining d then corrupt "truncated string";
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s

(* --- hex framing --------------------------------------------------- *)

(* Binary payloads ride inside line-oriented checkpoint files, so they
   are hex-armoured: still compact after the 2x expansion, and the
   file's integrity footer stays a trailing text line. *)

let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex payload"
  else
    let nib c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | _ -> Error (Printf.sprintf "invalid hex byte %C" c)
    in
    let buf = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.to_string buf)
      else
        match (nib s.[i], nib s.[i + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set buf (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

(* --- metrics ------------------------------------------------------- *)

let put_dumped b = function
  | Metrics.D_counter n ->
      put_byte b 0;
      put_int b n
  | Metrics.D_gauge v ->
      put_byte b 1;
      put_float b v
  | Metrics.D_histogram h ->
      put_byte b 2;
      put_int b h.Metrics.d_n;
      put_float b h.Metrics.d_sum;
      put_float b h.Metrics.d_vmin;
      put_float b h.Metrics.d_vmax;
      put_uint b (Array.length h.Metrics.d_counts);
      Array.iter (put_int b) h.Metrics.d_counts

let get_dumped d =
  match get_byte d with
  | 0 -> Metrics.D_counter (get_int d)
  | 1 -> Metrics.D_gauge (get_float d)
  | 2 ->
      let d_n = get_int d in
      let d_sum = get_float d in
      let d_vmin = get_float d in
      let d_vmax = get_float d in
      let buckets = get_uint d in
      if buckets < 0 || buckets > remaining d then
        corrupt "truncated histogram";
      let d_counts = Array.init buckets (fun _ -> get_int d) in
      Metrics.D_histogram { d_n; d_sum; d_vmin; d_vmax; d_counts }
  | t -> corrupt (Printf.sprintf "unknown metric tag %d" t)

(* A registry delta: entries that disappeared (by name) plus entries
   added or changed.  Both halves keep their caller-given order, which
   the delta codec relies on to reconstruct [Metrics.dump]'s sorted
   output exactly. *)
let encode_metrics_diff ~removed ~upserts =
  let b = encoder () in
  put_uint b (List.length removed);
  List.iter (put_string b) removed;
  put_uint b (List.length upserts);
  List.iter
    (fun (name, v) ->
      put_string b name;
      put_dumped b v)
    upserts;
  contents b

(* Explicit accumulation: each entry costs at least one byte, so a
   lying count is caught before any allocation sized by it — and the
   list is built strictly left to right, which the stateful decoder
   requires. *)
let get_list d f =
  let n = get_uint d in
  if n < 0 || n > remaining d then corrupt "truncated list";
  let rec go acc k = if k = 0 then List.rev acc else go (f d :: acc) (k - 1) in
  go [] n

let decode_metrics_diff data =
  match
    let d = decoder data in
    let removed = get_list d get_string in
    let upserts =
      get_list d (fun d ->
          let name = get_string d in
          (name, get_dumped d))
    in
    if remaining d <> 0 then corrupt "trailing bytes";
    (removed, upserts)
  with
  | v -> Ok v
  | exception Corrupt m -> Error ("metrics delta: " ^ m)
