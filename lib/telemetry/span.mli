(** Lightweight nested span tracing over the metrics registry.

    [with_span "solve" f] times [f ()] and records the duration into
    the registry histogram [trace.solve.seconds] plus the call counter
    [trace.solve.calls].  Spans nest: a process-local stack tracks the
    enclosing spans, exposed through {!depth} and {!path}.  While
    telemetry is disabled ({!Metrics.enabled}[ () = false]) a span is a
    plain call of the thunk — no clock read, no stack push. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The stack is restored and the
    duration recorded even if the thunk raises. *)

val depth : unit -> int
(** Number of spans currently open (0 outside any span). *)

val path : unit -> string
(** Slash-joined names of the open spans, outermost first
    (e.g. ["runner.alg-4/alg4-prim"]); [""] outside any span. *)
