(* A process-local monotone clock.  The sealed environment exposes no
   CLOCK_MONOTONIC binding, so we clamp the wall clock instead: the
   reading never decreases within the process, which is the property
   solver timings need (a backwards NTP step freezes the clock for its
   duration instead of producing negative durations). *)

let last = ref neg_infinity

let now_s () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let elapsed_since t0 = now_s () -. t0

let time f =
  let t0 = now_s () in
  let x = f () in
  (x, elapsed_since t0)
