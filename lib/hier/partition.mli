(** Region partitioning — the first layer of the hierarchical router.

    Every vertex gets a region label; the {e gateways} of a region are
    its border switches (switches with at least one edge into another
    region).  Only gateways appear in the contracted skeleton graph
    (see {!Skeleton}), so a good partition is one with few, physically
    meaningful borders.

    Two ways in:

    - {!of_assignment} adopts an explicit region map — exact and free
      for reference topologies that know their regions, like the
      continent-of-Waxmans generator's tile labels;
    - {!kmeans} derives one geometrically, by seeded k-means over the
      vertex coordinates — deterministic (fixed iteration budget,
      index-ordered tie-breaking, PRNG-seeded initialisation) so equal
      seeds give equal partitions on any topology. *)

type t = private {
  count : int;  (** Number of regions (≥ 1). *)
  region_of : int array;  (** Vertex id → region label. *)
  members : int array array;
      (** Region → member vertex ids, ascending.  Regions may be empty
          under an explicit assignment with unused labels. *)
  gateways : int array array;
      (** Region → border switch ids, ascending. *)
  is_gateway : bool array;  (** Vertex id → border-switch flag. *)
}

val of_assignment : Qnet_graph.Graph.t -> int array -> t
(** [of_assignment g labels] adopts [labels] (one non-negative region
    label per vertex; the region count is [1 + max label]) and derives
    members and gateways.
    @raise Invalid_argument on an arity mismatch or a negative label. *)

val kmeans :
  ?iterations:int -> regions:int -> seed:int -> Qnet_graph.Graph.t -> t
(** [kmeans ~regions ~seed g] clusters vertices by Euclidean distance
    to [regions] centroids (Lloyd's algorithm, at most [iterations]
    rounds, default 16).  Initial centroids are a seeded uniform vertex
    sample; an emptied cluster is re-seeded at the vertex farthest from
    its current centroid, so every region ends non-empty.  [regions] is
    clamped to the vertex count.
    @raise Invalid_argument if [regions < 1] or the graph is empty. *)

val region : t -> int -> int
(** [region t v] is [t.region_of.(v)]. *)

val gateway_count : t -> int
(** Total gateways over all regions — the skeleton's vertex count. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: region count, sizes, gateway count. *)

val auto_regions : int -> int
(** [auto_regions n_switches] is the default region count for a network
    of that size: [max 4 (√n / 2)] — 16 at 1k switches, 50 at 10k, 158
    at 100k.  Derived from the PR 6 scaling result that the fixed
    [switches / 200] ratio over-partitions large networks; callers
    ([--regions 0], the bench hier ladder) use this unless the user
    overrides the count explicitly.
    @raise Invalid_argument on a negative count. *)
