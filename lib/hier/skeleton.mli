(** The contracted gateway graph and its cached region segments.

    The skeleton has one node per gateway (border switch) plus, per
    query, two virtual endpoints.  Its edges are:

    - {e inter-region} fibers — the physical switch-to-switch edges
      crossing a region border, at their exact −log-rate weight;
    - {e intra-region} segments — for each region, every gateway pair,
      weighted by the best capacity-feasible switch path between them
      {e inside} that region (a target-pruned Dijkstra restricted to
      the region's vertices).

    Segment costs are computed lazily — one region-restricted SSSP per
    gateway yields that gateway's segments to all siblings at once —
    and cached with their witness paths and edge ids.  Lookups reuse
    cached segments {e optimistically}: the skeleton search trusts the
    cached costs, and only the segments on the {e winning} route are
    validated against the live exclusion and capacity (can every
    witness switch still relay?).  Stale winners trigger a recompute
    of just those source gateways and a bounded retry.  Staleness can
    therefore only cost a retry or a slightly worse corridor — never a
    wrong channel, because the corridor search below is exact.  Fault
    transitions also invalidate eagerly via {!invalidate_region}
    (wired from [Qnet_faults.Health.on_transition] by
    {!Serve.attach_health}).

    The skeleton search itself is A-star: the heuristic is euclidean
    distance to the destination times a per-km −log-rate lower bound
    (attenuation [alpha] plus one swap spread over the longest fiber),
    admissible because fiber length equals euclidean distance.  Goal
    direction keeps the lazy cache fill confined to corridor-adjacent
    gateways instead of settling the whole skeleton.

    Routing the skeleton answers one question cheaply: {e which regions
    should the exact search look at?}  The result is a corridor — the
    region sequence under the best gateway-level route — and the caller
    ({!Oracle}) re-runs the exact flat Dijkstra restricted to corridor
    vertices to produce the concrete channel.  Telemetry:
    [hier.segment_sssp], [hier.segment_hits], [hier.segment_stale],
    [hier.skeleton_routes]. *)

type t

val create :
  Qnet_graph.Graph.t -> Qnet_core.Params.t -> Partition.t -> t
(** Index the gateways and the inter-region fibers; no segment is
    computed yet (O(V + E) setup). *)

val partition : t -> Partition.t
val graph : t -> Qnet_graph.Graph.t

val node_count : t -> int
(** Gateways in the skeleton. *)

val inter_edge_count : t -> int
(** Cross-region switch-to-switch fibers. *)

val route :
  t ->
  exclude:Qnet_core.Routing.exclusion ->
  budget:Qnet_overload.Budget.t option ->
  capacity:Qnet_core.Capacity.t ->
  src:int ->
  dst:int ->
  int list option
(** [route t ~src ~dst] runs Dijkstra over the skeleton between user
    vertices [src] and [dst] (attached to their regions' gateways by
    two region-restricted exact searches) and returns the corridor: the
    distinct region labels along the best gateway route, in path order,
    [src]'s region first.  [None] when the skeleton offers no
    capacity-feasible gateway route.  Expects [src] and [dst] in
    different regions (same-region queries never need the skeleton).
    [budget] meters the underlying exact searches. *)

val export : t -> Qnet_util.Sexp.t
(** Serialise the segment cache exactly — every cached entry (costs,
    witness paths, edge ids, stamp) plus the query counter, entries
    sorted by gateway node so the rendering is deterministic.  A
    restored run must resume with the same cache contents, not a cold
    cache: segments are reused optimistically, so warmth can change
    which corridor wins. *)

val import : t -> Qnet_util.Sexp.t -> (unit, string) result
(** Replace the segment cache and query counter with an {!export}ed
    document.  Validates gateway ids and per-region row widths against
    this skeleton; [Error] (cache untouched on the malformed-document
    paths, reset on a later entry error is impossible — entries are
    parsed fully before the cache is swapped) when the document does
    not fit this network. *)

val invalidate_region : t -> int -> unit
(** Drop every cached segment of the given region (eager invalidation
    on a fault transition). *)

val invalidate_all : t -> unit
(** Drop the whole segment cache. *)
