module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng

type t = {
  count : int;
  region_of : int array;
  members : int array array;
  gateways : int array array;
  is_gateway : bool array;
}

let finalize g ~count ~region_of =
  let n = Graph.vertex_count g in
  let sizes = Array.make count 0 in
  Array.iter (fun r -> sizes.(r) <- sizes.(r) + 1) region_of;
  let members = Array.map (fun s -> Array.make s 0) sizes in
  let fill = Array.make count 0 in
  for v = 0 to n - 1 do
    let r = region_of.(v) in
    members.(r).(fill.(r)) <- v;
    fill.(r) <- fill.(r) + 1
  done;
  (* A gateway is a switch touching another region: the only vertices a
     cross-region path must pass through, hence the skeleton nodes. *)
  let is_gateway = Array.make n false in
  for v = 0 to n - 1 do
    if Graph.is_switch g v then
      Graph.iter_adjacent g v (fun w _eid ->
          if region_of.(w) <> region_of.(v) then is_gateway.(v) <- true)
  done;
  let gw_sizes = Array.make count 0 in
  for v = 0 to n - 1 do
    if is_gateway.(v) then
      gw_sizes.(region_of.(v)) <- gw_sizes.(region_of.(v)) + 1
  done;
  let gateways = Array.map (fun s -> Array.make s 0) gw_sizes in
  let gw_fill = Array.make count 0 in
  for v = 0 to n - 1 do
    if is_gateway.(v) then begin
      let r = region_of.(v) in
      gateways.(r).(gw_fill.(r)) <- v;
      gw_fill.(r) <- gw_fill.(r) + 1
    end
  done;
  { count; region_of; members; gateways; is_gateway }

let of_assignment g labels =
  let n = Graph.vertex_count g in
  if Array.length labels <> n then
    invalid_arg "Partition.of_assignment: label arity mismatch";
  let count = ref 0 in
  Array.iter
    (fun r ->
      if r < 0 then invalid_arg "Partition.of_assignment: negative label";
      if r + 1 > !count then count := r + 1)
    labels;
  if !count = 0 then invalid_arg "Partition.of_assignment: empty graph";
  finalize g ~count:!count ~region_of:(Array.copy labels)

let kmeans ?(iterations = 16) ~regions ~seed g =
  let n = Graph.vertex_count g in
  if regions < 1 then invalid_arg "Partition.kmeans: regions must be >= 1";
  if n = 0 then invalid_arg "Partition.kmeans: empty graph";
  let k = min regions n in
  let px = Array.init n (fun v -> (Graph.vertex g v).Graph.x) in
  let py = Array.init n (fun v -> (Graph.vertex g v).Graph.y) in
  let rng = Prng.create seed in
  let order = Array.init n Fun.id in
  Prng.shuffle_in_place rng order;
  let cx = Array.init k (fun i -> px.(order.(i))) in
  let cy = Array.init k (fun i -> py.(order.(i))) in
  let region_of = Array.make n 0 in
  let d2 v c =
    let dx = px.(v) -. cx.(c) and dy = py.(v) -. cy.(c) in
    (dx *. dx) +. (dy *. dy)
  in
  let assign () =
    let changed = ref false in
    for v = 0 to n - 1 do
      (* Strict [<] keeps the lowest-index centroid on exact ties, so
         the labelling is a pure function of seed and coordinates. *)
      let best = ref 0 and best_d = ref (d2 v 0) in
      for c = 1 to k - 1 do
        let d = d2 v c in
        if d < !best_d then begin
          best := c;
          best_d := d
        end
      done;
      if region_of.(v) <> !best then begin
        region_of.(v) <- !best;
        changed := true
      end
    done;
    !changed
  in
  let recenter () =
    let sx = Array.make k 0. and sy = Array.make k 0. in
    let counts = Array.make k 0 in
    for v = 0 to n - 1 do
      let c = region_of.(v) in
      sx.(c) <- sx.(c) +. px.(v);
      sy.(c) <- sy.(c) +. py.(v);
      counts.(c) <- counts.(c) + 1
    done;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then begin
        let m = float_of_int counts.(c) in
        cx.(c) <- sx.(c) /. m;
        cy.(c) <- sy.(c) /. m
      end
      else begin
        (* Emptied cluster: restart it at the vertex farthest from its
           own centroid (deterministic argmax, first index wins). *)
        let far = ref 0 and far_d = ref neg_infinity in
        for v = 0 to n - 1 do
          let d = d2 v region_of.(v) in
          if d > !far_d then begin
            far := v;
            far_d := d
          end
        done;
        cx.(c) <- px.(!far);
        cy.(c) <- py.(!far);
        region_of.(!far) <- c
      end
    done
  in
  ignore (assign ());
  (let continue = ref true and round = ref 1 in
   while !continue && !round < iterations do
     recenter ();
     continue := assign ();
     incr round
   done);
  (* Guarantee non-empty regions even if the loop ended on an [assign]
     that emptied one: steal the farthest vertex for each empty label. *)
  let counts = Array.make k 0 in
  Array.iter (fun r -> counts.(r) <- counts.(r) + 1) region_of;
  for c = 0 to k - 1 do
    if counts.(c) = 0 then begin
      let far = ref (-1) and far_d = ref neg_infinity in
      for v = 0 to n - 1 do
        if counts.(region_of.(v)) > 1 then begin
          let d = d2 v region_of.(v) in
          if d > !far_d then begin
            far := v;
            far_d := d
          end
        end
      done;
      if !far >= 0 then begin
        counts.(region_of.(!far)) <- counts.(region_of.(!far)) - 1;
        region_of.(!far) <- c;
        counts.(c) <- 1
      end
    end
  done;
  finalize g ~count:k ~region_of

let region t v = t.region_of.(v)

let gateway_count t =
  Array.fold_left (fun acc gws -> acc + Array.length gws) 0 t.gateways

let pp fmt t =
  let sizes = Array.map Array.length t.members in
  let min_s = Array.fold_left min max_int sizes
  and max_s = Array.fold_left max 0 sizes in
  Format.fprintf fmt "%d regions (sizes %d..%d), %d gateways" t.count min_s
    max_s (gateway_count t)

(* √n-based region autotune.  The PR 6 ladder fixed regions to
   switches/200 and found 100k switches ran faster at 10k's ratio (50
   regions) — i.e. the good operating point grows sublinearly.  √n/2
   reproduces 50 at 10k while growing the count gently (158 at 100k,
   16 at 1k), and the floor of 4 keeps small networks from collapsing
   into a trivial partition. *)
let auto_regions n_switches =
  if n_switches < 0 then invalid_arg "Partition.auto_regions: negative count";
  max 4 (int_of_float (sqrt (float_of_int n_switches) /. 2.))
