module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Routing = Qnet_core.Routing
module Channel = Qnet_core.Channel
module Capacity = Qnet_core.Capacity
module Multi_group = Qnet_core.Multi_group
module Params = Qnet_core.Params
module Tm = Qnet_telemetry.Metrics

let c_queries = Tm.counter "hier.queries"
let c_local = Tm.counter "hier.local"
let c_corridor_hits = Tm.counter "hier.corridor_hits"
let c_fallbacks = Tm.counter "hier.fallbacks"

type t = {
  g : Graph.t;
  params : Params.t;
  part : Partition.t;
  skeleton : Skeleton.t;
  in_corridor : bool array;  (* region -> member of the current corridor *)
}

let create g params part =
  {
    g;
    params;
    part;
    skeleton = Skeleton.create g params part;
    in_corridor = Array.make part.Partition.count false;
  }

let graph t = t.g
let params t = t.params
let partition t = t.part
let skeleton t = t.skeleton

(* Exact search restricted to the corridor regions: Algorithm 1's
   admission rule (enter switches only while they can relay, never relay
   through users) plus the region membership test.  Identical weights,
   so inside the corridor the result is the true optimum. *)
let corridor_channel t ~exclude ~budget ~capacity ~src ~dst corridor =
  List.iter (fun r -> t.in_corridor.(r) <- true) corridor;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun r -> t.in_corridor.(r) <- false) corridor)
    (fun () ->
      let region_of = t.part.Partition.region_of in
      let admit v =
        t.in_corridor.(region_of.(v))
        && exclude.Routing.vertex_ok v
        &&
        if Graph.is_user t.g v then v <> src
        else Capacity.can_relay capacity v
      in
      let res =
        Paths.dijkstra t.g ~source:src
          ~weight:(Routing.edge_weight t.params)
          ~admit
          ~expand:(fun v -> Graph.is_switch t.g v)
          ~edge_ok:exclude.Routing.edge_ok ~target:dst ?budget ()
      in
      match Paths.extract_path res ~source:src ~target:dst with
      | None -> None
      | Some path -> (
          match Channel.make t.g t.params path with
          | Ok c -> Some c
          | Error _ -> None))

let best_channel ?(exclude = Routing.no_exclusion) ?budget t ~capacity ~src
    ~dst =
  if not (Graph.is_user t.g src && Graph.is_user t.g dst) then
    invalid_arg "Oracle.best_channel: endpoint is not a quantum user";
  if src = dst then invalid_arg "Oracle.best_channel: src = dst";
  if t.params.Params.q = 0. then
    (* Only direct fibers work: nothing to contract. *)
    Routing.best_channel ~exclude ?budget t.g t.params ~capacity ~src ~dst
  else begin
    Tm.Counter.incr c_queries;
    let region_of = t.part.Partition.region_of in
    let fallback () =
      Tm.Counter.incr c_fallbacks;
      Routing.best_channel ~exclude ?budget t.g t.params ~capacity ~src ~dst
    in
    let corridor =
      if region_of.(src) = region_of.(dst) then begin
        Tm.Counter.incr c_local;
        Some [ region_of.(src) ]
      end
      else
        Skeleton.route t.skeleton ~exclude ~budget ~capacity ~src ~dst
    in
    match corridor with
    | None -> fallback ()
    | Some regions -> (
        match
          corridor_channel t ~exclude ~budget ~capacity ~src ~dst regions
        with
        | Some c ->
            Tm.Counter.incr c_corridor_hits;
            Some c
        | None -> fallback ())
  end

let channel_oracle t ~exclude ~budget ~capacity ~src ~dst =
  best_channel ~exclude ?budget t ~capacity ~src ~dst

let route_users ?exclude ?budget t ~capacity ~users =
  Multi_group.prim_for_users ?exclude ?budget ~oracle:(channel_oracle t) t.g
    t.params ~capacity ~users

let invalidate_switch t v =
  Skeleton.invalidate_region t.skeleton t.part.Partition.region_of.(v)

let invalidate_link t eid =
  let e = Graph.edge t.g eid in
  let ra = t.part.Partition.region_of.(e.Graph.a)
  and rb = t.part.Partition.region_of.(e.Graph.b) in
  Skeleton.invalidate_region t.skeleton ra;
  if rb <> ra then Skeleton.invalidate_region t.skeleton rb
