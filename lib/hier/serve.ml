module Policy = Qnet_online.Policy
module Health = Qnet_faults.Health
module Schedule = Qnet_faults.Schedule

let policy oracle =
  {
    Policy.name = "hier-prim";
    (* The oracle's lazily filled segment cache is shared mutable
       state — route calls must stay on one domain.  It also cannot be
       checkpointed: a restored run starts with a cold cache, and
       segment warmth can change which corridor wins. *)
    concurrent_safe = false;
    checkpoint_safe = false;
    route =
      (fun ~exclude ~budget g _params ~capacity ~users ->
        if not (g == Oracle.graph oracle) then
          invalid_arg "Serve.policy: oracle was built over a different graph";
        Oracle.route_users ~exclude ?budget oracle ~capacity ~users);
  }

let attach_health oracle health =
  Health.on_transition health (fun element _transition ->
      match element with
      | Schedule.Switch v -> Oracle.invalidate_switch oracle v
      | Schedule.Link eid -> Oracle.invalidate_link oracle eid)
