module Policy = Qnet_online.Policy
module Health = Qnet_faults.Health
module Schedule = Qnet_faults.Schedule

let policy oracle =
  let skeleton = Oracle.skeleton oracle in
  {
    Policy.name = "hier-prim";
    (* The oracle's lazily filled segment cache is shared mutable
       state — route calls must stay on one domain.  It *can* be
       checkpointed, though: the cache contents ride in the snapshot's
       policy-state section through the hooks below, so a restored run
       resumes with exactly the warmth the original had (a cold cache
       would diverge — segment reuse is optimistic, and warmth can
       change which corridor wins). *)
    concurrent_safe = false;
    checkpoint_safe = true;
    state =
      Some
        {
          Policy.save = (fun () -> Skeleton.export skeleton);
          load =
            (fun g _params doc ->
              if not (g == Oracle.graph oracle) then
                Error "hier policy state: oracle built over a different graph"
              else Skeleton.import skeleton doc);
        };
    route =
      (fun ~exclude ~budget g _params ~capacity ~users ->
        if not (g == Oracle.graph oracle) then
          invalid_arg "Serve.policy: oracle was built over a different graph";
        Oracle.route_users ~exclude ?budget oracle ~capacity ~users);
  }

let attach_health oracle health =
  Health.on_transition health (fun element _transition ->
      match element with
      | Schedule.Switch v -> Oracle.invalidate_switch oracle v
      | Schedule.Link eid -> Oracle.invalidate_link oracle eid)
