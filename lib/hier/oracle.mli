(** The hierarchical channel oracle — a drop-in {!Qnet_core.Routing}
    replacement for large networks.

    A best-channel query runs in three steps:

    + if both endpoints share a region, the corridor is that single
      region;
    + otherwise the {!Skeleton} is routed to pick a corridor — the
      region sequence under the best gateway-level route;
    + one {e exact} Dijkstra, restricted to the corridor's vertices but
      otherwise identical to Algorithm 1's (same admission, weights and
      capacity filtering), stitches the concrete channel.

    Because the final channel always comes from an exact search under
    the flat admission rule, every returned channel is capacity-
    feasible and passes [Verify.check_exn] — the hierarchy can only
    cost rate (when the true optimum leaves the corridor), never
    correctness.  When the corridor search finds nothing (or the
    skeleton has no route), the oracle falls back to the flat
    whole-graph search, so hierarchical routing is feasibility-
    equivalent to flat routing: it returns a channel exactly when
    {!Qnet_core.Routing.best_channel} would.  Telemetry:
    [hier.queries], [hier.local], [hier.corridor_hits],
    [hier.fallbacks]. *)

type t

val create :
  Qnet_graph.Graph.t -> Qnet_core.Params.t -> Partition.t -> t

val graph : t -> Qnet_graph.Graph.t
val params : t -> Qnet_core.Params.t
val partition : t -> Partition.t
val skeleton : t -> Skeleton.t

val best_channel :
  ?exclude:Qnet_core.Routing.exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  t ->
  capacity:Qnet_core.Capacity.t ->
  src:int ->
  dst:int ->
  Qnet_core.Channel.t option
(** Hierarchical analogue of {!Qnet_core.Routing.best_channel}: same
    contract (user endpoints, no consumption, exclusion respected,
    budget metered), feasibility-equivalent to the flat search.  With
    [q = 0] the query delegates to the flat direct-fiber special case
    outright. *)

val channel_oracle : t -> Qnet_core.Routing.channel_oracle
(** {!best_channel} packaged for {!Qnet_core.Multi_group.prim_for_users}'
    [?oracle] seam. *)

val route_users :
  ?exclude:Qnet_core.Routing.exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  t ->
  capacity:Qnet_core.Capacity.t ->
  users:int list ->
  Qnet_core.Ent_tree.t option
(** Algorithm 4 over this oracle: grow one entanglement tree spanning
    [users], consuming from [capacity] on success (rolled back on
    failure), with every attachment found hierarchically. *)

val invalidate_switch : t -> int -> unit
(** Eagerly drop cached segments of the region holding this switch —
    call on a fault transition instead of waiting for lazy
    revalidation. *)

val invalidate_link : t -> int -> unit
(** Same, for both endpoint regions of a fiber. *)
