module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Binary_heap = Qnet_graph.Binary_heap
module Routing = Qnet_core.Routing
module Capacity = Qnet_core.Capacity
module Tm = Qnet_telemetry.Metrics

let c_routes = Tm.counter "hier.skeleton_routes"
let c_seg_sssp = Tm.counter "hier.segment_sssp"
let c_seg_hits = Tm.counter "hier.segment_hits"
let c_seg_stale = Tm.counter "hier.segment_stale"

(* [edges] are the path's edge ids, recorded at compute time so
   revalidation never has to look an edge up again — [seg_ok] is then a
   walk of two short lists with O(1) predicates, cheap enough to run
   once per source per query. *)
type seg = { cost : float; path : int list; edges : int list }

(* All segments out of one gateway, aligned with its region's gateway
   row — one region-restricted SSSP fills the whole entry.  [stamp]
   marks the query that computed or last revalidated it, so one query
   never validates (or recomputes) the same source twice. *)
type entry = { segs : seg array; mutable stamp : int }

(* Generation-stamped SSSP workspace.  A slot is meaningful only when
   its mark equals the current generation, so starting a fresh run is a
   counter bump, not an O(n) array sweep — the difference between a
   region-restricted search costing O(region) and costing O(network).
   With hundreds of lazy segment SSSPs behind one cold cache, the O(n)
   re-initialisation of [Paths.dijkstra] would dominate the whole
   hierarchical query. *)
type scratch = {
  sc_dist : float array;
  sc_prev : int array;
  sc_prev_edge : int array;
  sc_mark : int array;  (* dist/prev valid iff = gen *)
  sc_done : int array;  (* vertex settled iff = gen *)
  sc_heap : int Binary_heap.t;
  mutable sc_gen : int;
}

let scratch_make n =
  {
    sc_dist = Array.make n infinity;
    sc_prev = Array.make n (-1);
    sc_prev_edge = Array.make n (-1);
    sc_mark = Array.make n (-1);
    sc_done = Array.make n (-1);
    sc_heap = Binary_heap.create ~capacity:1024 ();
    sc_gen = 0;
  }

let sc_dist sc v = if sc.sc_mark.(v) = sc.sc_gen then sc.sc_dist.(v) else infinity

type t = {
  g : Graph.t;
  params : Qnet_core.Params.t;
  part : Partition.t;
  node_of : int array;
  vertex_of : int array;
  region_nodes : int array array;
  inter : (int * float * int) array array;
  cache : (int, entry) Hashtbl.t;
  scratch : scratch;
  h_rate : float;
      (* A-star heuristic slope: cost-per-km lower bound.  Any route
         spanning straight-line distance D uses at least D / l_max
         fibers (l_max = longest fiber in the network), so it costs at
         least [alpha·D + swap_neg_log·D/l_max] — i.e. [h_rate · D]
         with [h_rate = alpha + swap/l_max].  Consistent: an edge of
         length L costs [alpha·L + swap ≥ h_rate·L ≥ h_rate·euclid]. *)
  mutable query : int;
}

(* Same semantics as [Paths.dijkstra] (admit gates entering a
   non-source vertex, expand gates leaving one, budget ticks per pop),
   but into the reusable workspace.  Results must be read back — via
   [sc_dist]/[sc_path] — before the next [sssp] call reuses it. *)
let sssp t ~source ~admit ~expand ~edge_ok ~budget =
  let sc = t.scratch in
  sc.sc_gen <- sc.sc_gen + 1;
  Binary_heap.reset sc.sc_heap;
  let charge =
    match budget with
    | None -> Fun.id
    | Some b -> fun () -> Qnet_overload.Budget.tick b
  in
  let off = Graph.csr_offsets t.g and pairs = Graph.csr_pairs t.g in
  sc.sc_dist.(source) <- 0.;
  sc.sc_prev.(source) <- -1;
  sc.sc_mark.(source) <- sc.sc_gen;
  Binary_heap.push sc.sc_heap 0. source;
  let running = ref true in
  while !running do
    match Binary_heap.pop_min sc.sc_heap with
    | None -> running := false
    | Some (d, u) ->
        charge ();
        if sc.sc_done.(u) <> sc.sc_gen && d <= sc_dist sc u then begin
          sc.sc_done.(u) <- sc.sc_gen;
          if u = source || expand u then
            for k = off.(u) to off.(u + 1) - 1 do
              let v = pairs.(2 * k) in
              if
                sc.sc_done.(v) <> sc.sc_gen
                && (v = source || admit v)
                && edge_ok pairs.((2 * k) + 1)
              then begin
                let eid = pairs.((2 * k) + 1) in
                let e = Graph.edge t.g eid in
                let cand = d +. Routing.edge_weight t.params e in
                if cand < sc_dist sc v then begin
                  sc.sc_dist.(v) <- cand;
                  sc.sc_prev.(v) <- u;
                  sc.sc_prev_edge.(v) <- eid;
                  sc.sc_mark.(v) <- sc.sc_gen;
                  Binary_heap.push sc.sc_heap cand v
                end
              end
            done
        end
  done

(* Vertex path (both endpoints, like [Paths.extract_path]) plus the
   matching edge ids. *)
let sc_path t ~source ~target =
  let sc = t.scratch in
  if sc_dist sc target = infinity then None
  else begin
    let rec walk v vs es =
      if v = source then (v :: vs, es)
      else walk sc.sc_prev.(v) (v :: vs) (sc.sc_prev_edge.(v) :: es)
    in
    Some (walk target [] [])
  end

let create g params (part : Partition.t) =
  let n = Graph.vertex_count g in
  let node_of = Array.make n (-1) in
  let m = Partition.gateway_count part in
  let vertex_of = Array.make m 0 in
  let region_nodes = Array.make part.Partition.count [||] in
  let next = ref 0 in
  Array.iteri
    (fun r gws ->
      region_nodes.(r) <-
        Array.map
          (fun v ->
            let node = !next in
            incr next;
            node_of.(v) <- node;
            vertex_of.(node) <- v;
            node)
          gws)
    part.Partition.gateways;
  let inter_lists = Array.make m [] in
  Graph.iter_edges g (fun e ->
      let ra = part.Partition.region_of.(e.Graph.a)
      and rb = part.Partition.region_of.(e.Graph.b) in
      if ra <> rb then begin
        let na = node_of.(e.Graph.a) and nb = node_of.(e.Graph.b) in
        (* Cross edges with a user endpoint exist only in arbitrary
           partitions; they never join two gateways, and user endpoints
           are reached by the per-query attachment searches instead. *)
        if na >= 0 && nb >= 0 then begin
          let w = Routing.edge_weight params e in
          inter_lists.(na) <- (nb, w, e.Graph.eid) :: inter_lists.(na);
          inter_lists.(nb) <- (na, w, e.Graph.eid) :: inter_lists.(nb)
        end
      end);
  let l_max =
    Graph.fold_edges g ~init:0. ~f:(fun acc e -> Float.max acc e.Graph.length)
  in
  let h_rate =
    params.Qnet_core.Params.alpha
    +. (if l_max > 0. then Qnet_core.Params.swap_neg_log params /. l_max
        else 0.)
  in
  {
    g;
    params;
    part;
    node_of;
    vertex_of;
    region_nodes;
    inter = Array.map (fun l -> Array.of_list (List.rev l)) inter_lists;
    cache = Hashtbl.create 256;
    scratch = scratch_make n;
    h_rate;
    query = 0;
  }

let partition t = t.part
let graph t = t.g
let node_count t = Array.length t.vertex_of

let inter_edge_count t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.inter / 2

let seg_ok ~exclude ~capacity (s : seg) =
  s.cost < infinity
  && List.for_all exclude.Routing.vertex_ok s.path
  && List.for_all exclude.Routing.edge_ok s.edges
  && List.for_all (fun v -> Capacity.can_relay capacity v) s.path

let compute_entry t ~exclude ~budget ~capacity a =
  Tm.Counter.incr c_seg_sssp;
  let va = t.vertex_of.(a) in
  let r = t.part.Partition.region_of.(va) in
  let admit v =
    t.part.Partition.region_of.(v) = r
    && exclude.Routing.vertex_ok v
    && Graph.is_switch t.g v
    && Capacity.can_relay capacity v
  in
  sssp t ~source:va ~admit
    ~expand:(fun v -> Graph.is_switch t.g v)
    ~edge_ok:exclude.Routing.edge_ok ~budget;
  let segs =
    Array.map
      (fun b ->
        if b = a then { cost = 0.; path = []; edges = [] }
        else
          let vb = t.vertex_of.(b) in
          match sc_path t ~source:va ~target:vb with
          | None -> { cost = infinity; path = []; edges = [] }
          | Some (p, es) ->
              { cost = sc_dist t.scratch vb; path = p; edges = es })
      t.region_nodes.(r)
  in
  let e = { segs; stamp = t.query } in
  Hashtbl.replace t.cache a e;
  e

(* Optimistic reuse: relaxation trusts cached segment costs outright.
   Validation is deferred to the winning route (see [route]), so a
   query pays for the handful of segments it actually uses, not for
   every entry the search settles — at 10k+ switches the per-settled-
   entry validation walk was most of the query.  A stale winner can
   only cost a retry or a fallback, never correctness: the corridor
   search downstream is exact against the live exclusion and capacity
   state.  [stamp] marks entries computed during the current query;
   those are exact and skip even the winner validation. *)
let entry t ~exclude ~budget ~capacity a =
  match Hashtbl.find_opt t.cache a with
  | Some e ->
      Tm.Counter.incr c_seg_hits;
      e
  | None -> compute_entry t ~exclude ~budget ~capacity a

let route t ~exclude ~budget ~capacity ~src ~dst =
  Tm.Counter.incr c_routes;
  t.query <- t.query + 1;
  let m = Array.length t.vertex_of in
  let region_of = t.part.Partition.region_of in
  let r_src = region_of.(src) and r_dst = region_of.(dst) in
  (* Attach each endpoint to its region's gateways with one exact
     region-restricted search (same admission rule as flat routing).
     The scratch workspace is shared with the lazy segment SSSPs that
     run later in the search, so the gateway distances are snapshotted
     out immediately, aligned with the region's gateway row. *)
  let attach u r =
    let admit v =
      region_of.(v) = r
      && exclude.Routing.vertex_ok v
      &&
      if Graph.is_user t.g v then v <> u
      else Capacity.can_relay capacity v
    in
    sssp t ~source:u ~admit
      ~expand:(fun v -> Graph.is_switch t.g v)
      ~edge_ok:exclude.Routing.edge_ok ~budget;
    Array.map
      (fun node -> sc_dist t.scratch t.vertex_of.(node))
      t.region_nodes.(r)
  in
  let src_d = attach src r_src in
  let dst_d = attach dst r_dst in
  (* Node ids are assigned consecutively region by region, so a
     gateway's index within its region row is an offset from the row's
     first node. *)
  let dst_base =
    if Array.length t.region_nodes.(r_dst) > 0 then
      t.region_nodes.(r_dst).(0)
    else 0
  in
  let s_node = m and d_node = m + 1 in
  let admit_node b =
    let vb = t.vertex_of.(b) in
    exclude.Routing.vertex_ok vb && Capacity.can_relay capacity vb
  in
  (* One goal-directed A-star search over the contracted graph, virtual
     source and destination attached through the snapshots above;
     re-run after a stale winner forces a recompute.  The heuristic
     [h_rate × straight-line distance to dst] (see the field's
     definition) lower-bounds any remaining route cost, and it is what
     keeps the search — and therefore the lazy segment-cache fill —
     confined to gateways near the corridor instead of settling the
     whole skeleton. *)
  let search () =
    let dist = Array.make (m + 2) infinity in
    let prev = Array.make (m + 2) (-1) in
    let done_ = Array.make (m + 2) false in
    let heap = Binary_heap.create ~capacity:(m + 2) () in
    let dv = Graph.vertex t.g dst in
    let h v =
      if v >= m then 0.
      else begin
        let p = Graph.vertex t.g t.vertex_of.(v) in
        let dx = p.Graph.x -. dv.Graph.x and dy = p.Graph.y -. dv.Graph.y in
        t.h_rate *. sqrt ((dx *. dx) +. (dy *. dy))
      end
    in
    let relax u d v w =
      if w < infinity then begin
        let cand = d +. w in
        if cand < dist.(v) then begin
          dist.(v) <- cand;
          prev.(v) <- u;
          Binary_heap.push heap (cand +. h v) v
        end
      end
    in
    dist.(s_node) <- 0.;
    Binary_heap.push heap 0. s_node;
    let running = ref true in
    while !running do
      match Binary_heap.pop_min heap with
      | None -> running := false
      | Some (_, u) ->
          if not done_.(u) then begin
            let d = dist.(u) in
            done_.(u) <- true;
            if u = d_node then running := false
            else if u = s_node then
              Array.iteri
                (fun i b -> if admit_node b then relax u d b src_d.(i))
                t.region_nodes.(r_src)
            else begin
              let vu = t.vertex_of.(u) in
              let ru = region_of.(vu) in
              let e = entry t ~exclude ~budget ~capacity u in
              Array.iteri
                (fun i b ->
                  if b <> u && (not done_.(b)) && admit_node b then
                    relax u d b e.segs.(i).cost)
                t.region_nodes.(ru);
              Array.iter
                (fun (b, w, eid) ->
                  if
                    (not done_.(b))
                    && exclude.Routing.edge_ok eid
                    && admit_node b
                  then relax u d b w)
                t.inter.(u);
              if ru = r_dst then relax u d d_node dst_d.(u - dst_base)
            end
          end
    done;
    (dist, prev)
  in
  (* Corridor: the distinct regions under the winning gateway route,
     in path order. *)
  let corridor_of prev =
    let seen = Array.make t.part.Partition.count false in
    let rec walk v acc =
      if v = s_node || v < 0 then acc
      else
        let acc =
          if v < m then begin
            let r = region_of.(t.vertex_of.(v)) in
            if seen.(r) then acc
            else begin
              seen.(r) <- true;
              r :: acc
            end
          end
          else acc
        in
        walk prev.(v) acc
    in
    let mids = walk prev.(d_node) [] in
    let tail = if seen.(r_dst) then mids else mids @ [ r_dst ] in
    if seen.(r_src) then tail else r_src :: tail
  in
  (* Winner validation: walk the chosen route and check only the
     cached segments it uses — witness path still admitted, every
     interior switch still able to relay.  Entries computed during
     this query are exact by construction and skip the check. *)
  let stale_sources prev =
    let rec walk v acc =
      if v = s_node || v < 0 then acc
      else begin
        let u = prev.(v) in
        let acc =
          if
            u >= 0 && u < m && v < m
            && region_of.(t.vertex_of.(u)) = region_of.(t.vertex_of.(v))
          then
            match Hashtbl.find_opt t.cache u with
            | Some e when e.stamp <> t.query ->
                let base =
                  t.region_nodes.(region_of.(t.vertex_of.(v))).(0)
                in
                if seg_ok ~exclude ~capacity e.segs.(v - base) then acc
                else u :: acc
            | _ -> acc
          else acc
        in
        walk u acc
      end
    in
    walk d_node []
  in
  (* On a no-route answer, entries from earlier queries may be hiding
     capacity that has since been freed (a segment cached as infeasible
     is never relaxed).  Dropping them once and re-searching keeps the
     skeleton's no-route answers honest without paying a revalidation
     sweep on every query. *)
  let drop_old () =
    let old =
      Hashtbl.fold
        (fun a e acc -> if e.stamp <> t.query then a :: acc else acc)
        t.cache []
    in
    List.iter (Hashtbl.remove t.cache) old;
    old <> []
  in
  let rec attempt ~refreshed retries =
    let dist, prev = search () in
    if dist.(d_node) = infinity then
      if (not refreshed) && drop_old () then attempt ~refreshed:true retries
      else None
    else
      match stale_sources prev with
      | [] -> Some (corridor_of prev)
      | dead ->
          if retries = 0 then None
          else begin
            List.iter
              (fun a ->
                Tm.Counter.incr c_seg_stale;
                ignore (compute_entry t ~exclude ~budget ~capacity a))
              dead;
            attempt ~refreshed (retries - 1)
          end
  in
  attempt ~refreshed:false 3

(* --- checkpoint state ---------------------------------------------- *)

(* The segment cache is optimistically reused, so a restored run must
   resume with the *same* cache contents — a cold cache recomputes
   segments under the live residual state and can pick a different
   corridor than the uninterrupted run did.  The export is therefore
   exact: every cached entry with its stamp, plus the query counter the
   stamps are compared against.  Entries are emitted sorted by node so
   the rendering is independent of hash-table iteration order. *)

module Sx = Qnet_util.Sexp

let export t =
  let entries =
    Hashtbl.fold (fun node e acc -> (node, e) :: acc) t.cache []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (node, e) ->
           let seg_sx s =
             Sx.list
               [
                 Sx.float s.cost;
                 Sx.list (List.map Sx.int s.path);
                 Sx.list (List.map Sx.int s.edges);
               ]
           in
           Sx.list
             [
               Sx.int node;
               Sx.int e.stamp;
               Sx.list (Array.to_list (Array.map seg_sx e.segs));
             ])
  in
  Sx.list
    [
      Sx.atom "skeleton";
      Sx.list [ Sx.atom "query"; Sx.int t.query ];
      Sx.list (Sx.atom "entries" :: entries);
    ]

let import t doc =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* query, entries =
    match doc with
    | Sx.List
        [
          Sx.Atom "skeleton";
          Sx.List [ Sx.Atom "query"; q ];
          Sx.List (Sx.Atom "entries" :: entries);
        ] ->
        let* q = Sx.to_int q in
        Ok (q, entries)
    | _ -> err "malformed skeleton state"
  in
  let seg_of = function
    | Sx.List [ cost; Sx.List path; Sx.List edges ] ->
        let* cost = Sx.to_float cost in
        let rec ints acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest ->
              let* n = Sx.to_int x in
              ints (n :: acc) rest
        in
        let* path = ints [] path in
        let* edges = ints [] edges in
        Ok { cost; path; edges }
    | _ -> err "malformed skeleton segment"
  in
  let m = Array.length t.vertex_of in
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | Sx.List [ node; stamp; Sx.List segs ] :: rest ->
        let* node = Sx.to_int node in
        let* stamp = Sx.to_int stamp in
        if node < 0 || node >= m then
          err "skeleton state names gateway %d, not in this network" node
        else begin
          let row =
            t.region_nodes.(t.part.Partition.region_of.(t.vertex_of.(node)))
          in
          if List.length segs <> Array.length row then
            err "skeleton entry for gateway %d has %d segments, expected %d"
              node (List.length segs) (Array.length row)
          else
            let rec segs_of acc = function
              | [] -> Ok (Array.of_list (List.rev acc))
              | s :: rest ->
                  let* s = seg_of s in
                  segs_of (s :: acc) rest
            in
            let* segs = segs_of [] segs in
            load ((node, { segs; stamp }) :: acc) rest
        end
    | _ :: _ -> err "malformed skeleton entry"
  in
  let* entries = load [] entries in
  Hashtbl.reset t.cache;
  List.iter (fun (node, e) -> Hashtbl.replace t.cache node e) entries;
  t.query <- query;
  Ok ()

let invalidate_region t r =
  if r >= 0 && r < Array.length t.region_nodes then
    Array.iter (fun node -> Hashtbl.remove t.cache node) t.region_nodes.(r)

let invalidate_all t = Hashtbl.reset t.cache
