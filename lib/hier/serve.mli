(** Hierarchical routing behind the online traffic engine.

    {!policy} wraps an {!Oracle} as a {!Qnet_online.Policy.t} named
    ["hier-prim"]: per request, Algorithm 4 grows the group's tree with
    every attachment answered hierarchically, consuming capacity on
    success exactly like the flat ["prim"] policy — so the engine's
    oversubscription invariant, verification watchdog and determinism
    contract all hold unchanged.  Compose with
    {!Qnet_online.Policy.cached} for the usual memoisation.

    {!attach_health} closes the fault loop: it registers a
    {!Qnet_faults.Health.on_transition} observer that eagerly drops the
    oracle's cached segments in the region(s) touched by every element
    transition, so post-fault queries never pay the lazy-revalidation
    walk over known-dead paths. *)

val policy : Oracle.t -> Qnet_online.Policy.t
(** The ["hier-prim"] policy.  The engine must be run over the same
    graph the oracle was built on.  Checkpoint-safe: the oracle's
    segment cache is carried across snapshot/restore through
    {!Skeleton.export}/{!Skeleton.import} (a cold cache would change
    which corridors win and break byte-identical restore).
    @raise Invalid_argument (at route time) if the graphs differ. *)

val attach_health : Oracle.t -> Qnet_faults.Health.t -> unit
(** Eager exclusion-driven invalidation: every [Went_down]/[Came_up]
    transition invalidates the touched region's segment cache. *)
