(** Analytic bipartite capacity ceiling, Vardoyan-style: max-flow over
    per-edge entanglement-generation rates.

    Model each fiber as a pipe carrying Bell pairs at rate
    [exp (−α·L)] (its Eq. (1) generation success per time slot, in
    either direction) and each switch as a station that can swap at
    most [⌊Q/2⌋] simultaneous channels — each contributing at most rate
    1 — so its throughput is capped at [⌊Q/2⌋].  The maximum s–t flow
    of that network upper-bounds the {e aggregate} entanglement rate
    any set of simultaneous channels can deliver between the two users:
    by max-flow/min-cut, every channel family must squeeze through the
    bottleneck cut, and a single channel's Eq. (1) rate is at most the
    smallest edge rate it crosses.  In particular the ceiling dominates
    the best single channel (Algorithm 1) and, minimised over a group's
    user pairs, dominates any group tree's rate — the tree entangles
    every pair at the tree rate.

    This is an {e analytic} ceiling — no routing, no rounding — and
    complements {!Lp}: the LP bound is per-group and structural, the
    flow ceiling is per-pair and physical.  Computed with
    Edmonds–Karp (breadth-first augmenting paths, vertex splitting for
    the switch caps), deterministic by construction. *)

val pair_ceiling :
  ?exclude:Qnet_core.Routing.exclusion ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  src:int ->
  dst:int ->
  float
(** Max-flow value between two users: an upper bound on the aggregate
    entanglement-generation rate between them, [0.] when disconnected.
    @raise Invalid_argument if either endpoint is not a user or
    [src = dst]. *)

val group_ceiling :
  ?exclude:Qnet_core.Routing.exclusion ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  users:int list ->
  float
(** [min] of {!pair_ceiling} over the group's unordered user pairs — an
    upper bound on any entanglement tree's Eq. (2) rate for the group.
    @raise Invalid_argument on fewer than 2 users. *)
