(** LP relaxation of multi-user entanglement routing — the provable
    rate ceiling behind the optimality-gap column.

    The relaxation works over {e user pairs}, not explicit paths.  For
    every unordered pair [(i, j)] of group users, let [w_ij] be the
    negative-log rate of the best channel between them under the given
    capacity view (Algorithm 1).  Any entanglement tree — from any
    solver — consists of [k − 1] channels whose endpoint pairs span the
    group, and each channel for pair [(i, j)] has negative-log rate at
    least [w_ij] (it is some channel; [w_ij] belongs to the best one).
    So the indicator vector of the tree's endpoint pairs is feasible
    for the program

    {v
      minimize    Σ w_ij · x_ij
      subject to  Σ x_ij                    = k − 1
                  Σ_{pairs ∋ u} x_ij        ≥ 1        for every user u
                  0 ≤ x_ij ≤ 1
      (+ capacity rows, below)
    v}

    with objective no larger than the tree's negative-log rate; the LP
    minimum is therefore a {e lower} bound on every achievable tree's
    negative-log rate, i.e. [exp (−LP)] is an {e upper} bound on every
    achievable entanglement rate — including rates achieved by
    Algorithms 2–4, E-Q-CAST and the rounding in {!Rounding}.

    With [capacity_rows] two families of provably valid qubit rows
    tighten the bound for capacity-respecting solvers:

    - {e aggregate}: a channel for pair [(i, j)] crosses at least
      [h_ij] interior switches ([h_ij] = fewest interior switches over
      the capacity-eligible subgraph), each costing 2 qubits, so
      [Σ 2·h_ij·x_ij ≤ Σ_s Q_s];
    - {e per-switch}: when switch [s] is {e unavoidable} for pair
      [(i, j)] (removing [s] disconnects [i] from [j] in the eligible
      subgraph), every channel for the pair pays 2 qubits at [s], so
      [Σ_{(i,j) : s unavoidable} 2·x_ij ≤ Q_s].

    Algorithm 2 is capacity-oblivious, so its gap must be measured
    against the structure-only relaxation ([capacity_rows:false]),
    which drops those rows and dominates {e every} method.

    The solve is deterministic — candidate pairs, constraint rows and
    simplex pivots are all built in fixed index order — so the reported
    bound (and hence the gap column) is bitwise-identical across runs
    and [--jobs] levels. *)

(** One candidate user pair of the relaxation. *)
type pair = {
  u : int;  (** User endpoint, [u < v]. *)
  v : int;  (** User endpoint. *)
  weight : float;
      (** Negative-log rate of the best channel for the pair under the
          capacity view the relaxation was built from. *)
  min_interior : int;
      (** Fewest interior switches on any eligible [u]–[v] path. *)
  unavoidable : int list;
      (** Switches present on {e every} eligible [u]–[v] path,
          ascending.  Empty unless [capacity_rows] was requested. *)
}

type bound = {
  neg_log : float;
      (** Lower bound on every achievable tree's negative-log rate,
          with a deterministic epsilon of slack subtracted so float
          round-off can never push a true optimum above it (the gap
          column stays ≥ 0 without clamping). *)
  rate : float;  (** [exp (−neg_log)] — the entanglement-rate ceiling. *)
  pairs : pair array;  (** Candidate pairs, ascending by [(u, v)]. *)
  x : float array;  (** Optimal fractional solution, aligned with
                        [pairs] — the rounding input. *)
  pivots : int;  (** Simplex pivots spent. *)
}

type result =
  | Bound of bound
  | Disconnected
      (** The group is not connected in the capacity-eligible subgraph:
          no tree exists (and {!Gate} would have rejected it). *)
  | Infeasible
      (** The capacity rows admit no fractional point: no
          capacity-respecting tree exists under this capacity view. *)

val relax :
  ?exclude:Qnet_core.Routing.exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  ?capacity:Qnet_core.Capacity.t ->
  ?capacity_rows:bool ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  users:int list ->
  result
(** Build and solve the relaxation for the given user group.
    [capacity] defaults to a fresh full-budget view of the graph (the
    bound for offline solve reports); pass the live residual state to
    relax on the online serving path.  [capacity_rows] (default [true])
    adds the qubit rows; disable for the structure-only bound that also
    dominates capacity-oblivious Algorithm 2.  [exclude] and [budget]
    thread through to the underlying channel searches ([budget] may
    raise {!Qnet_overload.Budget.Exhausted}; nothing is consumed from
    [capacity] either way).
    @raise Invalid_argument on fewer than 2 users, repeated users, or a
    non-user vertex. *)
