(** The flow optimizer on the online serving path.

    [policy ()] is the ["flow"] {!Qnet_online.Policy.t}: per request it
    builds the LP relaxation over the {e live residual} capacity
    ({!Lp.relax} with capacity rows), rounds the fractional optimum to
    an integral tree ({!Rounding.round}, seeded deterministically from
    the user group so equal requests round equally at every [--jobs]
    level), and falls back to Algorithm 4
    ({!Qnet_core.Multi_group.prim_for_users}) when rounding cannot
    realise a tree — so the policy never serves less than the prim
    baseline would, and never serves anything infeasible (both paths
    respect the Policy contract: consumption only on success, budget
    exhaustion rolled back). *)

val policy : ?seed:int -> unit -> Qnet_online.Policy.t
(** A fresh ["flow"] policy.  [seed] (default a fixed constant) is
    mixed with each request's user group to seed the rounding draw. *)

val register : unit -> unit
(** Make ["flow"] (and ["cached-flow"]) resolvable through
    {!Qnet_online.Policy.of_name} / [all].  Idempotent; the CLI and
    bench call it at startup — library module initialisation alone must
    not be relied on for side effects under dune's selective
    linking. *)
