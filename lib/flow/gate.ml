module Graph = Qnet_graph.Graph
module Tm = Qnet_telemetry.Metrics

let c_checks = Tm.counter "flow.gate.checks"
let c_rejections = Tm.counter "flow.gate.rejections"

(* Connectivity over the capacity-eligible subgraph: group users are
   traversable (a tree may join u1-u2 and u2-u3, linking u1 to u3
   through an endpoint), foreign users are not, and switches relay only
   with >= 2 qubits. *)
let infeasible g ~users =
  match List.sort_uniq compare users with
  | [] | [ _ ] -> false
  | (u0 :: _) as group ->
      if List.exists (fun u -> not (Graph.is_user g u)) group then true
      else begin
        let in_group = Hashtbl.create 8 in
        List.iter (fun u -> Hashtbl.replace in_group u ()) group;
        let seen = Array.make (Graph.vertex_count g) false in
        let reached = ref 0 in
        let q = Queue.create () in
        seen.(u0) <- true;
        incr reached;
        Queue.add u0 q;
        let k = List.length group in
        while !reached < k && not (Queue.is_empty q) do
          let v = Queue.pop q in
          Graph.iter_adjacent g v (fun w _eid ->
              if not seen.(w) then
                if Hashtbl.mem in_group w then begin
                  seen.(w) <- true;
                  incr reached;
                  Queue.add w q
                end
                else if Graph.is_switch g w && Graph.qubits g w >= 2 then begin
                  seen.(w) <- true;
                  Queue.add w q
                end)
        done;
        !reached < k
      end

let predicate g =
  fun users ->
    Tm.Counter.incr c_checks;
    let verdict = infeasible g ~users in
    if verdict then Tm.Counter.incr c_rejections;
    verdict
