module Policy = Qnet_online.Policy
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_fallbacks = Tm.counter "flow.serve.fallbacks"

(* The rounding seed must be a pure function of the request (not of
   arrival order or scheduling), so replay and --jobs determinism hold:
   mix the group into the policy seed with a simple splittable hash. *)
let seed_for base users =
  List.fold_left
    (fun acc u -> (acc * 1_000_003) lxor (u + 0x9E3779B9))
    base
    (List.sort compare users)

let policy ?(seed = 0xf10e5) () =
  {
    Policy.name = "flow";
    (* Stateless: the rounding seed is a pure function of the user
       group, so concurrent speculative solves replay identically —
       and a restored run routes exactly like the original. *)
    concurrent_safe = true;
    checkpoint_safe = true;
    state = None;
    route =
      (fun ~exclude ~budget g params ~capacity ~users ->
        match Lp.relax ~exclude ?budget ~capacity g params ~users with
        | Lp.Disconnected | Lp.Infeasible ->
            (* Sound verdicts: no capacity-respecting tree exists under
               this residual state, so no fallback could serve it
               either. *)
            None
        | Lp.Bound bound -> (
            match
              Rounding.round ~seed:(seed_for seed users) ~exclude ?budget g
                params ~capacity ~users ~bound
            with
            | Some tree -> Some tree
            | None ->
                Tm.Counter.incr c_fallbacks;
                Multi_group.prim_for_users ~exclude ?budget g params ~capacity
                  ~users));
  }

let register () = Policy.register "flow" (fun () -> policy ())
