(** Seeded randomized rounding: fractional LP solution → integral
    entanglement tree.

    The LP's [x] values say how strongly each user pair wants a direct
    channel; rounding turns them into a spanning tree with the classic
    exponential-clock scheme: pair [i] draws key
    [−ln U / max x_i ε] (smaller key = earlier), and Kruskal's scan in
    key order keeps the first [k − 1] pairs that join new components.
    High-[x] pairs get stochastically smaller keys, so the tree
    concentrates on the LP's support while the perturbation breaks
    ties — and the whole draw is a pure function of [seed], so equal
    seeds give equal trees on every run and [--jobs] level.

    Each selected pair is then routed with Algorithm 1 under the live
    residual capacity and consumed {e channel by channel}; a pair that
    cannot be routed rolls the whole attempt back (capacity exactly as
    found) and returns [None] — the caller falls back to a heuristic,
    so rounding never serves anything the existing solvers could not.
    The assembled tree is re-validated with {!Qnet_core.Verify} before
    it is returned: a rounding result is always a checked, feasible
    tree. *)

val round :
  ?seed:int ->
  ?exclude:Qnet_core.Routing.exclusion ->
  ?budget:Qnet_overload.Budget.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  capacity:Qnet_core.Capacity.t ->
  users:int list ->
  bound:Lp.bound ->
  Qnet_core.Ent_tree.t option
(** Extract an integral tree for [users] from [bound] (a {!Lp.relax}
    result for the same group).  On success the tree's qubits have been
    consumed from [capacity]; on [None] (or a
    {!Qnet_overload.Budget.Exhausted} escape) the capacity state is
    exactly as the call found it.  Counters:
    [flow.rounding.{trees,failures,verify_rejects}]. *)
