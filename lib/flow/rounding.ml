module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_trees = Tm.counter "flow.rounding.trees"
let c_failures = Tm.counter "flow.rounding.failures"
let c_verify_rejects = Tm.counter "flow.rounding.verify_rejects"

exception Unroutable

let round ?(seed = 0) ?(exclude = Routing.no_exclusion) ?budget g params
    ~capacity ~users ~bound =
  let users = List.sort_uniq compare users in
  let k = List.length users in
  let pairs = bound.Lp.pairs in
  let n = Array.length pairs in
  let rng = Prng.create seed in
  (* Exponential clocks, drawn in pair-index order (the draw order is
     part of the determinism contract — never Array.init, whose
     evaluation order is unspecified). *)
  let keys = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let u01 = 1.0 -. Prng.float rng 1.0 in
    (* (0, 1] *)
    let xi = Float.max bound.Lp.x.(i) 1e-9 in
    keys.(i) <- -.log u01 /. xi
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare keys.(a) keys.(b) in
      if c <> 0 then c else compare a b)
    order;
  (* Kruskal over the users: first k - 1 component-joining pairs win. *)
  let index_of = Hashtbl.create 8 in
  List.iteri (fun i u -> Hashtbl.replace index_of u i) users;
  let uf = Qnet_graph.Union_find.create k in
  let chosen = ref [] in
  Array.iter
    (fun i ->
      if List.length !chosen < k - 1 then begin
        let p = pairs.(i) in
        let a = Hashtbl.find index_of p.Lp.u
        and b = Hashtbl.find index_of p.Lp.v in
        if Qnet_graph.Union_find.union uf a b then
          chosen := (p.Lp.u, p.Lp.v) :: !chosen
      end)
    order;
  let chosen = List.rev !chosen in
  if List.length chosen < k - 1 then begin
    Tm.Counter.incr c_failures;
    None
  end
  else begin
    (* Route each selected pair under the live residual state, consuming
       as we go so later pairs see what earlier ones took.  Any failure
       refunds everything. *)
    let consumed = ref [] in
    let rollback () =
      List.iter (fun path -> Capacity.release_channel capacity path) !consumed
    in
    match
      List.map
        (fun (u, v) ->
          match
            Routing.best_channel ~exclude ?budget g params ~capacity ~src:u
              ~dst:v
          with
          | None -> raise Unroutable
          | Some ch ->
              Capacity.consume_channel capacity ch.Channel.path;
              consumed := ch.Channel.path :: !consumed;
              ch)
        chosen
    with
    | channels -> (
        let tree = Ent_tree.of_channels channels in
        match Verify.check g params ~users tree with
        | [] ->
            Tm.Counter.incr c_trees;
            Some tree
        | _violations ->
            (* Would indicate a rounding bug; refuse the tree rather
               than serve something invalid, and let the caller fall
               back. *)
            Tm.Counter.incr c_verify_rejects;
            rollback ();
            None)
    | exception Unroutable ->
        Tm.Counter.incr c_failures;
        rollback ();
        None
    | exception Qnet_overload.Budget.Exhausted { fuel } ->
        rollback ();
        raise (Qnet_overload.Budget.Exhausted { fuel })
  end
