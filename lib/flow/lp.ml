module Graph = Qnet_graph.Graph
module Simplex = Qnet_util.Simplex
module Tm = Qnet_telemetry.Metrics
open Qnet_core

let c_solves = Tm.counter "flow.lp.solves"
let c_pivots = Tm.counter "flow.lp.pivots"
let c_infeasible = Tm.counter "flow.lp.infeasible"

type pair = {
  u : int;
  v : int;
  weight : float;
  min_interior : int;
  unavoidable : int list;
}

type bound = {
  neg_log : float;
  rate : float;
  pairs : pair array;
  x : float array;
  pivots : int;
}

type result = Bound of bound | Disconnected | Infeasible

let validate_users g users =
  (match users with
  | [] | [ _ ] -> invalid_arg "Lp.relax: need at least 2 users"
  | _ -> ());
  List.iter
    (fun u ->
      if not (Graph.is_user g u) then
        invalid_arg "Lp.relax: group member is not a user")
    users;
  let sorted = List.sort_uniq compare users in
  if List.length sorted <> List.length users then
    invalid_arg "Lp.relax: repeated user in group";
  sorted

(* Breadth-first search over the capacity-eligible subgraph: interior
   vertices must be relay-capable switches passing the exclusion;
   [avoid] drops one extra switch (the unavoidability probe).  Returns
   the hop-minimal vertex path [src; …; dst], or [None]. *)
let eligible_path g capacity exclude ?avoid ~src ~dst () =
  let n = Graph.vertex_count g in
  let prev = Array.make n (-2) in
  (* -2 = unvisited, -1 = source *)
  prev.(src) <- -1;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_adjacent g v (fun w eid ->
        if
          (not !found)
          && prev.(w) = -2
          && exclude.Routing.edge_ok eid
          && avoid <> Some w
        then
          if w = dst then begin
            prev.(w) <- v;
            found := true
          end
          else if
            Graph.is_switch g w
            && Capacity.can_relay capacity w
            && exclude.Routing.vertex_ok w
          then begin
            prev.(w) <- v;
            Queue.add w q
          end)
  done;
  if not !found then None
  else begin
    let rec walk v acc =
      if v = src then src :: acc else walk prev.(v) (v :: acc)
    in
    Some (walk dst [])
  end

(* Switches that appear on every eligible src-dst path.  A switch can
   only be unavoidable if it lies on the hop-minimal path, so only its
   interior is probed: drop each switch in turn and re-run the BFS. *)
let unavoidable_switches g capacity exclude ~src ~dst =
  match eligible_path g capacity exclude ~src ~dst () with
  | None -> (0, [])
  | Some path ->
      let interior =
        match path with
        | [] | [ _ ] -> []
        | _ :: rest -> List.filteri (fun i _ -> i < List.length rest - 1) rest
      in
      let blocking =
        List.filter
          (fun s ->
            eligible_path g capacity exclude ~avoid:s ~src ~dst () = None)
          interior
      in
      (List.length interior, List.sort compare blocking)

let relax ?(exclude = Routing.no_exclusion) ?budget ?capacity
    ?(capacity_rows = true) g params ~users =
  let users = validate_users g users in
  let capacity =
    match capacity with Some c -> c | None -> Capacity.of_graph g
  in
  let k = List.length users in
  let in_group = Hashtbl.create 8 in
  List.iter (fun u -> Hashtbl.replace in_group u ()) users;
  (* Candidate pairs: one Dijkstra sweep per user covers every pair
     once ([v > u] keeps each unordered pair at its smaller endpoint),
     in ascending (u, v) order by construction. *)
  let pairs =
    List.concat_map
      (fun u ->
        Routing.best_channels_from ~exclude ?budget g params ~capacity ~src:u
        |> List.filter_map (fun (v, (ch : Channel.t)) ->
               if v > u && Hashtbl.mem in_group v then
                 let weight = Qnet_util.Logprob.to_neg_log ch.Channel.rate in
                 let min_interior, unavoidable =
                   if capacity_rows then
                     unavoidable_switches g capacity exclude ~src:u ~dst:v
                   else (0, [])
                 in
                 Some { u; v; weight; min_interior; unavoidable }
               else None))
      users
    |> Array.of_list
  in
  let n = Array.length pairs in
  (* No tree can exist unless the candidate pairs connect the group. *)
  let uf = Qnet_graph.Union_find.create (Graph.vertex_count g) in
  Array.iter (fun p -> ignore (Qnet_graph.Union_find.union uf p.u p.v)) pairs;
  if not (Qnet_graph.Union_find.all_same uf users) then Disconnected
  else begin
    let constraints = ref [] in
    let add c = constraints := c :: !constraints in
    (* Upper bounds first so the final list starts with the structural
       rows (the list is reversed below; order only affects pivoting,
       and must merely be deterministic). *)
    for i = n - 1 downto 0 do
      add { Simplex.coeffs = [ (i, 1.0) ]; sense = Simplex.Le; rhs = 1.0 }
    done;
    if capacity_rows then begin
      (* Per-switch rows for unavoidable switches, ascending switch id. *)
      let per_switch = Hashtbl.create 8 in
      Array.iteri
        (fun i p ->
          List.iter
            (fun s ->
              let prior =
                Option.value ~default:[] (Hashtbl.find_opt per_switch s)
              in
              Hashtbl.replace per_switch s (i :: prior))
            p.unavoidable)
        pairs;
      let switch_rows =
        Hashtbl.fold (fun s is acc -> (s, is) :: acc) per_switch []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (s, is) ->
          let remaining = Capacity.remaining capacity s in
          if remaining < max_int then
            add
              {
                Simplex.coeffs = List.rev_map (fun i -> (i, 2.0)) is;
                sense = Simplex.Le;
                rhs = float_of_int remaining;
              })
        switch_rows;
      (* Aggregate row: every pair pays 2 qubits per interior switch,
         and has at least [min_interior] of them. *)
      let total_budget =
        List.fold_left
          (fun acc s -> acc + Capacity.remaining capacity s)
          0 (Graph.switches g)
      in
      let hop_coeffs =
        Array.to_list
          (Array.mapi
             (fun i p -> (i, 2.0 *. float_of_int p.min_interior))
             pairs)
        |> List.filter (fun (_, c) -> c > 0.)
      in
      if hop_coeffs <> [] then
        add
          {
            Simplex.coeffs = hop_coeffs;
            sense = Simplex.Le;
            rhs = float_of_int total_budget;
          }
    end;
    (* Coverage: every user meets at least one tree channel. *)
    List.iter
      (fun u ->
        let coeffs = ref [] in
        Array.iteri
          (fun i p -> if p.u = u || p.v = u then coeffs := (i, 1.0) :: !coeffs)
          pairs;
        add { Simplex.coeffs = !coeffs; sense = Simplex.Ge; rhs = 1.0 })
      (List.rev users);
    (* A tree over k users has exactly k - 1 channels. *)
    add
      {
        Simplex.coeffs = List.init n (fun i -> (i, 1.0));
        sense = Simplex.Eq;
        rhs = float_of_int (k - 1);
      };
    let problem =
      {
        Simplex.n_vars = n;
        objective = Array.map (fun p -> p.weight) pairs;
        constraints = !constraints;
      }
    in
    Tm.Counter.incr c_solves;
    match Simplex.minimize problem with
    | Simplex.Infeasible ->
        Tm.Counter.incr c_infeasible;
        Infeasible
    | Simplex.Unbounded ->
        (* Impossible: weights are >= 0 and x is boxed into [0,1]. *)
        assert false
    | Simplex.Optimal { objective_value; x; pivots } ->
        Tm.Counter.add c_pivots pivots;
        (* Deterministic slack: the simplex optimum and a heuristic's
           independently summed neg-log can disagree in the last few
           ulps; pulling the bound down by a relative epsilon keeps
           gap >= 0 honest (no clamping downstream). *)
        let slack = 1e-9 *. (1.0 +. Float.abs objective_value) in
        let neg_log = Float.max 0.0 (objective_value -. slack) in
        Bound { neg_log; rate = exp (-.neg_log); pairs; x; pivots }
  end
