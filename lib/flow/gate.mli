(** Provable-infeasibility admission gate.

    A group can only be entangled if its users all sit in one connected
    component of the {e capacity-eligible} subgraph — fibers, group
    users, and switches holding at least 2 qubits (a switch with fewer
    can never relay a channel, Definition 3).  That condition depends
    only on the static topology, so it can be checked in O(V + E)
    before any search, LP, or qubit is spent: the overload layer's
    admission control uses it to reject provably-unservable groups at
    arrival instead of burning solver fuel discovering the same answer.

    The gate is {e sound, not complete}: [true] means no solver could
    ever serve the group (rejection is free); [false] promises
    nothing — residual capacity may still defeat every solver. *)

val infeasible : Qnet_graph.Graph.t -> users:int list -> bool
(** Whether the group is provably unservable on this graph (users not
    all connected in the capacity-eligible subgraph).  Groups of fewer
    than 2 users are vacuously servable. *)

val predicate : Qnet_graph.Graph.t -> int list -> bool
(** {!infeasible} packaged for
    {!Qnet_overload.Admission.make}'s [?infeasible] hook, with
    [flow.gate.{checks,rejections}] counters on every call. *)
