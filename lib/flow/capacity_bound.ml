module Graph = Qnet_graph.Graph
open Qnet_core

(* Edmonds-Karp on a split-vertex network.  Vertex v becomes
   v_in = 2v and v_out = 2v + 1, joined by an arc whose capacity is the
   vertex throughput cap; each undirected fiber contributes a directed
   arc out->in both ways.  Arcs are built in (vertex, then edge) index
   order and BFS scans adjacency in insertion order, so the augmenting
   sequence — and the float result — is deterministic. *)

let eps = 1e-12
let user_cap = 1e15 (* effectively unlimited, but finite arithmetic *)

type arc = { dst : int; mutable residual : float }

let max_flow n_nodes arcs ~s ~t =
  let adj = Array.make n_nodes [] in
  (* [arcs] holds (from, arc, reverse arc); adjacency keeps (arc, rev). *)
  List.iter
    (fun (src, a, rev) ->
      adj.(src) <- (a, rev) :: adj.(src);
      adj.(a.dst) <- (rev, a) :: adj.(a.dst))
    arcs;
  let adj = Array.map (fun l -> Array.of_list (List.rev l)) adj in
  let prev = Array.make n_nodes None in
  let total = ref 0.0 in
  let continue_ = ref true in
  while !continue_ do
    Array.fill prev 0 n_nodes None;
    let q = Queue.create () in
    Queue.add s q;
    let reached = ref false in
    while (not !reached) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun (a, rev) ->
          if (not !reached) && a.residual > eps && prev.(a.dst) = None
             && a.dst <> s
          then begin
            prev.(a.dst) <- Some (a, rev);
            if a.dst = t then reached := true else Queue.add a.dst q
          end)
        adj.(v)
    done;
    if not !reached then continue_ := false
    else begin
      (* Bottleneck along the recorded path, then augment.  The reverse
         arc's [dst] is the forward arc's tail, which is how the walk
         steps backwards. *)
      let rec walk v acc =
        match prev.(v) with
        | None -> acc
        | Some (arc, rev) -> walk rev.dst (Float.min acc arc.residual)
      in
      let delta = walk t infinity in
      let rec push v =
        match prev.(v) with
        | None -> ()
        | Some (arc, rev) ->
            arc.residual <- arc.residual -. delta;
            rev.residual <- rev.residual +. delta;
            push rev.dst
      in
      if delta > eps then begin
        push t;
        total := !total +. delta
      end
      else continue_ := false
    end
  done;
  !total

let build_network ?(exclude = Routing.no_exclusion) g params =
  let n = Graph.vertex_count g in
  let arcs = ref [] in
  let add src dst cap =
    let a = { dst; residual = cap } in
    let rev = { dst = src; residual = 0.0 } in
    arcs := (src, a, rev) :: !arcs
  in
  for v = 0 to n - 1 do
    if exclude.Routing.vertex_ok v then
      let cap =
        if Graph.is_user g v then user_cap
        else float_of_int (Graph.qubits g v / 2)
      in
      if cap > 0.0 then add ((2 * v) + 0) ((2 * v) + 1) cap
  done;
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () (e : Graph.edge) ->
         if
           exclude.Routing.edge_ok e.Graph.eid
           && exclude.Routing.vertex_ok e.Graph.a
           && exclude.Routing.vertex_ok e.Graph.b
         then begin
           let rate = Params.link_success params e.Graph.length in
           add ((2 * e.Graph.a) + 1) (2 * e.Graph.b) rate;
           add ((2 * e.Graph.b) + 1) (2 * e.Graph.a) rate
         end));
  (2 * n, List.rev !arcs)

let pair_ceiling ?exclude g params ~src ~dst =
  if not (Graph.is_user g src && Graph.is_user g dst) then
    invalid_arg "Capacity_bound.pair_ceiling: endpoints must be users";
  if src = dst then
    invalid_arg "Capacity_bound.pair_ceiling: src = dst";
  let n_nodes, arcs = build_network ?exclude g params in
  max_flow n_nodes arcs ~s:((2 * src) + 1) ~t:(2 * dst)

let group_ceiling ?exclude g params ~users =
  let users = List.sort_uniq compare users in
  match users with
  | [] | [ _ ] -> invalid_arg "Capacity_bound.group_ceiling: need 2+ users"
  | _ ->
      let rec pairs = function
        | [] -> []
        | u :: rest -> List.map (fun v -> (u, v)) rest @ pairs rest
      in
      List.fold_left
        (fun acc (u, v) ->
          Float.min acc (pair_ceiling ?exclude g params ~src:u ~dst:v))
        infinity (pairs users)
