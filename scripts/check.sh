#!/bin/sh
# Full local check: build, run the test suite, then smoke the bench
# snapshot (2 replications keep it fast) and verify the JSON artifact
# appears.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== traffic smoke =="
# A small fixed-seed workload must serve something, and two identical
# invocations must print byte-identical SLA summaries.
run_a=$(mktemp -t muerp_traffic_a.XXXXXX)
run_b=$(mktemp -t muerp_traffic_b.XXXXXX)
trap 'rm -f "$run_a" "$run_b"' EXIT
dune exec bin/muerp_cli.exe -- traffic --seed 42 -n 40 --switches 40 >"$run_a"
dune exec bin/muerp_cli.exe -- traffic --seed 42 -n 40 --switches 40 >"$run_b"
cmp "$run_a" "$run_b" || { echo "traffic run not reproducible" >&2; exit 1; }
served=$(awk '$2 == "served" { print $4 }' "$run_a")
[ -n "$served" ] && [ "$served" -gt 0 ] ||
  { echo "traffic smoke served nothing (served=$served)" >&2; exit 1; }
echo "traffic reproducible, served=$served"

echo "== chaos smoke =="
# Fault injection must be just as reproducible: the same seeded chaos
# run twice, and at --jobs 1 vs --jobs 2, must print byte-identical
# reports — and must actually interrupt some leases.
chaos_a=$(mktemp -t muerp_chaos_a.XXXXXX)
chaos_b=$(mktemp -t muerp_chaos_b.XXXXXX)
chaos_j2=$(mktemp -t muerp_chaos_j2.XXXXXX)
trap 'rm -f "$run_a" "$run_b" "$chaos_a" "$chaos_b" "$chaos_j2"' EXIT
chaos_flags="--seed 42 -n 40 --switches 40 --fault-mtbf 15 --fault-mttr 4 --recovery repair"
dune exec bin/muerp_cli.exe -- traffic $chaos_flags --jobs 1 >"$chaos_a"
dune exec bin/muerp_cli.exe -- traffic $chaos_flags --jobs 1 >"$chaos_b"
cmp "$chaos_a" "$chaos_b" ||
  { echo "chaos run not reproducible" >&2; exit 1; }
dune exec bin/muerp_cli.exe -- traffic $chaos_flags --jobs 2 >"$chaos_j2"
cmp "$chaos_a" "$chaos_j2" ||
  { echo "chaos run differs between --jobs 1 and --jobs 2" >&2; exit 1; }
faults=$(awk '$2 == "faults_injected" { print $4 }' "$chaos_a")
[ -n "$faults" ] && [ "$faults" -gt 0 ] ||
  { echo "chaos smoke injected no faults (faults=$faults)" >&2; exit 1; }
echo "chaos reproducible at --jobs 1 and 2, faults_injected=$faults"

echo "== overload smoke =="
# A seeded burst far above capacity, served under admission limits and
# a tiered degradation policy, must (a) print byte-identical reports
# twice and at --jobs 1 vs --jobs 2, (b) actually shed and degrade.
over_a=$(mktemp -t muerp_over_a.XXXXXX)
over_b=$(mktemp -t muerp_over_b.XXXXXX)
over_j2=$(mktemp -t muerp_over_j2.XXXXXX)
trap 'rm -f "$run_a" "$run_b" "$over_a" "$over_b" "$over_j2"' EXIT
over_flags="--seed 7 -n 120 --switches 60 --users 12 \
  --arrival pareto:1.5:0.05:2 --group pareto:1.2:2:6 \
  --max-queue 8 --rate 3 --budget 40 --tiers alg3,prim"
dune exec bin/muerp_cli.exe -- traffic $over_flags --jobs 1 >"$over_a"
dune exec bin/muerp_cli.exe -- traffic $over_flags --jobs 1 >"$over_b"
cmp "$over_a" "$over_b" ||
  { echo "overload run not reproducible" >&2; exit 1; }
dune exec bin/muerp_cli.exe -- traffic $over_flags --jobs 2 >"$over_j2"
cmp "$over_a" "$over_j2" ||
  { echo "overload run differs between --jobs 1 and --jobs 2" >&2; exit 1; }
shed=$(awk '$2 == "shed" { print $4 }' "$over_a")
degraded=$(awk '$2 == "degraded" { print $4 }' "$over_a")
[ -n "$shed" ] && [ "$shed" -gt 0 ] ||
  { echo "overload smoke shed nothing (shed=$shed)" >&2; exit 1; }
[ -n "$degraded" ] && [ "$degraded" -gt 0 ] ||
  { echo "overload smoke never degraded (degraded=$degraded)" >&2; exit 1; }
echo "overload reproducible at --jobs 1 and 2, shed=$shed degraded=$degraded"

echo "== batched serving smoke =="
# The sharded serving engine: synchronised arrival batches solved
# concurrently against capacity snapshots must print byte-identical
# reports twice at --jobs 4, and --jobs 1 vs --jobs 4 --slot 2 must
# match the serial baseline exactly (snapshot/solve/commit contract).
batch_j1=$(mktemp -t muerp_batch_j1.XXXXXX)
batch_j4a=$(mktemp -t muerp_batch_j4a.XXXXXX)
batch_j4b=$(mktemp -t muerp_batch_j4b.XXXXXX)
batch_slot=$(mktemp -t muerp_batch_slot.XXXXXX)
trap 'rm -f "$run_a" "$run_b" "$batch_j1" "$batch_j4a" "$batch_j4b" \
  "$batch_slot"' EXIT
batch_flags="--seed 11 -n 80 --switches 50 --batch 8 --batch-period 1.5"
dune exec bin/muerp_cli.exe -- traffic $batch_flags --jobs 1 >"$batch_j1"
dune exec bin/muerp_cli.exe -- traffic $batch_flags --jobs 4 >"$batch_j4a"
dune exec bin/muerp_cli.exe -- traffic $batch_flags --jobs 4 >"$batch_j4b"
cmp "$batch_j4a" "$batch_j4b" ||
  { echo "batched serving run not reproducible at --jobs 4" >&2; exit 1; }
cmp "$batch_j1" "$batch_j4a" ||
  { echo "batched serving differs between --jobs 1 and --jobs 4" >&2
    exit 1; }
dune exec bin/muerp_cli.exe -- traffic $batch_flags --jobs 4 --slot 2 \
  >"$batch_slot"
cmp "$batch_j1" "$batch_slot" ||
  { echo "batched serving differs with --slot 2" >&2; exit 1; }
batch_served=$(awk '$2 == "served" { print $4 }' "$batch_j1")
[ -n "$batch_served" ] && [ "$batch_served" -gt 0 ] ||
  { echo "batched serving served nothing (served=$batch_served)" >&2
    exit 1; }
echo "batched serving identical at --jobs 1/4 and --slot 2, served=$batch_served"

echo "== crash-recovery smoke =="
# Kill a faulty run at a checkpoint, restore it (at a different --jobs
# level), and demand the restored report be byte-identical to the
# uninterrupted run's.  Corrupting the checkpoint must produce a
# friendly error with exit code 2, and the in-process drill must pass.
ckpt=$(mktemp -t muerp_ckpt.XXXXXX)
rec_full=$(mktemp -t muerp_rec_full.XXXXXX)
rec_rest=$(mktemp -t muerp_rec_rest.XXXXXX)
rec_err=$(mktemp -t muerp_rec_err.XXXXXX)
reconf=$(mktemp -t muerp_reconf.XXXXXX)
trap 'rm -f "$run_a" "$run_b" "$ckpt" "$rec_full" "$rec_rest" "$rec_err" \
  "$reconf"' EXIT
rec_flags="--seed 13 -n 60 --switches 40 --fault-mtbf 20 --fault-mttr 5 \
  --max-queue 12 --rate 1.5"
dune exec bin/muerp_cli.exe -- traffic $rec_flags >"$rec_full"
dune exec bin/muerp_cli.exe -- traffic $rec_flags --checkpoint-every 5 \
  --checkpoint "$ckpt" --halt-at 25 >/dev/null
dune exec bin/muerp_cli.exe -- traffic $rec_flags --restore "$ckpt" \
  --jobs 2 >"$rec_rest"
grep '^|' "$rec_full" >"$rec_full.tbl"
grep '^|' "$rec_rest" >"$rec_rest.tbl"
cmp "$rec_full.tbl" "$rec_rest.tbl" ||
  { echo "restored report differs from the uninterrupted run" >&2; exit 1; }
rm -f "$rec_full.tbl" "$rec_rest.tbl"
# Corrupt the checkpoint: the CLI must name the file and exit 2.
printf 'garbage' >>"$ckpt"
status=0
dune exec bin/muerp_cli.exe -- traffic $rec_flags --restore "$ckpt" \
  >/dev/null 2>"$rec_err" || status=$?
[ "$status" -eq 2 ] ||
  { echo "corrupt checkpoint exited $status, want 2" >&2; exit 1; }
grep -q "checkpoint" "$rec_err" ||
  { echo "corrupt-checkpoint error does not name the file" >&2; exit 1; }
# Live reconfiguration: drain a switch mid-run, grow another, rejoin.
cat >"$reconf" <<'EOF'
(muerp-reconfig/1
  (at 10 (switch-leave 20))
  (at 18 (provision 25 8))
  (at 30 (switch-join 20)))
EOF
dune exec bin/muerp_cli.exe -- traffic $rec_flags --reconfig "$reconf" \
  >"$rec_rest"
grep -q "reconfig_applied" "$rec_rest" ||
  { echo "reconfig run reported no reconfig_applied row" >&2; exit 1; }
# The in-process drill restores at every checkpoint instant and diffs.
dune exec bin/muerp_cli.exe -- traffic $rec_flags --reconfig "$reconf" \
  --drill 12 | grep -q "drill passed" ||
  { echo "crash-recovery drill failed" >&2; exit 1; }
echo "crash-recovery: restore byte-identical, corrupt file exits 2, drill passed"

echo "== incremental-chain crash smoke =="
# Incremental mode: the same faulty run cut as a base + delta chain
# with a write-ahead journal, halted mid-run and recovered through the
# chain, must reproduce the uninterrupted report byte-for-byte.
# Poisoning a middle delta must degrade gracefully — a warning, an
# earlier restore point, and STILL the identical final report (the
# determinism contract).  Poisoning the base must exit 2 naming the
# file.  The in-process chain drill crashes into every capture.
chain_dir=$(mktemp -d -t muerp_chain.XXXXXX)
chain="$chain_dir/chain.ckpt"
chain_rest=$(mktemp -t muerp_chain_rest.XXXXXX)
chain_warn=$(mktemp -t muerp_chain_warn.XXXXXX)
trap 'rm -rf "$run_a" "$run_b" "$chain_dir" "$chain_rest" "$chain_warn"' EXIT
incr_flags="--checkpoint-mode incr:4 --journal $chain.journal"
dune exec bin/muerp_cli.exe -- traffic $rec_flags --checkpoint-every 3 \
  --checkpoint "$chain" $incr_flags --halt-at 25 >/dev/null
ls "$chain".d* >/dev/null 2>&1 ||
  { echo "incremental run wrote no delta files" >&2; exit 1; }
dune exec bin/muerp_cli.exe -- traffic $rec_flags --restore "$chain" \
  $incr_flags --jobs 2 >"$chain_rest"
grep '^|' "$rec_full" >"$rec_full.tbl"
grep '^|' "$chain_rest" >"$chain_rest.tbl"
cmp "$rec_full.tbl" "$chain_rest.tbl" ||
  { echo "chain-restored report differs from the uninterrupted run" >&2
    exit 1; }
# Zero one byte mid-delta: the chain walk must skip the poisoned
# suffix with a warning and the completion must still be identical.
dd if=/dev/zero of="$chain.d1" bs=1 seek=40 count=1 conv=notrunc 2>/dev/null
dune exec bin/muerp_cli.exe -- traffic $rec_flags --restore "$chain" \
  $incr_flags >"$chain_rest" 2>"$chain_warn"
grep -q "warning:" "$chain_warn" ||
  { echo "poisoned delta produced no recovery warning" >&2; exit 1; }
grep '^|' "$chain_rest" >"$chain_rest.tbl"
cmp "$rec_full.tbl" "$chain_rest.tbl" ||
  { echo "degraded chain restore diverged from the uninterrupted run" >&2
    exit 1; }
rm -f "$rec_full.tbl" "$chain_rest.tbl"
# Poison the base: no valid restore point remains — exit 2, name the file.
printf 'garbage' >>"$chain"
status=0
dune exec bin/muerp_cli.exe -- traffic $rec_flags --restore "$chain" \
  $incr_flags >/dev/null 2>"$chain_warn" || status=$?
[ "$status" -eq 2 ] ||
  { echo "corrupt chain base exited $status, want 2" >&2; exit 1; }
grep -q "chain.ckpt" "$chain_warn" ||
  { echo "corrupt-base error does not name the file" >&2; exit 1; }
# The in-process chain drill: crash into every capture, verify replay.
dune exec bin/muerp_cli.exe -- traffic $rec_flags --drill 6 \
  --checkpoint-mode incr:3 | grep -q "chain drill passed" ||
  { echo "incremental-chain drill failed" >&2; exit 1; }
echo "incremental chain: restore identical, poison degrades, base exits 2"

echo "== SLA gate smoke =="
# --fail-on-sla must exit nonzero when acceptance lands below the bar
# and zero when it clears it.
if dune exec bin/muerp_cli.exe -- traffic $over_flags --fail-on-sla 99 \
  >/dev/null 2>&1; then
  echo "--fail-on-sla 99 should have failed an overloaded run" >&2
  exit 1
fi
dune exec bin/muerp_cli.exe -- traffic --seed 42 -n 40 --switches 40 \
  --fail-on-sla 50 >/dev/null ||
  { echo "--fail-on-sla 50 failed a healthy run" >&2; exit 1; }
echo "SLA gate trips under overload, passes when healthy"

echo "== hier smoke =="
# Hierarchical routing on a continent topology must be reproducible
# (twice, and at --jobs 1 vs --jobs 2) and must actually serve.
hier_a=$(mktemp -t muerp_hier_a.XXXXXX)
hier_b=$(mktemp -t muerp_hier_b.XXXXXX)
hier_j2=$(mktemp -t muerp_hier_j2.XXXXXX)
trap 'rm -f "$run_a" "$run_b" "$hier_a" "$hier_b" "$hier_j2"' EXIT
hier_flags="--topology continent --regions 4 --switches 120 --users 12 \
  --hier --seed 42 -n 40"
dune exec bin/muerp_cli.exe -- traffic $hier_flags --jobs 1 >"$hier_a"
dune exec bin/muerp_cli.exe -- traffic $hier_flags --jobs 1 >"$hier_b"
cmp "$hier_a" "$hier_b" ||
  { echo "hier traffic run not reproducible" >&2; exit 1; }
dune exec bin/muerp_cli.exe -- traffic $hier_flags --jobs 2 >"$hier_j2"
cmp "$hier_a" "$hier_j2" ||
  { echo "hier traffic run differs between --jobs 1 and --jobs 2" >&2; exit 1; }
hier_served=$(awk '$2 == "served" { print $4 }' "$hier_a")
[ -n "$hier_served" ] && [ "$hier_served" -gt 0 ] ||
  { echo "hier smoke served nothing (served=$hier_served)" >&2; exit 1; }
# The one-shot solver must also route through the hierarchy.
dune exec bin/muerp_cli.exe -- solve --topology continent --regions 4 \
  --switches 120 --users 12 --hier --seed 42 |
  grep -q "^hier-prim:" ||
  { echo "solve --hier printed no hier-prim tree" >&2; exit 1; }
echo "hier reproducible at --jobs 1 and 2, served=$hier_served"

echo "== flow smoke =="
# The flow optimizer must (a) print byte-identical output twice and at
# --jobs 1 vs --jobs 2, (b) report a non-negative optimality gap for
# its rounded tree (a negative gap is an LP bound-soundness bug).
flow_a=$(mktemp -t muerp_flow_a.XXXXXX)
flow_b=$(mktemp -t muerp_flow_b.XXXXXX)
flow_j2=$(mktemp -t muerp_flow_j2.XXXXXX)
trap 'rm -f "$run_a" "$run_b" "$flow_a" "$flow_b" "$flow_j2"' EXIT
flow_flags="--seed 42 --users 6 --switches 30 --policy flow"
dune exec bin/muerp_cli.exe -- solve $flow_flags --jobs 1 >"$flow_a"
dune exec bin/muerp_cli.exe -- solve $flow_flags --jobs 1 >"$flow_b"
cmp "$flow_a" "$flow_b" || { echo "flow solve not reproducible" >&2; exit 1; }
dune exec bin/muerp_cli.exe -- solve $flow_flags --jobs 2 >"$flow_j2"
cmp "$flow_a" "$flow_j2" ||
  { echo "flow solve differs between --jobs 1 and --jobs 2" >&2; exit 1; }
flow_gap=$(awk '$2 == "flow" { print $8 }' "$flow_a")
[ -n "$flow_gap" ] || { echo "flow solve printed no gap row" >&2; exit 1; }
case "$flow_gap" in
  -*) echo "flow gap is negative ($flow_gap): LP bound violated" >&2
      exit 1 ;;
esac
# The full roster's gap report must carry a row per method, all
# non-negative.
gaps=$(dune exec bin/muerp_cli.exe -- solve --seed 42 --users 6 \
  --switches 30 | awk '$1 == "|" && $8 ~ /^-?[0-9]/ { print $8 }')
[ -n "$gaps" ] || { echo "solve printed no gap table" >&2; exit 1; }
for gap in $gaps; do
  case "$gap" in
    -*) echo "negative optimality gap ($gap): LP bound violated" >&2
        exit 1 ;;
  esac
done
echo "flow reproducible at --jobs 1 and 2, rounding gap=$flow_gap"

echo "== jobs determinism smoke =="
# The same fixed-seed sweep must emit byte-identical CSV tables at
# every --jobs level (the parallel runtime's determinism contract).
sweep_j1=$(mktemp -t muerp_sweep_j1.XXXXXX.csv)
sweep_j4=$(mktemp -t muerp_sweep_j4.XXXXXX.csv)
trap 'rm -f "$run_a" "$run_b" "$sweep_j1" "$sweep_j4"' EXIT
dune exec bin/muerp_cli.exe -- sweep users 4,6 --seed 7 -r 3 --jobs 1 \
  --csv "$sweep_j1" >/dev/null
dune exec bin/muerp_cli.exe -- sweep users 4,6 --seed 7 -r 3 --jobs 4 \
  --csv "$sweep_j4" >/dev/null
cmp "$sweep_j1" "$sweep_j4" ||
  { echo "sweep results differ between --jobs 1 and --jobs 4" >&2; exit 1; }
echo "sweep identical at --jobs 1 and --jobs 4"

echo "== bench snapshot smoke =="
snapshot=$(mktemp -t muerp_snapshot.XXXXXX.json)
trap 'rm -f "$run_a" "$run_b" "$sweep_j1" "$sweep_j4" "$snapshot"' EXIT
MUERP_REPLICATIONS=2 dune exec bench/main.exe -- snapshot "$snapshot"
test -s "$snapshot" || { echo "snapshot produced no output" >&2; exit 1; }
grep -q '"traffic"' "$snapshot" ||
  { echo "snapshot is missing the traffic section" >&2; exit 1; }
grep -q '"parallel"' "$snapshot" ||
  { echo "snapshot is missing the parallel section" >&2; exit 1; }
grep -q '"faults"' "$snapshot" ||
  { echo "snapshot is missing the faults section" >&2; exit 1; }
grep -q '"overload"' "$snapshot" ||
  { echo "snapshot is missing the overload section" >&2; exit 1; }
grep -q '"hier"' "$snapshot" ||
  { echo "snapshot is missing the hier section" >&2; exit 1; }
grep -q '"flow"' "$snapshot" ||
  { echo "snapshot is missing the flow section" >&2; exit 1; }
grep -q '"serving"' "$snapshot" ||
  { echo "snapshot is missing the serving section" >&2; exit 1; }
grep -q '"resilience"' "$snapshot" ||
  { echo "snapshot is missing the resilience section" >&2; exit 1; }
grep -q '"restored_reports_equal": true' "$snapshot" ||
  { echo "resilience bench: a restored run diverged" >&2; exit 1; }
if grep -q '"report_equal": false' "$snapshot"; then
  echo "serving bench: batched report diverged from serial baseline" >&2
  exit 1
fi
grep -q '"estimate_equal": true' "$snapshot" ||
  { echo "parallel bench: estimates differ across jobs levels" >&2; exit 1; }
grep -q '"mean_rates_equal": true' "$snapshot" ||
  { echo "parallel bench: sweep rates differ across jobs levels" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$snapshot" >/dev/null
  echo "snapshot JSON parses"
  echo "== bench regression guard =="
  # The fixed-seed sections (traffic, faults, overload, hier counts and
  # rate ratios — never wall times) must match the committed snapshot.
  python3 scripts/bench_guard.py BENCH_muerp.json "$snapshot" ||
    { echo "bench regression guard failed" >&2; exit 1; }
fi

echo "== all checks passed =="
