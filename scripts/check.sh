#!/bin/sh
# Full local check: build, run the test suite, then smoke the bench
# snapshot (2 replications keep it fast) and verify the JSON artifact
# appears.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== traffic smoke =="
# A small fixed-seed workload must serve something, and two identical
# invocations must print byte-identical SLA summaries.
run_a=$(mktemp -t muerp_traffic_a.XXXXXX)
run_b=$(mktemp -t muerp_traffic_b.XXXXXX)
trap 'rm -f "$run_a" "$run_b"' EXIT
dune exec bin/muerp_cli.exe -- traffic --seed 42 -n 40 --switches 40 >"$run_a"
dune exec bin/muerp_cli.exe -- traffic --seed 42 -n 40 --switches 40 >"$run_b"
cmp "$run_a" "$run_b" || { echo "traffic run not reproducible" >&2; exit 1; }
served=$(awk '$2 == "served" { print $4 }' "$run_a")
[ -n "$served" ] && [ "$served" -gt 0 ] ||
  { echo "traffic smoke served nothing (served=$served)" >&2; exit 1; }
echo "traffic reproducible, served=$served"

echo "== bench snapshot smoke =="
snapshot=$(mktemp -t muerp_snapshot.XXXXXX.json)
trap 'rm -f "$run_a" "$run_b" "$snapshot"' EXIT
MUERP_REPLICATIONS=2 dune exec bench/main.exe -- snapshot "$snapshot"
test -s "$snapshot" || { echo "snapshot produced no output" >&2; exit 1; }
grep -q '"traffic"' "$snapshot" ||
  { echo "snapshot is missing the traffic section" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$snapshot" >/dev/null
  echo "snapshot JSON parses"
fi

echo "== all checks passed =="
