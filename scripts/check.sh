#!/bin/sh
# Full local check: build, run the test suite, then smoke the bench
# snapshot (2 replications keep it fast) and verify the JSON artifact
# appears.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench snapshot smoke =="
snapshot=$(mktemp -t muerp_snapshot.XXXXXX.json)
trap 'rm -f "$snapshot"' EXIT
MUERP_REPLICATIONS=2 dune exec bench/main.exe -- snapshot "$snapshot"
test -s "$snapshot" || { echo "snapshot produced no output" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$snapshot" >/dev/null
  echo "snapshot JSON parses"
fi

echo "== all checks passed =="
