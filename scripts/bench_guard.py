#!/usr/bin/env python3
"""Bench-regression guard: compare a fresh snapshot against the committed
BENCH_muerp.json on the deterministic fixed-seed sections.

Wall-clock fields (wall_*, setup, speedup, recovery timings, per-method
timing histograms) and the replication-count-dependent methods section are
excluded; everything compared here is a function of the fixed seeds alone,
so any drift is a behaviour change, not noise.

Usage: bench_guard.py COMMITTED.json FRESH.json
Exit 0 when every compared field matches, 1 with a diff listing otherwise.
"""

import json
import sys

REL_TOL = 1e-9

# section name -> (key field, compared fields)
SECTIONS = {
    "traffic": (
        "policy",
        [
            "served",
            "rejected",
            "expired",
            "acceptance_ratio",
            "mean_rate",
            "peak_qubits_in_use",
            "retries",
        ],
    ),
    "faults": (
        "mtbf",
        [
            "served",
            "acceptance_ratio",
            "faults_injected",
            "leases_interrupted",
            "leases_recovered",
            "leases_aborted",
        ],
    ),
    "overload": (
        "offered_load",
        [
            "arrived",
            "served",
            "shed",
            "degraded",
            "budget_exhaustions",
            "breaker_opens",
            "acceptance_ratio",
            "peak_queue_depth",
        ],
    ),
    "hier": (
        "switches",
        [
            "regions",
            "pairs",
            "flat_feasible",
            "hier_feasible",
            "mean_rate_ratio",
            "min_rate_ratio",
        ],
    ),
    "flow": (
        "topology",
        [
            "structure_neg_log",
            "bound_neg_log",
            "bound_rate",
            "pivots",
            "gap_alg2",
            "gap_alg3",
            "gap_alg4",
            "gap_eqcast",
            "gap_flow",
            "rounding_neg_log",
            "rounding_verified",
        ],
    ),
    # Sharded serving engine: the served count is a pure function of the
    # fixed seeds and must match at every (batch size, jobs) level —
    # wall_s / served_per_s / speedup are wall-clock and excluded.
    "serving": (
        "config",
        [
            "batch",
            "jobs",
            "served",
            "report_equal",
        ],
    ),
}

GAP_FIELDS = ["gap_alg2", "gap_alg3", "gap_alg4", "gap_eqcast", "gap_flow"]

# Resilience fields that are pure functions of the fixed seeds (wall
# times, the derived overhead percentage, and snapshot_bytes — which
# embeds wall-clock telemetry histograms — are excluded).
RESILIENCE_FIELDS = [
    "requests",
    "checkpoints",
    "checkpointed_report_equal",
    "drill_checkpoints",
    "drill_mismatches",
    "restored_reports_equal",
    "reconfig_events",
    "reconfig_applied",
    "reconfig_recovered",
    "reconfig_served",
    "reconfig_acceptance_ratio",
]

EXPECTED_SCHEMA = "muerp-bench-snapshot/10"


def check_flow_invariants(fresh):
    """Soundness checks on the fresh flow section, independent of the
    committed baseline: every optimality gap must be non-negative (a
    negative gap means a heuristic beat the 'upper bound' — an LP
    soundness bug) and every rounded tree must have verified."""
    problems = []
    for row in fresh.get("flow", []):
        topo = row.get("topology")
        for field in GAP_FIELDS:
            gap = row.get(field)
            if gap is None:
                continue
            if float(gap) < 0.0:
                problems.append(
                    f"flow[{topo}].{field} = {gap}: negative optimality gap "
                    "(LP bound violated)"
                )
        if row.get("rounding_verified") is not True:
            problems.append(
                f"flow[{topo}].rounding_verified = "
                f"{row.get('rounding_verified')!r}: rounded tree failed "
                "independent verification"
            )
    return problems


def check_serving_invariants(fresh):
    """Soundness checks on the fresh serving section, independent of the
    committed baseline: throughput must be positive at every jobs level,
    and every batched run's SLA report must be byte-identical to the
    serial jobs=1 baseline (the determinism contract of the sharded
    serving engine)."""
    problems = []
    for row in fresh.get("serving", {}).get("runs", []):
        config = row.get("config")
        per_s = row.get("served_per_s")
        if per_s is None or float(per_s) <= 0.0:
            problems.append(
                f"serving[{config}].served_per_s = {per_s!r}: "
                "expected a positive throughput"
            )
        if row.get("report_equal") is not True:
            problems.append(
                f"serving[{config}].report_equal = "
                f"{row.get('report_equal')!r}: batched report diverged "
                "from the serial baseline"
            )
    return problems


def check_resilience_invariants(fresh):
    """Soundness checks on the fresh resilience section, independent of
    the committed baseline: checkpointing must not perturb the run,
    every drill restore must reproduce the uninterrupted report, and
    every reconfiguration event must be applied."""
    problems = []
    res = fresh.get("resilience")
    if not isinstance(res, dict):
        return ["resilience: section missing from snapshot"]
    if res.get("checkpoints", 0) <= 0:
        problems.append(
            f"resilience.checkpoints = {res.get('checkpoints')!r}: "
            "the checkpointed run cut no checkpoints"
        )
    if res.get("checkpointed_report_equal") is not True:
        problems.append(
            "resilience.checkpointed_report_equal = "
            f"{res.get('checkpointed_report_equal')!r}: checkpointing "
            "perturbed the run"
        )
    if res.get("restored_reports_equal") is not True:
        problems.append(
            "resilience.restored_reports_equal = "
            f"{res.get('restored_reports_equal')!r}: a restored run "
            "diverged from the uninterrupted baseline"
        )
    if res.get("drill_mismatches", 1) != 0:
        problems.append(
            f"resilience.drill_mismatches = {res.get('drill_mismatches')!r}: "
            "expected 0"
        )
    if res.get("reconfig_applied") != res.get("reconfig_events"):
        problems.append(
            f"resilience.reconfig_applied = {res.get('reconfig_applied')!r} "
            f"!= reconfig_events = {res.get('reconfig_events')!r}"
        )
    if res.get("snapshot_bytes", 0) <= 0:
        problems.append(
            f"resilience.snapshot_bytes = {res.get('snapshot_bytes')!r}: "
            "expected a non-empty serialized snapshot"
        )
    problems.extend(check_incremental_invariants(res))
    return problems


def check_incremental_invariants(res):
    """Soundness checks on the incremental-checkpoint cadence rows.
    Bytes written is the deterministic overhead measure (wall times
    vary with the host); the delta+journal chain must write strictly
    less than full rewrites at every cadence, at least 3x less at the
    tightest (10s) cadence, and recovery + journal replay must land on
    the byte-identical report with no corruption warnings."""
    problems = []
    rows = res.get("incremental")
    if not isinstance(rows, list) or not rows:
        return ["resilience.incremental: cadence rows missing from snapshot"]
    for row in rows:
        cadence = row.get("cadence_s")
        tag = f"resilience.incremental[cadence_s={cadence}]"
        full_b = row.get("full_bytes", 0)
        incr_b = row.get("incr_bytes", 0)
        if full_b <= 0 or incr_b <= 0:
            problems.append(
                f"{tag}: full_bytes = {full_b!r}, incr_bytes = {incr_b!r}: "
                "expected positive byte counts"
            )
            continue
        if incr_b >= full_b:
            problems.append(
                f"{tag}: incr_bytes = {incr_b} >= full_bytes = {full_b}: "
                "incremental chain wrote no less than full rewrites"
            )
        ratio = row.get("bytes_ratio")
        if cadence == 10.0 and (ratio is None or float(ratio) < 3.0):
            problems.append(
                f"{tag}.bytes_ratio = {ratio!r}: expected >= 3.0 at the "
                "10s cadence (checkpoint-overhead reduction target)"
            )
        if row.get("incr_restored_report_equal") is not True:
            problems.append(
                f"{tag}.incr_restored_report_equal = "
                f"{row.get('incr_restored_report_equal')!r}: chain recovery "
                "diverged from the uninterrupted report"
            )
        if row.get("journal_replay_equal") is not True:
            problems.append(
                f"{tag}.journal_replay_equal = "
                f"{row.get('journal_replay_equal')!r}: journal replay was "
                "not re-emitted identically"
            )
        if row.get("recovery_warnings", 0) != 0:
            problems.append(
                f"{tag}.recovery_warnings = {row.get('recovery_warnings')!r}: "
                "clean chains must recover without warnings"
            )
    return problems


def compare_resilience(committed, fresh):
    """Cross-snapshot comparison of the deterministic resilience
    fields."""
    old = committed.get("resilience")
    new = fresh.get("resilience")
    if not isinstance(old, dict) or not isinstance(new, dict):
        return []
    diffs = []
    for field in RESILIENCE_FIELDS:
        if field not in old or field not in new:
            continue
        if not values_match(old[field], new[field]):
            diffs.append(
                f"resilience.{field}: "
                f"committed {old[field]!r} != fresh {new[field]!r}"
            )
    return diffs


def section_rows(doc, section):
    """Serving rows live under serving.runs; every other section is a
    top-level list."""
    if section == "serving":
        return doc.get("serving", {}).get("runs", [])
    return doc.get(section, [])


def values_match(a, b):
    if isinstance(a, float) or isinstance(b, float):
        a, b = float(a), float(b)
        return abs(a - b) <= REL_TOL * max(1.0, abs(a), abs(b))
    return a == b


def index_rows(rows, key):
    return {json.dumps(row.get(key)): row for row in rows}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        committed = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    diffs = []
    schema = fresh.get("schema")
    if schema != EXPECTED_SCHEMA:
        diffs.append(f"schema: expected {EXPECTED_SCHEMA!r}, got {schema!r}")
    diffs.extend(check_flow_invariants(fresh))
    diffs.extend(check_serving_invariants(fresh))
    diffs.extend(check_resilience_invariants(fresh))
    diffs.extend(compare_resilience(committed, fresh))
    for section, (key, fields) in SECTIONS.items():
        old_rows = index_rows(section_rows(committed, section), key)
        new_rows = index_rows(section_rows(fresh, section), key)
        # Rows present in only one snapshot are allowed: the hier size
        # ladder (and nothing else today) grows with MUERP_REPLICATIONS.
        for row_key in sorted(old_rows.keys() & new_rows.keys()):
            old, new = old_rows[row_key], new_rows[row_key]
            for field in fields:
                if field not in old or field not in new:
                    continue
                if not values_match(old[field], new[field]):
                    diffs.append(
                        f"{section}[{key}={row_key}].{field}: "
                        f"committed {old[field]!r} != fresh {new[field]!r}"
                    )

    if diffs:
        print("bench snapshot check failed:")
        for d in diffs:
            print(f"  {d}")
        sys.exit(1)
    print("bench snapshot matches committed deterministic sections")


if __name__ == "__main__":
    main()
